//! Configuration-knob ablations of the DataLoader model: prefetch factor,
//! pin-memory, and sampler behaviour.

use std::sync::{Arc, Mutex};

use lotus_data::DType;
use lotus_dataflow::{
    DataLoaderConfig, Dataset, FaultPlan, GpuConfig, LoaderMutation, NullTracer, Sampler,
    SchedulingPolicyKind, Tracer, TrainingJob,
};
use lotus_sim::{Span, Time};
use lotus_transforms::{PipelineError, Sample, TransformCtx, TransformObserver};
use lotus_uarch::{CostCoeffs, KernelId, Machine, MachineConfig};

struct VaryingDataset {
    len: u64,
    kernel: KernelId,
}

impl VaryingDataset {
    fn new(machine: &Machine, len: u64) -> VaryingDataset {
        VaryingDataset {
            len,
            kernel: machine.kernel("var_decode", "lib.so", CostCoeffs::compute_default()),
        }
    }
}

impl Dataset for VaryingDataset {
    fn len(&self) -> u64 {
        self.len
    }

    fn get_item(
        &self,
        index: u64,
        ctx: &mut TransformCtx<'_>,
        observer: &mut dyn TransformObserver,
    ) -> Result<Sample, PipelineError> {
        let start = ctx.cpu.cursor();
        ctx.cpu
            .exec(self.kernel, 150_000.0 * (1.0 + (index % 7) as f64 / 3.0));
        observer.on_transform("Loader", start, ctx.cpu.cursor().since(start));
        Ok(Sample::tensor_meta(&[3, 32, 32], DType::F32))
    }
}

/// Accumulates (preprocessed-end, consumed-start) per batch to compute
/// delays.
#[derive(Default)]
struct DelayTrace {
    produced: Mutex<Vec<(u64, u64)>>, // (batch, end ns)
    consumed: Mutex<Vec<(u64, u64)>>, // (batch, start ns)
}

impl DelayTrace {
    fn mean_delay_ns(&self) -> f64 {
        let produced = self.produced.lock().unwrap();
        let consumed = self.consumed.lock().unwrap();
        let mut total = 0.0;
        for (batch, start) in consumed.iter() {
            let (_, end) = produced.iter().find(|(b, _)| b == batch).unwrap();
            total += start.saturating_sub(*end) as f64;
        }
        total / consumed.len().max(1) as f64
    }
}

impl Tracer for DelayTrace {
    fn on_batch_preprocessed(&self, _pid: u32, batch: u64, start: Time, dur: Span) -> Span {
        self.produced
            .lock()
            .unwrap()
            .push((batch, (start + dur).as_nanos()));
        Span::ZERO
    }

    fn on_batch_consumed(
        &self,
        _pid: u32,
        batch: u64,
        start: Time,
        _dur: Span,
        _len: usize,
    ) -> Span {
        self.consumed
            .lock()
            .unwrap()
            .push((batch, start.as_nanos()));
        Span::ZERO
    }
}

fn run_with(
    prefetch: usize,
    pin_memory: bool,
    per_sample_step: Span,
    tracer: Arc<dyn Tracer>,
) -> lotus_dataflow::JobReport {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    TrainingJob {
        machine: Arc::clone(&machine),
        dataset: Arc::new(VaryingDataset::new(&machine, 256)),
        storage: None,
        loader: DataLoaderConfig {
            batch_size: 8,
            num_workers: 4,
            prefetch_factor: prefetch,
            data_queue_cap: None,
            pin_memory,
            sampler: Sampler::Sequential,
            drop_last: true,
            policy: SchedulingPolicyKind::RoundRobin,
        },
        gpu: GpuConfig {
            step_overhead: Span::from_micros(50),
            ..GpuConfig::v100(1, per_sample_step)
        },
        tracer,
        hw_profiler: None,
        seed: 3,
        epochs: 1,
        faults: FaultPlan::default(),
        controller: None,
        mutation: LoaderMutation::None,
    }
    .run()
    .unwrap()
}

/// In a GPU-bound regime the in-flight inventory — and therefore each
/// batch's delay — is bounded by `prefetch_factor × num_workers`: exactly
/// why the paper's IS pipeline shows a 10.9 s delay with 8 workers ×
/// prefetch 2 at a 750 ms step.
#[test]
fn prefetch_depth_bounds_in_flight_inventory() {
    let mean_delay = |prefetch: usize| {
        let tracer = Arc::new(DelayTrace::default());
        // Slow GPU: 5 ms steps, preprocessing far faster.
        let _ = run_with(
            prefetch,
            true,
            Span::from_micros(600),
            Arc::clone(&tracer) as _,
        );
        tracer.mean_delay_ns()
    };
    let shallow = mean_delay(1);
    let deep = mean_delay(4);
    assert!(
        deep > 2.0 * shallow,
        "4x prefetch should roughly 4x the queued inventory: {shallow} vs {deep}"
    );
}

#[test]
fn disabling_pin_memory_removes_the_pinning_cost() {
    let step = Span::from_micros(100);
    let with_pin = run_with(2, true, step, Arc::new(NullTracer)).elapsed;
    let without = run_with(2, false, step, Arc::new(NullTracer)).elapsed;
    assert!(
        without <= with_pin,
        "pinning adds main-process work: {without} vs {with_pin}"
    );
}

#[test]
fn random_sampler_changes_the_item_order_but_not_the_totals() {
    let run_sampler = |sampler: Sampler| {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        TrainingJob {
            machine: Arc::clone(&machine),
            dataset: Arc::new(VaryingDataset::new(&machine, 128)),
            storage: None,
            loader: DataLoaderConfig {
                batch_size: 8,
                num_workers: 2,
                prefetch_factor: 2,
                data_queue_cap: None,
                pin_memory: true,
                sampler,
                drop_last: true,
                policy: SchedulingPolicyKind::RoundRobin,
            },
            gpu: GpuConfig::v100(1, Span::from_micros(100)),
            tracer: Arc::new(NullTracer),
            hw_profiler: None,
            seed: 9,
            epochs: 1,
            faults: FaultPlan::default(),
            controller: None,
            mutation: LoaderMutation::None,
        }
        .run()
        .unwrap()
    };
    let seq = run_sampler(Sampler::Sequential);
    let rnd = run_sampler(Sampler::Random { seed: 5 });
    assert_eq!(seq.batches, rnd.batches);
    assert_eq!(seq.samples, rnd.samples);
    // Item order affects per-batch composition, hence the schedule.
    assert_ne!(seq.elapsed, rnd.elapsed);
}
