//! Lost-wakeup stress regression for [`NativeQueue`]: eight threads
//! hammer a small bounded queue with concurrent sends, receives and a
//! mid-flight close, under a watchdog. A lost wakeup (a missing
//! `notify` on any of the four signalling paths) hangs a consumer or
//! producer forever; the watchdog turns that hang into a test failure
//! instead of a stuck CI job. Exact item conservation is asserted on
//! top: every accepted send is received exactly once, because
//! `pop_until_closed` drains remaining items before honoring the close.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use lotus_dataflow::NativeQueue;

const PRODUCERS: usize = 4;
const CONSUMERS: usize = 4;
const ITEMS_PER_PRODUCER: u64 = 500;

#[test]
fn eight_threads_hammering_close_send_recv_never_hang_or_lose_items() {
    let queue: Arc<NativeQueue<u64>> = Arc::new(NativeQueue::new("stress", Some(4)));
    let accepted = Arc::new(AtomicU64::new(0));
    let received_sum = Arc::new(AtomicU64::new(0));
    let received_count = Arc::new(AtomicU64::new(0));

    let (done_tx, done_rx) = mpsc::channel::<()>();
    let body = {
        let queue = Arc::clone(&queue);
        let accepted = Arc::clone(&accepted);
        let received_sum = Arc::clone(&received_sum);
        let received_count = Arc::clone(&received_count);
        move || {
            let mut handles = Vec::new();
            for p in 0..PRODUCERS {
                let queue = Arc::clone(&queue);
                let accepted = Arc::clone(&accepted);
                handles.push(thread::spawn(move || {
                    for i in 0..ITEMS_PER_PRODUCER {
                        let item = (p as u64) * ITEMS_PER_PRODUCER + i;
                        // Blocking send unless the queue closed under us;
                        // a refused send is not an accepted item.
                        if queue.push_unless_closed(item).is_ok() {
                            accepted.fetch_add(1, Ordering::Relaxed);
                        } else {
                            break;
                        }
                    }
                }));
            }
            for _ in 0..CONSUMERS {
                let queue = Arc::clone(&queue);
                let received_sum = Arc::clone(&received_sum);
                let received_count = Arc::clone(&received_count);
                handles.push(thread::spawn(move || {
                    while let Some(item) = queue.pop_until_closed() {
                        received_sum.fetch_add(item, Ordering::Relaxed);
                        received_count.fetch_add(1, Ordering::Relaxed);
                    }
                }));
            }
            // Close only after the producers have drained their loops, so
            // every accepted item is in (or through) the queue before the
            // consumers see the close.
            for handle in handles.drain(..PRODUCERS) {
                handle.join().expect("producer panicked");
            }
            queue.close();
            for handle in handles {
                handle.join().expect("consumer panicked");
            }
        }
    };
    let worker = thread::spawn(move || {
        body();
        let _ = done_tx.send(());
    });

    // The watchdog: a lost wakeup leaves a thread parked forever; fail
    // fast instead of hanging the suite.
    done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("stress run hung — lost wakeup or deadlock in NativeQueue");
    worker.join().expect("stress harness panicked");

    let accepted = accepted.load(Ordering::Relaxed);
    let count = received_count.load(Ordering::Relaxed);
    assert_eq!(
        accepted,
        (PRODUCERS as u64) * ITEMS_PER_PRODUCER,
        "producers were refused before the close"
    );
    assert_eq!(
        count, accepted,
        "item conservation violated: {count} received of {accepted} accepted"
    );
    // Sum check makes silent duplication+loss pairs visible too.
    let expected_sum: u64 = (0..(PRODUCERS as u64) * ITEMS_PER_PRODUCER).sum();
    assert_eq!(received_sum.load(Ordering::Relaxed), expected_sum);
    assert!(queue.is_closed());
    assert_eq!(queue.len(), 0, "closed queue should have drained");
}

/// Closing while consumers are parked on an empty queue releases all of
/// them promptly — the close broadcast is the only wakeup they get.
#[test]
fn close_releases_a_crowd_of_parked_consumers() {
    let queue: Arc<NativeQueue<u64>> = Arc::new(NativeQueue::new("crowd", Some(2)));
    let (done_tx, done_rx) = mpsc::channel::<()>();
    let consumers: Vec<_> = (0..6)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let done_tx = done_tx.clone();
            thread::spawn(move || {
                while queue.pop_until_closed().is_some() {}
                let _ = done_tx.send(());
            })
        })
        .collect();
    // Give the consumers time to park, then close.
    thread::sleep(Duration::from_millis(20));
    queue.close();
    for _ in 0..6 {
        done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("a parked consumer never woke from close");
    }
    for consumer in consumers {
        consumer.join().expect("consumer panicked");
    }
}
