//! Integration tests for the DataLoader protocol: event completeness,
//! ordering invariants, out-of-order handling and bottleneck behaviour.

use std::sync::{Arc, Mutex};

use lotus_data::DType;
use lotus_dataflow::{
    DataLoaderConfig, Dataset, FaultPlan, GpuConfig, LoaderMutation, NullTracer, Sampler,
    SchedulingPolicyKind, Tracer, TrainingJob, MAIN_OS_PID,
};
use lotus_sim::{Span, Time};
use lotus_transforms::{PipelineError, Sample, TransformCtx, TransformObserver};
use lotus_uarch::{CostCoeffs, KernelId, Machine, MachineConfig};

/// A dataset whose items cost a fixed amount of decode work.
struct StubDataset {
    len: u64,
    work_per_item: f64,
    kernel: KernelId,
}

impl StubDataset {
    fn new(machine: &Machine, len: u64, work_per_item: f64) -> StubDataset {
        StubDataset {
            len,
            work_per_item,
            kernel: machine.kernel("stub_decode", "libstub.so", CostCoeffs::compute_default()),
        }
    }
}

impl Dataset for StubDataset {
    fn len(&self) -> u64 {
        self.len
    }

    fn get_item(
        &self,
        index: u64,
        ctx: &mut TransformCtx<'_>,
        observer: &mut dyn TransformObserver,
    ) -> Result<Sample, PipelineError> {
        let start = ctx.cpu.cursor();
        // Vary per-item work so batches finish at staggered times (the
        // source of out-of-order arrivals, like variable image sizes).
        let work = self.work_per_item * (1.0 + (index % 5) as f64 / 2.0);
        ctx.cpu.exec(self.kernel, work);
        observer.on_transform("Loader", start, ctx.cpu.cursor().since(start));
        Ok(Sample::tensor_meta(&[3, 16, 16], DType::F32))
    }
}

/// One observed op event: (pid, batch, name, start ns, duration ns).
type OpEvent = (u32, u64, String, u64, u64);

/// Records every tracer event for assertions.
#[derive(Default)]
struct Recorder {
    ops: Mutex<Vec<OpEvent>>,
    preprocessed: Mutex<Vec<(u32, u64, u64, u64)>>,
    waits: Mutex<Vec<(u64, u64, u64, bool)>>,
    consumed: Mutex<Vec<(u64, u64, u64)>>,
}

impl Tracer for Recorder {
    fn on_op(&self, pid: u32, batch_id: u64, name: &str, start: Time, dur: Span) -> Span {
        self.ops.lock().unwrap().push((
            pid,
            batch_id,
            name.to_string(),
            start.as_nanos(),
            dur.as_nanos(),
        ));
        Span::ZERO
    }

    fn on_batch_preprocessed(&self, pid: u32, batch_id: u64, start: Time, dur: Span) -> Span {
        self.preprocessed
            .lock()
            .unwrap()
            .push((pid, batch_id, start.as_nanos(), dur.as_nanos()));
        Span::ZERO
    }

    fn on_batch_wait(
        &self,
        pid: u32,
        batch_id: u64,
        start: Time,
        dur: Span,
        ooo: bool,
        _queue_delay: Span,
    ) -> Span {
        assert_eq!(pid, MAIN_OS_PID, "waits happen on the main process");
        self.waits
            .lock()
            .unwrap()
            .push((batch_id, start.as_nanos(), dur.as_nanos(), ooo));
        Span::ZERO
    }

    fn on_batch_consumed(
        &self,
        pid: u32,
        batch_id: u64,
        start: Time,
        dur: Span,
        _batch_len: usize,
    ) -> Span {
        assert_eq!(pid, MAIN_OS_PID);
        self.consumed
            .lock()
            .unwrap()
            .push((batch_id, start.as_nanos(), dur.as_nanos()));
        Span::ZERO
    }
}

fn job(
    machine: &Arc<Machine>,
    dataset_len: u64,
    work: f64,
    workers: usize,
    batch: usize,
    tracer: Arc<dyn Tracer>,
    step: Span,
) -> TrainingJob {
    TrainingJob {
        machine: Arc::clone(machine),
        dataset: Arc::new(StubDataset::new(machine, dataset_len, work)),
        storage: None,
        loader: DataLoaderConfig {
            batch_size: batch,
            num_workers: workers,
            prefetch_factor: 2,
            data_queue_cap: None,
            pin_memory: true,
            sampler: Sampler::Sequential,
            drop_last: true,
            policy: SchedulingPolicyKind::RoundRobin,
        },
        gpu: GpuConfig {
            step_overhead: Span::from_micros(20),
            ..GpuConfig::v100(1, step)
        },
        tracer,
        hw_profiler: None,
        seed: 7,
        epochs: 1,
        faults: FaultPlan::default(),
        controller: None,
        mutation: LoaderMutation::None,
    }
}

#[test]
fn epoch_consumes_every_batch_exactly_once() {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let rec = Arc::new(Recorder::default());
    let report = job(
        &machine,
        64,
        50_000.0,
        2,
        8,
        Arc::clone(&rec) as _,
        Span::from_micros(200),
    )
    .run()
    .unwrap();
    assert_eq!(report.batches, 8);
    assert_eq!(report.samples, 64);

    let consumed = rec.consumed.lock().unwrap();
    let ids: Vec<u64> = consumed.iter().map(|(id, _, _)| *id).collect();
    assert_eq!(
        ids,
        (0..8).collect::<Vec<_>>(),
        "batches must be consumed in order"
    );
    let waits = rec.waits.lock().unwrap();
    assert_eq!(waits.len(), 8);
    let preprocessed = rec.preprocessed.lock().unwrap();
    assert_eq!(preprocessed.len(), 8);
}

#[test]
fn per_op_records_cover_every_item_plus_collation() {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let rec = Arc::new(Recorder::default());
    job(
        &machine,
        24,
        10_000.0,
        1,
        4,
        Arc::clone(&rec) as _,
        Span::from_micros(100),
    )
    .run()
    .unwrap();
    let ops = rec.ops.lock().unwrap();
    let loaders = ops.iter().filter(|(_, _, n, _, _)| n == "Loader").count();
    let collates = ops.iter().filter(|(_, _, n, _, _)| n == "C(4)").count();
    assert_eq!(loaders, 24, "one Loader record per item");
    assert_eq!(collates, 6, "one collation record per batch");
}

#[test]
fn multiple_workers_produce_out_of_order_arrivals() {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let rec = Arc::new(Recorder::default());
    // Fast GPU + slow preprocessing: the main process drains arrivals as
    // they come, and with 4 workers some arrive out of order.
    job(
        &machine,
        256,
        400_000.0,
        4,
        8,
        Arc::clone(&rec) as _,
        Span::from_micros(10),
    )
    .run()
    .unwrap();
    let waits = rec.waits.lock().unwrap();
    let ooo = waits.iter().filter(|(_, _, _, ooo)| *ooo).count();
    assert!(
        ooo > 0,
        "expected at least one out-of-order batch with 4 workers"
    );
    // Out-of-order waits carry the paper's 1 µs marker.
    for (_, _, dur, is_ooo) in waits.iter() {
        if *is_ooo {
            assert_eq!(*dur, 1_000);
        }
    }
}

#[test]
fn single_worker_never_reorders() {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let rec = Arc::new(Recorder::default());
    job(
        &machine,
        64,
        100_000.0,
        1,
        8,
        Arc::clone(&rec) as _,
        Span::from_micros(50),
    )
    .run()
    .unwrap();
    let waits = rec.waits.lock().unwrap();
    assert!(waits.iter().all(|(_, _, _, ooo)| !ooo));
}

#[test]
fn preprocessing_bottleneck_means_long_waits_short_delays() {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let rec = Arc::new(Recorder::default());
    // Heavy preprocessing, nearly-free GPU.
    job(
        &machine,
        64,
        2_000_000.0,
        1,
        8,
        Arc::clone(&rec) as _,
        Span::from_micros(1),
    )
    .run()
    .unwrap();
    let waits = rec.waits.lock().unwrap();
    let mean_wait: f64 =
        waits.iter().map(|(_, _, d, _)| *d as f64).sum::<f64>() / waits.len() as f64;
    // Delay = consumed.start − preprocessed.end, per batch.
    let preprocessed = rec.preprocessed.lock().unwrap();
    let consumed = rec.consumed.lock().unwrap();
    let mean_delay: f64 = consumed
        .iter()
        .map(|(id, start, _)| {
            let (_, _, p_start, p_dur) = preprocessed
                .iter()
                .find(|(_, pid, _, _)| pid == id)
                .unwrap();
            (*start - (p_start + p_dur)) as f64
        })
        .sum::<f64>()
        / consumed.len() as f64;
    assert!(
        mean_wait > 10.0 * mean_delay,
        "preprocessing-bound: waits ({mean_wait} ns) should dwarf delays ({mean_delay} ns)"
    );
}

#[test]
fn gpu_bottleneck_means_long_delays_short_waits() {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let rec = Arc::new(Recorder::default());
    // Light preprocessing, slow GPU (100 ms steps), several workers.
    job(
        &machine,
        64,
        20_000.0,
        4,
        2,
        Arc::clone(&rec) as _,
        Span::from_millis(50),
    )
    .run()
    .unwrap();
    let preprocessed = rec.preprocessed.lock().unwrap();
    let consumed = rec.consumed.lock().unwrap();
    let delays: Vec<f64> = consumed
        .iter()
        .map(|(id, start, _)| {
            let (_, _, p_start, p_dur) = preprocessed
                .iter()
                .find(|(_, pid, _, _)| pid == id)
                .unwrap();
            (*start - (p_start + p_dur)) as f64
        })
        .collect();
    let mean_delay = delays.iter().sum::<f64>() / delays.len() as f64;
    assert!(
        mean_delay > 50e6,
        "GPU-bound: batches should sit preprocessed for ≥ one step ({mean_delay} ns)"
    );
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        job(
            &machine,
            128,
            75_000.0,
            3,
            16,
            Arc::new(NullTracer) as _,
            Span::from_millis(1),
        )
        .run()
        .unwrap()
        .elapsed
        .as_nanos()
    };
    assert_eq!(run(), run());
}

#[test]
fn more_workers_shorten_a_preprocessing_bound_epoch() {
    let elapsed = |workers: usize| {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        job(
            &machine,
            256,
            1_000_000.0,
            workers,
            8,
            Arc::new(NullTracer) as _,
            Span::from_micros(10),
        )
        .run()
        .unwrap()
        .elapsed
        .as_nanos()
    };
    let one = elapsed(1);
    let four = elapsed(4);
    assert!(
        (four as f64) < 0.5 * one as f64,
        "4 workers ({four} ns) should be much faster than 1 ({one} ns)"
    );
}

#[test]
fn tracer_overhead_lengthens_the_run() {
    struct CostlyTracer;
    impl Tracer for CostlyTracer {
        fn on_op(&self, _: u32, _: u64, _: &str, _: Time, _: Span) -> Span {
            Span::from_micros(200)
        }
    }
    let run = |tracer: Arc<dyn Tracer>| {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        job(&machine, 64, 50_000.0, 1, 8, tracer, Span::from_micros(10))
            .run()
            .unwrap()
            .elapsed
            .as_nanos()
    };
    let base = run(Arc::new(NullTracer));
    let traced = run(Arc::new(CostlyTracer));
    assert!(traced > base, "per-op overhead must show up in wall time");
}

#[test]
fn compute_dilation_slows_preprocessing() {
    struct Dilating;
    impl Tracer for Dilating {
        fn compute_dilation(&self) -> f64 {
            2.0
        }
    }
    let run = |tracer: Arc<dyn Tracer>| {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        job(&machine, 64, 500_000.0, 1, 8, tracer, Span::from_micros(10))
            .run()
            .unwrap()
            .elapsed
            .as_nanos()
    };
    let base = run(Arc::new(NullTracer));
    let dilated = run(Arc::new(Dilating));
    let ratio = dilated as f64 / base as f64;
    assert!(
        ratio > 1.5,
        "2x dilation on a preprocessing-bound job: ratio {ratio}"
    );
}

#[test]
fn partial_batches_respect_drop_last() {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let mut j = job(
        &machine,
        10,
        10_000.0,
        1,
        4,
        Arc::new(NullTracer) as _,
        Span::from_micros(10),
    );
    j.loader.drop_last = false;
    let report = j.run().unwrap();
    assert_eq!(report.batches, 3);
    assert_eq!(report.samples, 10);
}

/// Regression test for the refill protocol: the main loop must send one
/// fresh index batch per *returned* batch (PyTorch's `_process_data` →
/// `_try_put_index`), so the dispatched-but-unconsumed inventory can never
/// exceed `prefetch_factor × num_workers` — even when one slow worker
/// forces its siblings' batches through the out-of-order cache. The old
/// code refilled per queue pop and let the inventory balloon.
#[test]
fn in_flight_inventory_is_bounded_with_a_slow_worker() {
    /// Items in batches assigned to worker 0 (round-robin: batch id % 4)
    /// cost 40x more, so workers 1–3 race far ahead.
    struct SkewedDataset {
        len: u64,
        kernel: KernelId,
    }
    impl Dataset for SkewedDataset {
        fn len(&self) -> u64 {
            self.len
        }
        fn get_item(
            &self,
            index: u64,
            ctx: &mut TransformCtx<'_>,
            _observer: &mut dyn TransformObserver,
        ) -> Result<Sample, PipelineError> {
            let batch = index / 8;
            let work = if batch.is_multiple_of(4) {
                4_000_000.0
            } else {
                100_000.0
            };
            ctx.cpu.exec(self.kernel, work);
            Ok(Sample::tensor_meta(&[3, 16, 16], DType::F32))
        }
    }

    /// Tracks the peak number of preprocessed-but-unconsumed batches.
    #[derive(Default)]
    struct InventoryGauge {
        outstanding: Mutex<(i64, i64)>, // (current, peak)
    }
    impl Tracer for InventoryGauge {
        fn on_batch_preprocessed(&self, _: u32, _: u64, _: Time, _: Span) -> Span {
            let mut g = self.outstanding.lock().unwrap();
            g.0 += 1;
            g.1 = g.1.max(g.0);
            Span::ZERO
        }
        fn on_batch_consumed(&self, _: u32, _: u64, _: Time, _: Span, _: usize) -> Span {
            self.outstanding.lock().unwrap().0 -= 1;
            Span::ZERO
        }
    }

    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let gauge = Arc::new(InventoryGauge::default());
    let report = TrainingJob {
        machine: Arc::clone(&machine),
        dataset: Arc::new(SkewedDataset {
            len: 512,
            kernel: machine.kernel("skew_decode", "libstub.so", CostCoeffs::compute_default()),
        }),
        storage: None,
        loader: DataLoaderConfig {
            batch_size: 8,
            num_workers: 4,
            prefetch_factor: 2,
            data_queue_cap: None,
            pin_memory: true,
            sampler: Sampler::Sequential,
            drop_last: true,
            policy: SchedulingPolicyKind::RoundRobin,
        },
        // Fast GPU: consumption never throttles the loader.
        gpu: GpuConfig::v100(1, Span::from_micros(1)),
        tracer: Arc::clone(&gauge) as _,
        hw_profiler: None,
        seed: 7,
        epochs: 1,
        faults: FaultPlan::default(),
        controller: None,
        mutation: LoaderMutation::None,
    }
    .run()
    .unwrap();
    assert_eq!(report.batches, 64);
    let peak = gauge.outstanding.lock().unwrap().1;
    // +1: the refill is sent before the returned batch is consumed (as in
    // PyTorch), so one extra fetch can finish during the consumption window.
    assert!(
        peak <= 2 * 4 + 1,
        "inventory must stay within prefetch_factor*num_workers + 1, peaked at {peak}"
    );
}

#[test]
fn multiple_epochs_reshuffle_and_keep_batch_ids_counting() {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let rec = Arc::new(Recorder::default());
    let mut j = job(
        &machine,
        32,
        40_000.0,
        2,
        8,
        Arc::clone(&rec) as _,
        Span::from_micros(100),
    );
    j.epochs = 3;
    j.loader.sampler = Sampler::Random { seed: 5 };
    let report = j.run().unwrap();
    // 4 batches per epoch × 3 epochs.
    assert_eq!(report.batches, 12);
    assert_eq!(report.samples, 96);
    let consumed = rec.consumed.lock().unwrap();
    let ids: Vec<u64> = consumed.iter().map(|(id, _, _)| *id).collect();
    assert_eq!(
        ids,
        (0..12).collect::<Vec<_>>(),
        "batch ids count across epochs"
    );
}

/// Captures the peak of one named gauge series.
#[derive(Default)]
struct GaugePeak {
    name: &'static str,
    peak: Mutex<f64>,
}

impl Tracer for GaugePeak {
    fn on_gauge(&self, name: &str, value: f64, _at: Time) -> Span {
        if name == self.name {
            let mut peak = self.peak.lock().unwrap();
            *peak = peak.max(value);
        }
        Span::ZERO
    }
}

#[test]
fn bounded_data_queue_caps_resident_batches_without_losing_any() {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    // Slow GPU + fast preprocessing: an unbounded data queue piles up.
    let slow_step = Span::from_millis(5);
    let unbounded_peak = Arc::new(GaugePeak {
        name: "queue_depth.data_queue",
        peak: Mutex::new(0.0),
    });
    let report = job(
        &machine,
        128,
        5_000.0,
        4,
        8,
        Arc::clone(&unbounded_peak) as _,
        slow_step,
    )
    .run()
    .unwrap();
    assert_eq!(report.batches, 16);
    assert!(
        *unbounded_peak.peak.lock().unwrap() > 1.0,
        "the scenario must actually pile batches up when unbounded"
    );

    let bounded_peak = Arc::new(GaugePeak {
        name: "queue_depth.data_queue",
        peak: Mutex::new(0.0),
    });
    let mut bounded = job(
        &machine,
        128,
        5_000.0,
        4,
        8,
        Arc::clone(&bounded_peak) as _,
        slow_step,
    );
    bounded.loader.data_queue_cap = Some(1);
    let report = bounded.run().unwrap();
    assert_eq!(report.batches, 16, "a bounded queue must not drop batches");
    assert_eq!(report.samples, 128);
    assert!(
        *bounded_peak.peak.lock().unwrap() <= 1.0,
        "capacity 1 must cap the queue depth at 1"
    );
}
