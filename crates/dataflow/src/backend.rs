//! Execution backends: where a [`TrainingJob`] actually runs.
//!
//! The DataLoader protocol (round-robin dispatch, bounded queues, the
//! reorder buffer, dead-worker redispatch) is substrate-independent. An
//! [`ExecutionBackend`] chooses the substrate:
//!
//! * [`SimBackend`] — the deterministic discrete-event simulator with a
//!   virtual clock ([`TrainingJob::run`]). Every run is exactly
//!   reproducible; kernel durations come from the cost model.
//! * [`crate::NativeBackend`] — real OS threads, real channels, a
//!   monotonic wall clock, and real pixels through the codec/transform
//!   kernels. Timestamps are nondeterministic; the protocol's structure
//!   (counts, ordering, conservation) is not.
//!
//! Both emit the same [`crate::Tracer`] event stream, so LotusTrace, the
//! metrics registry, and the trace linter consume either backend's output
//! unchanged.

use crate::error::JobError;
use crate::loader::{JobReport, TrainingJob};

/// An execution substrate for the DataLoader protocol.
pub trait ExecutionBackend {
    /// A short stable name for reports and BENCH files (`"sim"`,
    /// `"native"`).
    fn name(&self) -> &'static str;

    /// Runs the job's epoch(s) to completion on this substrate.
    ///
    /// # Errors
    ///
    /// Returns the same [`JobError`] variants as [`TrainingJob::run`]:
    /// invalid configuration, an in-band sample error, all workers dead,
    /// or a substrate failure.
    fn run(&self, job: TrainingJob) -> Result<JobReport, JobError>;
}

/// The virtual-time simulation backend — delegates to
/// [`TrainingJob::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SimBackend;

impl ExecutionBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(&self, job: TrainingJob) -> Result<JobReport, JobError> {
        job.run()
    }
}
