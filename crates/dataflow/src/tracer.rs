//! Instrumentation hooks into the data flow.
//!
//! The dataflow engine emits ground-truth events (per-op timings, batch
//! fetches, waits, consumptions) to a [`Tracer`]. LotusTrace records them
//! into its log; baseline profiler models subsample or ignore them and
//! charge their own interference. Each hook returns the virtual-time
//! overhead the instrumentation itself costs at that point, which the
//! engine adds to the emitting process's timeline — this is how
//! per-profiler wall-time overhead (the paper's Table III) arises.

use lotus_sim::{ReadOutcome, Span, Time};

/// Observer of data-flow events. All methods default to "not captured, no
/// overhead".
pub trait Tracer: Send + Sync {
    /// One preprocessing operation finished on a worker (\[T3\]).
    /// `batch_id` is the batch the item belongs to.
    fn on_op(&self, pid: u32, batch_id: u64, name: &str, start: Time, dur: Span) -> Span {
        let _ = (pid, batch_id, name, start, dur);
        Span::ZERO
    }

    /// A worker finished fetching (preprocessing) a whole batch (\[T1\]).
    fn on_batch_preprocessed(&self, pid: u32, batch_id: u64, start: Time, dur: Span) -> Span {
        let _ = (pid, batch_id, start, dur);
        Span::ZERO
    }

    /// The main process handed an index batch to a worker's index queue —
    /// either a fresh batch from the sampler (`redispatch == false`) or a
    /// dead worker's orphan being re-sent (`redispatch == true`). This is
    /// the dispatch side of the protocol, paired with
    /// [`Tracer::on_batch_wait`] on the return side; `lotus check` builds
    /// its sample-conservation ledger from exactly these two hooks.
    fn on_batch_dispatched(
        &self,
        batch_id: u64,
        to_pid: u32,
        indices: &[u64],
        redispatch: bool,
        at: Time,
    ) -> Span {
        let _ = (batch_id, to_pid, indices, redispatch, at);
        Span::ZERO
    }

    /// The main process finished waiting for a batch (\[T2\]).
    /// `out_of_order` is true when the batch was served from the pinned
    /// cache (the paper marks these with a 1 µs duration). `queue_delay`
    /// is how long the batch sat between the end of its fetch on the
    /// worker and being handed to the main loop — the shared-queue
    /// residency that distinguishes a slow pipeline from a slow consumer.
    fn on_batch_wait(
        &self,
        pid: u32,
        batch_id: u64,
        start: Time,
        dur: Span,
        out_of_order: bool,
        queue_delay: Span,
    ) -> Span {
        let _ = (pid, batch_id, start, dur, out_of_order, queue_delay);
        Span::ZERO
    }

    /// The main process consumed a batch of `batch_len` samples (H2D
    /// transfer + GPU step).
    fn on_batch_consumed(
        &self,
        pid: u32,
        batch_id: u64,
        start: Time,
        dur: Span,
        batch_len: usize,
    ) -> Span {
        let _ = (pid, batch_id, start, dur, batch_len);
        Span::ZERO
    }

    /// A worker's dataset fetched sample bytes from the simulated storage
    /// hierarchy (\[T0\]). `start` is the instant the read was issued;
    /// `read` carries the serving tier, duration (including device
    /// queueing), bytes moved, seek flag and observed queue depth. The
    /// read happens inside the batch's \[T1\] fetch span on the same
    /// worker, so T0 time is a component of — never in addition to — the
    /// preprocessing time LotusTrace attributes to the batch.
    fn on_storage_read(&self, pid: u32, batch_id: u64, start: Time, read: &ReadOutcome) -> Span {
        let _ = (pid, batch_id, start, read);
        Span::ZERO
    }

    /// A fault plan injected an error into sample fetching on a worker.
    fn on_fault_injected(&self, pid: u32, batch_id: u64, op: &str, at: Time) -> Span {
        let _ = (pid, batch_id, op, at);
        Span::ZERO
    }

    /// The main process observed that a worker died (the analog of the
    /// `w.is_alive()` check failing after a queue-poll timeout).
    fn on_worker_died(&self, pid: u32, at: Time) -> Span {
        let _ = (pid, at);
        Span::ZERO
    }

    /// An in-flight batch owned by a dead worker was re-sent to a
    /// surviving worker's index queue.
    fn on_batch_redispatched(&self, batch_id: u64, from_pid: u32, to_pid: u32, at: Time) -> Span {
        let _ = (batch_id, from_pid, to_pid, at);
        Span::ZERO
    }

    /// A scheduling policy overrode the round-robin target: `batch_id`
    /// was taken from `from_pid`'s queue share and handed to `to_pid`
    /// (the work-stealing policy's steal instant). Emitted right after
    /// the batch's [`Tracer::on_batch_dispatched`].
    fn on_batch_stolen(&self, batch_id: u64, from_pid: u32, to_pid: u32, at: Time) -> Span {
        let _ = (batch_id, from_pid, to_pid, at);
        Span::ZERO
    }

    /// A lane-aware scheduling policy classified `batch_id` into `lane`
    /// (`"fast"` or `"slow"`) and placed it on `to_pid`. Emitted right
    /// after the batch's [`Tracer::on_batch_dispatched`].
    fn on_lane_assigned(&self, batch_id: u64, lane: &str, to_pid: u32, at: Time) -> Span {
        let _ = (batch_id, lane, to_pid, at);
        Span::ZERO
    }

    /// An adaptive scheduling policy resized the per-worker prefetch
    /// window to `target` (always within `[1, prefetch_factor]`).
    fn on_prefetch_resized(&self, target: usize, at: Time) -> Span {
        let _ = (target, at);
        Span::ZERO
    }

    /// A named scalar was sampled at virtual time `at` — the engine's
    /// gauge feed. The DataLoader emits `queue_depth.<queue>` at every
    /// push/pop transition of each index queue and the shared data queue,
    /// `in_flight_batches` whenever the dispatched-but-unreturned
    /// inventory changes, and `pinned_cache_batches` whenever the
    /// out-of-order pinned cache grows or shrinks. Metrics sinks turn
    /// these into deterministic `(Time, value)` time-series; trace
    /// backends ignore them.
    fn on_gauge(&self, name: &str, value: f64, at: Time) -> Span {
        let _ = (name, value, at);
        Span::ZERO
    }

    /// Multiplicative slowdown this instrumentation imposes on all
    /// preprocessing compute (in-process sampling/allocation interception
    /// interference; 1.0 = none).
    fn compute_dilation(&self) -> f64 {
        1.0
    }
}

/// A tracer that captures nothing and costs nothing (the "no profiler"
/// baseline of Table III).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_is_free() {
        let t = NullTracer;
        assert_eq!(
            t.on_op(1, 0, "X", Time::ZERO, Span::from_micros(5)),
            Span::ZERO
        );
        assert_eq!(
            t.on_batch_preprocessed(1, 0, Time::ZERO, Span::ZERO),
            Span::ZERO
        );
        assert_eq!(
            t.on_batch_wait(1, 0, Time::ZERO, Span::ZERO, false, Span::ZERO),
            Span::ZERO
        );
        assert_eq!(
            t.on_batch_consumed(1, 0, Time::ZERO, Span::ZERO, 8),
            Span::ZERO
        );
        assert_eq!(
            t.on_fault_injected(1, 0, "ToTensor", Time::ZERO),
            Span::ZERO
        );
        assert_eq!(
            t.on_batch_dispatched(0, 4243, &[0, 1], false, Time::ZERO),
            Span::ZERO
        );
        assert_eq!(
            t.on_storage_read(
                1,
                0,
                Time::ZERO,
                &lotus_sim::ReadOutcome {
                    tier: lotus_sim::StorageTier::ObjectStore,
                    span: Span::from_millis(4),
                    bytes: 100_000,
                    seek: false,
                    queue_depth: 1,
                }
            ),
            Span::ZERO
        );
        assert_eq!(t.on_worker_died(1, Time::ZERO), Span::ZERO);
        assert_eq!(t.on_batch_redispatched(0, 1, 2, Time::ZERO), Span::ZERO);
        assert_eq!(t.on_batch_stolen(0, 4243, 4244, Time::ZERO), Span::ZERO);
        assert_eq!(t.on_lane_assigned(0, "slow", 4244, Time::ZERO), Span::ZERO);
        assert_eq!(t.on_prefetch_resized(1, Time::ZERO), Span::ZERO);
        assert_eq!(
            t.on_gauge("queue_depth.data_queue", 3.0, Time::ZERO),
            Span::ZERO
        );
        assert_eq!(t.compute_dilation(), 1.0);
    }
}
