//! The training-job engine: main process, DataLoader workers, index/data
//! queues and the GPU step — PyTorch's asynchronous data flow (§II-B of
//! the paper) on the simulator.

use std::collections::HashMap;
use std::sync::Arc;

use lotus_data::mix_seed;
use lotus_sim::{Ctx, Queue, SimError, Simulation, Span, Time};
use lotus_transforms::{Collate, TransformCtx, TransformObserver};
use lotus_uarch::{CostCoeffs, CpuThread, HwProfiler, KernelId, Machine};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{DataLoaderConfig, GpuConfig};
use crate::dataset::{BatchSampler, Dataset};
use crate::tracer::Tracer;

/// Simulated OS pid of the main process (the paper logs real pids via
/// `psutil`; we use stable synthetic ones).
pub const MAIN_OS_PID: u32 = 4242;

/// Simulated OS pid of DataLoader worker `w`.
#[must_use]
pub fn worker_os_pid(worker: usize) -> u32 {
    MAIN_OS_PID + 1 + worker as u32
}

/// Message on a per-worker index queue.
#[derive(Debug, Clone, PartialEq, Eq)]
enum WorkerMsg {
    /// Preprocess these dataset indices as batch `id`.
    Batch { id: u64, indices: Vec<u64> },
    /// Exit the worker loop (PyTorch's `None` sentinel).
    Shutdown,
}

/// A preprocessed batch travelling through the shared data queue.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Envelope {
    batch_id: u64,
    bytes: u64,
    len: usize,
    /// Virtual time at which preprocessing (the fetch) finished.
    produced_at: Time,
    worker: usize,
    pinned: bool,
}

/// Framework-side native kernels (queue serialization, pinning, CUDA
/// dispatch). These populate the hardware profile with the "hundreds of
/// unrelated functions" LotusMap's mapping must filter out (§V-D).
#[derive(Debug, Clone, Copy)]
struct FrameworkKernels {
    pickle_dumps: KernelId,
    pickle_loads: KernelId,
    pin_memory: KernelId,
    cuda_launch: KernelId,
}

impl FrameworkKernels {
    fn register(machine: &Machine) -> FrameworkKernels {
        let pickle = CostCoeffs {
            base_insts: 2_000.0,
            insts_per_unit: 0.35, // per byte serialized
            uops_per_inst: 1.1,
            ipc_base: 2.0,
            l1_miss_per_unit: 1.5 / 64.0,
            l2_miss_per_unit: 1.2 / 64.0,
            llc_miss_per_unit: 1.0 / 64.0,
            branches_per_unit: 0.06,
            mispredict_rate: 0.01,
            frontend_sensitivity: 0.3,
        };
        FrameworkKernels {
            pickle_dumps: machine.kernel(
                "_pickle_Pickler_dump",
                "_pickle.cpython-310-x86_64-linux-gnu.so",
                pickle,
            ),
            pickle_loads: machine.kernel(
                "_pickle_Unpickler_load",
                "_pickle.cpython-310-x86_64-linux-gnu.so",
                pickle,
            ),
            // Pinning copies the batch into page-locked memory with a
            // wide, prefetch-friendly copy (~10 GB/s effective).
            pin_memory: machine.kernel(
                "pin_memory_copy",
                "libtorch_cuda.so",
                CostCoeffs {
                    base_insts: 1_500.0,
                    insts_per_unit: 0.1,
                    uops_per_inst: 1.0,
                    ipc_base: 3.0,
                    l1_miss_per_unit: 0.004,
                    l2_miss_per_unit: 0.0037,
                    llc_miss_per_unit: 0.0035,
                    branches_per_unit: 0.01,
                    mispredict_rate: 0.002,
                    frontend_sensitivity: 0.05,
                },
            ),
            cuda_launch: machine.kernel(
                "cudaLaunchKernel",
                "libcudart.so.11.8",
                CostCoeffs { base_insts: 8_000.0, insts_per_unit: 0.0, ..CostCoeffs::compute_default() },
            ),
        }
    }
}

/// Runs `cpu` work starting at the current instant and advances the
/// simulated clock by however long it took.
fn charge(ctx: &Ctx, cpu: &mut CpuThread, kernel: KernelId, work: f64) {
    let start = ctx.now();
    cpu.set_cursor(start);
    cpu.exec(kernel, work);
    ctx.delay(cpu.cursor().since(start));
}

/// A complete single-epoch training job: dataset, DataLoader, GPU group,
/// instrumentation.
///
/// `run()` builds the simulation (one main process + `num_workers`
/// DataLoader workers, per-worker index queues, one shared data queue),
/// executes the epoch and reports end-to-end elapsed virtual time.
pub struct TrainingJob {
    /// The machine everything executes on.
    pub machine: Arc<Machine>,
    /// The dataset (loader + transform chain inside `get_item`).
    pub dataset: Arc<dyn Dataset>,
    /// DataLoader knobs.
    pub loader: DataLoaderConfig,
    /// Accelerator model.
    pub gpu: GpuConfig,
    /// Instrumentation (LotusTrace, a baseline profiler model, or
    /// [`crate::NullTracer`]).
    pub tracer: Arc<dyn Tracer>,
    /// Optional hardware profiling session attached to every process's
    /// CPU thread (the VTune/uProf run of §V-D).
    pub hw_profiler: Option<Arc<HwProfiler>>,
    /// Run seed (sampler shuffling, transform randomness).
    pub seed: u64,
    /// Number of epochs to run (workers persist across epochs, as with
    /// PyTorch's `persistent_workers=True`; the sampler reshuffles per
    /// epoch and batch ids keep counting). Zero is treated as one.
    pub epochs: usize,
}

/// Result of a completed training job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobReport {
    /// End-to-end elapsed virtual time of the epoch.
    pub elapsed: Span,
    /// Batches consumed.
    pub batches: u64,
    /// Samples consumed.
    pub samples: u64,
}

struct OpBridge<'a> {
    tracer: &'a dyn Tracer,
    pid: u32,
    batch_id: u64,
    overhead: Span,
}

impl TransformObserver for OpBridge<'_> {
    fn on_transform(&mut self, name: &str, start: Time, elapsed: Span) {
        self.overhead += self.tracer.on_op(self.pid, self.batch_id, name, start, elapsed);
    }
}

impl TrainingJob {
    /// Runs one epoch to completion.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SimError`] if the simulated system
    /// deadlocks or a process panics, and a [`SimError::ProcessPanic`]
    /// carrying the validation message if the configuration is invalid.
    ///
    /// # Panics
    ///
    /// Panics if the DataLoader configuration is invalid (see
    /// [`DataLoaderConfig::validate`]).
    pub fn run(self) -> Result<JobReport, SimError> {
        self.loader.validate().unwrap_or_else(|e| panic!("invalid DataLoader config: {e}"));
        let TrainingJob { machine, dataset, loader, gpu, tracer, hw_profiler, seed, epochs } =
            self;
        let fw = FrameworkKernels::register(&machine);

        let epochs = epochs.max(1) as u64;
        let batch_sampler =
            BatchSampler { batch_size: loader.batch_size, drop_last: loader.drop_last };
        let mut batches = Vec::new();
        for epoch in 0..epochs {
            let order = loader.sampler.epoch_order(dataset.len(), epoch);
            batches.extend(batch_sampler.batches(&order));
        }
        let num_batches = batches.len() as u64;
        let total_samples: u64 = batches.iter().map(|b| b.len() as u64).sum();
        if num_batches == 0 {
            return Ok(JobReport { elapsed: Span::ZERO, batches: 0, samples: 0 });
        }

        let mut sim = Simulation::new();
        let data_q: Queue<Envelope> = sim.queue("data_queue", None);
        let index_qs: Vec<Queue<WorkerMsg>> = (0..loader.num_workers)
            .map(|w| sim.queue(format!("index_queue_{w}"), None))
            .collect();

        for (w, worker_index_q) in index_qs.iter().enumerate() {
            let machine = Arc::clone(&machine);
            let dataset = Arc::clone(&dataset);
            let tracer = Arc::clone(&tracer);
            let hw_profiler = hw_profiler.clone();
            let index_q = worker_index_q.clone();
            let data_q = data_q.clone();
            sim.spawn(format!("dataloader{w}"), move |ctx| {
                worker_loop(
                    &ctx, w, &machine, &*dataset, &*tracer, hw_profiler, &index_q, &data_q, fw,
                    seed,
                );
            });
        }

        {
            let machine = Arc::clone(&machine);
            let tracer = Arc::clone(&tracer);
            let hw_profiler = hw_profiler.clone();
            let index_qs = index_qs.clone();
            let data_q = data_q.clone();
            sim.spawn("main", move |ctx| {
                main_loop(
                    &ctx, &machine, &*tracer, hw_profiler, &index_qs, &data_q, fw, &loader, &gpu,
                    batches,
                );
            });
        }

        let report = sim.run()?;
        Ok(JobReport {
            elapsed: report.end_time.since(Time::ZERO),
            batches: num_batches,
            samples: total_samples,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    ctx: &Ctx,
    worker: usize,
    machine: &Arc<Machine>,
    dataset: &dyn Dataset,
    tracer: &dyn Tracer,
    hw_profiler: Option<Arc<HwProfiler>>,
    index_q: &Queue<WorkerMsg>,
    data_q: &Queue<Envelope>,
    fw: FrameworkKernels,
    seed: u64,
) {
    let mut cpu = CpuThread::new(Arc::clone(machine));
    if let Some(p) = hw_profiler {
        cpu.attach_profiler(p);
    }
    let mut rng = StdRng::seed_from_u64(mix_seed(seed, 1_000 + worker as u64));
    let collate = Collate::new(machine);
    let os_pid = worker_os_pid(worker);
    let dilation = tracer.compute_dilation();
    assert!(dilation >= 1.0, "compute dilation cannot speed the program up");

    loop {
        let msg = index_q.pop(ctx);
        let WorkerMsg::Batch { id, indices } = msg else { break };
        let start = ctx.now();
        cpu.set_cursor(start);
        machine.thread_started_compute();

        let mut bridge = OpBridge { tracer, pid: os_pid, batch_id: id, overhead: Span::ZERO };
        let mut samples = Vec::with_capacity(indices.len());
        for &i in &indices {
            let mut tctx = TransformCtx { cpu: &mut cpu, rng: &mut rng };
            samples.push(dataset.get_item(i, &mut tctx, &mut bridge));
        }
        let batch_len = samples.len();
        let collate_start = cpu.cursor();
        let batch = {
            let mut tctx = TransformCtx { cpu: &mut cpu, rng: &mut rng };
            collate.apply(samples, &mut tctx)
        };
        bridge.on_transform(
            &Collate::display_name(batch_len),
            collate_start,
            cpu.cursor().since(collate_start),
        );

        let raw = cpu.cursor().since(start);
        let fetch_span = raw.mul_f64(dilation) + bridge.overhead;
        let trace_overhead = tracer.on_batch_preprocessed(os_pid, id, start, fetch_span);
        ctx.delay(fetch_span + trace_overhead);
        machine.thread_stopped_compute();

        // Serialize the batch into the shared-memory queue.
        charge(ctx, &mut cpu, fw.pickle_dumps, batch.bytes as f64);
        data_q.push(
            ctx,
            Envelope {
                batch_id: id,
                bytes: batch.bytes,
                len: batch.len,
                produced_at: start + fetch_span,
                worker,
                pinned: false,
            },
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn main_loop(
    ctx: &Ctx,
    machine: &Arc<Machine>,
    tracer: &dyn Tracer,
    hw_profiler: Option<Arc<HwProfiler>>,
    index_qs: &[Queue<WorkerMsg>],
    data_q: &Queue<Envelope>,
    fw: FrameworkKernels,
    loader: &DataLoaderConfig,
    gpu: &GpuConfig,
    batches: Vec<Vec<u64>>,
) {
    let mut cpu = CpuThread::new(Arc::clone(machine));
    if let Some(p) = hw_profiler {
        cpu.attach_profiler(p);
    }
    let num_batches = batches.len() as u64;
    let mut batch_iter = batches.into_iter().enumerate();
    // PyTorch assigns index batches to workers in a strict round-robin
    // cycle (`_worker_queue_idx_cycle`), regardless of which worker just
    // returned data. A momentarily slow worker therefore falls behind
    // while its siblings run ahead — the root cause of the out-of-order
    // arrivals in §V-C of the paper.
    let mut cycle = 0usize;
    let workers = index_qs.len();
    let mut send_next = |ctx: &Ctx| {
        if let Some((id, indices)) = batch_iter.next() {
            index_qs[cycle].push(ctx, WorkerMsg::Batch { id: id as u64, indices });
            cycle = (cycle + 1) % workers;
        }
    };

    // Initial prefetch: `prefetch_factor` index batches per worker.
    for _ in 0..loader.prefetch_factor * workers {
        send_next(ctx);
    }

    let mut cache: HashMap<u64, Envelope> = HashMap::new();
    for rcvd in 0..num_batches {
        let wait_start = ctx.now();
        let env = if let Some(env) = cache.remove(&rcvd) {
            // Already pinned and cached: the paper marks these waits with
            // a 1 µs duration to denote "no waiting".
            let oh = tracer.on_batch_wait(MAIN_OS_PID, rcvd, wait_start, Span::from_micros(1), true);
            if !oh.is_zero() {
                ctx.delay(oh);
            }
            env
        } else {
            loop {
                let mut env = data_q.pop(ctx);
                // Deserialize from the queue: tensor storage travels via
                // shared memory, so the main process unpickles metadata
                // only (PyTorch's zero-copy tensor sharing).
                charge(ctx, &mut cpu, fw.pickle_loads, (env.bytes.min(65_536)) as f64);
                // PyTorch sends the next index batch (to the next worker
                // in the cycle) on every successful get.
                send_next(ctx);
                if env.batch_id == rcvd {
                    let oh = tracer.on_batch_wait(
                        MAIN_OS_PID,
                        rcvd,
                        wait_start,
                        ctx.now().since(wait_start),
                        false,
                    );
                    if !oh.is_zero() {
                        ctx.delay(oh);
                    }
                    break env;
                }
                // Out-of-order arrival: pin to CPU memory and stash.
                if loader.pin_memory {
                    charge(ctx, &mut cpu, fw.pin_memory, env.bytes as f64);
                }
                env.pinned = true;
                cache.insert(env.batch_id, env);
            }
        };

        let consume_start = ctx.now();
        if loader.pin_memory && !env.pinned {
            charge(ctx, &mut cpu, fw.pin_memory, env.bytes as f64);
        }
        ctx.delay(gpu.h2d_span(env.bytes));
        charge(ctx, &mut cpu, fw.cuda_launch, 0.0);
        ctx.delay(gpu.step_span(env.len));
        let oh = tracer.on_batch_consumed(
            MAIN_OS_PID,
            rcvd,
            consume_start,
            ctx.now().since(consume_start),
            env.len,
        );
        if !oh.is_zero() {
            ctx.delay(oh);
        }
    }

    for q in index_qs {
        q.push(ctx, WorkerMsg::Shutdown);
    }
}
