//! The training-job engine: main process, DataLoader workers, index/data
//! queues and the GPU step — PyTorch's asynchronous data flow (§II-B of
//! the paper) on the simulator.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use lotus_data::mix_seed;
use lotus_sim::{Ctx, FaultPlan, Queue, ScheduleController, Simulation, Span, Time};
use lotus_transforms::{Batch, Collate, PipelineError, TransformCtx, TransformObserver};
use lotus_uarch::{CostCoeffs, CpuThread, HwProfiler, KernelId, Machine};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{DataLoaderConfig, GpuConfig};
use crate::dataset::{BatchSampler, Dataset};
use crate::error::JobError;
use crate::tracer::Tracer;

/// Simulated OS pid of the main process (the paper logs real pids via
/// `psutil`; we use stable synthetic ones).
pub const MAIN_OS_PID: u32 = 4242;

/// How often the main process gives up waiting on the data queue to check
/// worker liveness (PyTorch's `MP_STATUS_CHECK_INTERVAL` of 5 s).
const WORKER_STATUS_CHECK: Span = Span::from_secs(5);

/// Serialized size of an error envelope: a pickled `ExceptionWrapper`
/// (traceback string), not tensor storage.
const EXCEPTION_WRAPPER_BYTES: u64 = 512;

/// Simulated OS pid of DataLoader worker `w`.
#[must_use]
pub fn worker_os_pid(worker: usize) -> u32 {
    MAIN_OS_PID + 1 + worker as u32
}

/// Message on a per-worker index queue.
#[derive(Debug, Clone, PartialEq, Eq)]
enum WorkerMsg {
    /// Preprocess these dataset indices as batch `id`.
    Batch { id: u64, indices: Vec<u64> },
    /// Exit the worker loop (PyTorch's `None` sentinel).
    Shutdown,
}

/// The successful contents of an [`Envelope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BatchPayload {
    bytes: u64,
    len: usize,
}

/// A preprocessed batch — or the error its fetch raised — travelling
/// through the shared data queue. Carrying the `Result` in-band is
/// PyTorch's `ExceptionWrapper` protocol: a worker never crashes on a
/// sample error, it ships the exception to the main process instead.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Envelope {
    batch_id: u64,
    payload: Result<BatchPayload, PipelineError>,
    /// Virtual time at which preprocessing (the fetch) finished.
    produced_at: Time,
    worker: usize,
    pinned: bool,
}

impl Envelope {
    /// Serialized size on the queue.
    fn bytes(&self) -> u64 {
        match &self.payload {
            Ok(p) => p.bytes,
            Err(_) => EXCEPTION_WRAPPER_BYTES,
        }
    }
}

/// Framework-side native kernels (queue serialization, pinning, CUDA
/// dispatch). These populate the hardware profile with the "hundreds of
/// unrelated functions" LotusMap's mapping must filter out (§V-D).
#[derive(Debug, Clone, Copy)]
struct FrameworkKernels {
    pickle_dumps: KernelId,
    pickle_loads: KernelId,
    pin_memory: KernelId,
    cuda_launch: KernelId,
}

impl FrameworkKernels {
    fn register(machine: &Machine) -> FrameworkKernels {
        let pickle = CostCoeffs {
            base_insts: 2_000.0,
            insts_per_unit: 0.35, // per byte serialized
            uops_per_inst: 1.1,
            ipc_base: 2.0,
            l1_miss_per_unit: 1.5 / 64.0,
            l2_miss_per_unit: 1.2 / 64.0,
            llc_miss_per_unit: 1.0 / 64.0,
            branches_per_unit: 0.06,
            mispredict_rate: 0.01,
            frontend_sensitivity: 0.3,
        };
        FrameworkKernels {
            pickle_dumps: machine.kernel(
                "_pickle_Pickler_dump",
                "_pickle.cpython-310-x86_64-linux-gnu.so",
                pickle,
            ),
            pickle_loads: machine.kernel(
                "_pickle_Unpickler_load",
                "_pickle.cpython-310-x86_64-linux-gnu.so",
                pickle,
            ),
            // Pinning copies the batch into page-locked memory with a
            // wide, prefetch-friendly copy (~10 GB/s effective).
            pin_memory: machine.kernel(
                "pin_memory_copy",
                "libtorch_cuda.so",
                CostCoeffs {
                    base_insts: 1_500.0,
                    insts_per_unit: 0.1,
                    uops_per_inst: 1.0,
                    ipc_base: 3.0,
                    l1_miss_per_unit: 0.004,
                    l2_miss_per_unit: 0.0037,
                    llc_miss_per_unit: 0.0035,
                    branches_per_unit: 0.01,
                    mispredict_rate: 0.002,
                    frontend_sensitivity: 0.05,
                },
            ),
            cuda_launch: machine.kernel(
                "cudaLaunchKernel",
                "libcudart.so.11.8",
                CostCoeffs {
                    base_insts: 8_000.0,
                    insts_per_unit: 0.0,
                    ..CostCoeffs::compute_default()
                },
            ),
        }
    }
}

/// Runs `cpu` work starting at the current instant and advances the
/// simulated clock by however long it took.
fn charge(ctx: &Ctx, cpu: &mut CpuThread, kernel: KernelId, work: f64) {
    let start = ctx.now();
    cpu.set_cursor(start);
    cpu.exec(kernel, work);
    ctx.delay(cpu.cursor().since(start));
}

/// A complete single-epoch training job: dataset, DataLoader, GPU group,
/// instrumentation.
///
/// `run()` builds the simulation (one main process + `num_workers`
/// DataLoader workers, per-worker index queues, one shared data queue),
/// executes the epoch and reports end-to-end elapsed virtual time.
pub struct TrainingJob {
    /// The machine everything executes on.
    pub machine: Arc<Machine>,
    /// The dataset (loader + transform chain inside `get_item`).
    pub dataset: Arc<dyn Dataset>,
    /// The simulated storage hierarchy the dataset reads from, when one
    /// is configured. The engine never touches it — the dataset holds
    /// its own handle — but the job keeps this reference so runners can
    /// snapshot [`lotus_sim::StorageCounters`] after the epoch.
    pub storage: Option<Arc<lotus_sim::Storage>>,
    /// DataLoader knobs.
    pub loader: DataLoaderConfig,
    /// Accelerator model.
    pub gpu: GpuConfig,
    /// Instrumentation (LotusTrace, a baseline profiler model, or
    /// [`crate::NullTracer`]).
    pub tracer: Arc<dyn Tracer>,
    /// Optional hardware profiling session attached to every process's
    /// CPU thread (the VTune/uProf run of §V-D).
    pub hw_profiler: Option<Arc<HwProfiler>>,
    /// Run seed (sampler shuffling, transform randomness).
    pub seed: u64,
    /// Number of epochs to run (workers persist across epochs, as with
    /// PyTorch's `persistent_workers=True`; the sampler reshuffles per
    /// epoch and batch ids keep counting). Zero is treated as one.
    pub epochs: usize,
    /// Deterministic fault-injection plan (worker kills, per-sample
    /// errors, queue slowdowns). [`FaultPlan::default`] injects nothing.
    pub faults: FaultPlan,
    /// Optional schedule controller installed into the simulation —
    /// `lotus check` uses this to enumerate and replay interleavings.
    /// `None` keeps the kernel's deterministic FIFO tie-break.
    pub controller: Option<Arc<dyn ScheduleController>>,
    /// Deliberate protocol bug for checker validation (test-only hook;
    /// [`LoaderMutation::None`] is the faithful protocol).
    #[doc(hidden)]
    pub mutation: LoaderMutation,
}

/// Deliberate protocol bugs, used only to validate that `lotus check`
/// catches them. [`LoaderMutation::None`] — the default — is the faithful
/// PyTorch protocol; the other variants seed the two bug classes the
/// model checker must flag: a lost batch (liveness) and a redispatch
/// without an observed worker death (safety).
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoaderMutation {
    /// Faithful protocol.
    #[default]
    None,
    /// The worker fetching `batch_id` silently drops the finished
    /// envelope instead of pushing it to the data queue: the batch is
    /// lost and the main process polls forever.
    LoseBatch {
        /// Batch whose envelope is dropped.
        batch_id: u64,
    },
    /// At the second main-loop iteration the main process redispatches
    /// `batch_id` (or, if that id is no longer outstanding, the newest
    /// outstanding batch) even though its owner is still alive.
    RedispatchLive {
        /// Batch to prematurely redispatch.
        batch_id: u64,
    },
}

/// Result of a completed training job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobReport {
    /// End-to-end elapsed virtual time of the epoch.
    pub elapsed: Span,
    /// Batches consumed.
    pub batches: u64,
    /// Samples consumed.
    pub samples: u64,
}

struct OpBridge<'a> {
    tracer: &'a dyn Tracer,
    pid: u32,
    batch_id: u64,
    overhead: Span,
}

impl TransformObserver for OpBridge<'_> {
    fn on_transform(&mut self, name: &str, start: Time, elapsed: Span) {
        self.overhead += self
            .tracer
            .on_op(self.pid, self.batch_id, name, start, elapsed);
    }

    fn on_storage_read(&mut self, start: Time, read: &lotus_sim::ReadOutcome) {
        self.overhead += self
            .tracer
            .on_storage_read(self.pid, self.batch_id, start, read);
    }
}

impl TrainingJob {
    /// Runs one epoch to completion.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::InvalidConfig`] if the configuration fails
    /// [`DataLoaderConfig::validate`], [`JobError::Sample`] when a worker
    /// ships a preprocessing error through the data queue (the
    /// `ExceptionWrapper` path), [`JobError::AllWorkersDied`] when no
    /// worker survives to finish the epoch, and [`JobError::Sim`] if the
    /// simulated system deadlocks or a process panics.
    pub fn run(self) -> Result<JobReport, JobError> {
        self.loader.validate().map_err(JobError::InvalidConfig)?;
        let TrainingJob {
            machine,
            dataset,
            storage: _,
            loader,
            gpu,
            tracer,
            hw_profiler,
            seed,
            epochs,
            faults,
            controller,
            mutation,
        } = self;
        let fw = FrameworkKernels::register(&machine);

        let epochs = epochs.max(1) as u64;
        let batch_sampler = BatchSampler {
            batch_size: loader.batch_size,
            drop_last: loader.drop_last,
        };
        let mut batches = Vec::new();
        for epoch in 0..epochs {
            let order = loader.sampler.epoch_order(dataset.len(), epoch);
            batches.extend(batch_sampler.batches(&order));
        }
        let num_batches = batches.len() as u64;
        let total_samples: u64 = batches.iter().map(|b| b.len() as u64).sum();
        if num_batches == 0 {
            return Ok(JobReport {
                elapsed: Span::ZERO,
                batches: 0,
                samples: 0,
            });
        }

        let mut sim = Simulation::new();
        if let Some(controller) = controller {
            sim.set_controller(controller);
        }
        let data_q: Queue<Envelope> = sim.queue("data_queue", loader.data_queue_cap);
        let index_qs: Vec<Queue<WorkerMsg>> = (0..loader.num_workers)
            .map(|w| sim.queue(format!("index_queue_{w}"), None))
            .collect();

        let job_error: Arc<Mutex<Option<JobError>>> = Arc::new(Mutex::new(None));

        for (w, worker_index_q) in index_qs.iter().enumerate() {
            let machine = Arc::clone(&machine);
            let dataset = Arc::clone(&dataset);
            let tracer = Arc::clone(&tracer);
            let hw_profiler = hw_profiler.clone();
            let index_q = worker_index_q.clone();
            let data_q = data_q.clone();
            let faults = faults.clone();
            sim.spawn(format!("dataloader{w}"), move |ctx| {
                worker_loop(
                    &ctx,
                    w,
                    &machine,
                    &*dataset,
                    &*tracer,
                    hw_profiler,
                    &index_q,
                    &data_q,
                    fw,
                    seed,
                    &faults,
                    mutation,
                );
            });
        }

        {
            let machine = Arc::clone(&machine);
            let tracer = Arc::clone(&tracer);
            let hw_profiler = hw_profiler.clone();
            let index_qs = index_qs.clone();
            let data_q = data_q.clone();
            let faults = faults.clone();
            let job_error = Arc::clone(&job_error);
            sim.spawn("main", move |ctx| {
                main_loop(
                    &ctx,
                    &machine,
                    &*tracer,
                    hw_profiler,
                    &index_qs,
                    &data_q,
                    fw,
                    &loader,
                    &gpu,
                    batches,
                    &faults,
                    &job_error,
                    mutation,
                );
            });
        }

        let report = sim.run()?;
        if let Some(e) = job_error.lock().expect("job error slot poisoned").take() {
            return Err(e);
        }
        Ok(JobReport {
            elapsed: report.end_time.since(Time::ZERO),
            batches: num_batches,
            samples: total_samples,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    ctx: &Ctx,
    worker: usize,
    machine: &Arc<Machine>,
    dataset: &dyn Dataset,
    tracer: &dyn Tracer,
    hw_profiler: Option<Arc<HwProfiler>>,
    index_q: &Queue<WorkerMsg>,
    data_q: &Queue<Envelope>,
    fw: FrameworkKernels,
    seed: u64,
    faults: &FaultPlan,
    mutation: LoaderMutation,
) {
    let mut cpu = CpuThread::new(Arc::clone(machine));
    if let Some(p) = hw_profiler {
        cpu.attach_profiler(p);
    }
    let mut rng = StdRng::seed_from_u64(mix_seed(seed, 1_000 + worker as u64));
    let collate = Collate::new(machine);
    let os_pid = worker_os_pid(worker);
    let dilation = tracer.compute_dilation();
    assert!(
        dilation >= 1.0,
        "compute dilation cannot speed the program up"
    );
    let kill_time = faults.kill_time(&ctx.name());
    let queue_factor = faults.queue_factor("data_queue");

    loop {
        // A killed worker dies silently: the main process discovers it via
        // the liveness check, exactly like PyTorch's `w.is_alive()`.
        let msg = match kill_time {
            Some(at) => {
                if ctx.now() >= at {
                    return;
                }
                match index_q.pop_timeout(ctx, at.since(ctx.now())) {
                    Some(msg) => msg,
                    None => return, // died while idle
                }
            }
            None => index_q.pop(ctx),
        };
        let WorkerMsg::Batch { id, indices } = msg else {
            break;
        };
        // Sample this worker's index-queue depth right after the pop: the
        // metrics layer sees every depth transition in virtual time.
        let oh = tracer.on_gauge(
            &format!("queue_depth.index_queue_{worker}"),
            index_q.len() as f64,
            ctx.now(),
        );
        if !oh.is_zero() {
            ctx.delay(oh);
        }
        let start = ctx.now();
        cpu.set_cursor(start);
        machine.thread_started_compute();

        let mut bridge = OpBridge {
            tracer,
            pid: os_pid,
            batch_id: id,
            overhead: Span::ZERO,
        };
        let mut samples = Vec::with_capacity(indices.len());
        let mut failure: Option<PipelineError> = None;
        for &i in &indices {
            if let Some(op) = faults.sample_error(i) {
                bridge.overhead += tracer.on_fault_injected(os_pid, id, op, cpu.cursor());
                failure = Some(PipelineError::Injected {
                    op: op.to_string(),
                    index: i,
                });
                break;
            }
            let mut tctx = TransformCtx {
                cpu: &mut cpu,
                rng: &mut rng,
            };
            match dataset.get_item(i, &mut tctx, &mut bridge) {
                Ok(sample) => samples.push(sample),
                Err(e) => {
                    // PyTorch wraps the exception and abandons the rest of
                    // the batch; the worker itself keeps running.
                    failure = Some(e);
                    break;
                }
            }
        }
        let batch: Result<Batch, PipelineError> = match failure {
            Some(e) => Err(e),
            None => {
                let batch_len = samples.len();
                let collate_start = cpu.cursor();
                let collated = {
                    let mut tctx = TransformCtx {
                        cpu: &mut cpu,
                        rng: &mut rng,
                    };
                    collate.apply(samples, &mut tctx)
                };
                if collated.is_ok() {
                    bridge.on_transform(
                        &Collate::display_name(batch_len),
                        collate_start,
                        cpu.cursor().since(collate_start),
                    );
                }
                collated
            }
        };

        let raw = cpu.cursor().since(start);
        let fetch_span = raw.mul_f64(dilation) + bridge.overhead;
        let trace_overhead = tracer.on_batch_preprocessed(os_pid, id, start, fetch_span);
        ctx.delay(fetch_span + trace_overhead);
        machine.thread_stopped_compute();

        // Serialize the batch (or its exception) into the shared-memory
        // queue; a slowed queue multiplies the serialization work.
        let envelope = Envelope {
            batch_id: id,
            payload: batch.map(|b| BatchPayload {
                bytes: b.bytes,
                len: b.len,
            }),
            produced_at: start + fetch_span,
            worker,
            pinned: false,
        };
        charge(
            ctx,
            &mut cpu,
            fw.pickle_dumps,
            envelope.bytes() as f64 * queue_factor,
        );
        if kill_time.is_some_and(|at| ctx.now() >= at) {
            // Died after fetching but before handing the batch over: the
            // batch is orphaned and the main process must redispatch it.
            return;
        }
        if mutation == (LoaderMutation::LoseBatch { batch_id: id }) {
            // Seeded bug: the finished envelope is silently dropped, so
            // the main process waits for a batch that never arrives.
            continue;
        }
        data_q.push(ctx, envelope);
        let oh = tracer.on_gauge("queue_depth.data_queue", data_q.len() as f64, ctx.now());
        if !oh.is_zero() {
            ctx.delay(oh);
        }
    }
}

/// Index-batch dispatch state: the strict round-robin worker cycle, the
/// set of batches dispatched but not yet returned, and which workers are
/// known dead.
///
/// PyTorch assigns index batches to workers in a strict round-robin cycle
/// (`_worker_queue_idx_cycle`), regardless of which worker just returned
/// data. A momentarily slow worker therefore falls behind while its
/// siblings run ahead — the root cause of the out-of-order arrivals in
/// §V-C of the paper. When a worker dies, the cycle skips it (PyTorch
/// marks the slot unavailable in `_workers_status`).
struct Dispatcher {
    batch_iter: std::iter::Enumerate<std::vec::IntoIter<Vec<u64>>>,
    /// Orphaned batches from dead workers, re-sent before fresh ones.
    redispatch: VecDeque<(u64, Vec<u64>)>,
    cycle: usize,
    dead: Vec<bool>,
    /// Dispatched-but-not-returned batches: id → (worker, indices).
    in_flight: HashMap<u64, (usize, Vec<u64>)>,
}

impl Dispatcher {
    fn new(batches: Vec<Vec<u64>>, workers: usize) -> Dispatcher {
        Dispatcher {
            batch_iter: batches.into_iter().enumerate(),
            redispatch: VecDeque::new(),
            cycle: 0,
            dead: vec![false; workers],
            in_flight: HashMap::new(),
        }
    }

    fn alive(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// The next live worker in the round-robin cycle.
    fn next_worker(&mut self) -> Option<usize> {
        let n = self.dead.len();
        for _ in 0..n {
            let w = self.cycle;
            self.cycle = (self.cycle + 1) % n;
            if !self.dead[w] {
                return Some(w);
            }
        }
        None
    }

    /// Sends one index batch (a pending redispatch first, else the next
    /// fresh batch) to the next live worker, announcing the dispatch to
    /// the tracer. Returns the worker that received it, so the caller can
    /// sample that queue's depth.
    fn send_next(
        &mut self,
        ctx: &Ctx,
        tracer: &dyn Tracer,
        index_qs: &[Queue<WorkerMsg>],
    ) -> Option<usize> {
        let (next, redispatch) = match self.redispatch.pop_front() {
            Some(item) => (Some(item), true),
            None => (
                self.batch_iter.next().map(|(id, idx)| (id as u64, idx)),
                false,
            ),
        };
        if let Some((id, indices)) = next {
            let Some(w) = self.next_worker() else {
                // No live worker to hand it to; keep it queued so the
                // outstanding count stays truthful.
                self.redispatch.push_front((id, indices));
                return None;
            };
            index_qs[w].push(
                ctx,
                WorkerMsg::Batch {
                    id,
                    indices: indices.clone(),
                },
            );
            let oh =
                tracer.on_batch_dispatched(id, worker_os_pid(w), &indices, redispatch, ctx.now());
            if !oh.is_zero() {
                ctx.delay(oh);
            }
            self.in_flight.insert(id, (w, indices));
            return Some(w);
        }
        None
    }

    /// Marks `worker` dead and queues its in-flight batches (in id order)
    /// for redispatch. Returns the orphaned batch ids.
    fn mark_dead(&mut self, worker: usize) -> Vec<u64> {
        self.dead[worker] = true;
        let mut orphans: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, (w, _))| *w == worker)
            .map(|(&id, _)| id)
            .collect();
        orphans.sort_unstable();
        for &id in &orphans {
            let (_, indices) = self.in_flight.remove(&id).expect("orphan is in flight");
            self.redispatch.push_back((id, indices));
        }
        orphans
    }
}

/// The [`LoaderMutation::RedispatchLive`] bug body: re-queues `batch_id`
/// (or, if it is no longer outstanding, the newest outstanding batch) and
/// sends it to the next live worker without any observed death — exactly
/// the premature-redispatch violation `lotus check` exists to catch.
fn redispatch_live(
    ctx: &Ctx,
    tracer: &dyn Tracer,
    index_qs: &[Queue<WorkerMsg>],
    dispatcher: &mut Dispatcher,
    batch_id: u64,
) {
    let target = if dispatcher.in_flight.contains_key(&batch_id) {
        Some(batch_id)
    } else {
        dispatcher.in_flight.keys().max().copied()
    };
    let Some(id) = target else {
        return;
    };
    let (owner, indices) = dispatcher.in_flight[&id].clone();
    dispatcher.redispatch.push_front((id, indices));
    let sent = dispatcher.send_next(ctx, tracer, index_qs);
    emit_dispatch_gauges(ctx, tracer, index_qs, sent, dispatcher.in_flight.len());
    if let Some((to, _)) = dispatcher.in_flight.get(&id) {
        let oh =
            tracer.on_batch_redispatched(id, worker_os_pid(owner), worker_os_pid(*to), ctx.now());
        if !oh.is_zero() {
            ctx.delay(oh);
        }
    }
}

/// Emits one gauge sample and charges whatever overhead the sinks report.
fn emit_gauge(ctx: &Ctx, tracer: &dyn Tracer, name: &str, value: f64) {
    let oh = tracer.on_gauge(name, value, ctx.now());
    if !oh.is_zero() {
        ctx.delay(oh);
    }
}

/// After a dispatch attempt: sample the receiving worker's index-queue
/// depth and the dispatched-but-unreturned inventory. Nothing changed
/// (and nothing is emitted) when no batch was sent.
fn emit_dispatch_gauges(
    ctx: &Ctx,
    tracer: &dyn Tracer,
    index_qs: &[Queue<WorkerMsg>],
    sent_to: Option<usize>,
    in_flight: usize,
) {
    if let Some(w) = sent_to {
        emit_gauge(
            ctx,
            tracer,
            &format!("queue_depth.index_queue_{w}"),
            index_qs[w].len() as f64,
        );
        emit_gauge(ctx, tracer, "in_flight_batches", in_flight as f64);
    }
}

#[allow(clippy::too_many_arguments)]
fn main_loop(
    ctx: &Ctx,
    machine: &Arc<Machine>,
    tracer: &dyn Tracer,
    hw_profiler: Option<Arc<HwProfiler>>,
    index_qs: &[Queue<WorkerMsg>],
    data_q: &Queue<Envelope>,
    fw: FrameworkKernels,
    loader: &DataLoaderConfig,
    gpu: &GpuConfig,
    batches: Vec<Vec<u64>>,
    faults: &FaultPlan,
    job_error: &Mutex<Option<JobError>>,
    mutation: LoaderMutation,
) {
    let mut cpu = CpuThread::new(Arc::clone(machine));
    if let Some(p) = hw_profiler {
        cpu.attach_profiler(p);
    }
    let num_batches = batches.len() as u64;
    let workers = index_qs.len();
    let mut dispatcher = Dispatcher::new(batches, workers);
    let queue_factor = faults.queue_factor("data_queue");
    let kill_times: Vec<Option<Time>> = (0..workers)
        .map(|w| faults.kill_time(&format!("dataloader{w}")))
        .collect();
    let fail = |e: JobError| {
        *job_error.lock().expect("job error slot poisoned") = Some(e);
    };

    // Initial prefetch: `prefetch_factor` index batches per worker.
    for _ in 0..loader.prefetch_factor * workers {
        let sent = dispatcher.send_next(ctx, tracer, index_qs);
        emit_dispatch_gauges(ctx, tracer, index_qs, sent, dispatcher.in_flight.len());
    }

    let mut cache: HashMap<u64, Envelope> = HashMap::new();
    for rcvd in 0..num_batches {
        if rcvd == 1 {
            if let LoaderMutation::RedispatchLive { batch_id } = mutation {
                // Seeded bug: re-send an outstanding batch whose owner
                // was never observed dead.
                redispatch_live(ctx, tracer, index_qs, &mut dispatcher, batch_id);
            }
        }
        let wait_start = ctx.now();
        let env = if let Some(env) = cache.remove(&rcvd) {
            // Already pinned and cached: the paper marks these waits with
            // a 1 µs duration to denote "no waiting".
            let oh = tracer.on_batch_wait(
                MAIN_OS_PID,
                rcvd,
                wait_start,
                Span::from_micros(1),
                true,
                wait_start.since(env.produced_at),
            );
            if !oh.is_zero() {
                ctx.delay(oh);
            }
            emit_gauge(ctx, tracer, "pinned_cache_batches", cache.len() as f64);
            env
        } else {
            loop {
                // Poll with a timeout so a dead worker cannot hang the
                // epoch (PyTorch's `_try_get_data` /
                // `MP_STATUS_CHECK_INTERVAL` loop).
                let Some(mut env) = data_q.pop_timeout(ctx, WORKER_STATUS_CHECK) else {
                    let newly_dead: Vec<usize> = (0..workers)
                        .filter(|&w| {
                            !dispatcher.dead[w] && kill_times[w].is_some_and(|at| ctx.now() >= at)
                        })
                        .collect();
                    for w in newly_dead {
                        let orphans = dispatcher.mark_dead(w);
                        let oh = tracer.on_worker_died(worker_os_pid(w), ctx.now());
                        if !oh.is_zero() {
                            ctx.delay(oh);
                        }
                        if dispatcher.alive() == 0 {
                            fail(JobError::AllWorkersDied {
                                workers,
                                outstanding: dispatcher.in_flight.len()
                                    + dispatcher.redispatch.len(),
                            });
                            return;
                        }
                        // Re-send the dead worker's in-flight batches to
                        // the survivors, preserving id order.
                        for id in orphans {
                            let sent = dispatcher.send_next(ctx, tracer, index_qs);
                            emit_dispatch_gauges(
                                ctx,
                                tracer,
                                index_qs,
                                sent,
                                dispatcher.in_flight.len(),
                            );
                            if let Some((to, _)) = dispatcher.in_flight.get(&id) {
                                let oh = tracer.on_batch_redispatched(
                                    id,
                                    worker_os_pid(w),
                                    worker_os_pid(*to),
                                    ctx.now(),
                                );
                                if !oh.is_zero() {
                                    ctx.delay(oh);
                                }
                            }
                        }
                    }
                    continue;
                };
                // Deserialize from the queue: tensor storage travels via
                // shared memory, so the main process unpickles metadata
                // only (PyTorch's zero-copy tensor sharing).
                charge(
                    ctx,
                    &mut cpu,
                    fw.pickle_loads,
                    env.bytes().min(65_536) as f64 * queue_factor,
                );
                emit_gauge(ctx, tracer, "queue_depth.data_queue", data_q.len() as f64);
                dispatcher.in_flight.remove(&env.batch_id);
                emit_gauge(
                    ctx,
                    tracer,
                    "in_flight_batches",
                    dispatcher.in_flight.len() as f64,
                );
                if env.batch_id == rcvd {
                    let oh = tracer.on_batch_wait(
                        MAIN_OS_PID,
                        rcvd,
                        wait_start,
                        ctx.now().since(wait_start),
                        false,
                        ctx.now().since(env.produced_at),
                    );
                    if !oh.is_zero() {
                        ctx.delay(oh);
                    }
                    break env;
                }
                // Out-of-order arrival: pin to CPU memory and stash.
                if loader.pin_memory {
                    if let Ok(p) = &env.payload {
                        charge(ctx, &mut cpu, fw.pin_memory, p.bytes as f64);
                    }
                }
                env.pinned = true;
                cache.insert(env.batch_id, env);
                emit_gauge(ctx, tracer, "pinned_cache_batches", cache.len() as f64);
            }
        };

        // Refill exactly once per *returned* batch — PyTorch's
        // `_process_data` calls `_try_put_index` before it re-raises, so
        // the in-flight inventory never exceeds
        // `prefetch_factor * num_workers`, even while out-of-order
        // envelopes accumulate in the pinned cache.
        let sent = dispatcher.send_next(ctx, tracer, index_qs);
        emit_dispatch_gauges(ctx, tracer, index_qs, sent, dispatcher.in_flight.len());

        let payload = match env.payload {
            Ok(p) => p,
            Err(error) => {
                // `_process_data` re-raises the shipped exception in the
                // main process; the job fails with a typed error instead
                // of a crash.
                fail(JobError::Sample {
                    batch_id: env.batch_id,
                    worker: env.worker,
                    error,
                });
                for (w, q) in index_qs.iter().enumerate() {
                    if !dispatcher.dead[w] {
                        q.push(ctx, WorkerMsg::Shutdown);
                    }
                }
                return;
            }
        };

        let consume_start = ctx.now();
        if loader.pin_memory && !env.pinned {
            charge(ctx, &mut cpu, fw.pin_memory, payload.bytes as f64);
        }
        ctx.delay(gpu.h2d_span(payload.bytes));
        charge(ctx, &mut cpu, fw.cuda_launch, 0.0);
        ctx.delay(gpu.step_span(payload.len));
        let oh = tracer.on_batch_consumed(
            MAIN_OS_PID,
            rcvd,
            consume_start,
            ctx.now().since(consume_start),
            payload.len,
        );
        if !oh.is_zero() {
            ctx.delay(oh);
        }
    }

    for q in index_qs {
        q.push(ctx, WorkerMsg::Shutdown);
    }
}
