//! The training-job engine: main process, DataLoader workers, index/data
//! queues and the GPU step — PyTorch's asynchronous data flow (§II-B of
//! the paper) on the simulator.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use lotus_data::mix_seed;
use lotus_sim::{Ctx, FaultPlan, Queue, ScheduleController, Simulation, Span, Time};
use lotus_transforms::{Batch, Collate, PipelineError, TransformCtx, TransformObserver};
use lotus_uarch::{CostCoeffs, CpuThread, HwProfiler, KernelId, Machine};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{DataLoaderConfig, GpuConfig};
use crate::dataset::{BatchSampler, Dataset};
use crate::error::JobError;
use crate::policy::{BatchRef, DispatchContext, Refill, SchedulingPolicy};
use crate::tracer::Tracer;

/// Simulated OS pid of the main process (the paper logs real pids via
/// `psutil`; we use stable synthetic ones).
pub const MAIN_OS_PID: u32 = 4242;

/// How often the main process gives up waiting on the data queue to check
/// worker liveness (PyTorch's `MP_STATUS_CHECK_INTERVAL` of 5 s).
const WORKER_STATUS_CHECK: Span = Span::from_secs(5);

/// Serialized size of an error envelope: a pickled `ExceptionWrapper`
/// (traceback string), not tensor storage.
const EXCEPTION_WRAPPER_BYTES: u64 = 512;

/// Simulated OS pid of DataLoader worker `w`.
#[must_use]
pub fn worker_os_pid(worker: usize) -> u32 {
    MAIN_OS_PID + 1 + worker as u32
}

/// Message on a per-worker index queue.
#[derive(Debug, Clone, PartialEq, Eq)]
enum WorkerMsg {
    /// Preprocess these dataset indices as batch `id`.
    Batch { id: u64, indices: Vec<u64> },
    /// Exit the worker loop (PyTorch's `None` sentinel).
    Shutdown,
}

/// The successful contents of an [`Envelope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BatchPayload {
    bytes: u64,
    len: usize,
}

/// A preprocessed batch — or the error its fetch raised — travelling
/// through the shared data queue. Carrying the `Result` in-band is
/// PyTorch's `ExceptionWrapper` protocol: a worker never crashes on a
/// sample error, it ships the exception to the main process instead.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Envelope {
    batch_id: u64,
    payload: Result<BatchPayload, PipelineError>,
    /// Virtual time at which preprocessing (the fetch) finished.
    produced_at: Time,
    /// Duration of the fetch — fed back to cost-aware scheduling
    /// policies; never observable through the tracer.
    fetch: Span,
    worker: usize,
    pinned: bool,
}

impl Envelope {
    /// Serialized size on the queue.
    fn bytes(&self) -> u64 {
        match &self.payload {
            Ok(p) => p.bytes,
            Err(_) => EXCEPTION_WRAPPER_BYTES,
        }
    }
}

/// Framework-side native kernels (queue serialization, pinning, CUDA
/// dispatch). These populate the hardware profile with the "hundreds of
/// unrelated functions" LotusMap's mapping must filter out (§V-D).
#[derive(Debug, Clone, Copy)]
struct FrameworkKernels {
    pickle_dumps: KernelId,
    pickle_loads: KernelId,
    pin_memory: KernelId,
    cuda_launch: KernelId,
}

impl FrameworkKernels {
    fn register(machine: &Machine) -> FrameworkKernels {
        let pickle = CostCoeffs {
            base_insts: 2_000.0,
            insts_per_unit: 0.35, // per byte serialized
            uops_per_inst: 1.1,
            ipc_base: 2.0,
            l1_miss_per_unit: 1.5 / 64.0,
            l2_miss_per_unit: 1.2 / 64.0,
            llc_miss_per_unit: 1.0 / 64.0,
            branches_per_unit: 0.06,
            mispredict_rate: 0.01,
            frontend_sensitivity: 0.3,
        };
        FrameworkKernels {
            pickle_dumps: machine.kernel(
                "_pickle_Pickler_dump",
                "_pickle.cpython-310-x86_64-linux-gnu.so",
                pickle,
            ),
            pickle_loads: machine.kernel(
                "_pickle_Unpickler_load",
                "_pickle.cpython-310-x86_64-linux-gnu.so",
                pickle,
            ),
            // Pinning copies the batch into page-locked memory with a
            // wide, prefetch-friendly copy (~10 GB/s effective).
            pin_memory: machine.kernel(
                "pin_memory_copy",
                "libtorch_cuda.so",
                CostCoeffs {
                    base_insts: 1_500.0,
                    insts_per_unit: 0.1,
                    uops_per_inst: 1.0,
                    ipc_base: 3.0,
                    l1_miss_per_unit: 0.004,
                    l2_miss_per_unit: 0.0037,
                    llc_miss_per_unit: 0.0035,
                    branches_per_unit: 0.01,
                    mispredict_rate: 0.002,
                    frontend_sensitivity: 0.05,
                },
            ),
            cuda_launch: machine.kernel(
                "cudaLaunchKernel",
                "libcudart.so.11.8",
                CostCoeffs {
                    base_insts: 8_000.0,
                    insts_per_unit: 0.0,
                    ..CostCoeffs::compute_default()
                },
            ),
        }
    }
}

/// Runs `cpu` work starting at the current instant and advances the
/// simulated clock by however long it took.
fn charge(ctx: &Ctx, cpu: &mut CpuThread, kernel: KernelId, work: f64) {
    let start = ctx.now();
    cpu.set_cursor(start);
    cpu.exec(kernel, work);
    ctx.delay(cpu.cursor().since(start));
}

/// A complete single-epoch training job: dataset, DataLoader, GPU group,
/// instrumentation.
///
/// `run()` builds the simulation (one main process + `num_workers`
/// DataLoader workers, per-worker index queues, one shared data queue),
/// executes the epoch and reports end-to-end elapsed virtual time.
pub struct TrainingJob {
    /// The machine everything executes on.
    pub machine: Arc<Machine>,
    /// The dataset (loader + transform chain inside `get_item`).
    pub dataset: Arc<dyn Dataset>,
    /// The simulated storage hierarchy the dataset reads from, when one
    /// is configured. The engine never touches it — the dataset holds
    /// its own handle — but the job keeps this reference so runners can
    /// snapshot [`lotus_sim::StorageCounters`] after the epoch.
    pub storage: Option<Arc<lotus_sim::Storage>>,
    /// DataLoader knobs.
    pub loader: DataLoaderConfig,
    /// Accelerator model.
    pub gpu: GpuConfig,
    /// Instrumentation (LotusTrace, a baseline profiler model, or
    /// [`crate::NullTracer`]).
    pub tracer: Arc<dyn Tracer>,
    /// Optional hardware profiling session attached to every process's
    /// CPU thread (the VTune/uProf run of §V-D).
    pub hw_profiler: Option<Arc<HwProfiler>>,
    /// Run seed (sampler shuffling, transform randomness).
    pub seed: u64,
    /// Number of epochs to run (workers persist across epochs, as with
    /// PyTorch's `persistent_workers=True`; the sampler reshuffles per
    /// epoch and batch ids keep counting). Zero is treated as one.
    pub epochs: usize,
    /// Deterministic fault-injection plan (worker kills, per-sample
    /// errors, queue slowdowns). [`FaultPlan::default`] injects nothing.
    pub faults: FaultPlan,
    /// Optional schedule controller installed into the simulation —
    /// `lotus check` uses this to enumerate and replay interleavings.
    /// `None` keeps the kernel's deterministic FIFO tie-break.
    pub controller: Option<Arc<dyn ScheduleController>>,
    /// Deliberate protocol bug for checker validation (test-only hook;
    /// [`LoaderMutation::None`] is the faithful protocol).
    #[doc(hidden)]
    pub mutation: LoaderMutation,
}

/// Deliberate protocol bugs, used only to validate that `lotus check`
/// catches them. [`LoaderMutation::None`] — the default — is the faithful
/// PyTorch protocol; the other variants seed the two bug classes the
/// model checker must flag: a lost batch (liveness) and a redispatch
/// without an observed worker death (safety).
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoaderMutation {
    /// Faithful protocol.
    #[default]
    None,
    /// The worker fetching `batch_id` silently drops the finished
    /// envelope instead of pushing it to the data queue: the batch is
    /// lost and the main process polls forever.
    LoseBatch {
        /// Batch whose envelope is dropped.
        batch_id: u64,
    },
    /// At the second main-loop iteration the main process redispatches
    /// `batch_id` (or, if that id is no longer outstanding, the newest
    /// outstanding batch) even though its owner is still alive.
    RedispatchLive {
        /// Batch to prematurely redispatch.
        batch_id: u64,
    },
}

/// Result of a completed training job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobReport {
    /// End-to-end elapsed virtual time of the epoch.
    pub elapsed: Span,
    /// Batches consumed.
    pub batches: u64,
    /// Samples consumed.
    pub samples: u64,
}

struct OpBridge<'a> {
    tracer: &'a dyn Tracer,
    pid: u32,
    batch_id: u64,
    overhead: Span,
}

impl TransformObserver for OpBridge<'_> {
    fn on_transform(&mut self, name: &str, start: Time, elapsed: Span) {
        self.overhead += self
            .tracer
            .on_op(self.pid, self.batch_id, name, start, elapsed);
    }

    fn on_storage_read(&mut self, start: Time, read: &lotus_sim::ReadOutcome) {
        self.overhead += self
            .tracer
            .on_storage_read(self.pid, self.batch_id, start, read);
    }
}

impl TrainingJob {
    /// Runs one epoch to completion.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::InvalidConfig`] if the configuration fails
    /// [`DataLoaderConfig::validate`], [`JobError::Sample`] when a worker
    /// ships a preprocessing error through the data queue (the
    /// `ExceptionWrapper` path), [`JobError::AllWorkersDied`] when no
    /// worker survives to finish the epoch, and [`JobError::Sim`] if the
    /// simulated system deadlocks or a process panics.
    pub fn run(self) -> Result<JobReport, JobError> {
        self.loader.validate().map_err(JobError::InvalidConfig)?;
        let TrainingJob {
            machine,
            dataset,
            storage: _,
            loader,
            gpu,
            tracer,
            hw_profiler,
            seed,
            epochs,
            faults,
            controller,
            mutation,
        } = self;
        let fw = FrameworkKernels::register(&machine);

        let epochs = epochs.max(1) as u64;
        let batch_sampler = BatchSampler {
            batch_size: loader.batch_size,
            drop_last: loader.drop_last,
        };
        let mut batches = Vec::new();
        for epoch in 0..epochs {
            let order = loader.sampler.epoch_order(dataset.len(), epoch);
            batches.extend(batch_sampler.batches(&order));
        }
        let num_batches = batches.len() as u64;
        let total_samples: u64 = batches.iter().map(|b| b.len() as u64).sum();
        if num_batches == 0 {
            return Ok(JobReport {
                elapsed: Span::ZERO,
                batches: 0,
                samples: 0,
            });
        }
        let hints = batch_cost_hints(&*dataset, &loader, &batches);

        let mut sim = Simulation::new();
        if let Some(controller) = controller {
            sim.set_controller(controller);
        }
        let data_q: Queue<Envelope> = sim.queue("data_queue", loader.data_queue_cap);
        let index_qs: Vec<Queue<WorkerMsg>> = (0..loader.num_workers)
            .map(|w| sim.queue(format!("index_queue_{w}"), None))
            .collect();

        let job_error: Arc<Mutex<Option<JobError>>> = Arc::new(Mutex::new(None));

        for (w, worker_index_q) in index_qs.iter().enumerate() {
            let machine = Arc::clone(&machine);
            let dataset = Arc::clone(&dataset);
            let tracer = Arc::clone(&tracer);
            let hw_profiler = hw_profiler.clone();
            let index_q = worker_index_q.clone();
            let data_q = data_q.clone();
            let faults = faults.clone();
            sim.spawn(format!("dataloader{w}"), move |ctx| {
                worker_loop(
                    &ctx,
                    w,
                    &machine,
                    &*dataset,
                    &*tracer,
                    hw_profiler,
                    &index_q,
                    &data_q,
                    fw,
                    seed,
                    &faults,
                    mutation,
                );
            });
        }

        {
            let machine = Arc::clone(&machine);
            let tracer = Arc::clone(&tracer);
            let hw_profiler = hw_profiler.clone();
            let index_qs = index_qs.clone();
            let data_q = data_q.clone();
            let faults = faults.clone();
            let job_error = Arc::clone(&job_error);
            sim.spawn("main", move |ctx| {
                main_loop(
                    &ctx,
                    &machine,
                    &*tracer,
                    hw_profiler,
                    &index_qs,
                    &data_q,
                    fw,
                    &loader,
                    &gpu,
                    batches,
                    hints,
                    &faults,
                    &job_error,
                    mutation,
                );
            });
        }

        let report = sim.run()?;
        let mut slot = job_error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(e) = slot.take() {
            return Err(e);
        }
        Ok(JobReport {
            elapsed: report.end_time.since(Time::ZERO),
            batches: num_batches,
            samples: total_samples,
        })
    }
}

/// Per-batch mean dataset cost hints for cost-aware policies; an empty
/// vector (every lookup misses) when the configured policy ignores cost.
pub(crate) fn batch_cost_hints(
    dataset: &dyn Dataset,
    loader: &DataLoaderConfig,
    batches: &[Vec<u64>],
) -> Vec<Option<f64>> {
    if !loader.policy.is_cost_aware() {
        return Vec::new();
    }
    batches
        .iter()
        .map(|indices| {
            let known: Vec<u64> = indices
                .iter()
                .filter_map(|&i| dataset.cost_hint(i))
                .collect();
            (!known.is_empty()).then(|| known.iter().sum::<u64>() as f64 / known.len() as f64)
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    ctx: &Ctx,
    worker: usize,
    machine: &Arc<Machine>,
    dataset: &dyn Dataset,
    tracer: &dyn Tracer,
    hw_profiler: Option<Arc<HwProfiler>>,
    index_q: &Queue<WorkerMsg>,
    data_q: &Queue<Envelope>,
    fw: FrameworkKernels,
    seed: u64,
    faults: &FaultPlan,
    mutation: LoaderMutation,
) {
    let mut cpu = CpuThread::new(Arc::clone(machine));
    if let Some(p) = hw_profiler {
        cpu.attach_profiler(p);
    }
    let mut rng = StdRng::seed_from_u64(mix_seed(seed, 1_000 + worker as u64));
    let collate = Collate::new(machine);
    let os_pid = worker_os_pid(worker);
    let dilation = tracer.compute_dilation();
    assert!(
        dilation >= 1.0,
        "compute dilation cannot speed the program up"
    );
    let kill_time = faults.kill_time(&ctx.name());
    let queue_factor = faults.queue_factor("data_queue");

    loop {
        // A killed worker dies silently: the main process discovers it via
        // the liveness check, exactly like PyTorch's `w.is_alive()`.
        let msg = match kill_time {
            Some(at) => {
                if ctx.now() >= at {
                    return;
                }
                match index_q.pop_timeout(ctx, at.since(ctx.now())) {
                    Some(msg) => msg,
                    None => return, // died while idle
                }
            }
            None => index_q.pop(ctx),
        };
        let WorkerMsg::Batch { id, indices } = msg else {
            break;
        };
        // Sample this worker's index-queue depth right after the pop: the
        // metrics layer sees every depth transition in virtual time.
        let oh = tracer.on_gauge(
            &format!("queue_depth.index_queue_{worker}"),
            index_q.len() as f64,
            ctx.now(),
        );
        if !oh.is_zero() {
            ctx.delay(oh);
        }
        let start = ctx.now();
        cpu.set_cursor(start);
        machine.thread_started_compute();

        let mut bridge = OpBridge {
            tracer,
            pid: os_pid,
            batch_id: id,
            overhead: Span::ZERO,
        };
        let mut samples = Vec::with_capacity(indices.len());
        let mut failure: Option<PipelineError> = None;
        for &i in &indices {
            if let Some(op) = faults.sample_error(i) {
                bridge.overhead += tracer.on_fault_injected(os_pid, id, op, cpu.cursor());
                failure = Some(PipelineError::Injected {
                    op: op.to_string(),
                    index: i,
                });
                break;
            }
            let item_start = cpu.cursor();
            let mut tctx = TransformCtx {
                cpu: &mut cpu,
                rng: &mut rng,
            };
            match dataset.get_item(i, &mut tctx, &mut bridge) {
                Ok(sample) => {
                    // A slow-sample fault plan dilates this item's
                    // modeled cost (a straggler record, a cold cache).
                    let slowdown = faults.sample_slowdown(i);
                    if slowdown > 1.0 {
                        let item_span = cpu.cursor().since(item_start);
                        cpu.idle(item_span.mul_f64(slowdown - 1.0));
                    }
                    samples.push(sample);
                }
                Err(e) => {
                    // PyTorch wraps the exception and abandons the rest of
                    // the batch; the worker itself keeps running.
                    failure = Some(e);
                    break;
                }
            }
        }
        let batch: Result<Batch, PipelineError> = match failure {
            Some(e) => Err(e),
            None => {
                let batch_len = samples.len();
                let collate_start = cpu.cursor();
                let collated = {
                    let mut tctx = TransformCtx {
                        cpu: &mut cpu,
                        rng: &mut rng,
                    };
                    collate.apply(samples, &mut tctx)
                };
                if collated.is_ok() {
                    bridge.on_transform(
                        &Collate::display_name(batch_len),
                        collate_start,
                        cpu.cursor().since(collate_start),
                    );
                }
                collated
            }
        };

        let raw = cpu.cursor().since(start);
        let fetch_span = raw.mul_f64(dilation) + bridge.overhead;
        let trace_overhead = tracer.on_batch_preprocessed(os_pid, id, start, fetch_span);
        ctx.delay(fetch_span + trace_overhead);
        machine.thread_stopped_compute();

        // Serialize the batch (or its exception) into the shared-memory
        // queue; a slowed queue multiplies the serialization work.
        let envelope = Envelope {
            batch_id: id,
            payload: batch.map(|b| BatchPayload {
                bytes: b.bytes,
                len: b.len,
            }),
            produced_at: start + fetch_span,
            fetch: fetch_span,
            worker,
            pinned: false,
        };
        charge(
            ctx,
            &mut cpu,
            fw.pickle_dumps,
            envelope.bytes() as f64 * queue_factor,
        );
        if kill_time.is_some_and(|at| ctx.now() >= at) {
            // Died after fetching but before handing the batch over: the
            // batch is orphaned and the main process must redispatch it.
            return;
        }
        if mutation == (LoaderMutation::LoseBatch { batch_id: id }) {
            // Seeded bug: the finished envelope is silently dropped, so
            // the main process waits for a batch that never arrives.
            continue;
        }
        data_q.push(ctx, envelope);
        let oh = tracer.on_gauge("queue_depth.data_queue", data_q.len() as f64, ctx.now());
        if !oh.is_zero() {
            ctx.delay(oh);
        }
    }
}

/// Index-batch dispatch state: the pluggable scheduling policy, the set
/// of batches dispatched but not yet returned, and which workers are
/// known dead.
///
/// The *protocol* lives here — orphan redispatch in id order before
/// fresh batches, a truthful in-flight inventory, a hard
/// `prefetch_factor * num_workers` in-flight bound — while the *choice*
/// of worker (and refill quota) is delegated to the
/// [`SchedulingPolicy`]. The default [round-robin] policy reproduces
/// PyTorch's strict `_worker_queue_idx_cycle`, regardless of which
/// worker just returned data: a momentarily slow worker falls behind
/// while its siblings run ahead — the root cause of the out-of-order
/// arrivals in §V-C of the paper. When a worker dies, the rotation
/// continues over the live workers only (PyTorch marks the slot
/// unavailable in `_workers_status`).
///
/// [round-robin]: crate::policy::SchedulingPolicyKind::RoundRobin
struct Dispatcher {
    batch_iter: std::iter::Enumerate<std::vec::IntoIter<Vec<u64>>>,
    /// Orphaned batches from dead workers, re-sent before fresh ones.
    redispatch: VecDeque<(u64, Vec<u64>)>,
    policy: Box<dyn SchedulingPolicy>,
    /// Per-batch mean dataset cost hints (indexed by batch id), present
    /// only when the policy is cost-aware.
    hints: Vec<Option<f64>>,
    prefetch_factor: usize,
    dead: Vec<bool>,
    /// Dispatched-but-not-returned batches: id → (worker, indices).
    in_flight: HashMap<u64, (usize, Vec<u64>)>,
}

impl Dispatcher {
    fn new(
        batches: Vec<Vec<u64>>,
        workers: usize,
        loader: &DataLoaderConfig,
        hints: Vec<Option<f64>>,
    ) -> Dispatcher {
        Dispatcher {
            batch_iter: batches.into_iter().enumerate(),
            redispatch: VecDeque::new(),
            policy: loader.policy.build(workers, loader.prefetch_factor),
            hints,
            prefetch_factor: loader.prefetch_factor,
            dead: vec![false; workers],
            in_flight: HashMap::new(),
        }
    }

    fn alive(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// Sends one index batch (a pending redispatch first, else the next
    /// fresh batch) to the worker the scheduling policy chooses,
    /// announcing the dispatch — and any steal or lane-assignment the
    /// policy made — to the tracer. Returns the worker that received it,
    /// so the caller can sample that queue's depth.
    fn send_next(
        &mut self,
        ctx: &Ctx,
        tracer: &dyn Tracer,
        index_qs: &[Queue<WorkerMsg>],
        data_q: &Queue<Envelope>,
    ) -> Option<usize> {
        let (next, redispatch) = match self.redispatch.pop_front() {
            Some(item) => (Some(item), true),
            None => (
                self.batch_iter.next().map(|(id, idx)| (id as u64, idx)),
                false,
            ),
        };
        if let Some((id, indices)) = next {
            if self.alive() == 0 {
                // No live worker to hand it to; keep it queued so the
                // outstanding count stays truthful.
                self.redispatch.push_front((id, indices));
                return None;
            }
            let depths: Vec<usize> = index_qs.iter().map(Queue::len).collect();
            let placement = self.policy.place(
                &BatchRef {
                    id,
                    indices: &indices,
                    hint: self.hints.get(id as usize).copied().flatten(),
                },
                &DispatchContext {
                    queue_depths: &depths,
                    dead: &self.dead,
                    in_flight: self.in_flight.len(),
                    data_queue_depth: data_q.len(),
                    prefetch_factor: self.prefetch_factor,
                    redispatch,
                },
            );
            let w = placement.worker;
            assert!(!self.dead[w], "policy placed a batch on a dead worker");
            index_qs[w].push(
                ctx,
                WorkerMsg::Batch {
                    id,
                    indices: indices.clone(),
                },
            );
            let mut oh =
                tracer.on_batch_dispatched(id, worker_os_pid(w), &indices, redispatch, ctx.now());
            if let Some(from) = placement.stolen_from.filter(|&from| from != w) {
                oh += tracer.on_batch_stolen(id, worker_os_pid(from), worker_os_pid(w), ctx.now());
            }
            if let Some(lane) = placement.lane {
                oh += tracer.on_lane_assigned(id, lane.as_str(), worker_os_pid(w), ctx.now());
            }
            if !oh.is_zero() {
                ctx.delay(oh);
            }
            self.in_flight.insert(id, (w, indices));
            return Some(w);
        }
        None
    }

    /// A returned batch was taken off the data queue: update the
    /// inventory and feed the observed cost back to the policy.
    fn batch_returned(&mut self, env: &Envelope) {
        if let Some((_, indices)) = self.in_flight.remove(&env.batch_id) {
            self.policy
                .on_batch_returned(env.worker, &indices, env.fetch.as_nanos());
        }
    }

    /// Asks the policy for the refill quota after a returned batch,
    /// clamped to the protocol's hard in-flight bound.
    fn refill_quota(&mut self, index_qs: &[Queue<WorkerMsg>], data_q: &Queue<Envelope>) -> Refill {
        let depths: Vec<usize> = index_qs.iter().map(Queue::len).collect();
        let mut refill = self.policy.refill(&DispatchContext {
            queue_depths: &depths,
            dead: &self.dead,
            in_flight: self.in_flight.len(),
            data_queue_depth: data_q.len(),
            prefetch_factor: self.prefetch_factor,
            redispatch: false,
        });
        let bound = self.prefetch_factor * self.dead.len();
        refill.count = refill.count.min(bound.saturating_sub(self.in_flight.len()));
        refill
    }

    /// Marks `worker` dead and queues its in-flight batches (in id order)
    /// for redispatch. Returns the orphaned batch ids.
    fn mark_dead(&mut self, worker: usize) -> Vec<u64> {
        self.dead[worker] = true;
        self.policy.on_worker_died(worker);
        let mut orphans: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, (w, _))| *w == worker)
            .map(|(&id, _)| id)
            .collect();
        orphans.sort_unstable();
        for &id in &orphans {
            // The ids were collected from `in_flight` just above, with no
            // intervening removal.
            #[allow(clippy::expect_used)]
            let (_, indices) = self.in_flight.remove(&id).expect("orphan is in flight");
            self.redispatch.push_back((id, indices));
        }
        orphans
    }
}

/// The [`LoaderMutation::RedispatchLive`] bug body: re-queues `batch_id`
/// (or, if it is no longer outstanding, the newest outstanding batch) and
/// sends it to the next live worker without any observed death — exactly
/// the premature-redispatch violation `lotus check` exists to catch.
fn redispatch_live(
    ctx: &Ctx,
    tracer: &dyn Tracer,
    index_qs: &[Queue<WorkerMsg>],
    data_q: &Queue<Envelope>,
    dispatcher: &mut Dispatcher,
    batch_id: u64,
) {
    let target = if dispatcher.in_flight.contains_key(&batch_id) {
        Some(batch_id)
    } else {
        dispatcher.in_flight.keys().max().copied()
    };
    let Some(id) = target else {
        return;
    };
    let (owner, indices) = dispatcher.in_flight[&id].clone();
    dispatcher.redispatch.push_front((id, indices));
    let sent = dispatcher.send_next(ctx, tracer, index_qs, data_q);
    emit_dispatch_gauges(ctx, tracer, index_qs, sent, dispatcher.in_flight.len());
    if let Some((to, _)) = dispatcher.in_flight.get(&id) {
        let oh =
            tracer.on_batch_redispatched(id, worker_os_pid(owner), worker_os_pid(*to), ctx.now());
        if !oh.is_zero() {
            ctx.delay(oh);
        }
    }
}

/// Emits one gauge sample and charges whatever overhead the sinks report.
fn emit_gauge(ctx: &Ctx, tracer: &dyn Tracer, name: &str, value: f64) {
    let oh = tracer.on_gauge(name, value, ctx.now());
    if !oh.is_zero() {
        ctx.delay(oh);
    }
}

/// After a dispatch attempt: sample the receiving worker's index-queue
/// depth and the dispatched-but-unreturned inventory. Nothing changed
/// (and nothing is emitted) when no batch was sent.
fn emit_dispatch_gauges(
    ctx: &Ctx,
    tracer: &dyn Tracer,
    index_qs: &[Queue<WorkerMsg>],
    sent_to: Option<usize>,
    in_flight: usize,
) {
    if let Some(w) = sent_to {
        emit_gauge(
            ctx,
            tracer,
            &format!("queue_depth.index_queue_{w}"),
            index_qs[w].len() as f64,
        );
        emit_gauge(ctx, tracer, "in_flight_batches", in_flight as f64);
    }
}

#[allow(clippy::too_many_arguments)]
fn main_loop(
    ctx: &Ctx,
    machine: &Arc<Machine>,
    tracer: &dyn Tracer,
    hw_profiler: Option<Arc<HwProfiler>>,
    index_qs: &[Queue<WorkerMsg>],
    data_q: &Queue<Envelope>,
    fw: FrameworkKernels,
    loader: &DataLoaderConfig,
    gpu: &GpuConfig,
    batches: Vec<Vec<u64>>,
    hints: Vec<Option<f64>>,
    faults: &FaultPlan,
    job_error: &Mutex<Option<JobError>>,
    mutation: LoaderMutation,
) {
    let mut cpu = CpuThread::new(Arc::clone(machine));
    if let Some(p) = hw_profiler {
        cpu.attach_profiler(p);
    }
    let num_batches = batches.len() as u64;
    let workers = index_qs.len();
    let mut dispatcher = Dispatcher::new(batches, workers, loader, hints);
    let queue_factor = faults.queue_factor("data_queue");
    let kill_times: Vec<Option<Time>> = (0..workers)
        .map(|w| faults.kill_time(&format!("dataloader{w}")))
        .collect();
    let fail = |e: JobError| {
        *job_error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(e);
    };

    // Initial prefetch: `prefetch_factor` index batches per worker.
    for _ in 0..loader.prefetch_factor * workers {
        let sent = dispatcher.send_next(ctx, tracer, index_qs, data_q);
        emit_dispatch_gauges(ctx, tracer, index_qs, sent, dispatcher.in_flight.len());
    }

    let mut cache: HashMap<u64, Envelope> = HashMap::new();
    for rcvd in 0..num_batches {
        if rcvd == 1 {
            if let LoaderMutation::RedispatchLive { batch_id } = mutation {
                // Seeded bug: re-send an outstanding batch whose owner
                // was never observed dead.
                redispatch_live(ctx, tracer, index_qs, data_q, &mut dispatcher, batch_id);
            }
        }
        let wait_start = ctx.now();
        let env = if let Some(env) = cache.remove(&rcvd) {
            // Already pinned and cached: the paper marks these waits with
            // a 1 µs duration to denote "no waiting".
            let oh = tracer.on_batch_wait(
                MAIN_OS_PID,
                rcvd,
                wait_start,
                Span::from_micros(1),
                true,
                wait_start.since(env.produced_at),
            );
            if !oh.is_zero() {
                ctx.delay(oh);
            }
            emit_gauge(ctx, tracer, "pinned_cache_batches", cache.len() as f64);
            env
        } else {
            loop {
                // Poll with a timeout so a dead worker cannot hang the
                // epoch (PyTorch's `_try_get_data` /
                // `MP_STATUS_CHECK_INTERVAL` loop).
                let Some(mut env) = data_q.pop_timeout(ctx, WORKER_STATUS_CHECK) else {
                    let newly_dead: Vec<usize> = (0..workers)
                        .filter(|&w| {
                            !dispatcher.dead[w] && kill_times[w].is_some_and(|at| ctx.now() >= at)
                        })
                        .collect();
                    for w in newly_dead {
                        let orphans = dispatcher.mark_dead(w);
                        let oh = tracer.on_worker_died(worker_os_pid(w), ctx.now());
                        if !oh.is_zero() {
                            ctx.delay(oh);
                        }
                        if dispatcher.alive() == 0 {
                            fail(JobError::AllWorkersDied {
                                workers,
                                outstanding: dispatcher.in_flight.len()
                                    + dispatcher.redispatch.len(),
                            });
                            return;
                        }
                        // Re-send the dead worker's in-flight batches to
                        // the survivors, preserving id order.
                        for id in orphans {
                            let sent = dispatcher.send_next(ctx, tracer, index_qs, data_q);
                            emit_dispatch_gauges(
                                ctx,
                                tracer,
                                index_qs,
                                sent,
                                dispatcher.in_flight.len(),
                            );
                            if let Some((to, _)) = dispatcher.in_flight.get(&id) {
                                let oh = tracer.on_batch_redispatched(
                                    id,
                                    worker_os_pid(w),
                                    worker_os_pid(*to),
                                    ctx.now(),
                                );
                                if !oh.is_zero() {
                                    ctx.delay(oh);
                                }
                            }
                        }
                    }
                    continue;
                };
                // Deserialize from the queue: tensor storage travels via
                // shared memory, so the main process unpickles metadata
                // only (PyTorch's zero-copy tensor sharing).
                charge(
                    ctx,
                    &mut cpu,
                    fw.pickle_loads,
                    env.bytes().min(65_536) as f64 * queue_factor,
                );
                emit_gauge(ctx, tracer, "queue_depth.data_queue", data_q.len() as f64);
                dispatcher.batch_returned(&env);
                emit_gauge(
                    ctx,
                    tracer,
                    "in_flight_batches",
                    dispatcher.in_flight.len() as f64,
                );
                if env.batch_id == rcvd {
                    let oh = tracer.on_batch_wait(
                        MAIN_OS_PID,
                        rcvd,
                        wait_start,
                        ctx.now().since(wait_start),
                        false,
                        ctx.now().since(env.produced_at),
                    );
                    if !oh.is_zero() {
                        ctx.delay(oh);
                    }
                    break env;
                }
                // Out-of-order arrival: pin to CPU memory and stash.
                if loader.pin_memory {
                    if let Ok(p) = &env.payload {
                        charge(ctx, &mut cpu, fw.pin_memory, p.bytes as f64);
                    }
                }
                env.pinned = true;
                cache.insert(env.batch_id, env);
                emit_gauge(ctx, tracer, "pinned_cache_batches", cache.len() as f64);
            }
        };

        // Refill per *returned* batch — PyTorch's `_process_data` calls
        // `_try_put_index` before it re-raises. The policy decides the
        // quota (the protocol default is exactly one); the dispatcher
        // clamps it so the in-flight inventory never exceeds
        // `prefetch_factor * num_workers`, even while out-of-order
        // envelopes accumulate in the pinned cache.
        let refill = dispatcher.refill_quota(index_qs, data_q);
        if let Some(target) = refill.resized_to {
            let oh = tracer.on_prefetch_resized(target, ctx.now());
            if !oh.is_zero() {
                ctx.delay(oh);
            }
        }
        for _ in 0..refill.count {
            let sent = dispatcher.send_next(ctx, tracer, index_qs, data_q);
            emit_dispatch_gauges(ctx, tracer, index_qs, sent, dispatcher.in_flight.len());
        }

        let payload = match env.payload {
            Ok(p) => p,
            Err(error) => {
                // `_process_data` re-raises the shipped exception in the
                // main process; the job fails with a typed error instead
                // of a crash.
                fail(JobError::Sample {
                    batch_id: env.batch_id,
                    worker: env.worker,
                    error,
                });
                for (w, q) in index_qs.iter().enumerate() {
                    if !dispatcher.dead[w] {
                        q.push(ctx, WorkerMsg::Shutdown);
                    }
                }
                return;
            }
        };

        let consume_start = ctx.now();
        if loader.pin_memory && !env.pinned {
            charge(ctx, &mut cpu, fw.pin_memory, payload.bytes as f64);
        }
        ctx.delay(gpu.h2d_span(payload.bytes));
        charge(ctx, &mut cpu, fw.cuda_launch, 0.0);
        ctx.delay(gpu.step_span(payload.len));
        let oh = tracer.on_batch_consumed(
            MAIN_OS_PID,
            rcvd,
            consume_start,
            ctx.now().since(consume_start),
            payload.len,
        );
        if !oh.is_zero() {
            ctx.delay(oh);
        }
    }

    for q in index_qs {
        q.push(ctx, WorkerMsg::Shutdown);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sampler;
    use crate::policy::SchedulingPolicyKind;
    use crate::tracer::NullTracer;
    use lotus_data::DType;
    use lotus_transforms::Sample;
    use lotus_uarch::{Machine, MachineConfig};

    /// A dataset whose items each cost a fixed millisecond of modeled
    /// work, so kill times land mid-epoch at predictable points.
    struct FixedCostDataset {
        items: u64,
    }

    impl Dataset for FixedCostDataset {
        fn len(&self) -> u64 {
            self.items
        }

        fn get_item(
            &self,
            _index: u64,
            ctx: &mut TransformCtx<'_>,
            observer: &mut dyn TransformObserver,
        ) -> Result<Sample, PipelineError> {
            let start = ctx.cpu.cursor();
            ctx.cpu.idle(Span::from_millis(1));
            observer.on_transform("Loader", start, ctx.cpu.cursor().since(start));
            Ok(Sample::tensor_meta(&[4, 4], DType::F32))
        }
    }

    fn fixed_job(items: u64, workers: usize, tracer: Arc<dyn Tracer>) -> TrainingJob {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        TrainingJob {
            machine,
            dataset: Arc::new(FixedCostDataset { items }),
            storage: None,
            loader: DataLoaderConfig {
                batch_size: 4,
                num_workers: workers,
                prefetch_factor: 2,
                data_queue_cap: None,
                pin_memory: true,
                sampler: Sampler::Sequential,
                drop_last: true,
                policy: SchedulingPolicyKind::RoundRobin,
            },
            gpu: GpuConfig::v100(1, Span::from_micros(10)),
            tracer,
            hw_profiler: None,
            seed: 7,
            epochs: 1,
            faults: FaultPlan::default(),
            controller: None,
            mutation: LoaderMutation::None,
        }
    }

    /// Records every dispatch the engine announces.
    #[derive(Default)]
    struct DispatchRecorder {
        dispatches: Mutex<Vec<(u64, u32, bool)>>,
        deaths: Mutex<Vec<u32>>,
    }

    impl Tracer for DispatchRecorder {
        fn on_batch_dispatched(
            &self,
            batch_id: u64,
            to_pid: u32,
            _indices: &[u64],
            redispatch: bool,
            _at: Time,
        ) -> Span {
            self.dispatches
                .lock()
                .unwrap()
                .push((batch_id, to_pid, redispatch));
            Span::ZERO
        }

        fn on_worker_died(&self, pid: u32, _at: Time) -> Span {
            self.deaths.lock().unwrap().push(pid);
            Span::ZERO
        }
    }

    /// Regression test for the round-robin cycle accounting: after
    /// worker 0 dies mid-epoch, dispatch must rotate strictly over the
    /// survivors — worker 1, worker 2, worker 1, worker 2, … — with no
    /// phase drift from the dead slot.
    #[test]
    fn round_robin_rotates_over_survivors_after_a_death() {
        let recorder = Arc::new(DispatchRecorder::default());
        let mut job = fixed_job(60, 3, Arc::clone(&recorder) as Arc<dyn Tracer>);
        job.faults =
            FaultPlan::new(7).kill_process("dataloader0", Time::ZERO + Span::from_millis(6));
        let report = SimBackend.run(job).unwrap();
        assert_eq!(report.batches, 15);

        let deaths = recorder.deaths.lock().unwrap().clone();
        assert_eq!(
            deaths,
            vec![worker_os_pid(0)],
            "worker 0 must die exactly once"
        );
        let dispatches = recorder.dispatches.lock().unwrap().clone();
        // Before the death every dispatch rotates over all three workers.
        let pre: Vec<u32> = dispatches
            .iter()
            .take_while(|&&(_, _, redispatch)| !redispatch)
            .map(|&(_, pid, _)| pid)
            .collect();
        for (i, pid) in pre.iter().enumerate() {
            assert_eq!(*pid, worker_os_pid(i % 3), "pre-death dispatch {i}");
        }
        // From the first redispatch on, only survivors appear, in strict
        // alternation (live-only rotation, no drift).
        let post: Vec<u32> = dispatches
            .iter()
            .skip_while(|&&(_, _, redispatch)| !redispatch)
            .map(|&(_, pid, _)| pid)
            .collect();
        assert!(!post.is_empty(), "the death must orphan at least one batch");
        for pair in post.windows(2) {
            assert_ne!(
                pair[0], pair[1],
                "survivor rotation must alternate: {post:?}"
            );
        }
        for pid in &post {
            assert_ne!(*pid, worker_os_pid(0), "no dispatch to the dead worker");
        }
    }

    use crate::backend::{ExecutionBackend, SimBackend};

    #[test]
    fn every_policy_completes_an_epoch_on_the_sim_backend() {
        for kind in SchedulingPolicyKind::ALL {
            let mut job = fixed_job(48, 3, Arc::new(NullTracer));
            job.loader.policy = kind;
            let report = SimBackend.run(job).unwrap();
            assert_eq!((report.batches, report.samples), (12, 48), "{kind:?}");
        }
    }

    #[test]
    fn every_policy_survives_a_mid_epoch_death() {
        for kind in SchedulingPolicyKind::ALL {
            let mut job = fixed_job(48, 3, Arc::new(NullTracer));
            job.loader.policy = kind;
            job.faults =
                FaultPlan::new(7).kill_process("dataloader1", Time::ZERO + Span::from_millis(5));
            let report = SimBackend.run(job).unwrap();
            assert_eq!((report.batches, report.samples), (12, 48), "{kind:?}");
        }
    }

    #[test]
    fn slow_sample_faults_dilate_the_epoch() {
        let base = SimBackend
            .run(fixed_job(32, 2, Arc::new(NullTracer)))
            .unwrap();
        let mut slowed_job = fixed_job(32, 2, Arc::new(NullTracer));
        slowed_job.faults = FaultPlan::new(3).slow_samples(0.25, 10.0);
        let slowed = SimBackend.run(slowed_job).unwrap();
        assert!(
            slowed.elapsed > base.elapsed,
            "slow samples must cost time: {:?} vs {:?}",
            slowed.elapsed,
            base.elapsed
        );
    }
}
