//! Typed job-level failures.
//!
//! PyTorch surfaces DataLoader failures in two ways: a worker that raises
//! inside `__getitem__` ships an `ExceptionWrapper` through the data queue
//! and the main process re-raises it, while a worker that *dies* is
//! detected by the `w.is_alive()` check after a queue-poll timeout and
//! turns into a `RuntimeError: DataLoader worker (pid X) exited
//! unexpectedly`. [`JobError`] is the typed analog of both, plus the
//! simulator- and configuration-level failures a run can hit.

use lotus_sim::SimError;
use lotus_transforms::PipelineError;

/// Failure of a [`crate::TrainingJob`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The DataLoader configuration failed validation
    /// ([`crate::DataLoaderConfig::validate`]).
    InvalidConfig(String),
    /// A sample raised inside a worker; the main process re-raises it
    /// (PyTorch's `ExceptionWrapper` path).
    Sample {
        /// Batch being fetched when the error occurred.
        batch_id: u64,
        /// Worker index that hit the error.
        worker: usize,
        /// The underlying preprocessing error.
        error: PipelineError,
    },
    /// Every worker died with batches still outstanding, so the epoch can
    /// never complete (PyTorch's "DataLoader worker exited unexpectedly"
    /// with no survivors to redispatch to).
    AllWorkersDied {
        /// Total number of workers the job started with.
        workers: usize,
        /// In-flight batches that were never produced.
        outstanding: usize,
    },
    /// The underlying simulation failed (deadlock or process panic).
    Sim(SimError),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::InvalidConfig(msg) => write!(f, "invalid DataLoader config: {msg}"),
            JobError::Sample {
                batch_id,
                worker,
                error,
            } => write!(
                f,
                "DataLoader worker {worker} failed fetching batch {batch_id}: {error}"
            ),
            JobError::AllWorkersDied {
                workers,
                outstanding,
            } => write!(
                f,
                "all {workers} DataLoader workers exited unexpectedly with \
                 {outstanding} batches outstanding"
            ),
            JobError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Sample { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<SimError> for JobError {
    fn from(e: SimError) -> JobError {
        JobError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_op_and_batch() {
        let e = JobError::Sample {
            batch_id: 7,
            worker: 2,
            error: PipelineError::Injected {
                op: "ToTensor".to_string(),
                index: 93,
            },
        };
        let msg = e.to_string();
        assert!(msg.contains("worker 2"), "{msg}");
        assert!(msg.contains("batch 7"), "{msg}");
        assert!(msg.contains("ToTensor"), "{msg}");
    }

    #[test]
    fn sim_errors_convert() {
        let sim = SimError::Deadlock {
            blocked: Vec::new(),
        };
        assert_eq!(JobError::from(sim.clone()), JobError::Sim(sim));
    }
}
