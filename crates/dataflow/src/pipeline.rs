//! A tf.data-style declarative pipeline builder.
//!
//! The paper argues its methodology generalizes to any framework with
//! declaratively specified pipelines (tf.data, DALI): the declaration
//! provides the hooks for fine-grained instrumentation. This module makes
//! that concrete — a `source → map → map → … → batch → prefetch`
//! declaration that lowers onto the same [`TrainingJob`] engine, with
//! LotusTrace instrumentation working unchanged.

use std::sync::Arc;

use lotus_transforms::{
    Compose, PipelineError, Sample, Transform, TransformCtx, TransformObserver,
};
use lotus_uarch::Machine;

use crate::config::{DataLoaderConfig, GpuConfig};
use crate::dataset::{Dataset, Sampler};
use crate::loader::TrainingJob;
use crate::tracer::{NullTracer, Tracer};

/// A data source: yields the raw (pre-transform) sample for an index and
/// reports its own "Loader" span (`tf.data`'s source datasets).
pub trait Source: Send + Sync {
    /// Number of items.
    fn len(&self) -> u64;

    /// True if the source has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Loads one raw item, charging I/O and decode costs.
    fn load(&self, index: u64, ctx: &mut TransformCtx<'_>) -> Sample;
}

/// Builder for a declarative preprocessing pipeline
/// (`Pipeline::from_source(..).map(..).batch(..).prefetch(..)`).
///
/// ```
/// use std::sync::Arc;
/// use lotus_data::DType;
/// use lotus_dataflow::{Pipeline, Source};
/// use lotus_sim::Span;
/// use lotus_transforms::{Sample, ToTensor, TransformCtx};
/// use lotus_uarch::{CostCoeffs, CpuThread, KernelId, Machine, MachineConfig};
///
/// struct Synthetic(KernelId);
/// impl Source for Synthetic {
///     fn len(&self) -> u64 { 64 }
///     fn load(&self, _i: u64, ctx: &mut TransformCtx<'_>) -> Sample {
///         ctx.cpu.exec(self.0, 10_000.0);
///         Sample::image_meta(64, 64)
///     }
/// }
///
/// let machine = Machine::new(MachineConfig::cloudlab_c4130());
/// let decode = machine.kernel("toy_decode", "lib", CostCoeffs::compute_default());
/// let report = Pipeline::from_source(Arc::new(Synthetic(decode)))
///     .map(Box::new(ToTensor::new(&machine)))
///     .batch(8)
///     .prefetch(2)
///     .workers(2)
///     .build_job(&machine, Span::from_micros(100))
///     .run()?;
/// assert_eq!(report.batches, 8);
/// # Ok::<(), lotus_dataflow::JobError>(())
/// ```
pub struct Pipeline {
    source: Arc<dyn Source>,
    transforms: Vec<Box<dyn Transform>>,
    batch_size: usize,
    prefetch_factor: usize,
    num_workers: usize,
    shuffle_seed: Option<u64>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("items", &self.source.len())
            .field(
                "stages",
                &self
                    .transforms
                    .iter()
                    .map(|t| t.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .field("batch_size", &self.batch_size)
            .field("prefetch_factor", &self.prefetch_factor)
            .field("num_workers", &self.num_workers)
            .finish()
    }
}

impl Pipeline {
    /// Starts a pipeline declaration from a source.
    #[must_use]
    pub fn from_source(source: Arc<dyn Source>) -> Pipeline {
        Pipeline {
            source,
            transforms: Vec::new(),
            batch_size: 1,
            prefetch_factor: 2,
            num_workers: 1,
            shuffle_seed: None,
        }
    }

    /// Appends a per-item transform stage (`tf.data`'s `map`).
    #[must_use]
    pub fn map(mut self, transform: Box<dyn Transform>) -> Pipeline {
        self.transforms.push(transform);
        self
    }

    /// Sets the batch size (`tf.data`'s `batch`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn batch(mut self, n: usize) -> Pipeline {
        assert!(n > 0, "batch size must be positive");
        self.batch_size = n;
        self
    }

    /// Sets the prefetch depth (`tf.data`'s `prefetch`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn prefetch(mut self, n: usize) -> Pipeline {
        assert!(n > 0, "prefetch factor must be positive");
        self.prefetch_factor = n;
        self
    }

    /// Sets the parallelism (`tf.data`'s `num_parallel_calls`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Pipeline {
        assert!(n > 0, "need at least one worker");
        self.num_workers = n;
        self
    }

    /// Enables per-epoch shuffling (`tf.data`'s `shuffle`).
    #[must_use]
    pub fn shuffle(mut self, seed: u64) -> Pipeline {
        self.shuffle_seed = Some(seed);
        self
    }

    /// Stage names, in order ("Loader" plus every map stage).
    #[must_use]
    pub fn stage_names(&self) -> Vec<String> {
        let mut names = vec!["Loader".to_string()];
        names.extend(self.transforms.iter().map(|t| t.name().to_string()));
        names
    }

    /// Lowers the declaration onto the DataLoader engine with a simple
    /// GPU model (`per_sample_step` per sample on one GPU).
    #[must_use]
    pub fn build_job(
        self,
        machine: &Arc<Machine>,
        per_sample_step: lotus_sim::Span,
    ) -> TrainingJob {
        self.build_job_with(
            machine,
            GpuConfig::v100(1, per_sample_step),
            Arc::new(NullTracer),
        )
    }

    /// Lowers the declaration with explicit GPU model and tracer.
    #[must_use]
    pub fn build_job_with(
        self,
        machine: &Arc<Machine>,
        gpu: GpuConfig,
        tracer: Arc<dyn Tracer>,
    ) -> TrainingJob {
        let sampler = match self.shuffle_seed {
            Some(seed) => Sampler::Random { seed },
            None => Sampler::Sequential,
        };
        let dataset = Arc::new(PipelineDataset {
            source: self.source,
            compose: Compose::new(machine, self.transforms),
        });
        TrainingJob {
            machine: Arc::clone(machine),
            dataset,
            storage: None,
            loader: DataLoaderConfig {
                batch_size: self.batch_size,
                num_workers: self.num_workers,
                prefetch_factor: self.prefetch_factor,
                data_queue_cap: None,
                pin_memory: true,
                sampler,
                drop_last: true,
                policy: crate::policy::SchedulingPolicyKind::RoundRobin,
            },
            gpu,
            tracer,
            hw_profiler: None,
            seed: self.shuffle_seed.unwrap_or(0),
            epochs: 1,
            faults: lotus_sim::FaultPlan::default(),
            controller: None,
            mutation: crate::loader::LoaderMutation::None,
        }
    }
}

/// The dataset a pipeline declaration lowers to.
struct PipelineDataset {
    source: Arc<dyn Source>,
    compose: Compose,
}

impl Dataset for PipelineDataset {
    fn len(&self) -> u64 {
        self.source.len()
    }

    fn get_item(
        &self,
        index: u64,
        ctx: &mut TransformCtx<'_>,
        observer: &mut dyn TransformObserver,
    ) -> Result<Sample, PipelineError> {
        let start = ctx.cpu.cursor();
        let sample = self.source.load(index, ctx);
        observer.on_transform("Loader", start, ctx.cpu.cursor().since(start));
        self.compose.apply_observed(sample, ctx, observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_data::DType;
    use lotus_sim::Span;
    use lotus_uarch::{CostCoeffs, KernelId, MachineConfig};

    struct StubSource {
        len: u64,
        kernel: KernelId,
    }

    impl Source for StubSource {
        fn len(&self) -> u64 {
            self.len
        }

        fn load(&self, index: u64, ctx: &mut TransformCtx<'_>) -> Sample {
            ctx.cpu
                .exec(self.kernel, 20_000.0 + (index % 3) as f64 * 5_000.0);
            Sample::tensor_meta(&[3, 16, 16], DType::F32)
        }
    }

    fn stub_source(machine: &Machine, len: u64) -> Arc<dyn Source> {
        Arc::new(StubSource {
            len,
            kernel: machine.kernel("stub_source", "lib", CostCoeffs::compute_default()),
        })
    }

    #[test]
    fn declaration_lowers_and_runs() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let report = Pipeline::from_source(stub_source(&machine, 96))
            .batch(8)
            .prefetch(3)
            .workers(3)
            .shuffle(11)
            .build_job(&machine, Span::from_micros(50))
            .run()
            .unwrap();
        assert_eq!(report.batches, 12);
        assert_eq!(report.samples, 96);
    }

    #[test]
    fn stage_names_include_the_loader_and_maps() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let p = Pipeline::from_source(stub_source(&machine, 8))
            .map(Box::new(lotus_transforms::Cast::new(&machine)));
        assert_eq!(
            p.stage_names(),
            vec!["Loader".to_string(), "Cast".to_string()]
        );
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_is_rejected() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let _ = Pipeline::from_source(stub_source(&machine, 8)).batch(0);
    }

    #[test]
    fn lotus_trace_instruments_declared_pipelines_unchanged() {
        use lotus_sim::Time;
        use std::sync::Mutex;

        #[derive(Default)]
        struct Names(Mutex<std::collections::BTreeSet<String>>);
        impl Tracer for Names {
            fn on_op(&self, _p: u32, _b: u64, name: &str, _s: Time, _d: Span) -> Span {
                self.0.lock().unwrap().insert(name.to_string());
                Span::ZERO
            }
        }

        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let tracer = Arc::new(Names::default());
        Pipeline::from_source(stub_source(&machine, 32))
            .map(Box::new(lotus_transforms::Cast::new(&machine)))
            .batch(4)
            .build_job_with(
                &machine,
                GpuConfig::v100(1, Span::from_micros(50)),
                Arc::clone(&tracer) as _,
            )
            .run()
            .unwrap();
        let names = tracer.0.lock().unwrap();
        assert!(names.contains("Loader"));
        assert!(names.contains("Cast"));
        assert!(names.contains("C(4)"));
    }
}
