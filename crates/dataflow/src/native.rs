//! The native execution backend: the DataLoader protocol on real OS
//! threads with real blocking channels and a monotonic wall clock.
//!
//! [`NativeBackend`] runs the *same* protocol as the simulated engine in
//! `loader.rs` — strict round-robin index dispatch, per-worker index
//! queues, one shared (optionally bounded) data queue, in-order
//! consumption with a pinned out-of-order cache, liveness polling with
//! dead-worker redispatch, and in-band `ExceptionWrapper`-style errors —
//! but every queue is a [`NativeQueue`] (mutex + condvar channel), every
//! worker is a `std::thread`, and every timestamp handed to the
//! [`Tracer`] comes from a shared [`WallClock`]. Kernels run on real
//! pixels, so the resulting LotusTrace measures the actual Rust
//! preprocessing code rather than the cost model.
//!
//! Wall-clock timestamps are nondeterministic, so the backend preserves
//! the *structural* trace invariants the linter checks instead of exact
//! times:
//!
//! * exactly one `[T1]` fetch record per delivered batch — a worker
//!   records its fetch only after the envelope is committed to the data
//!   queue, and a dying worker's push is atomically gated on its own
//!   liveness, so a redispatched batch never yields duplicate envelopes;
//! * the queue-delay identity holds exactly: a batch's recorded
//!   `queue_delay` equals its delivery point minus its fetch end, in
//!   integer nanoseconds, because both sides are computed from single
//!   reads of the shared clock;
//! * per-(pid, kind) record tracks stay monotonic because each track is
//!   emitted by exactly one thread in clock order.
//!
//! Tracer overhead spans returned by hooks are ignored: on this backend
//! the instrumentation's cost is real wall time, already included in the
//! measured spans.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use lotus_data::mix_seed;
use lotus_sim::{FaultPlan, Span, Time, TimeSource, WallClock};
use lotus_transforms::{Batch, Collate, PipelineError, TransformCtx, TransformObserver};
use lotus_uarch::CpuThread;

use crate::audit::{AuditFeed, AuditMutation, CvKind, SyncOp};
use crate::backend::ExecutionBackend;
use crate::config::{DataLoaderConfig, GpuConfig};
use crate::dataset::{BatchSampler, Dataset};
use crate::error::JobError;
use crate::loader::{batch_cost_hints, worker_os_pid, JobReport, TrainingJob, MAIN_OS_PID};
use crate::policy::{BatchRef, DispatchContext, Refill, SchedulingPolicy};
use crate::tracer::Tracer;

/// How long a worker blocked on a full data queue sleeps between
/// re-checking its own liveness.
const PUSH_RETRY: Duration = Duration::from_millis(10);

/// Audit object name of the worker-liveness lock.
const LIVENESS_OBJ: &str = "liveness";

/// Audit object name of the dispatcher (owns redispatch decisions).
const DISPATCHER_OBJ: &str = "dispatcher";

fn audit_rec(audit: Option<&AuditFeed>, obj: &str, op: SyncOp) {
    if let Some(feed) = audit {
        feed.record(obj, op);
    }
}

/// Knobs of the native backend.
#[derive(Debug, Clone, Copy)]
pub struct NativeOptions {
    /// How long the main process waits on the data queue before checking
    /// worker liveness (PyTorch's `MP_STATUS_CHECK_INTERVAL`, 5 s).
    /// Tests with fault plans shrink this so dead workers are discovered
    /// quickly.
    pub status_check: Span,
    /// When true, the main process sleeps for the GPU model's
    /// host-to-device and step spans per consumed batch, so the run's
    /// wait structure (and its bottleneck verdict) is comparable with
    /// the simulation. When false the consumer never blocks — a pure
    /// preprocessing-throughput measurement.
    pub emulate_gpu: bool,
}

impl Default for NativeOptions {
    fn default() -> Self {
        NativeOptions {
            status_check: Span::from_secs(5),
            emulate_gpu: false,
        }
    }
}

/// The native (real threads + wall clock) execution backend.
///
/// Schedule controllers and seeded protocol mutations on the job are
/// simulation-only test hooks and are ignored here.
#[derive(Debug, Clone, Default)]
pub struct NativeBackend {
    /// Backend knobs.
    pub options: NativeOptions,
    /// When set, every worker thread attaches this feed to its
    /// [`CpuThread`] so the real compute behind instrumented kernels is
    /// wall-timed and attributed per op (`lotus run --profile`).
    pub feed: Option<Arc<lotus_uarch::KernelSpanFeed>>,
    /// When set, every queue/lock synchronization point records a
    /// [`SyncEvent`](crate::SyncEvent) here for `lotus audit`'s
    /// happens-before analysis. Costs nothing when absent.
    pub audit: Option<Arc<AuditFeed>>,
    /// Seeded concurrency bug enacted by this run (`lotus audit
    /// --mutate`); [`AuditMutation::None`] runs the faithful protocol.
    pub audit_mutation: AuditMutation,
}

impl NativeBackend {
    /// A backend with the given options.
    #[must_use]
    pub fn new(options: NativeOptions) -> NativeBackend {
        NativeBackend {
            options,
            feed: None,
            audit: None,
            audit_mutation: AuditMutation::None,
        }
    }

    /// Attaches a kernel-span feed that worker threads will report
    /// observed native kernel spans to.
    #[must_use]
    pub fn with_feed(mut self, feed: Arc<lotus_uarch::KernelSpanFeed>) -> NativeBackend {
        self.feed = Some(feed);
        self
    }

    /// Attaches a synchronization-event feed for `lotus audit`.
    #[must_use]
    pub fn with_audit(mut self, audit: Arc<AuditFeed>) -> NativeBackend {
        self.audit = Some(audit);
        self
    }

    /// Enacts a seeded concurrency bug the auditor must flag.
    #[must_use]
    pub fn with_audit_mutation(mut self, mutation: AuditMutation) -> NativeBackend {
        self.audit_mutation = mutation;
        self
    }
}

/// Queue state guarded by the mutex: the item deque plus the close
/// flag of [`NativeQueue::close`].
#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Audit wiring of one queue: where synchronization events go, how to
/// pull a batch id out of an item, and which seeded mutation (if any)
/// this queue enacts.
struct QueueAudit<T> {
    feed: Arc<AuditFeed>,
    tag: fn(&T) -> Option<u64>,
    mutation: AuditMutation,
}

impl<T> std::fmt::Debug for QueueAudit<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueAudit")
            .field("mutation", &self.mutation)
            .finish_non_exhaustive()
    }
}

/// A bounded (or unbounded) blocking MPMC channel: `Mutex<VecDeque>` +
/// condition variables, the shape `crossbeam`'s array channel presents.
/// Mirrors the simulated [`lotus_sim::Queue`] API so the two engines
/// read alike.
///
/// When an [`AuditFeed`] is attached, every lock transition, condvar
/// wait/notify and commit records a [`SyncEvent`](crate::SyncEvent).
/// Acquire events are recorded right after the lock is taken and
/// release events right *before* it is given up (wait-start/wait-return
/// likewise bracket the condvar's release/re-acquire), so the feed's
/// sequence order is consistent with the mutex's happens-before chain.
/// Notify events carry no ordering obligations (the mutex chain already
/// orders waker and woken) and are recorded outside the lock.
#[derive(Debug)]
pub struct NativeQueue<T> {
    name: String,
    cap: Option<usize>,
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    audit: Option<QueueAudit<T>>,
}

impl<T> NativeQueue<T> {
    /// Creates a queue. `cap = None` leaves it unbounded.
    #[must_use]
    pub fn new(name: impl Into<String>, cap: Option<usize>) -> NativeQueue<T> {
        NativeQueue {
            name: name.into(),
            cap,
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            audit: None,
        }
    }

    /// Attaches audit wiring. `tag` extracts a batch id from an item
    /// for send/recv events; `mutation` seeds a concurrency bug in this
    /// queue's own code paths (only [`AuditMutation::SkipNotify`] lives
    /// here).
    pub(crate) fn set_audit(
        &mut self,
        feed: Arc<AuditFeed>,
        tag: fn(&T) -> Option<u64>,
        mutation: AuditMutation,
    ) {
        self.audit = Some(QueueAudit {
            feed,
            tag,
            mutation,
        });
    }

    /// Locks the queue state, recovering from a poisoned mutex. A
    /// panicking worker must not cascade its panic into every other
    /// thread touching the queue: the deque holds plain values that are
    /// valid at every await point (each critical section completes its
    /// push/pop before unlocking), so the poison flag carries no
    /// integrity information here. The panic itself is surfaced
    /// separately, as an in-band [`PipelineError::WorkerPanic`].
    fn lock_state(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn rec(&self, op: SyncOp) {
        if let Some(a) = &self.audit {
            a.feed.record(&self.name, op);
        }
    }

    fn tag_of(&self, item: &T) -> Option<u64> {
        self.audit.as_ref().and_then(|a| (a.tag)(item))
    }

    fn notify_not_empty(&self) {
        // The seeded lost-wakeup bug: a committed send that never
        // signals its consumer. With the real 5 s status-check interval
        // this is the classic "training hangs for no reason" failure;
        // audit runs shrink the interval so the run limps to completion
        // and the missing notify shows up in the event counts.
        if self
            .audit
            .as_ref()
            .is_some_and(|a| a.mutation == AuditMutation::SkipNotify)
        {
            return;
        }
        self.rec(SyncOp::Notify {
            cv: CvKind::NotEmpty,
        });
        self.not_empty.notify_one();
    }

    fn notify_not_full(&self) {
        self.rec(SyncOp::Notify {
            cv: CvKind::NotFull,
        });
        self.not_full.notify_one();
    }

    /// The queue's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        let state = self.lock_state();
        self.rec(SyncOp::LockAcquire);
        let len = state.items.len();
        self.rec(SyncOp::LockRelease);
        len
    }

    /// Current depth, additionally recorded as an audited gauge sample
    /// named `gauge` *inside* the critical section — so concurrent
    /// samplers of one gauge series are totally ordered by the queue
    /// mutex, which is exactly what the auditor's gauge-ordering rule
    /// verifies.
    #[must_use]
    pub fn audited_len(&self, gauge: &str) -> usize {
        let state = self.lock_state();
        self.rec(SyncOp::LockAcquire);
        let len = state.items.len();
        if let Some(a) = &self.audit {
            a.feed.record(gauge, SyncOp::Gauge { value: len as f64 });
        }
        self.rec(SyncOp::LockRelease);
        len
    }

    /// True when no items are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`Self::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        let state = self.lock_state();
        self.rec(SyncOp::LockAcquire);
        let closed = state.closed;
        self.rec(SyncOp::LockRelease);
        closed
    }

    fn is_full(items: &VecDeque<T>, cap: Option<usize>) -> bool {
        cap.is_some_and(|c| items.len() >= c)
    }

    /// Runs `f` while holding the queue's internal lock, recording the
    /// acquire/release. Exists solely so the seeded
    /// [`AuditMutation::LockOrder`] bug can take this lock and then a
    /// foreign one in the wrong order.
    pub(crate) fn with_lock<R>(&self, f: impl FnOnce() -> R) -> R {
        let state = self.lock_state();
        self.rec(SyncOp::LockAcquire);
        let result = f();
        self.rec(SyncOp::LockRelease);
        drop(state);
        result
    }

    /// Pushes an item, blocking while the queue is full.
    pub fn push(&self, item: T) {
        let mut state = self.lock_state();
        self.rec(SyncOp::LockAcquire);
        while Self::is_full(&state.items, self.cap) {
            self.rec(SyncOp::WaitStart {
                cv: CvKind::NotFull,
            });
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
            self.rec(SyncOp::WaitReturn {
                cv: CvKind::NotFull,
                satisfied: !Self::is_full(&state.items, self.cap),
            });
        }
        let batch = self.tag_of(&item);
        state.items.push_back(item);
        self.rec(SyncOp::SendCommit { batch });
        self.rec(SyncOp::LockRelease);
        drop(state);
        self.notify_not_empty();
    }

    /// Pushes an item unless the queue is full, returning it on refusal.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is at capacity.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock_state();
        self.rec(SyncOp::LockAcquire);
        if Self::is_full(&state.items, self.cap) {
            self.rec(SyncOp::LockRelease);
            return Err(item);
        }
        let batch = self.tag_of(&item);
        state.items.push_back(item);
        self.rec(SyncOp::SendCommit { batch });
        self.rec(SyncOp::LockRelease);
        drop(state);
        self.notify_not_empty();
        Ok(())
    }

    /// Pushes an item unless the queue has been closed, blocking while
    /// it is full. The close check and the push are one critical
    /// section: after a `close` no send can ever be committed.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is closed.
    pub fn push_unless_closed(&self, item: T) -> Result<(), T> {
        let mut state = self.lock_state();
        self.rec(SyncOp::LockAcquire);
        loop {
            if state.closed {
                self.rec(SyncOp::LockRelease);
                return Err(item);
            }
            if !Self::is_full(&state.items, self.cap) {
                break;
            }
            self.rec(SyncOp::WaitStart {
                cv: CvKind::NotFull,
            });
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
            self.rec(SyncOp::WaitReturn {
                cv: CvKind::NotFull,
                satisfied: state.closed || !Self::is_full(&state.items, self.cap),
            });
        }
        let batch = self.tag_of(&item);
        state.items.push_back(item);
        self.rec(SyncOp::SendCommit { batch });
        self.rec(SyncOp::LockRelease);
        drop(state);
        self.notify_not_empty();
        Ok(())
    }

    /// Blocks until the queue has free capacity or `timeout` elapses.
    /// A wake-up is advisory — callers re-try with [`Self::try_push`].
    pub fn wait_not_full(&self, timeout: Duration) {
        let state = self.lock_state();
        self.rec(SyncOp::LockAcquire);
        if Self::is_full(&state.items, self.cap) {
            self.rec(SyncOp::WaitStart {
                cv: CvKind::NotFull,
            });
            let (state, _result) = self
                .not_full
                .wait_timeout(state, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            self.rec(SyncOp::WaitReturn {
                cv: CvKind::NotFull,
                satisfied: !Self::is_full(&state.items, self.cap),
            });
            self.rec(SyncOp::LockRelease);
            drop(state);
        } else {
            self.rec(SyncOp::LockRelease);
        }
    }

    /// Pops the oldest item, blocking while the queue is empty.
    pub fn pop(&self) -> T {
        let mut state = self.lock_state();
        self.rec(SyncOp::LockAcquire);
        loop {
            if let Some(item) = state.items.pop_front() {
                self.rec(SyncOp::RecvCommit {
                    batch: self.tag_of(&item),
                });
                self.rec(SyncOp::LockRelease);
                drop(state);
                self.notify_not_full();
                return item;
            }
            self.rec(SyncOp::WaitStart {
                cv: CvKind::NotEmpty,
            });
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
            self.rec(SyncOp::WaitReturn {
                cv: CvKind::NotEmpty,
                satisfied: !state.items.is_empty(),
            });
        }
    }

    /// Pops the oldest item, blocking while the queue is empty and not
    /// closed. Returns `None` only once the queue is closed *and*
    /// drained, so consumers see every committed send.
    pub fn pop_until_closed(&self) -> Option<T> {
        let mut state = self.lock_state();
        self.rec(SyncOp::LockAcquire);
        loop {
            if let Some(item) = state.items.pop_front() {
                self.rec(SyncOp::RecvCommit {
                    batch: self.tag_of(&item),
                });
                self.rec(SyncOp::LockRelease);
                drop(state);
                self.notify_not_full();
                return Some(item);
            }
            if state.closed {
                self.rec(SyncOp::LockRelease);
                return None;
            }
            self.rec(SyncOp::WaitStart {
                cv: CvKind::NotEmpty,
            });
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
            self.rec(SyncOp::WaitReturn {
                cv: CvKind::NotEmpty,
                satisfied: state.closed || !state.items.is_empty(),
            });
        }
    }

    /// Pops the oldest item, giving up after `timeout`.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.lock_state();
        self.rec(SyncOp::LockAcquire);
        loop {
            if let Some(item) = state.items.pop_front() {
                self.rec(SyncOp::RecvCommit {
                    batch: self.tag_of(&item),
                });
                self.rec(SyncOp::LockRelease);
                drop(state);
                self.notify_not_full();
                return Some(item);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                self.rec(SyncOp::LockRelease);
                return None;
            }
            self.rec(SyncOp::WaitStart {
                cv: CvKind::NotEmpty,
            });
            let (guard, _result) = self
                .not_empty
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            self.rec(SyncOp::WaitReturn {
                cv: CvKind::NotEmpty,
                satisfied: !state.items.is_empty(),
            });
        }
    }

    /// Pops the oldest item if one is queued.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.lock_state();
        self.rec(SyncOp::LockAcquire);
        let item = state.items.pop_front();
        if let Some(it) = &item {
            self.rec(SyncOp::RecvCommit {
                batch: self.tag_of(it),
            });
        }
        self.rec(SyncOp::LockRelease);
        drop(state);
        if item.is_some() {
            self.notify_not_full();
        }
        item
    }

    /// Closes the queue: subsequent [`Self::push_unless_closed`] calls
    /// are refused, and [`Self::pop_until_closed`] returns `None` once
    /// the backlog drains. Wakes every blocked producer and consumer.
    pub fn close(&self) {
        let mut state = self.lock_state();
        self.rec(SyncOp::LockAcquire);
        state.closed = true;
        self.rec(SyncOp::Close);
        self.rec(SyncOp::LockRelease);
        drop(state);
        self.rec(SyncOp::Notify {
            cv: CvKind::NotEmpty,
        });
        self.rec(SyncOp::Notify {
            cv: CvKind::NotFull,
        });
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Message on a per-worker index queue (PyTorch's index batch / `None`
/// shutdown sentinel).
enum NativeMsg {
    Batch { id: u64, indices: Vec<u64> },
    Shutdown,
}

struct NativePayload {
    bytes: u64,
    len: usize,
}

/// A preprocessed batch (or its in-band error) on the shared data queue.
struct NativeEnvelope {
    batch_id: u64,
    payload: Result<NativePayload, PipelineError>,
    /// Wall time at which the fetch finished (== the `[T1]` record end).
    produced_at: Time,
    /// Wall duration of the whole fetch — fed back to cost-aware
    /// scheduling policies on return.
    fetch: Span,
    worker: usize,
    pinned: bool,
}

/// Forwards transform completions to the tracer with wall-clock spans.
///
/// The observer callbacks fire synchronously after each transform, so
/// consecutive clock reads bracket each op exactly; the virtual-time
/// arguments the dataset passes are ignored.
struct WallOpBridge<'a> {
    tracer: &'a dyn Tracer,
    clock: &'a WallClock,
    pid: u32,
    batch_id: u64,
    mark: Time,
}

impl TransformObserver for WallOpBridge<'_> {
    fn on_transform(&mut self, name: &str, _start: Time, _elapsed: Span) {
        let now = self.clock.now();
        let _overhead = self.tracer.on_op(
            self.pid,
            self.batch_id,
            name,
            self.mark,
            now.since(self.mark),
        );
        self.mark = now;
    }
}

/// Dispatch state — the native twin of the simulated engine's
/// `Dispatcher`, sharing its semantics: a pluggable
/// [`SchedulingPolicy`] picks each batch's live worker (round-robin —
/// PyTorch's `_worker_queue_idx_cycle` — by default), orphans are
/// redispatched in batch-id order, and refill counts come from the
/// policy's quota clamped to the protocol's in-flight bound.
struct NativeDispatcher {
    batch_iter: std::iter::Enumerate<std::vec::IntoIter<Vec<u64>>>,
    redispatch: VecDeque<(u64, Vec<u64>)>,
    policy: Box<dyn SchedulingPolicy>,
    hints: Vec<Option<f64>>,
    prefetch_factor: usize,
    dead: Vec<bool>,
    in_flight: HashMap<u64, (usize, Vec<u64>)>,
}

impl NativeDispatcher {
    fn new(
        batches: Vec<Vec<u64>>,
        workers: usize,
        loader: &DataLoaderConfig,
        hints: Vec<Option<f64>>,
    ) -> NativeDispatcher {
        NativeDispatcher {
            batch_iter: batches.into_iter().enumerate(),
            redispatch: VecDeque::new(),
            policy: loader.policy.build(workers, loader.prefetch_factor),
            hints,
            prefetch_factor: loader.prefetch_factor,
            dead: vec![false; workers],
            in_flight: HashMap::new(),
        }
    }

    fn alive(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    fn send_next(
        &mut self,
        tracer: &dyn Tracer,
        clock: &WallClock,
        index_qs: &[NativeQueue<NativeMsg>],
        data_q: &NativeQueue<NativeEnvelope>,
    ) -> Option<usize> {
        let (next, redispatch) = match self.redispatch.pop_front() {
            Some(item) => (Some(item), true),
            None => (
                self.batch_iter.next().map(|(id, idx)| (id as u64, idx)),
                false,
            ),
        };
        if let Some((id, indices)) = next {
            if self.alive() == 0 {
                self.redispatch.push_front((id, indices));
                return None;
            }
            let depths: Vec<usize> = index_qs.iter().map(NativeQueue::len).collect();
            let placement = self.policy.place(
                &BatchRef {
                    id,
                    indices: &indices,
                    hint: self.hints.get(id as usize).copied().flatten(),
                },
                &DispatchContext {
                    queue_depths: &depths,
                    dead: &self.dead,
                    in_flight: self.in_flight.len(),
                    data_queue_depth: data_q.len(),
                    prefetch_factor: self.prefetch_factor,
                    redispatch,
                },
            );
            let w = placement.worker;
            assert!(
                !self.dead[w],
                "scheduling policy placed batch {id} on dead worker {w}"
            );
            index_qs[w].push(NativeMsg::Batch {
                id,
                indices: indices.clone(),
            });
            let _overhead =
                tracer.on_batch_dispatched(id, worker_os_pid(w), &indices, redispatch, clock.now());
            if let Some(from) = placement.stolen_from.filter(|&from| from != w) {
                let _overhead =
                    tracer.on_batch_stolen(id, worker_os_pid(from), worker_os_pid(w), clock.now());
            }
            if let Some(lane) = placement.lane {
                let _overhead =
                    tracer.on_lane_assigned(id, lane.as_str(), worker_os_pid(w), clock.now());
            }
            self.in_flight.insert(id, (w, indices));
            return Some(w);
        }
        None
    }

    /// Feeds a returned batch's observed fetch time back to the policy.
    fn batch_returned(&mut self, env: &NativeEnvelope) {
        if let Some((worker, indices)) = self.in_flight.remove(&env.batch_id) {
            self.policy
                .on_batch_returned(worker, &indices, env.fetch.as_nanos());
        }
    }

    /// Asks the policy how many batches to dispatch after a return,
    /// clamping to the protocol's hard in-flight bound.
    fn refill_quota(
        &mut self,
        index_qs: &[NativeQueue<NativeMsg>],
        data_q: &NativeQueue<NativeEnvelope>,
    ) -> Refill {
        let depths: Vec<usize> = index_qs.iter().map(NativeQueue::len).collect();
        let mut refill = self.policy.refill(&DispatchContext {
            queue_depths: &depths,
            dead: &self.dead,
            in_flight: self.in_flight.len(),
            data_queue_depth: data_q.len(),
            prefetch_factor: self.prefetch_factor,
            redispatch: false,
        });
        let bound = (self.prefetch_factor * self.dead.len()).saturating_sub(self.in_flight.len());
        refill.count = refill.count.min(bound);
        refill
    }

    fn mark_dead(&mut self, worker: usize) -> Vec<u64> {
        self.dead[worker] = true;
        self.policy.on_worker_died(worker);
        let mut orphans: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, (w, _))| *w == worker)
            .map(|(&id, _)| id)
            .collect();
        orphans.sort_unstable();
        for &id in &orphans {
            // The ids were collected from `in_flight` just above, with no
            // intervening removal.
            #[allow(clippy::expect_used)]
            let (_, indices) = self.in_flight.remove(&id).expect("orphan is in flight");
            self.redispatch.push_back((id, indices));
        }
        orphans
    }
}

fn duration_of(span: Span) -> Duration {
    Duration::from_nanos(span.as_nanos())
}

fn emit_gauge(tracer: &dyn Tracer, clock: &WallClock, name: &str, value: f64) {
    let _overhead = tracer.on_gauge(name, value, clock.now());
}

fn emit_dispatch_gauges(
    tracer: &dyn Tracer,
    clock: &WallClock,
    audit: Option<&AuditFeed>,
    index_qs: &[NativeQueue<NativeMsg>],
    sent_to: Option<usize>,
    in_flight: usize,
) {
    if let Some(w) = sent_to {
        let gauge = format!("queue_depth.index_queue_{w}");
        let depth = index_qs[w].audited_len(&gauge);
        emit_gauge(tracer, clock, &gauge, depth as f64);
        audit_rec(
            audit,
            "in_flight_batches",
            SyncOp::Gauge {
                value: in_flight as f64,
            },
        );
        emit_gauge(tracer, clock, "in_flight_batches", in_flight as f64);
    }
}

/// Everything a worker thread borrows from the run.
struct WorkerShared<'a> {
    clock: &'a WallClock,
    tracer: &'a dyn Tracer,
    dataset: &'a dyn Dataset,
    data_q: &'a NativeQueue<NativeEnvelope>,
    /// Per-worker death flags, shared with the main thread. A worker's
    /// envelope push is atomic with a check of its own flag, so once the
    /// main thread marks a worker dead (it only does so while holding
    /// this lock *and* observing an empty data queue) that worker can
    /// never deliver again — redispatch cannot double-deliver a batch.
    liveness: &'a Mutex<Vec<bool>>,
    /// Raised when the main thread exits early; unsticks workers blocked
    /// on a full data queue.
    shutdown: &'a AtomicBool,
    /// Synchronization-event collector for `lotus audit`, when attached.
    audit: Option<&'a AuditFeed>,
    /// The seeded concurrency bug this run enacts.
    audit_mutation: AuditMutation,
}

#[allow(clippy::too_many_arguments)]
fn native_worker_loop(
    shared: &WorkerShared<'_>,
    worker: usize,
    machine: &Arc<lotus_uarch::Machine>,
    hw_profiler: Option<Arc<lotus_uarch::HwProfiler>>,
    feed: Option<Arc<lotus_uarch::KernelSpanFeed>>,
    index_q: &NativeQueue<NativeMsg>,
    seed: u64,
    faults: &FaultPlan,
) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let WorkerShared {
        clock,
        tracer,
        dataset,
        data_q,
        liveness,
        shutdown,
        audit,
        audit_mutation,
    } = *shared;
    if let Some(feed) = audit {
        feed.register_thread(worker_os_pid(worker));
    }
    // The CpuThread carries the virtual cost model through the dataset
    // and transform code; its cursor is ignored here — only the wall
    // clock times anything.
    let mut cpu = CpuThread::new(Arc::clone(machine));
    if let Some(p) = hw_profiler {
        cpu.attach_profiler(p);
    }
    if let Some(f) = feed {
        cpu.attach_native_feed(f);
    }
    let mut rng = StdRng::seed_from_u64(mix_seed(seed, 1_000 + worker as u64));
    let collate = Collate::new(machine);
    let os_pid = worker_os_pid(worker);
    // Kill times in the fault plan are interpreted as wall offsets from
    // the run's start.
    let kill_time = faults.kill_time(&format!("dataloader{worker}"));

    loop {
        let msg = match kill_time {
            Some(at) => {
                let now = clock.now();
                if now >= at {
                    return;
                }
                match index_q.pop_timeout(duration_of(at.since(now))) {
                    Some(msg) => msg,
                    None => return, // died while idle
                }
            }
            None => index_q.pop(),
        };
        let NativeMsg::Batch { id, indices } = msg else {
            break;
        };
        let index_gauge = format!("queue_depth.index_queue_{worker}");
        let index_depth = index_q.audited_len(&index_gauge);
        emit_gauge(tracer, clock, &index_gauge, index_depth as f64);
        let start = clock.now();
        let mut bridge = WallOpBridge {
            tracer,
            clock,
            pid: os_pid,
            batch_id: id,
            mark: start,
        };
        // The whole fetch runs under `catch_unwind`: a panicking dataset
        // (the native analog of a crashing Python worker) is converted
        // into an in-band `WorkerPanic` error — PyTorch's
        // `ExceptionWrapper` protocol — instead of tearing down this
        // thread and poisoning every shared queue behind it.
        let fetch = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut samples = Vec::with_capacity(indices.len());
            let mut failure: Option<PipelineError> = None;
            for &i in &indices {
                if let Some(op) = faults.sample_error(i) {
                    let _overhead = tracer.on_fault_injected(os_pid, id, op, clock.now());
                    failure = Some(PipelineError::Injected {
                        op: op.to_string(),
                        index: i,
                    });
                    break;
                }
                let item_start = clock.now();
                let mut tctx = TransformCtx {
                    cpu: &mut cpu,
                    rng: &mut rng,
                };
                let fetched = dataset.get_item(i, &mut tctx, &mut bridge);
                let slowdown = faults.sample_slowdown(i);
                if slowdown > 1.0 {
                    // A straggler sample: dilate its real elapsed time by
                    // sleeping out the extra factor, as the simulated
                    // engine idles the virtual core.
                    let elapsed = clock.now().since(item_start);
                    std::thread::sleep(duration_of(elapsed.mul_f64(slowdown - 1.0)));
                }
                match fetched {
                    Ok(sample) => samples.push(sample),
                    Err(e) => {
                        // Ship the error in-band; the worker keeps running.
                        failure = Some(e);
                        break;
                    }
                }
            }
            match failure {
                Some(e) => Err(e),
                None => {
                    let batch_len = samples.len();
                    let collated = {
                        let mut tctx = TransformCtx {
                            cpu: &mut cpu,
                            rng: &mut rng,
                        };
                        collate.apply(samples, &mut tctx)
                    };
                    if collated.is_ok() {
                        // The bridge's mark sits at the end of the last
                        // sample's last transform, so this records the real
                        // collate span.
                        bridge.on_transform(&Collate::display_name(batch_len), start, Span::ZERO);
                    }
                    collated
                }
            }
        }));
        let batch: Result<Batch, PipelineError> = match fetch {
            Ok(outcome) => outcome,
            Err(payload) => {
                let reason = payload
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic payload".to_string());
                Err(PipelineError::WorkerPanic { reason })
            }
        };
        let fetch_end = clock.now();
        let mut envelope = NativeEnvelope {
            batch_id: id,
            payload: batch.map(|b| NativePayload {
                bytes: b.bytes,
                len: b.len,
            }),
            produced_at: fetch_end,
            fetch: fetch_end.since(start),
            worker,
            pinned: false,
        };

        // Commit the envelope. The push is atomic with this worker's
        // liveness check: a worker the main thread has marked dead (or
        // whose kill time has passed) drops the batch instead — it
        // becomes an orphan and is redispatched. The [T1] record is
        // emitted only after a successful push so a dropped batch never
        // contributes a fetch span.
        loop {
            if shutdown.load(Ordering::Acquire) {
                return;
            }
            let outcome = if audit_mutation == AuditMutation::ReleaseRecheck {
                // Seeded bug: the liveness gate is checked, but the lock
                // is released *before* the push — the commit is no
                // longer atomic with the check, so a worker marked dead
                // in the gap can still deliver (the double-delivery race
                // redispatch safety depends on). The auditor flags the
                // ungated SendCommit.
                let doomed = {
                    let dead = liveness.lock().unwrap_or_else(PoisonError::into_inner);
                    audit_rec(audit, LIVENESS_OBJ, SyncOp::LockAcquire);
                    let doomed = dead[worker] || kill_time.is_some_and(|at| clock.now() >= at);
                    audit_rec(audit, LIVENESS_OBJ, SyncOp::LockRelease);
                    doomed
                };
                if doomed {
                    return;
                }
                data_q.try_push(envelope)
            } else {
                if audit_mutation == AuditMutation::LockOrder {
                    // Seeded bug: this path takes the data-queue lock
                    // and *then* the liveness lock — the reverse of
                    // every other site (worker commit and main-thread
                    // recheck both nest data_queue inside liveness).
                    // The inner acquisition uses try_lock so the seeded
                    // inversion can close the cycle in the lock-order
                    // graph without ever actually deadlocking the run.
                    data_q.with_lock(|| {
                        if let Ok(dead) = liveness.try_lock() {
                            audit_rec(audit, LIVENESS_OBJ, SyncOp::LockAcquire);
                            let _observed = dead[worker];
                            audit_rec(audit, LIVENESS_OBJ, SyncOp::LockRelease);
                            drop(dead);
                        }
                    });
                }
                let dead = liveness.lock().unwrap_or_else(PoisonError::into_inner);
                audit_rec(audit, LIVENESS_OBJ, SyncOp::LockAcquire);
                if dead[worker] || kill_time.is_some_and(|at| clock.now() >= at) {
                    audit_rec(audit, LIVENESS_OBJ, SyncOp::LockRelease);
                    return;
                }
                let outcome = data_q.try_push(envelope);
                audit_rec(audit, LIVENESS_OBJ, SyncOp::LockRelease);
                outcome
            };
            match outcome {
                Ok(()) => {
                    let _overhead =
                        tracer.on_batch_preprocessed(os_pid, id, start, fetch_end.since(start));
                    let depth = data_q.audited_len("queue_depth.data_queue");
                    emit_gauge(tracer, clock, "queue_depth.data_queue", depth as f64);
                    break;
                }
                Err(back) => {
                    envelope = back;
                    // Queue full: wait for space without holding the
                    // liveness lock, then re-check everything.
                    data_q.wait_not_full(PUSH_RETRY);
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn native_main_loop(
    shared: &WorkerShared<'_>,
    options: &NativeOptions,
    index_qs: &[NativeQueue<NativeMsg>],
    loader: &DataLoaderConfig,
    gpu: &GpuConfig,
    batches: Vec<Vec<u64>>,
    hints: Vec<Option<f64>>,
    faults: &FaultPlan,
) -> Result<(), JobError> {
    let WorkerShared {
        clock,
        tracer,
        data_q,
        liveness,
        shutdown,
        audit,
        ..
    } = *shared;
    let num_batches = batches.len() as u64;
    let workers = index_qs.len();
    let mut dispatcher = NativeDispatcher::new(batches, workers, loader, hints);
    let kill_times: Vec<Option<Time>> = (0..workers)
        .map(|w| faults.kill_time(&format!("dataloader{w}")))
        .collect();

    // Initial prefetch: `prefetch_factor` index batches per worker.
    for _ in 0..loader.prefetch_factor * workers {
        let sent = dispatcher.send_next(tracer, clock, index_qs, data_q);
        emit_dispatch_gauges(
            tracer,
            clock,
            audit,
            index_qs,
            sent,
            dispatcher.in_flight.len(),
        );
    }

    let mut cache: HashMap<u64, NativeEnvelope> = HashMap::new();
    for rcvd in 0..num_batches {
        let wait_start = clock.now();
        let env = 'recv: {
            if let Some(env) = cache.remove(&rcvd) {
                // Served from the reorder buffer: the paper's 1 µs
                // "no waiting" marker, with the queue delay measured to
                // the moment the wait began.
                let _overhead = tracer.on_batch_wait(
                    MAIN_OS_PID,
                    rcvd,
                    wait_start,
                    Span::from_micros(1),
                    true,
                    wait_start.saturating_since(env.produced_at),
                );
                audit_rec(
                    audit,
                    "pinned_cache_batches",
                    SyncOp::Gauge {
                        value: cache.len() as f64,
                    },
                );
                emit_gauge(tracer, clock, "pinned_cache_batches", cache.len() as f64);
                break 'recv env;
            }
            loop {
                let popped = match data_q.pop_timeout(duration_of(options.status_check)) {
                    Some(env) => Some(env),
                    None => {
                        // Liveness check. Marking happens under the
                        // liveness lock with the data queue observed
                        // empty, so no marked worker can have an
                        // envelope in flight.
                        let mut newly_dead = Vec::new();
                        let recheck = {
                            let mut dead = liveness.lock().unwrap_or_else(PoisonError::into_inner);
                            audit_rec(audit, LIVENESS_OBJ, SyncOp::LockAcquire);
                            let recheck = match data_q.try_pop() {
                                Some(env) => Some(env),
                                None => {
                                    let now = clock.now();
                                    for w in 0..workers {
                                        if !dead[w] && kill_times[w].is_some_and(|at| now >= at) {
                                            dead[w] = true;
                                            audit_rec(
                                                audit,
                                                LIVENESS_OBJ,
                                                SyncOp::MarkDead { worker: w },
                                            );
                                            newly_dead.push(w);
                                        }
                                    }
                                    None
                                }
                            };
                            audit_rec(audit, LIVENESS_OBJ, SyncOp::LockRelease);
                            recheck
                        };
                        if recheck.is_none() {
                            for w in newly_dead {
                                let orphans = dispatcher.mark_dead(w);
                                let _overhead =
                                    tracer.on_worker_died(worker_os_pid(w), clock.now());
                                if dispatcher.alive() == 0 {
                                    shutdown.store(true, Ordering::Release);
                                    return Err(JobError::AllWorkersDied {
                                        workers,
                                        outstanding: dispatcher.in_flight.len()
                                            + dispatcher.redispatch.len(),
                                    });
                                }
                                for id in orphans {
                                    audit_rec(
                                        audit,
                                        DISPATCHER_OBJ,
                                        SyncOp::Redispatch { batch: id, from: w },
                                    );
                                    let sent =
                                        dispatcher.send_next(tracer, clock, index_qs, data_q);
                                    emit_dispatch_gauges(
                                        tracer,
                                        clock,
                                        audit,
                                        index_qs,
                                        sent,
                                        dispatcher.in_flight.len(),
                                    );
                                    if let Some((to, _)) = dispatcher.in_flight.get(&id) {
                                        let _overhead = tracer.on_batch_redispatched(
                                            id,
                                            worker_os_pid(w),
                                            worker_os_pid(*to),
                                            clock.now(),
                                        );
                                    }
                                }
                            }
                            continue;
                        }
                        recheck
                    }
                };
                let Some(mut env) = popped else { continue };
                let depth = data_q.audited_len("queue_depth.data_queue");
                emit_gauge(tracer, clock, "queue_depth.data_queue", depth as f64);
                dispatcher.batch_returned(&env);
                audit_rec(
                    audit,
                    "in_flight_batches",
                    SyncOp::Gauge {
                        value: dispatcher.in_flight.len() as f64,
                    },
                );
                emit_gauge(
                    tracer,
                    clock,
                    "in_flight_batches",
                    dispatcher.in_flight.len() as f64,
                );
                if env.batch_id == rcvd {
                    // One clock read serves as both the wait's end and
                    // the delivery point, making the linter's
                    // queue-delay identity exact.
                    let delivered_at = clock.now();
                    let _overhead = tracer.on_batch_wait(
                        MAIN_OS_PID,
                        rcvd,
                        wait_start,
                        delivered_at.since(wait_start),
                        false,
                        delivered_at.saturating_since(env.produced_at),
                    );
                    break 'recv env;
                }
                // Out-of-order arrival: pin (a no-op natively) and stash.
                env.pinned = true;
                cache.insert(env.batch_id, env);
                audit_rec(
                    audit,
                    "pinned_cache_batches",
                    SyncOp::Gauge {
                        value: cache.len() as f64,
                    },
                );
                emit_gauge(tracer, clock, "pinned_cache_batches", cache.len() as f64);
            }
        };

        // Refill after each returned batch. The policy decides the count
        // (round-robin: exactly one, as PyTorch's `_process_data` does);
        // the dispatcher clamps it to the protocol's in-flight bound.
        let refill = dispatcher.refill_quota(index_qs, data_q);
        if let Some(target) = refill.resized_to {
            let _overhead = tracer.on_prefetch_resized(target, clock.now());
        }
        for _ in 0..refill.count {
            let sent = dispatcher.send_next(tracer, clock, index_qs, data_q);
            emit_dispatch_gauges(
                tracer,
                clock,
                audit,
                index_qs,
                sent,
                dispatcher.in_flight.len(),
            );
        }

        let payload = match env.payload {
            Ok(p) => p,
            Err(error) => {
                shutdown.store(true, Ordering::Release);
                for (w, q) in index_qs.iter().enumerate() {
                    if !dispatcher.dead[w] {
                        q.push(NativeMsg::Shutdown);
                    }
                }
                return Err(JobError::Sample {
                    batch_id: env.batch_id,
                    worker: env.worker,
                    error,
                });
            }
        };

        let consume_start = clock.now();
        if options.emulate_gpu {
            std::thread::sleep(duration_of(
                gpu.h2d_span(payload.bytes) + gpu.step_span(payload.len),
            ));
        }
        let _overhead = tracer.on_batch_consumed(
            MAIN_OS_PID,
            rcvd,
            consume_start,
            clock.now().since(consume_start),
            payload.len,
        );
    }

    shutdown.store(true, Ordering::Release);
    for q in index_qs {
        q.push(NativeMsg::Shutdown);
    }
    Ok(())
}

impl ExecutionBackend for NativeBackend {
    fn name(&self) -> &'static str {
        "native"
    }

    fn run(&self, job: TrainingJob) -> Result<JobReport, JobError> {
        job.loader.validate().map_err(JobError::InvalidConfig)?;
        let TrainingJob {
            machine,
            dataset,
            storage: _,
            loader,
            gpu,
            tracer,
            hw_profiler,
            seed,
            epochs,
            faults,
            controller: _,
            mutation: _,
        } = job;

        let epochs = epochs.max(1) as u64;
        let batch_sampler = BatchSampler {
            batch_size: loader.batch_size,
            drop_last: loader.drop_last,
        };
        let mut batches = Vec::new();
        for epoch in 0..epochs {
            let order = loader.sampler.epoch_order(dataset.len(), epoch);
            batches.extend(batch_sampler.batches(&order));
        }
        let num_batches = batches.len() as u64;
        let total_samples: u64 = batches.iter().map(|b| b.len() as u64).sum();
        if num_batches == 0 {
            return Ok(JobReport {
                elapsed: Span::ZERO,
                batches: 0,
                samples: 0,
            });
        }

        let hints = batch_cost_hints(&*dataset, &loader, &batches);
        let workers = loader.num_workers;
        let clock = WallClock::new();
        let mut data_q: NativeQueue<NativeEnvelope> =
            NativeQueue::new("data_queue", loader.data_queue_cap);
        let mut index_qs: Vec<NativeQueue<NativeMsg>> = (0..workers)
            .map(|w| NativeQueue::new(format!("index_queue_{w}"), None))
            .collect();
        if let Some(feed) = &self.audit {
            feed.register_thread(MAIN_OS_PID);
            // Only the data queue enacts queue-level mutations
            // (SkipNotify suppresses its consumer wake-up).
            data_q.set_audit(
                Arc::clone(feed),
                |env: &NativeEnvelope| Some(env.batch_id),
                self.audit_mutation,
            );
            for q in &mut index_qs {
                q.set_audit(
                    Arc::clone(feed),
                    |msg: &NativeMsg| match msg {
                        NativeMsg::Batch { id, .. } => Some(*id),
                        NativeMsg::Shutdown => None,
                    },
                    AuditMutation::None,
                );
            }
        }
        let liveness = Mutex::new(vec![false; workers]);
        if let (AuditMutation::LockOrder, Some(feed)) = (self.audit_mutation, &self.audit) {
            // Seed the inversion once before any worker exists: the
            // canonical order everywhere else is liveness → data_queue,
            // so this data_queue → liveness nesting closes a cycle in
            // the lock-order graph deterministically (no thread can
            // contend yet, hence no actual deadlock is possible here).
            data_q.with_lock(|| {
                let dead = liveness.lock().unwrap_or_else(PoisonError::into_inner);
                feed.record(LIVENESS_OBJ, SyncOp::LockAcquire);
                feed.record(LIVENESS_OBJ, SyncOp::LockRelease);
                drop(dead);
            });
        }
        let shutdown = AtomicBool::new(false);
        let shared = WorkerShared {
            clock: &clock,
            tracer: &*tracer,
            dataset: &*dataset,
            data_q: &data_q,
            liveness: &liveness,
            shutdown: &shutdown,
            audit: self.audit.as_deref(),
            audit_mutation: self.audit_mutation,
        };

        let outcome = std::thread::scope(|scope| {
            for (w, index_q) in index_qs.iter().enumerate() {
                let shared = &shared;
                let machine = &machine;
                let faults = &faults;
                let hw_profiler = hw_profiler.clone();
                let feed = self.feed.clone();
                // The OS refusing a thread at job start leaves nothing to
                // run the epoch with; there is no partial-failure mode to
                // report through.
                #[allow(clippy::expect_used)]
                std::thread::Builder::new()
                    .name(format!("dataloader{w}"))
                    .spawn_scoped(scope, move || {
                        native_worker_loop(
                            shared,
                            w,
                            machine,
                            hw_profiler,
                            feed,
                            index_q,
                            seed,
                            faults,
                        );
                    })
                    .expect("failed to spawn DataLoader worker thread");
            }
            native_main_loop(
                &shared,
                &self.options,
                &index_qs,
                &loader,
                &gpu,
                batches,
                hints,
                &faults,
            )
        });
        outcome?;
        // Measured after every thread has joined, so no trace record ends
        // past the reported elapsed time.
        Ok(JobReport {
            elapsed: clock.elapsed(),
            batches: num_batches,
            samples: total_samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sampler;
    use crate::tracer::NullTracer;
    use lotus_data::DType;
    use lotus_transforms::Sample;
    use lotus_uarch::{Machine, MachineConfig};

    #[test]
    fn queue_is_fifo_and_counts() {
        let q: NativeQueue<u32> = NativeQueue::new("q", None);
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), 1);
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.name(), "q");
    }

    #[test]
    fn bounded_queue_refuses_and_unblocks() {
        let q: NativeQueue<u32> = NativeQueue::new("q", Some(1));
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(2));
        std::thread::scope(|scope| {
            let pusher = scope.spawn(|| q.push(3)); // blocks until the pop
            std::thread::sleep(Duration::from_millis(5));
            assert_eq!(q.pop(), 1);
            pusher.join().unwrap();
        });
        assert_eq!(q.pop(), 3);
    }

    #[test]
    fn pop_timeout_expires_on_empty_queue() {
        let q: NativeQueue<u32> = NativeQueue::new("q", None);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), None);
        q.push(7);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Some(7));
    }

    #[test]
    fn queue_hands_items_across_threads() {
        let q: NativeQueue<u64> = NativeQueue::new("q", Some(4));
        let total: u64 = std::thread::scope(|scope| {
            let producer = scope.spawn(|| {
                for i in 0..100u64 {
                    q.push(i);
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += q.pop();
            }
            producer.join().unwrap();
            sum
        });
        assert_eq!(total, (0..100).sum());
    }

    /// A dataset of fixed-shape metadata tensors: near-zero real work, so
    /// protocol tests run fast while exercising the full engine.
    struct TinyDataset {
        items: u64,
    }

    impl Dataset for TinyDataset {
        fn len(&self) -> u64 {
            self.items
        }

        fn get_item(
            &self,
            _index: u64,
            ctx: &mut TransformCtx<'_>,
            observer: &mut dyn TransformObserver,
        ) -> Result<Sample, PipelineError> {
            let start = ctx.cpu.cursor();
            observer.on_transform("Loader", start, Span::ZERO);
            Ok(Sample::tensor_meta(&[4, 4], DType::F32))
        }
    }

    fn tiny_job(items: u64, workers: usize, tracer: Arc<dyn Tracer>) -> TrainingJob {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        TrainingJob {
            machine,
            dataset: Arc::new(TinyDataset { items }),
            storage: None,
            loader: DataLoaderConfig {
                batch_size: 4,
                num_workers: workers,
                prefetch_factor: 2,
                data_queue_cap: None,
                pin_memory: true,
                sampler: Sampler::Sequential,
                drop_last: true,
                policy: crate::policy::SchedulingPolicyKind::RoundRobin,
            },
            gpu: GpuConfig::v100(1, Span::from_micros(10)),
            tracer,
            hw_profiler: None,
            seed: 7,
            epochs: 1,
            faults: FaultPlan::default(),
            controller: None,
            mutation: crate::loader::LoaderMutation::None,
        }
    }

    #[test]
    fn native_backend_consumes_every_batch() {
        let report = NativeBackend::default()
            .run(tiny_job(32, 2, Arc::new(NullTracer)))
            .unwrap();
        assert_eq!(report.batches, 8);
        assert_eq!(report.samples, 32);
    }

    #[test]
    fn native_backend_matches_sim_backend_totals() {
        use crate::backend::SimBackend;
        let sim = SimBackend
            .run(tiny_job(24, 3, Arc::new(NullTracer)))
            .unwrap();
        let native = NativeBackend::default()
            .run(tiny_job(24, 3, Arc::new(NullTracer)))
            .unwrap();
        assert_eq!((sim.batches, sim.samples), (native.batches, native.samples));
    }

    #[test]
    fn native_backend_ships_sample_errors_in_band() {
        let mut job = tiny_job(32, 2, Arc::new(NullTracer));
        job.faults = FaultPlan::new(7).inject_sample_errors("Loader", 1.0);
        let err = NativeBackend::default().run(job).unwrap_err();
        assert!(
            matches!(err, JobError::Sample { .. }),
            "expected an in-band sample error, got {err:?}"
        );
    }

    #[test]
    fn native_backend_fails_when_every_worker_dies() {
        let mut job = tiny_job(64, 2, Arc::new(NullTracer));
        job.faults = FaultPlan::new(7)
            .kill_process("dataloader0", Time::ZERO)
            .kill_process("dataloader1", Time::ZERO);
        let backend = NativeBackend::new(NativeOptions {
            status_check: Span::from_millis(5),
            emulate_gpu: false,
        });
        let err = backend.run(job).unwrap_err();
        assert!(
            matches!(err, JobError::AllWorkersDied { .. }),
            "expected AllWorkersDied, got {err:?}"
        );
    }

    #[test]
    fn native_backend_rejects_invalid_config() {
        let mut job = tiny_job(8, 1, Arc::new(NullTracer));
        job.loader.batch_size = 0;
        let err = NativeBackend::default().run(job).unwrap_err();
        assert!(matches!(err, JobError::InvalidConfig(_)));
    }

    /// A dataset that panics outright (not an in-band `Err`) on one
    /// index — the native analog of a segfaulting Python worker.
    struct PanickingDataset {
        items: u64,
        panic_at: u64,
    }

    impl Dataset for PanickingDataset {
        fn len(&self) -> u64 {
            self.items
        }

        fn get_item(
            &self,
            index: u64,
            ctx: &mut TransformCtx<'_>,
            observer: &mut dyn TransformObserver,
        ) -> Result<Sample, PipelineError> {
            assert!(index != self.panic_at, "dataset exploded on index {index}");
            let start = ctx.cpu.cursor();
            observer.on_transform("Loader", start, Span::ZERO);
            Ok(Sample::tensor_meta(&[4, 4], DType::F32))
        }
    }

    #[test]
    fn panicking_worker_yields_clean_job_error_not_a_consumer_panic() {
        let mut job = tiny_job(32, 2, Arc::new(NullTracer));
        job.dataset = Arc::new(PanickingDataset {
            items: 32,
            panic_at: 9,
        });
        // Must not propagate the panic: the worker catches it, ships a
        // WorkerPanic in-band, and the consumer returns a typed error.
        let err = NativeBackend::default().run(job).unwrap_err();
        match err {
            JobError::Sample { error, .. } => assert!(
                matches!(&error, PipelineError::WorkerPanic { reason }
                    if reason.contains("dataset exploded on index 9")),
                "expected WorkerPanic carrying the panic message, got {error:?}"
            ),
            other => panic!("expected an in-band Sample error, got {other:?}"),
        }
    }

    #[test]
    fn poisoned_queue_lock_recovers() {
        let q: Arc<NativeQueue<u32>> = Arc::new(NativeQueue::new("q", None));
        let q2 = Arc::clone(&q);
        // Poison the state mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _guard = q2.lock_state();
            panic!("poison the queue");
        })
        .join();
        // Every operation still works after the poisoning.
        q.push(1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.pop(), 2);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn closed_queue_refuses_sends_and_drains_to_none() {
        let q: NativeQueue<u32> = NativeQueue::new("q", None);
        assert!(q.push_unless_closed(1).is_ok());
        assert!(q.push_unless_closed(2).is_ok());
        assert!(!q.is_closed());
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.push_unless_closed(3), Err(3));
        // The backlog committed before the close is still delivered.
        assert_eq!(q.pop_until_closed(), Some(1));
        assert_eq!(q.pop_until_closed(), Some(2));
        assert_eq!(q.pop_until_closed(), None);
    }

    #[test]
    fn close_unblocks_a_waiting_consumer() {
        let q: NativeQueue<u32> = NativeQueue::new("q", None);
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| q.pop_until_closed());
            std::thread::sleep(Duration::from_millis(5));
            q.close();
            assert_eq!(consumer.join().unwrap(), None);
        });
    }

    #[test]
    fn close_unblocks_a_waiting_producer() {
        let q: NativeQueue<u32> = NativeQueue::new("q", Some(1));
        assert!(q.push_unless_closed(1).is_ok());
        std::thread::scope(|scope| {
            let producer = scope.spawn(|| q.push_unless_closed(2)); // blocks: full
            std::thread::sleep(Duration::from_millis(5));
            q.close();
            assert_eq!(producer.join().unwrap(), Err(2));
        });
        assert_eq!(q.pop_until_closed(), Some(1));
        assert_eq!(q.pop_until_closed(), None);
    }

    #[test]
    fn audited_queue_records_balanced_sync_events() {
        use crate::audit::{AuditFeed, AuditMutation, SyncOp};
        let feed = Arc::new(AuditFeed::new());
        let mut q: NativeQueue<u32> = NativeQueue::new("q", Some(2));
        q.set_audit(Arc::clone(&feed), |_| None, AuditMutation::None);
        q.push(1);
        assert_eq!(q.try_push(9), Ok(()));
        assert_eq!(q.try_push(9), Err(9)); // full
        assert_eq!(q.pop(), 1);
        assert_eq!(q.try_pop(), Some(9));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
        let events = feed.drain();
        let count = |f: &dyn Fn(&SyncOp) -> bool| events.iter().filter(|e| f(&e.op)).count();
        let acquires = count(&|op| matches!(op, SyncOp::LockAcquire | SyncOp::WaitReturn { .. }));
        let releases = count(&|op| matches!(op, SyncOp::LockRelease | SyncOp::WaitStart { .. }));
        assert_eq!(acquires, releases, "unbalanced lock transitions");
        assert_eq!(count(&|op| matches!(op, SyncOp::SendCommit { .. })), 2);
        assert_eq!(count(&|op| matches!(op, SyncOp::RecvCommit { .. })), 2);
        assert_eq!(count(&|op| matches!(op, SyncOp::Notify { .. })), 4);
    }

    #[test]
    fn audited_native_run_streams_events() {
        use crate::audit::{AuditFeed, SyncOp};
        let feed = Arc::new(AuditFeed::new());
        let report = NativeBackend::default()
            .with_audit(Arc::clone(&feed))
            .run(tiny_job(32, 2, Arc::new(NullTracer)))
            .unwrap();
        assert_eq!(report.batches, 8);
        let events = feed.drain();
        assert!(!events.is_empty());
        // Every delivered batch was committed to the data queue exactly
        // once and received exactly once.
        let mut sent: Vec<u64> = Vec::new();
        let mut rcvd: Vec<u64> = Vec::new();
        for e in events.iter().filter(|e| e.obj == "data_queue") {
            match e.op {
                SyncOp::SendCommit { batch: Some(id) } => sent.push(id),
                SyncOp::RecvCommit { batch: Some(id) } => rcvd.push(id),
                _ => {}
            }
        }
        sent.sort_unstable();
        rcvd.sort_unstable();
        assert_eq!(sent, (0..8).collect::<Vec<u64>>());
        assert_eq!(rcvd, (0..8).collect::<Vec<u64>>());
        // Sequence numbers are strictly increasing in drain order.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn detached_audit_feed_stays_empty_through_a_run() {
        let feed = Arc::new(crate::audit::AuditFeed::new());
        feed.detach();
        NativeBackend::default()
            .with_audit(Arc::clone(&feed))
            .run(tiny_job(16, 2, Arc::new(NullTracer)))
            .unwrap();
        assert!(feed.is_empty());
        assert_eq!(feed.overhead_ns(), 0);
    }

    #[test]
    fn every_policy_completes_an_epoch_on_the_native_backend() {
        for kind in crate::policy::SchedulingPolicyKind::ALL {
            let mut job = tiny_job(48, 3, Arc::new(NullTracer));
            job.loader.policy = kind;
            let report = NativeBackend::default()
                .run(job)
                .unwrap_or_else(|e| panic!("{kind} failed: {e:?}"));
            assert_eq!((report.batches, report.samples), (12, 48), "{kind}");
        }
    }

    #[test]
    fn native_backend_survives_one_worker_death() {
        let mut job = tiny_job(64, 2, Arc::new(NullTracer));
        // Kill worker 1 immediately: every batch must still arrive via
        // redispatch to worker 0.
        job.faults = FaultPlan::new(7).kill_process("dataloader1", Time::ZERO);
        let backend = NativeBackend::new(NativeOptions {
            status_check: Span::from_millis(5),
            emulate_gpu: false,
        });
        let report = backend.run(job).unwrap();
        assert_eq!(report.batches, 16);
        assert_eq!(report.samples, 64);
    }
}
