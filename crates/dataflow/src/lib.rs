//! # lotus-dataflow — PyTorch DataLoader data-flow model
//!
//! A faithful re-implementation of `torch.utils.data.DataLoader`'s
//! asynchronous multi-process protocol (§II-B of the Lotus paper) on the
//! deterministic simulator:
//!
//! * the **main process** pre-fills per-worker *index queues* with
//!   `prefetch_factor` batches, then consumes batches **in order** from the
//!   single shared *data queue*, pinning and caching out-of-order arrivals;
//! * **DataLoader workers** loop over their index queue, fetch (load +
//!   transform + collate) each batch, and push it back through the data
//!   queue;
//! * a **GPU group** executes one synchronous training step per consumed
//!   batch.
//!
//! Instrumentation hooks ([`Tracer`]) expose exactly the events LotusTrace
//! records (\[T1\]/\[T2\]/\[T3\]) and charge per-profiler overhead.
//!
//! See [`TrainingJob`] for the entry point.

#![warn(missing_docs)]
// The whole workspace is safe Rust; determinism and auditability both
// lean on it. Gate any future exception through a crate-level decision.
#![deny(unsafe_code)]
// Library code must surface failures as typed errors; every remaining
// panic site carries a targeted `#[allow]` with its invariant argument.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod audit;
mod backend;
mod config;
mod dataset;
mod error;
mod loader;
mod native;
mod pipeline;
mod policy;
mod tracer;

pub use audit::{AuditFeed, AuditMutation, CvKind, SyncEvent, SyncOp, UNKNOWN_TID};
pub use backend::{ExecutionBackend, SimBackend};
pub use config::{DataLoaderConfig, GpuConfig};
pub use dataset::{BatchSampler, Dataset, Sampler};
pub use error::JobError;
pub use loader::{worker_os_pid, JobReport, LoaderMutation, TrainingJob, MAIN_OS_PID};
pub use native::{NativeBackend, NativeOptions, NativeQueue};
pub use pipeline::{Pipeline, Source};
pub use policy::{
    BatchRef, DispatchContext, Lane, Placement, Refill, SchedulingPolicy, SchedulingPolicyKind,
};
pub use tracer::{NullTracer, Tracer};

pub use lotus_sim::FaultPlan;
