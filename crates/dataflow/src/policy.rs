//! Pluggable index-batch scheduling policies.
//!
//! PyTorch hardwires one dispatch discipline — a strict round-robin
//! `_worker_queue_idx_cycle` — and the Lotus paper shows how that
//! interacts badly with skewed per-sample costs: a worker stuck on a slow
//! sample keeps receiving its round-robin share while its siblings drain
//! and idle. MinatoLoader recovers the lost throughput by segregating
//! slow samples; tf.data argues dispatch should be a *policy*, not a
//! loop. This module factors the decision points of both engines
//! (`loader.rs` and `native.rs`) behind a [`SchedulingPolicy`] trait so
//! alternatives compose with the rest of the protocol — orphan
//! redispatch, in-order consumption, refill-per-returned-batch — without
//! touching it.
//!
//! A policy decides exactly three things:
//!
//! 1. **Placement** ([`SchedulingPolicy::place`]): which live worker's
//!    index queue receives the next batch.
//! 2. **Refill** ([`SchedulingPolicy::refill`]): how many index batches
//!    to dispatch after a finished batch came back (the PyTorch protocol
//!    refills exactly one).
//! 3. Nothing else. Queues stay FIFO, orphans of dead workers are
//!    re-sent in batch-id order before fresh batches, and the main loop
//!    still consumes strictly in order — so every policy inherits the
//!    protocol's sample-conservation and dispatch-discipline invariants,
//!    which `lotus check` verifies per policy.
//!
//! Feedback flows back through [`SchedulingPolicy::on_batch_returned`]
//! (observed fetch cost, feeding SlowLane's per-sample EWMA) and
//! [`SchedulingPolicy::on_worker_died`].

use std::collections::HashMap;

/// Which scheduling policy drives index-batch dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulingPolicyKind {
    /// PyTorch's strict `_worker_queue_idx_cycle`: rotate over live
    /// workers in id order. The reference policy — byte-identical to the
    /// engine's historical behavior.
    #[default]
    RoundRobin,
    /// Load-aware stealing: each batch goes to the least-loaded live
    /// worker, where load counts both the queued index batches and the
    /// batches the worker is still processing (dispatched but not yet
    /// returned). When that differs from the round-robin target, the
    /// batch is "stolen" from the backed-up worker and a steal instant
    /// is traced. Under uniform costs every load ties and the policy is
    /// indistinguishable from round-robin; under skewed costs it stops
    /// feeding fresh batches to a worker stuck on a slow sample.
    WorkStealing,
    /// MinatoLoader-style fast/slow segregation: batches whose estimated
    /// per-sample cost (dataset hint + online EWMA of observed fetches)
    /// is an outlier are confined to a dedicated slow lane of workers so
    /// they never head-of-line-block the fast lane.
    SlowLane,
    /// Round-robin placement with a prefetch window resized online from
    /// the live data-queue depth gauge: shrinks toward 1 when batches
    /// pile up unconsumed, grows back toward the configured
    /// `prefetch_factor` when the consumer starves.
    AdaptivePrefetch,
}

impl SchedulingPolicyKind {
    /// All shipped policies, in bake-off order.
    pub const ALL: [SchedulingPolicyKind; 4] = [
        SchedulingPolicyKind::RoundRobin,
        SchedulingPolicyKind::WorkStealing,
        SchedulingPolicyKind::SlowLane,
        SchedulingPolicyKind::AdaptivePrefetch,
    ];

    /// The CLI / fingerprint name.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            SchedulingPolicyKind::RoundRobin => "round-robin",
            SchedulingPolicyKind::WorkStealing => "work-stealing",
            SchedulingPolicyKind::SlowLane => "slow-lane",
            SchedulingPolicyKind::AdaptivePrefetch => "adaptive-prefetch",
        }
    }

    /// Parses a CLI name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(s: &str) -> Result<SchedulingPolicyKind, String> {
        match s {
            "round-robin" | "rr" => Ok(SchedulingPolicyKind::RoundRobin),
            "work-stealing" | "ws" => Ok(SchedulingPolicyKind::WorkStealing),
            "slow-lane" | "sl" => Ok(SchedulingPolicyKind::SlowLane),
            "adaptive-prefetch" | "ap" => Ok(SchedulingPolicyKind::AdaptivePrefetch),
            other => Err(format!(
                "unknown policy '{other}' (expected round-robin, work-stealing, \
                 slow-lane or adaptive-prefetch)"
            )),
        }
    }

    /// True when the policy consumes per-batch cost estimates, so the
    /// engine should precompute dataset cost hints.
    #[must_use]
    pub fn is_cost_aware(&self) -> bool {
        matches!(self, SchedulingPolicyKind::SlowLane)
    }

    /// Builds the runtime state for one job over `workers` workers with
    /// the configured per-worker `prefetch_factor`.
    #[must_use]
    pub fn build(&self, workers: usize, prefetch_factor: usize) -> Box<dyn SchedulingPolicy> {
        match self {
            SchedulingPolicyKind::RoundRobin => Box::new(RoundRobin { cycle: 0 }),
            SchedulingPolicyKind::WorkStealing => Box::new(WorkStealing {
                cycle: 0,
                outstanding: vec![0; workers],
            }),
            SchedulingPolicyKind::SlowLane => Box::new(SlowLane::new(workers)),
            SchedulingPolicyKind::AdaptivePrefetch => Box::new(AdaptivePrefetch {
                cycle: 0,
                target: prefetch_factor,
            }),
        }
    }
}

impl std::fmt::Display for SchedulingPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which lane a [`SchedulingPolicyKind::SlowLane`] placement chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// The default lane for ordinary batches.
    Fast,
    /// The segregated lane for estimated-slow batches.
    Slow,
}

impl Lane {
    /// The trace label ("fast" / "slow").
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Lane::Fast => "fast",
            Lane::Slow => "slow",
        }
    }
}

/// The candidate batch a placement decision is about.
#[derive(Debug, Clone, Copy)]
pub struct BatchRef<'a> {
    /// Batch id.
    pub id: u64,
    /// Dataset indices in the batch.
    pub indices: &'a [u64],
    /// Mean dataset-provided cost hint over the batch (arbitrary units,
    /// e.g. stored bytes per sample), when the dataset offers one.
    pub hint: Option<f64>,
}

/// A read-only snapshot of the loader state a policy decides from.
#[derive(Debug, Clone, Copy)]
pub struct DispatchContext<'a> {
    /// Per-worker index-queue depths, sampled just before the dispatch.
    pub queue_depths: &'a [usize],
    /// Per-worker death flags; at least one worker is live when
    /// [`SchedulingPolicy::place`] is called.
    pub dead: &'a [bool],
    /// Batches dispatched but not yet returned through the data queue.
    pub in_flight: usize,
    /// Current depth of the shared data queue (preprocessed, unconsumed).
    pub data_queue_depth: usize,
    /// The configured per-worker prefetch factor — the protocol's hard
    /// upper bound on the in-flight window.
    pub prefetch_factor: usize,
    /// True when the batch is a dead worker's orphan being re-sent.
    pub redispatch: bool,
}

impl DispatchContext<'_> {
    /// Number of live workers.
    #[must_use]
    pub fn live(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }
}

/// Where a batch goes, and which policy-specific instants to trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The live worker whose index queue receives the batch.
    pub worker: usize,
    /// The round-robin target the batch was taken from, when the policy
    /// overrode it (traced as a steal instant).
    pub stolen_from: Option<usize>,
    /// The lane the batch was classified into, for lane-aware policies
    /// (traced as a lane-assignment instant).
    pub lane: Option<Lane>,
}

impl Placement {
    fn plain(worker: usize) -> Placement {
        Placement {
            worker,
            stolen_from: None,
            lane: None,
        }
    }
}

/// How many batches to dispatch after one returned, and whether the
/// prefetch window was resized (traced as a resize instant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Refill {
    /// Number of index batches to dispatch now. The engine additionally
    /// caps the in-flight inventory at
    /// `prefetch_factor * num_workers`, so a policy can never exceed
    /// the protocol's bound.
    pub count: usize,
    /// The new per-worker prefetch target when it changed.
    pub resized_to: Option<usize>,
}

impl Refill {
    /// The protocol default: exactly one batch per returned batch.
    #[must_use]
    pub fn one() -> Refill {
        Refill {
            count: 1,
            resized_to: None,
        }
    }
}

/// A stateful dispatch discipline driving one training job. One instance
/// serves either engine (simulated or native); it sees only abstract
/// queue depths and ids, never clocks or queues.
pub trait SchedulingPolicy: Send {
    /// The kind this policy was built from.
    fn kind(&self) -> SchedulingPolicyKind;

    /// Chooses the live worker that receives `batch`. Called only when
    /// `ctx.live() > 0`; must return a live worker.
    fn place(&mut self, batch: &BatchRef<'_>, ctx: &DispatchContext<'_>) -> Placement;

    /// Feedback: `worker` returned a finished batch over `indices` whose
    /// fetch (preprocessing) took `fetch_ns`.
    fn on_batch_returned(&mut self, worker: usize, indices: &[u64], fetch_ns: u64) {
        let _ = (worker, indices, fetch_ns);
    }

    /// Feedback: `worker` was discovered dead.
    fn on_worker_died(&mut self, worker: usize) {
        let _ = worker;
    }

    /// How many index batches to dispatch after a returned batch —
    /// `ctx.in_flight` already excludes the batch that just returned.
    /// The default is the PyTorch protocol: exactly one.
    fn refill(&mut self, ctx: &DispatchContext<'_>) -> Refill {
        let _ = ctx;
        Refill::one()
    }
}

/// Advances `cycle` over the ring of workers to the first live one and
/// returns it, leaving `cycle` just past the returned slot — PyTorch's
/// `_worker_queue_idx_cycle` restricted to live workers.
fn next_live(cycle: &mut usize, dead: &[bool]) -> usize {
    let n = dead.len();
    debug_assert!(dead.iter().any(|&d| !d), "placement needs a live worker");
    let mut w = *cycle % n;
    while dead[w] {
        w = (w + 1) % n;
    }
    *cycle = (w + 1) % n;
    w
}

/// PyTorch's strict round-robin cycle over live workers.
struct RoundRobin {
    cycle: usize,
}

impl SchedulingPolicy for RoundRobin {
    fn kind(&self) -> SchedulingPolicyKind {
        SchedulingPolicyKind::RoundRobin
    }

    fn place(&mut self, _batch: &BatchRef<'_>, ctx: &DispatchContext<'_>) -> Placement {
        Placement::plain(next_live(&mut self.cycle, ctx.dead))
    }
}

/// Load-aware stealing around the round-robin cycle.
///
/// Index-queue depth alone is a poor load signal here: the protocol
/// refills only after the main process consumed a batch, by which time
/// every worker has long since drained its queue — the depths tie at
/// zero and say nothing about the worker still grinding a slow sample.
/// So the policy keeps its own inventory of batches it placed that have
/// not come back, and treats `queued + still-processing` as the load.
struct WorkStealing {
    cycle: usize,
    /// Batches placed on each worker that have not yet returned.
    outstanding: Vec<usize>,
}

impl WorkStealing {
    /// Queued index batches plus dispatched-but-unreturned ones — the
    /// work the worker must finish before a fresh batch would start.
    fn load(&self, w: usize, ctx: &DispatchContext<'_>) -> usize {
        // `outstanding` already counts queued batches, so take the max
        // rather than the sum in case the engine's queue view is ahead.
        self.outstanding[w].max(ctx.queue_depths[w])
    }
}

impl SchedulingPolicy for WorkStealing {
    fn kind(&self) -> SchedulingPolicyKind {
        SchedulingPolicyKind::WorkStealing
    }

    fn place(&mut self, _batch: &BatchRef<'_>, ctx: &DispatchContext<'_>) -> Placement {
        let rr = next_live(&mut self.cycle, ctx.dead);
        // The least-loaded live worker, lowest id on ties. The dispatcher
        // fails the job with AllWorkersDied before ever placing a batch
        // with no live worker, so the filter cannot come up empty.
        #[allow(clippy::expect_used)]
        let best = (0..ctx.dead.len())
            .filter(|&w| !ctx.dead[w])
            .min_by_key(|&w| self.load(w, ctx))
            .expect("placement needs a live worker");
        let placement = if best != rr && self.load(best, ctx) < self.load(rr, ctx) {
            Placement {
                worker: best,
                stolen_from: Some(rr),
                lane: None,
            }
        } else {
            Placement::plain(rr)
        };
        self.outstanding[placement.worker] += 1;
        placement
    }

    fn on_batch_returned(&mut self, worker: usize, _indices: &[u64], _fetch_ns: u64) {
        self.outstanding[worker] = self.outstanding[worker].saturating_sub(1);
    }

    fn on_worker_died(&mut self, worker: usize) {
        // Its orphans are re-placed through `place`, which re-counts them
        // on whichever survivor receives them.
        self.outstanding[worker] = 0;
    }
}

/// How much costlier than the running mean a batch's estimate must be to
/// count as slow.
const SLOW_THRESHOLD: f64 = 1.5;

/// EWMA smoothing weight for newly observed per-sample costs.
const EWMA_ALPHA: f64 = 0.3;

/// MinatoLoader-style fast/slow segregation driven by an online
/// per-sample cost model.
struct SlowLane {
    workers: usize,
    /// Workers `workers - slow_workers ..` form the slow lane; zero when
    /// there is only one worker (no segregation possible).
    slow_workers: usize,
    fast_cycle: usize,
    slow_cycle: usize,
    /// Learned per-sample fetch cost in ns (EWMA over observations).
    ewma: HashMap<u64, f64>,
    /// Running mean of observed per-sample costs.
    mean_ns: f64,
    observed: u64,
    /// Running mean of dataset cost hints, for the pre-observation prior.
    hint_mean: f64,
    hints_seen: u64,
}

impl SlowLane {
    fn new(workers: usize) -> SlowLane {
        // A quarter of the pool (at least one worker) serves the slow
        // lane, as long as that leaves the fast lane at least one worker.
        let slow_workers = if workers >= 2 { workers.div_ceil(4) } else { 0 };
        SlowLane {
            workers,
            slow_workers,
            fast_cycle: 0,
            slow_cycle: 0,
            ewma: HashMap::new(),
            mean_ns: 0.0,
            observed: 0,
            hint_mean: 0.0,
            hints_seen: 0,
        }
    }

    /// Classifies the batch: `Slow` when its estimated per-sample cost is
    /// an outlier against the running mean. Learned observations win;
    /// dataset hints serve as the prior before any index was observed.
    fn classify(&mut self, batch: &BatchRef<'_>) -> Lane {
        let known: Vec<f64> = batch
            .indices
            .iter()
            .filter_map(|i| self.ewma.get(i).copied())
            .collect();
        if !known.is_empty() && self.mean_ns > 0.0 {
            let est = known.iter().sum::<f64>() / known.len() as f64;
            return if est > SLOW_THRESHOLD * self.mean_ns {
                Lane::Slow
            } else {
                Lane::Fast
            };
        }
        if let Some(hint) = batch.hint {
            let lane = if self.hints_seen > 0 && hint > SLOW_THRESHOLD * self.hint_mean {
                Lane::Slow
            } else {
                Lane::Fast
            };
            self.hints_seen += 1;
            self.hint_mean += (hint - self.hint_mean) / self.hints_seen as f64;
            return lane;
        }
        Lane::Fast
    }

    fn lane_of(&self, worker: usize) -> Lane {
        if worker >= self.workers - self.slow_workers {
            Lane::Slow
        } else {
            Lane::Fast
        }
    }
}

impl SchedulingPolicy for SlowLane {
    fn kind(&self) -> SchedulingPolicyKind {
        SchedulingPolicyKind::SlowLane
    }

    fn place(&mut self, batch: &BatchRef<'_>, ctx: &DispatchContext<'_>) -> Placement {
        if self.slow_workers == 0 {
            return Placement::plain(next_live(&mut self.fast_cycle, ctx.dead));
        }
        let lane = self.classify(batch);
        // Rotate within the lane's live workers; fall back to any live
        // worker when the whole lane is dead.
        let lane_live = (0..self.workers).any(|w| !ctx.dead[w] && self.lane_of(w) == lane);
        let worker = if lane_live {
            let fast_count = self.workers - self.slow_workers;
            let cycle = match lane {
                Lane::Fast => &mut self.fast_cycle,
                Lane::Slow => &mut self.slow_cycle,
            };
            let in_lane = |w: usize| (w >= fast_count) == (lane == Lane::Slow);
            let mut w = next_live(cycle, ctx.dead);
            while !in_lane(w) {
                w = next_live(cycle, ctx.dead);
            }
            w
        } else {
            next_live(&mut self.fast_cycle, ctx.dead)
        };
        Placement {
            worker,
            stolen_from: None,
            lane: Some(lane),
        }
    }

    fn on_batch_returned(&mut self, _worker: usize, indices: &[u64], fetch_ns: u64) {
        if indices.is_empty() {
            return;
        }
        let per_sample = fetch_ns as f64 / indices.len() as f64;
        for &i in indices {
            let entry = self.ewma.entry(i).or_insert(per_sample);
            *entry = (1.0 - EWMA_ALPHA) * *entry + EWMA_ALPHA * per_sample;
        }
        self.observed += 1;
        self.mean_ns += (per_sample - self.mean_ns) / self.observed as f64;
    }
}

/// Round-robin placement with an online prefetch window.
struct AdaptivePrefetch {
    cycle: usize,
    /// Current per-worker prefetch target in `[1, prefetch_factor]`.
    target: usize,
}

impl SchedulingPolicy for AdaptivePrefetch {
    fn kind(&self) -> SchedulingPolicyKind {
        SchedulingPolicyKind::AdaptivePrefetch
    }

    fn place(&mut self, _batch: &BatchRef<'_>, ctx: &DispatchContext<'_>) -> Placement {
        Placement::plain(next_live(&mut self.cycle, ctx.dead))
    }

    fn refill(&mut self, ctx: &DispatchContext<'_>) -> Refill {
        // Preprocessed batches piling up unconsumed mean the producers
        // are ahead: shrink the window to cut queue memory. An empty
        // data queue at refill time means the consumer just waited: grow
        // back toward the configured factor.
        let old = self.target;
        if ctx.data_queue_depth >= 2 {
            self.target = self.target.saturating_sub(1).max(1);
        } else if ctx.data_queue_depth == 0 {
            self.target = (self.target + 1).min(ctx.prefetch_factor);
        }
        let desired = self.target * ctx.live().max(1);
        // Catch up (or drain down) by at most one extra batch per return,
        // and never let the pipeline run completely dry.
        let mut count = desired.saturating_sub(ctx.in_flight).min(2);
        if ctx.in_flight == 0 {
            count = count.max(1);
        }
        Refill {
            count,
            resized_to: (self.target != old).then_some(self.target),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        depths: &'a [usize],
        dead: &'a [bool],
        in_flight: usize,
        data_queue_depth: usize,
    ) -> DispatchContext<'a> {
        DispatchContext {
            queue_depths: depths,
            dead,
            in_flight,
            data_queue_depth,
            prefetch_factor: 2,
            redispatch: false,
        }
    }

    fn batch(id: u64, indices: &[u64]) -> BatchRef<'_> {
        BatchRef {
            id,
            indices,
            hint: None,
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in SchedulingPolicyKind::ALL {
            assert_eq!(SchedulingPolicyKind::parse(kind.as_str()), Ok(kind));
        }
        assert!(SchedulingPolicyKind::parse("fifo").is_err());
        assert_eq!(
            SchedulingPolicyKind::default(),
            SchedulingPolicyKind::RoundRobin
        );
    }

    #[test]
    fn round_robin_rotates_over_live_workers_only() {
        let mut p = SchedulingPolicyKind::RoundRobin.build(3, 2);
        let depths = [0, 0, 0];
        let alive = [false, false, false].map(|_| false);
        let order: Vec<usize> = (0..6)
            .map(|i| p.place(&batch(i, &[i]), &ctx(&depths, &alive, 0, 0)).worker)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
        // Worker 1 dies: the rotation continues over the survivors with
        // no phase drift.
        let dead = [false, true, false];
        let order: Vec<usize> = (6..12)
            .map(|i| p.place(&batch(i, &[i]), &ctx(&depths, &dead, 0, 0)).worker)
            .collect();
        assert_eq!(order, vec![0, 2, 0, 2, 0, 2]);
    }

    #[test]
    fn work_stealing_targets_the_shallowest_queue() {
        let mut p = SchedulingPolicyKind::WorkStealing.build(3, 2);
        let dead = [false, false, false];
        // Round-robin target 0 is backed up; worker 2 is empty.
        let placement = p.place(&batch(0, &[0]), &ctx(&[3, 2, 0], &dead, 0, 0));
        assert_eq!(placement.worker, 2);
        assert_eq!(placement.stolen_from, Some(0));
        // Balanced queues: no steal, plain round-robin (cycle advanced
        // past 0, so the target is worker 1).
        let placement = p.place(&batch(1, &[1]), &ctx(&[1, 1, 1], &dead, 0, 0));
        assert_eq!(placement.worker, 1);
        assert_eq!(placement.stolen_from, None);
    }

    #[test]
    fn work_stealing_tracks_outstanding_batches_not_just_queue_depth() {
        let mut p = SchedulingPolicyKind::WorkStealing.build(3, 2);
        let dead = [false, false, false];
        let depths = [0usize; 3];
        // Initial fill: with no feedback yet the loads tie at every step,
        // so placement is byte-identical to round-robin.
        let order: Vec<usize> = (0..6)
            .map(|i| {
                p.place(&batch(i, &[i]), &ctx(&depths, &dead, i as usize, 0))
                    .worker
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
        // Workers 1 and 2 returned everything; worker 0 returned one
        // batch and is stuck on its second. Queue depths read zero
        // everywhere — only the outstanding inventory knows worker 0 is
        // still busy.
        for w in [1, 1, 2, 2, 0] {
            p.on_batch_returned(w, &[0], 1_000);
        }
        // The cycle points at the busy worker 0: steal away from it.
        let placement = p.place(&batch(6, &[6]), &ctx(&depths, &dead, 1, 0));
        assert_eq!(placement.worker, 1, "avoid the busy worker");
        assert_eq!(placement.stolen_from, Some(0));
    }

    #[test]
    fn slow_lane_learns_and_segregates() {
        let mut p = SlowLane::new(4);
        assert_eq!(p.slow_workers, 1);
        let dead = [false; 4];
        let depths = [0usize; 4];
        // Teach the model: indices 0..8 cheap, 8..12 expensive.
        for b in 0..2u64 {
            let indices: Vec<u64> = (b * 4..b * 4 + 4).collect();
            p.on_batch_returned(0, &indices, 4_000);
        }
        p.on_batch_returned(1, &[8, 9, 10, 11], 400_000);
        // A batch of known-slow indices goes to the slow lane (worker 3).
        let placement = p.place(&batch(3, &[8, 9]), &ctx(&depths, &dead, 0, 0));
        assert_eq!(placement.lane, Some(Lane::Slow));
        assert_eq!(placement.worker, 3);
        // A batch of known-fast indices stays in the fast lane.
        let placement = p.place(&batch(4, &[0, 1]), &ctx(&depths, &dead, 0, 0));
        assert_eq!(placement.lane, Some(Lane::Fast));
        assert!(placement.worker < 3);
    }

    #[test]
    fn slow_lane_uses_hints_before_observations() {
        let mut p = SlowLane::new(4);
        let dead = [false; 4];
        let depths = [0usize; 4];
        // Establish a hint baseline, then present an outlier.
        for id in 0..4u64 {
            let b = BatchRef {
                id,
                indices: &[id],
                hint: Some(100.0),
            };
            assert_eq!(
                p.place(&b, &ctx(&depths, &dead, 0, 0)).lane,
                Some(Lane::Fast)
            );
        }
        let outlier = BatchRef {
            id: 9,
            indices: &[9],
            hint: Some(10_000.0),
        };
        let placement = p.place(&outlier, &ctx(&depths, &dead, 0, 0));
        assert_eq!(placement.lane, Some(Lane::Slow));
        assert_eq!(placement.worker, 3);
    }

    #[test]
    fn slow_lane_falls_back_when_the_lane_is_dead() {
        let mut p = SlowLane::new(2);
        assert_eq!(p.slow_workers, 1);
        p.on_batch_returned(0, &[0], 1_000);
        p.on_batch_returned(0, &[1], 900_000);
        // The slow lane (worker 1) is dead: the slow batch must still go
        // to a live worker.
        let dead = [false, true];
        let placement = p.place(&batch(2, &[1]), &ctx(&[0, 0], &dead, 0, 0));
        assert_eq!(placement.worker, 0);
    }

    #[test]
    fn single_worker_slow_lane_degenerates_to_round_robin() {
        let mut p = SlowLane::new(1);
        let placement = p.place(&batch(0, &[0]), &ctx(&[0], &[false], 0, 0));
        assert_eq!(placement.worker, 0);
        assert_eq!(placement.lane, None);
    }

    #[test]
    fn adaptive_prefetch_resizes_within_bounds() {
        let mut p = SchedulingPolicyKind::AdaptivePrefetch.build(2, 2);
        // Deep data queue: shrink toward 1 and stop refilling to drain.
        let r = p.refill(&ctx(&[0, 0], &[false, false], 4, 3));
        assert_eq!(r.resized_to, Some(1));
        assert_eq!(r.count, 0);
        // Still deep: the target clamps at 1.
        let r = p.refill(&ctx(&[0, 0], &[false, false], 3, 3));
        assert_eq!(r.resized_to, None);
        // Starving consumer: grow back toward the configured factor.
        let r = p.refill(&ctx(&[0, 0], &[false, false], 1, 0));
        assert_eq!(r.resized_to, Some(2));
        assert!(r.count >= 1);
        // The target never exceeds the configured prefetch factor.
        let r = p.refill(&ctx(&[0, 0], &[false, false], 0, 0));
        assert_eq!(r.resized_to, None);
        assert!(r.count >= 1, "an empty pipeline must always refill");
    }

    #[test]
    fn default_refill_is_the_pytorch_protocol() {
        for kind in [
            SchedulingPolicyKind::RoundRobin,
            SchedulingPolicyKind::WorkStealing,
            SchedulingPolicyKind::SlowLane,
        ] {
            let mut p = kind.build(2, 2);
            assert_eq!(
                p.refill(&ctx(&[0, 0], &[false, false], 3, 1)),
                Refill::one()
            );
        }
    }

    #[test]
    fn every_policy_places_on_live_workers_under_deaths() {
        for kind in SchedulingPolicyKind::ALL {
            let mut p = kind.build(4, 2);
            let dead = [true, false, true, false];
            for id in 0..16u64 {
                let placement = p.place(&batch(id, &[id]), &ctx(&[1, 0, 2, 3], &dead, 2, 1));
                assert!(!dead[placement.worker], "{kind:?} placed on a dead worker");
            }
            p.on_worker_died(0);
            p.on_worker_died(2);
        }
    }
}
