//! Synchronization-event recording for the native backend.
//!
//! `lotus audit` proves the native backend's homegrown synchronization
//! (the [`NativeQueue`](crate::NativeQueue) mutex+condvar channels and
//! the worker-liveness lock) correct the same way `lotus check` proves
//! the simulated protocol correct. The raw material is a [`SyncEvent`]
//! stream: every lock acquisition and release, every condvar wait and
//! notify, every committed send/receive, every death marking and orphan
//! redispatch, recorded with the owning thread's trace pid and a logical
//! timestamp drawn from one atomic counter.
//!
//! The [`AuditFeed`] collector mirrors the `KernelSpanFeed` pattern of
//! the wall-clock profiler: a detached feed costs one relaxed atomic
//! load per record point (and the backend holds no feed at all unless
//! one was attached, making the common path literally zero extra work),
//! while an attached feed self-accounts its own recording cost into
//! [`AuditFeed::overhead_ns`].
//!
//! Logical timestamps come from a single `fetch_add` on the feed's
//! sequence counter. Because every record point fires while the thread
//! holds the synchronization object the event describes (acquire is
//! recorded after the lock is taken, release *before* it is given up,
//! wait-start before the guard is surrendered to the condvar and
//! wait-return after it is re-taken), the total order of sequence
//! numbers is consistent with every real happens-before edge: if event
//! `a` happens-before event `b` through a mutex release→acquire chain,
//! `a.seq < b.seq`. The vector-clock analyzer in `lotus-core` rebuilds
//! the partial order from these events and checks it; see
//! `crates/core/src/check/audit/`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Which of a queue's two condition variables an event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CvKind {
    /// Consumers wait here for items (`not_empty`).
    NotEmpty,
    /// Producers wait here for capacity (`not_full`).
    NotFull,
}

impl CvKind {
    /// Stable lower-case name (for reports and JSON).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CvKind::NotEmpty => "not_empty",
            CvKind::NotFull => "not_full",
        }
    }
}

/// One synchronization operation on a named object.
///
/// The object (`SyncEvent::obj`) is a queue name (`"data_queue"`,
/// `"index_queue_0"`), the liveness lock (`"liveness"`), or — for
/// [`SyncOp::Gauge`] — the gauge series name.
#[derive(Debug, Clone, PartialEq)]
pub enum SyncOp {
    /// The thread acquired the object's mutex.
    LockAcquire,
    /// The thread is about to release the object's mutex (recorded while
    /// still holding it, so the release sequences before the next
    /// holder's acquire).
    LockRelease,
    /// The thread is about to surrender the object's mutex to a condvar
    /// wait. Equivalent to a release for happens-before purposes.
    WaitStart {
        /// Which condvar is being waited on.
        cv: CvKind,
    },
    /// The thread returned from a condvar wait holding the mutex again.
    /// Equivalent to an acquire. `satisfied` records whether the waited
    /// predicate held at this return — a well-formed wait loop re-checks
    /// and waits again when it did not (lost-wakeup discipline).
    WaitReturn {
        /// Which condvar was waited on.
        cv: CvKind,
        /// Whether the waited-for predicate held on this return.
        satisfied: bool,
    },
    /// The thread signalled the object's condvar.
    Notify {
        /// Which condvar was signalled.
        cv: CvKind,
    },
    /// An item was committed into the queue (inside the critical
    /// section). `batch` carries the batch id when the item has one.
    SendCommit {
        /// Batch id of the enqueued item, when identifiable.
        batch: Option<u64>,
    },
    /// An item was removed from the queue (inside the critical section).
    RecvCommit {
        /// Batch id of the dequeued item, when identifiable.
        batch: Option<u64>,
    },
    /// The queue was closed (inside the critical section).
    Close,
    /// The main thread marked a worker dead (recorded while holding the
    /// liveness lock, with the data queue observed empty).
    MarkDead {
        /// The worker that was marked dead.
        worker: usize,
    },
    /// An orphaned batch was redispatched away from a dead worker.
    Redispatch {
        /// The orphaned batch.
        batch: u64,
        /// The dead worker it was taken from.
        from: usize,
    },
    /// A gauge sample point. For queue-depth gauges this is recorded
    /// inside the queue's critical section, so per-object gauge writes
    /// are totally ordered through the mutex chain.
    Gauge {
        /// The sampled value.
        value: f64,
    },
}

/// One recorded synchronization event.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncEvent {
    /// Logical timestamp: total order consistent with happens-before.
    pub seq: u64,
    /// Trace pid of the recording thread ([`MAIN_OS_PID`]
    /// (crate::MAIN_OS_PID) or a worker pid); [`UNKNOWN_TID`] when the
    /// thread never registered.
    pub tid: u32,
    /// The synchronization object's name.
    pub obj: String,
    /// What happened.
    pub op: SyncOp,
}

/// The `tid` recorded for threads that never called
/// [`AuditFeed::register_thread`].
pub const UNKNOWN_TID: u32 = u32::MAX;

/// A seeded concurrency bug for `lotus audit --mutate`: each weakens one
/// synchronization rule of the native backend the auditor must then
/// flag, proving the analysis has no blind spot there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditMutation {
    /// The faithful protocol.
    #[default]
    None,
    /// `NativeQueue::push`/`try_push` on the data queue skip their
    /// `not_empty.notify_one()` — the classic lost wakeup.
    SkipNotify,
    /// The worker's envelope commit releases the liveness lock before
    /// pushing, then pushes without re-checking — the gated-push
    /// atomicity bug redispatch safety depends on.
    ReleaseRecheck,
    /// The worker takes the data-queue lock and *then* the liveness lock
    /// (the reverse of every other site), closing a lock-order cycle.
    LockOrder,
}

impl AuditMutation {
    /// Every seeded mutation (excluding `None`).
    pub const ALL: [AuditMutation; 3] = [
        AuditMutation::SkipNotify,
        AuditMutation::ReleaseRecheck,
        AuditMutation::LockOrder,
    ];

    /// Stable kebab-case name (the `--mutate` argument).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AuditMutation::None => "none",
            AuditMutation::SkipNotify => "skip-notify",
            AuditMutation::ReleaseRecheck => "release-recheck",
            AuditMutation::LockOrder => "lock-order",
        }
    }

    /// Parses a `--mutate` argument.
    #[must_use]
    pub fn parse(s: &str) -> Option<AuditMutation> {
        match s {
            "none" => Some(AuditMutation::None),
            "skip-notify" => Some(AuditMutation::SkipNotify),
            "release-recheck" => Some(AuditMutation::ReleaseRecheck),
            "lock-order" => Some(AuditMutation::LockOrder),
            _ => None,
        }
    }
}

impl std::fmt::Display for AuditMutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A shared collector of [`SyncEvent`]s with profiler-style collection
/// control (`resume` / `pause` / `detach`), mirroring `KernelSpanFeed`.
///
/// Threads announce their trace pid once via
/// [`register_thread`](AuditFeed::register_thread); every subsequent
/// [`record`](AuditFeed::record) stamps events with it.
#[derive(Debug)]
pub struct AuditFeed {
    collecting: AtomicBool,
    detached: AtomicBool,
    seq: AtomicU64,
    events: Mutex<Vec<SyncEvent>>,
    threads: Mutex<HashMap<std::thread::ThreadId, u32>>,
    overhead_ns: AtomicU64,
}

impl Default for AuditFeed {
    fn default() -> Self {
        AuditFeed::new()
    }
}

impl AuditFeed {
    /// Creates a feed that is collecting from the start.
    #[must_use]
    pub fn new() -> AuditFeed {
        AuditFeed {
            collecting: AtomicBool::new(true),
            detached: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
            threads: Mutex::new(HashMap::new()),
            overhead_ns: AtomicU64::new(0),
        }
    }

    /// Resumes collection; no-op once detached.
    pub fn resume(&self) {
        if !self.detached.load(Ordering::Relaxed) {
            self.collecting.store(true, Ordering::Relaxed);
        }
    }

    /// Pauses collection.
    pub fn pause(&self) {
        self.collecting.store(false, Ordering::Relaxed);
    }

    /// Detaches the collector permanently: every later record point is a
    /// single relaxed load.
    pub fn detach(&self) {
        self.detached.store(true, Ordering::Relaxed);
        self.collecting.store(false, Ordering::Relaxed);
    }

    /// True while events are being collected.
    #[must_use]
    pub fn is_collecting(&self) -> bool {
        self.collecting.load(Ordering::Relaxed)
    }

    /// Announces the calling thread's trace pid. Events recorded by an
    /// unregistered thread carry [`UNKNOWN_TID`].
    pub fn register_thread(&self, tid: u32) {
        self.threads
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(std::thread::current().id(), tid);
    }

    /// Records one synchronization event on `obj` by the calling thread.
    /// The recording's own cost is measured and accumulated into the
    /// feed's overhead, so bench reports can subtract it.
    pub fn record(&self, obj: &str, op: SyncOp) {
        if !self.is_collecting() {
            return;
        }
        let entered = Instant::now();
        // Relaxed is enough: RMW modification order on one location is
        // consistent with happens-before, so events ordered by a mutex
        // release→acquire chain get ascending sequence numbers.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let tid = {
            let threads = self.threads.lock().unwrap_or_else(PoisonError::into_inner);
            threads
                .get(&std::thread::current().id())
                .copied()
                .unwrap_or(UNKNOWN_TID)
        };
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(SyncEvent {
                seq,
                tid,
                obj: obj.to_string(),
                op,
            });
        self.overhead_ns
            .fetch_add(entered.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no events are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns every held event, sorted by sequence number.
    #[must_use]
    pub fn drain(&self) -> Vec<SyncEvent> {
        let mut events =
            std::mem::take(&mut *self.events.lock().unwrap_or_else(PoisonError::into_inner));
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Total nanoseconds the feed spent recording (its self-accounted
    /// instrumentation overhead).
    #[must_use]
    pub fn overhead_ns(&self) -> u64 {
        self.overhead_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_feed_records_nothing() {
        let feed = AuditFeed::new();
        feed.detach();
        feed.record("q", SyncOp::LockAcquire);
        assert!(feed.is_empty());
        feed.resume(); // no-op after detach
        feed.record("q", SyncOp::LockAcquire);
        assert!(feed.is_empty());
    }

    #[test]
    fn pause_and_resume_gate_collection() {
        let feed = AuditFeed::new();
        feed.pause();
        feed.record("q", SyncOp::LockAcquire);
        assert!(feed.is_empty());
        feed.resume();
        feed.record("q", SyncOp::LockRelease);
        assert_eq!(feed.len(), 1);
    }

    #[test]
    fn events_carry_registered_tid_and_ascending_seq() {
        let feed = AuditFeed::new();
        feed.register_thread(42);
        feed.record("a", SyncOp::LockAcquire);
        feed.record("a", SyncOp::LockRelease);
        let events = feed.drain();
        assert_eq!(events.len(), 2);
        assert!(events[0].seq < events[1].seq);
        assert!(events.iter().all(|e| e.tid == 42));
        assert!(feed.is_empty());
    }

    #[test]
    fn unregistered_thread_is_unknown() {
        let feed = AuditFeed::new();
        std::thread::scope(|s| {
            s.spawn(|| feed.record("q", SyncOp::Close)).join().unwrap();
        });
        assert_eq!(feed.drain()[0].tid, UNKNOWN_TID);
    }

    #[test]
    fn cross_thread_seq_respects_lock_handoff() {
        // Two threads ping-pong a mutex; each records its critical
        // section while holding it. The drained stream must interleave
        // [Acquire, Release] pairs without overlap per the seq order.
        let feed = AuditFeed::new();
        let lock = Mutex::new(());
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let guard = lock.lock().unwrap();
                        feed.record("m", SyncOp::LockAcquire);
                        feed.record("m", SyncOp::LockRelease);
                        drop(guard);
                    }
                });
            }
        });
        let events = feed.drain();
        assert_eq!(events.len(), 200);
        let mut held = false;
        for e in &events {
            match e.op {
                SyncOp::LockAcquire => {
                    assert!(!held, "acquire of a held lock at seq {}", e.seq);
                    held = true;
                }
                SyncOp::LockRelease => {
                    assert!(held, "release of a free lock at seq {}", e.seq);
                    held = false;
                }
                _ => {}
            }
        }
    }

    #[test]
    fn mutation_names_round_trip() {
        for m in AuditMutation::ALL {
            assert_eq!(AuditMutation::parse(m.as_str()), Some(m));
        }
        assert_eq!(AuditMutation::parse("none"), Some(AuditMutation::None));
        assert_eq!(AuditMutation::parse("bogus"), None);
    }
}
