//! Configuration for the DataLoader and the GPU model.

use lotus_sim::Span;

use crate::dataset::Sampler;
use crate::policy::SchedulingPolicyKind;

/// `torch.utils.data.DataLoader` parameters (the knobs of the paper's
/// Listing 1), plus the `data_queue_cap` extension the `lotus tune`
/// sweep explores.
///
/// Invariants are documented per field and checked by [`validate`];
/// every violation message follows the same `"<field> must be at least
/// 1 (<reason>)"` shape so callers can match on them.
///
/// [`validate`]: DataLoaderConfig::validate
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataLoaderConfig {
    /// Samples per batch. Must be at least 1.
    pub batch_size: usize,
    /// Number of DataLoader worker processes. Must be at least 1 — this
    /// model always loads via worker processes (PyTorch's
    /// `num_workers=0` in-process mode is not simulated).
    pub num_workers: usize,
    /// Index batches pre-queued per worker at epoch start (PyTorch
    /// default 2). Must be at least 1.
    pub prefetch_factor: usize,
    /// Bound on the shared data queue, in batches. `None` (the default,
    /// and PyTorch's behavior) leaves the queue unbounded; `Some(cap)`
    /// blocks workers once `cap` preprocessed batches sit unconsumed,
    /// trading throughput for a hard memory ceiling. When bounded, the
    /// capacity must be at least 1.
    pub data_queue_cap: Option<usize>,
    /// Whether the main process pins batches to page-locked CPU memory.
    pub pin_memory: bool,
    /// Index ordering.
    pub sampler: Sampler,
    /// Whether a trailing partial batch is dropped.
    pub drop_last: bool,
    /// The dispatch discipline assigning index batches to workers.
    /// [`SchedulingPolicyKind::RoundRobin`] (the default) is PyTorch's
    /// strict `_worker_queue_idx_cycle`.
    pub policy: SchedulingPolicyKind,
}

impl DataLoaderConfig {
    /// Validates the configuration, returning the first violated field
    /// invariant as a message of the form
    /// `"<field> must be at least 1 (<reason>)"`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    ///
    /// # Examples
    ///
    /// ```
    /// use lotus_dataflow::DataLoaderConfig;
    ///
    /// assert!(DataLoaderConfig::default().validate().is_ok());
    ///
    /// let bad = DataLoaderConfig { batch_size: 0, ..DataLoaderConfig::default() };
    /// assert_eq!(
    ///     bad.validate().unwrap_err(),
    ///     "batch_size must be at least 1 (a batch cannot be empty)"
    /// );
    /// ```
    pub fn validate(&self) -> Result<(), String> {
        if self.batch_size == 0 {
            return Err("batch_size must be at least 1 (a batch cannot be empty)".into());
        }
        if self.num_workers == 0 {
            return Err("num_workers must be at least 1 (worker-process data loading)".into());
        }
        if self.prefetch_factor == 0 {
            return Err("prefetch_factor must be at least 1 (workers need an index batch)".into());
        }
        if self.data_queue_cap == Some(0) {
            return Err(
                "data_queue_cap must be at least 1 (a zero-capacity data queue deadlocks)".into(),
            );
        }
        Ok(())
    }
}

impl Default for DataLoaderConfig {
    /// PyTorch-shaped defaults: batch of 1, a single worker, prefetch
    /// factor 2, an unbounded data queue, pinned memory, sequential
    /// sampling, trailing partial batches dropped.
    fn default() -> Self {
        DataLoaderConfig {
            batch_size: 1,
            num_workers: 1,
            prefetch_factor: 2,
            data_queue_cap: None,
            pin_memory: true,
            sampler: Sampler::Sequential,
            drop_last: true,
            policy: SchedulingPolicyKind::RoundRobin,
        }
    }
}

/// The accelerator model: a `torch.nn.DataParallel` group of identical
/// GPUs executing one synchronous training step per batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Number of GPUs the batch is split across.
    pub count: usize,
    /// Forward + backward time per sample on one GPU.
    pub per_sample_step: Span,
    /// Fixed per-step overhead (kernel launches, gradient all-reduce).
    pub step_overhead: Span,
    /// Effective host-to-device transfer bandwidth in bytes/second.
    pub h2d_bytes_per_sec: f64,
}

impl GpuConfig {
    /// A V100-like GPU group (the paper's c4130 node has four, NVLinked).
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    #[must_use]
    pub fn v100(count: usize, per_sample_step: Span) -> GpuConfig {
        assert!(count > 0, "need at least one GPU");
        GpuConfig {
            count,
            per_sample_step,
            step_overhead: Span::from_millis(6),
            h2d_bytes_per_sec: 12.0e9,
        }
    }

    /// Wall time of one synchronous training step for a batch of
    /// `batch_len` samples (DataParallel splits the batch evenly).
    ///
    /// # Examples
    ///
    /// ```
    /// use lotus_dataflow::GpuConfig;
    /// use lotus_sim::Span;
    ///
    /// let group = GpuConfig::v100(4, Span::from_micros(500));
    /// // 512 samples split over 4 GPUs = 128 per GPU, plus launch overhead.
    /// assert_eq!(
    ///     group.step_span(512),
    ///     Span::from_millis(6) + Span::from_micros(500) * 128
    /// );
    /// ```
    #[must_use]
    pub fn step_span(&self, batch_len: usize) -> Span {
        let per_gpu = batch_len.div_ceil(self.count);
        self.step_overhead + self.per_sample_step * per_gpu as u64
    }

    /// Wall time of the host-to-device transfer of `bytes`.
    #[must_use]
    pub fn h2d_span(&self, bytes: u64) -> Span {
        Span::from_secs_f64(bytes as f64 / self.h2d_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(DataLoaderConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected_with_uniform_messages() {
        let zero_batch = DataLoaderConfig {
            batch_size: 0,
            ..DataLoaderConfig::default()
        };
        assert_eq!(
            zero_batch.validate().unwrap_err(),
            "batch_size must be at least 1 (a batch cannot be empty)"
        );
        let zero_workers = DataLoaderConfig {
            num_workers: 0,
            ..DataLoaderConfig::default()
        };
        assert_eq!(
            zero_workers.validate().unwrap_err(),
            "num_workers must be at least 1 (worker-process data loading)"
        );
        let zero_prefetch = DataLoaderConfig {
            prefetch_factor: 0,
            ..DataLoaderConfig::default()
        };
        assert_eq!(
            zero_prefetch.validate().unwrap_err(),
            "prefetch_factor must be at least 1 (workers need an index batch)"
        );
        let zero_cap = DataLoaderConfig {
            data_queue_cap: Some(0),
            ..DataLoaderConfig::default()
        };
        assert_eq!(
            zero_cap.validate().unwrap_err(),
            "data_queue_cap must be at least 1 (a zero-capacity data queue deadlocks)"
        );
    }

    #[test]
    fn every_validation_message_shares_one_shape() {
        for bad in [
            DataLoaderConfig {
                batch_size: 0,
                ..DataLoaderConfig::default()
            },
            DataLoaderConfig {
                num_workers: 0,
                ..DataLoaderConfig::default()
            },
            DataLoaderConfig {
                prefetch_factor: 0,
                ..DataLoaderConfig::default()
            },
            DataLoaderConfig {
                data_queue_cap: Some(0),
                ..DataLoaderConfig::default()
            },
        ] {
            let msg = bad.validate().unwrap_err();
            assert!(
                msg.contains(" must be at least 1 (") && msg.ends_with(')'),
                "message breaks the documented shape: {msg}"
            );
        }
    }

    #[test]
    fn bounded_data_queue_is_valid() {
        let bounded = DataLoaderConfig {
            data_queue_cap: Some(4),
            ..DataLoaderConfig::default()
        };
        assert!(bounded.validate().is_ok());
    }

    #[test]
    fn step_time_scales_down_with_gpu_count() {
        let one = GpuConfig::v100(1, Span::from_micros(500));
        let four = GpuConfig::v100(4, Span::from_micros(500));
        assert!(four.step_span(512) < one.step_span(512));
        // 512 samples / 4 GPUs = 128 per GPU.
        assert_eq!(
            four.step_span(512),
            Span::from_millis(6) + Span::from_micros(500) * 128
        );
    }

    #[test]
    fn h2d_uses_bandwidth() {
        let gpu = GpuConfig::v100(1, Span::from_micros(100));
        assert_eq!(gpu.h2d_span(12_000_000_000 / 1000), Span::from_millis(1));
    }
}
