//! Datasets and samplers (`torch.utils.data.Dataset` / `Sampler`).

use lotus_data::mix_seed;
use lotus_transforms::{PipelineError, Sample, TransformCtx, TransformObserver};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A map-style dataset: random access to preprocessed samples.
///
/// `get_item` is the analog of `__getitem__`: it loads (I/O + decode) and
/// transforms one item, charging costs to `ctx.cpu` and reporting each
/// operation's elapsed time — including the `Loader` step — to `observer`
/// (the paper's \[T3\] instrumentation).
pub trait Dataset: Send + Sync {
    /// Number of items.
    fn len(&self) -> u64;

    /// True if the dataset has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Loads and preprocesses item `index`.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] when decoding or a transform fails —
    /// the analog of a Python exception escaping `__getitem__`, which a
    /// DataLoader worker catches into an `ExceptionWrapper` rather than
    /// crashing on.
    fn get_item(
        &self,
        index: u64,
        ctx: &mut TransformCtx<'_>,
        observer: &mut dyn TransformObserver,
    ) -> Result<Sample, PipelineError>;

    /// A cheap, side-effect-free estimate of item `index`'s relative
    /// preprocessing cost (arbitrary units — stored bytes work well), if
    /// the dataset can provide one without touching the item. Cost-aware
    /// scheduling policies use this as a prior before any sample has been
    /// observed; `None` (the default) means no prior is available.
    fn cost_hint(&self, _index: u64) -> Option<u64> {
        None
    }
}

/// Index-ordering policy for one epoch (`torch.utils.data.Sampler`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sampler {
    /// Items in dataset order.
    Sequential,
    /// A seeded random permutation per epoch.
    Random {
        /// Shuffle seed.
        seed: u64,
    },
}

impl Sampler {
    /// The index order for `epoch` over a dataset of `len` items.
    #[must_use]
    pub fn epoch_order(&self, len: u64, epoch: u64) -> Vec<u64> {
        let mut order: Vec<u64> = (0..len).collect();
        if let Sampler::Random { seed } = self {
            let mut rng = StdRng::seed_from_u64(mix_seed(*seed, epoch));
            order.shuffle(&mut rng);
        }
        order
    }
}

/// Chunks a sampler's order into batches (`torch.utils.data.BatchSampler`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSampler {
    /// Per-batch item count.
    pub batch_size: usize,
    /// Whether to drop a trailing partial batch.
    pub drop_last: bool,
}

impl BatchSampler {
    /// Splits `order` into batches.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    #[must_use]
    pub fn batches(&self, order: &[u64]) -> Vec<Vec<u64>> {
        assert!(self.batch_size > 0, "batch size must be positive");
        let mut out: Vec<Vec<u64>> = order.chunks(self.batch_size).map(<[u64]>::to_vec).collect();
        if self.drop_last && out.last().is_some_and(|b| b.len() < self.batch_size) {
            out.pop();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_order_is_identity() {
        assert_eq!(Sampler::Sequential.epoch_order(5, 0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_order_is_a_seeded_permutation() {
        let a = Sampler::Random { seed: 1 }.epoch_order(100, 0);
        let b = Sampler::Random { seed: 1 }.epoch_order(100, 0);
        let c = Sampler::Random { seed: 1 }.epoch_order(100, 1);
        assert_eq!(a, b, "same seed+epoch must repeat");
        assert_ne!(a, c, "different epochs must reshuffle");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn batch_sampler_chunks_and_optionally_drops() {
        let order: Vec<u64> = (0..10).collect();
        let keep = BatchSampler {
            batch_size: 4,
            drop_last: false,
        }
        .batches(&order);
        assert_eq!(keep.len(), 3);
        assert_eq!(keep[2], vec![8, 9]);
        let drop = BatchSampler {
            batch_size: 4,
            drop_last: true,
        }
        .batches(&order);
        assert_eq!(drop.len(), 2);
    }

    #[test]
    fn exact_multiple_keeps_all_batches_under_drop_last() {
        let order: Vec<u64> = (0..8).collect();
        let drop = BatchSampler {
            batch_size: 4,
            drop_last: true,
        }
        .batches(&order);
        assert_eq!(drop.len(), 2);
    }
}
