//! Figure 6: varying the number of dataloader workers (8 → 28) on the IC
//! pipeline with batch 1024 and 4 GPUs — combining LotusTrace timings (a,
//! b, e), the VTune-style hardware profile (c, d), and LotusMap's metric
//! splitting (f, g, h).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use lotus_core::map::{
    relevant_functions, split_metrics, IsolationConfig, Mapping, OpHardwareProfile,
};
use lotus_core::trace::analysis::total_preprocess_cpu;
use lotus_core::trace::{LotusTrace, LotusTraceConfig, OpLogMode};
use lotus_sim::Span;
use lotus_uarch::{CollectionMode, HwProfiler, Machine, MachineConfig, ProfilerConfig};
use lotus_workloads::{build_ic_mapping_for_batch, ExperimentConfig, PipelineKind};

use lotus_core::exec::run_jobs;

use crate::{cached_mapping, ExecArgs, Scale};

/// Measurements for one worker count.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// DataLoader worker count.
    pub workers: usize,
    /// End-to-end epoch time (Figure 6(a)).
    pub e2e: Span,
    /// Total preprocessing CPU seconds across workers (Figure 6(b) total).
    pub total_cpu: Span,
    /// Per-op CPU totals from LotusTrace (Figure 6(b,e)).
    pub per_op_cpu: BTreeMap<String, Span>,
    /// Native functions observed by the hardware profiler.
    pub profiled_functions: usize,
    /// Functions remaining after filtering through the mapping
    /// (Figure 6(c,d)).
    pub relevant_functions: usize,
    /// Per-op hardware attribution via LotusMap splitting
    /// (Figure 6(e–h)).
    pub per_op_hw: Vec<OpHardwareProfile>,
}

impl Fig6Point {
    /// The attributed hardware profile for one op.
    #[must_use]
    pub fn op_hw(&self, op: &str) -> Option<&OpHardwareProfile> {
        self.per_op_hw.iter().find(|o| o.op == op)
    }

    /// Aggregate uops-per-cycle across all mapped preprocessing ops
    /// (Figure 6(f): uop supply to the backend).
    #[must_use]
    pub fn uops_per_cycle(&self) -> f64 {
        let events: lotus_uarch::HwEvents = self.per_op_hw.iter().map(|o| o.events).sum();
        events.uops_per_cycle()
    }

    /// Aggregate front-end-bound fraction (Figure 6(g)).
    #[must_use]
    pub fn frontend_bound(&self) -> f64 {
        let events: lotus_uarch::HwEvents = self.per_op_hw.iter().map(|o| o.events).sum();
        events.frontend_bound_fraction()
    }

    /// Aggregate DRAM-bound fraction (Figure 6(h): stalls from loads
    /// serviced by local DRAM).
    #[must_use]
    pub fn dram_bound(&self) -> f64 {
        let events: lotus_uarch::HwEvents = self.per_op_hw.iter().map(|o| o.events).sum();
        events.dram_bound_fraction()
    }
}

/// The whole sweep plus the mapping used for splitting.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// One point per worker count (8, 12, …, 28).
    pub points: Vec<Fig6Point>,
    /// The LotusMap mapping used to filter and split.
    pub mapping: Mapping,
}

const BATCH: usize = 1024;
const GPUS: usize = 4;

/// Runs the worker sweep on the paper's Intel testbed.
///
/// # Panics
///
/// Panics if any run fails.
#[must_use]
pub fn run(scale: Scale) -> Fig6 {
    run_on(scale, MachineConfig::cloudlab_c4130())
}

/// Runs the worker sweep on the AMD machine (uProf driver, AMD kernel
/// inventory) — the analysis the paper defers to its repository "for
/// brevity" (§V-D).
#[must_use]
pub fn run_amd(scale: Scale) -> Fig6 {
    run_on(scale, MachineConfig::amd_rome())
}

/// Runs the worker sweep on an arbitrary machine configuration.
///
/// # Panics
///
/// Panics if any run fails.
#[must_use]
pub fn run_on(scale: Scale, machine_config: MachineConfig) -> Fig6 {
    run_on_with(scale, machine_config, &ExecArgs::default())
}

/// [`run_on`] with explicit execution options: the six worker counts are
/// independent deterministic simulations, so they fan out over
/// `exec.jobs` threads (joined in submission order — output is identical
/// for any job count), and the one-time mapping step can come from the
/// on-disk cache.
///
/// # Panics
///
/// Panics if any run fails.
#[must_use]
pub fn run_on_with(scale: Scale, machine_config: MachineConfig, exec: &ExecArgs) -> Fig6 {
    // The mapping is a one-time preparatory step on the same machine type
    // (§IV-B); function names are stable across machine instances, so
    // vendor + batch size fully key the cached copy.
    let mapping = cached_mapping(
        exec,
        &format!("vendor={} batch={BATCH}", machine_config.vendor),
        || {
            let mapping_machine = Machine::new(machine_config.clone());
            build_ic_mapping_for_batch(&mapping_machine, IsolationConfig::default(), BATCH)
        },
    );

    let tasks: Vec<_> = [8usize, 12, 16, 20, 24, 28]
        .into_iter()
        .map(|workers| {
            let machine_config = machine_config.clone();
            let mapping = &mapping;
            move || {
                let machine = Machine::new(machine_config.clone());
                let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
                    op_mode: OpLogMode::Aggregate,
                    ..LotusTraceConfig::default()
                }));
                let hw = Arc::new(HwProfiler::new(ProfilerConfig {
                    sampling_interval: machine_config.vendor.default_sampling_interval(),
                    skid: Span::from_micros(120),
                    mode: CollectionMode::Sampling,
                    start_paused: false,
                }));
                let mut config = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
                config.batch_size = BATCH;
                config.num_gpus = GPUS;
                config.num_workers = workers;
                if let Some(items) = scale.items(128 * BATCH as u64) {
                    config = config.scaled_to(items);
                }
                let report = config
                    .build(&machine, Arc::clone(&trace) as _, Some(Arc::clone(&hw)))
                    .run()
                    .expect("fig6 run must complete");

                let op_stats = trace.op_stats();
                let per_op_cpu: BTreeMap<String, Span> = op_stats
                    .iter()
                    .map(|o| (o.name.clone(), o.total_cpu))
                    .collect();
                let profile = hw.report(&machine);
                let relevant = relevant_functions(&profile, mapping).len();
                let per_op_hw = split_metrics(&profile, mapping, &per_op_cpu);
                Fig6Point {
                    workers,
                    e2e: report.elapsed,
                    total_cpu: total_preprocess_cpu(&trace.records()),
                    per_op_cpu,
                    profiled_functions: profile.len(),
                    relevant_functions: relevant,
                    per_op_hw,
                }
            }
        })
        .collect();
    let points = run_jobs(exec.jobs, tasks);
    Fig6 { points, mapping }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 6 — IC, batch 1024, 4 GPUs, varying dataloaders")?;
        writeln!(
            f,
            "{:>8} {:>10} {:>12} {:>10} {:>10} {:>12} {:>12} {:>12}",
            "workers", "E2E s", "CPU s", "fns", "mapped", "uops/cyc", "FE-bound %", "DRAM-bound %"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>8} {:>10.1} {:>12.1} {:>10} {:>10} {:>12.3} {:>12.2} {:>12.2}",
                p.workers,
                p.e2e.as_secs_f64(),
                p.total_cpu.as_secs_f64(),
                p.profiled_functions,
                p.relevant_functions,
                p.uops_per_cycle(),
                p.frontend_bound() * 100.0,
                p.dram_bound() * 100.0
            )?;
        }
        writeln!(f, "\nPer-op CPU seconds (Figure 6(b,e)):")?;
        if let Some(first) = self.points.first() {
            let ops: Vec<&String> = first.per_op_cpu.keys().collect();
            write!(f, "{:>8}", "workers")?;
            for op in &ops {
                write!(f, " {:>18}", op)?;
            }
            writeln!(f)?;
            for p in &self.points {
                write!(f, "{:>8}", p.workers)?;
                for op in &ops {
                    write!(
                        f,
                        " {:>18.1}",
                        p.per_op_cpu
                            .get(*op)
                            .copied()
                            .unwrap_or(Span::ZERO)
                            .as_secs_f64()
                    )?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Fig6 {
        run(Scale::scaled())
    }

    #[test]
    fn e2e_drops_with_diminishing_returns() {
        let fig = sweep();
        let e2e: Vec<f64> = fig.points.iter().map(|p| p.e2e.as_secs_f64()).collect();
        // (a): large drop from 8 to 28 workers…
        assert!(
            e2e[5] < 0.65 * e2e[0],
            "E2E should drop substantially: {:.1}s → {:.1}s",
            e2e[0],
            e2e[5]
        );
        // …with diminishing returns at the high end.
        let early_gain = e2e[0] - e2e[2]; // 8 → 16
        let late_gain = e2e[3] - e2e[5]; // 20 → 28
        assert!(
            late_gain < 0.5 * early_gain,
            "returns should diminish: early {early_gain:.1}s vs late {late_gain:.1}s"
        );
    }

    #[test]
    fn total_cpu_time_rises_with_workers() {
        let fig = sweep();
        let first = fig.points.first().unwrap().total_cpu.as_secs_f64();
        let last = fig.points.last().unwrap().total_cpu.as_secs_f64();
        let growth = last / first;
        // Paper: 9402 s → 14423 s (+53%).
        assert!((1.2..2.2).contains(&growth), "CPU-time growth {growth}");
        // Every op's CPU time rises steadily (Figure 6(b,e)).
        for op in fig.points[0].per_op_cpu.keys() {
            let a = fig.points[0].per_op_cpu[op].as_nanos() as f64;
            let b = fig.points[5].per_op_cpu[op].as_nanos() as f64;
            assert!(b > a, "{op} CPU time should rise with workers");
        }
    }

    #[test]
    fn mapping_filters_the_function_zoo() {
        let fig = sweep();
        for p in &fig.points {
            assert!(
                p.relevant_functions < p.profiled_functions,
                "filtering should drop unrelated functions ({} of {})",
                p.relevant_functions,
                p.profiled_functions
            );
            assert!(
                p.relevant_functions >= 8,
                "mapped functions: {}",
                p.relevant_functions
            );
        }
    }

    #[test]
    fn microarchitecture_trends_match_the_paper() {
        let fig = sweep();
        let first = fig.points.first().unwrap();
        let last = fig.points.last().unwrap();
        // (f): uop supply to the backend drops as workers grow.
        assert!(
            last.uops_per_cycle() < first.uops_per_cycle(),
            "uops/cycle {} → {}",
            first.uops_per_cycle(),
            last.uops_per_cycle()
        );
        // (g): the workload becomes increasingly front-end bound.
        assert!(
            last.frontend_bound() > first.frontend_bound() + 0.03,
            "frontend bound {} → {}",
            first.frontend_bound(),
            last.frontend_bound()
        );
        // (h): pressure from local-DRAM-serviced loads decreases.
        assert!(
            last.dram_bound() < first.dram_bound(),
            "DRAM bound {} → {}",
            first.dram_bound(),
            last.dram_bound()
        );
    }

    #[test]
    fn amd_sweep_shows_the_same_trends() {
        let fig = run_amd(Scale::scaled());
        let first = fig.points.first().unwrap();
        let last = fig.points.last().unwrap();
        assert!(last.e2e < first.e2e);
        assert!(last.frontend_bound() > first.frontend_bound());
        assert!(last.dram_bound() < first.dram_bound());
        // The AMD inventory is in play.
        assert!(fig
            .mapping
            .functions_for("Loader")
            .unwrap()
            .contains("sep_upsample"));
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        let serial = run_on_with(
            Scale::scaled(),
            MachineConfig::cloudlab_c4130(),
            &ExecArgs {
                jobs: 1,
                use_cache: false,
            },
        );
        let parallel = run_on_with(
            Scale::scaled(),
            MachineConfig::cloudlab_c4130(),
            &ExecArgs {
                jobs: 4,
                use_cache: false,
            },
        );
        assert_eq!(format!("{serial}"), format!("{parallel}"));
    }

    #[test]
    fn per_op_attribution_covers_the_pipeline_ops() {
        let fig = sweep();
        let p = fig.points.first().unwrap();
        for op in ["Loader", "RandomResizedCrop", "ToTensor", "Normalize"] {
            let hw = p.op_hw(op).unwrap_or_else(|| panic!("{op} attributed"));
            assert!(hw.cpu_time > Span::ZERO, "{op} should receive CPU time");
        }
        // Loader (decode) dominates the attributed CPU time.
        let loader = p.op_hw("Loader").unwrap().cpu_time;
        let rrc = p.op_hw("RandomResizedCrop").unwrap().cpu_time;
        assert!(loader > rrc, "Loader {loader} vs RRC {rrc}");
    }
}
