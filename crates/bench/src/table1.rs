//! Table I: the Python-operation → C/C++-function mapping, built on an
//! Intel machine (VTune/ITT) and an AMD machine (uProf/AMDProfileControl).

use std::fmt;

use lotus_core::map::{IsolationConfig, Mapping};
use lotus_uarch::{Machine, MachineConfig};
use lotus_workloads::build_ic_mapping;

/// The two vendor mappings (top and bottom halves of Table I).
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Mapping built with the VTune-style 10 ms sampling driver.
    pub intel: Mapping,
    /// Mapping built with the uProf-style 1 ms sampling driver.
    pub amd: Mapping,
}

impl Table1 {
    /// Functions that appear only in the Intel mapping for `op`.
    #[must_use]
    pub fn intel_specific(&self, op: &str) -> Vec<String> {
        vendor_specific(&self.intel, &self.amd, op)
    }

    /// Functions that appear only in the AMD mapping for `op`.
    #[must_use]
    pub fn amd_specific(&self, op: &str) -> Vec<String> {
        vendor_specific(&self.amd, &self.intel, op)
    }
}

fn vendor_specific(this: &Mapping, other: &Mapping, op: &str) -> Vec<String> {
    let Some(bucket) = this.functions_for(op) else {
        return Vec::new();
    };
    bucket
        .functions
        .iter()
        .filter(|f| other.functions_for(op).is_none_or(|o| !o.contains(&f.name)))
        .map(|f| f.name.clone())
        .collect()
}

/// Builds both vendor mappings.
#[must_use]
pub fn run(config: IsolationConfig) -> Table1 {
    let intel = Machine::new(MachineConfig::cloudlab_c4130());
    let amd = Machine::new(MachineConfig::amd_rome());
    Table1 {
        intel: build_ic_mapping(&intel, config),
        amd: build_ic_mapping(&amd, config),
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table I — mapping of Python functions to C/C++ functions"
        )?;
        writeln!(f, "\n-- Intel (VTune, 10 ms sampling) --")?;
        f.write_str(&self.intel.to_table_string())?;
        writeln!(f, "\n-- AMD (uProf, 1 ms sampling) --")?;
        f.write_str(&self.amd.to_table_string())?;
        for op in ["Loader", "RandomResizedCrop"] {
            writeln!(f, "\n{op}: Intel-specific: {:?}", self.intel_specific(op))?;
            writeln!(f, "{op}: AMD-specific:   {:?}", self.amd_specific(op))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Table1 {
        run(IsolationConfig {
            runs_override: Some(25),
            ..IsolationConfig::default()
        })
    }

    #[test]
    fn both_vendors_map_the_loader_decode_path() {
        let t = quick();
        for mapping in [&t.intel, &t.amd] {
            let loader = mapping.functions_for("Loader").expect("Loader mapped");
            assert!(loader.contains("decode_mcu"));
            assert!(loader.contains("ycc_rgb_convert"));
        }
    }

    #[test]
    fn vendor_specific_functions_mirror_the_paper() {
        let t = quick();
        // AMD surfaces process_data_simple_main / sep_upsample; Intel has
        // decompress_onepass and __libc_calloc (Table I).
        let amd_loader = t.amd.functions_for("Loader").unwrap();
        assert!(
            amd_loader.contains("process_data_simple_main"),
            "{amd_loader:?}"
        );
        let intel_loader = t.intel.functions_for("Loader").unwrap();
        assert!(
            intel_loader.contains("decompress_onepass"),
            "{intel_loader:?}"
        );
        assert!(!intel_loader.contains("process_data_simple_main"));
    }

    #[test]
    fn amd_finer_sampling_captures_smaller_functions() {
        let t = quick();
        // precompute_coeffs is tiny: uProf's 1 ms sampling sees it, VTune's
        // 10 ms usually doesn't — the paper lists it as AMD-specific.
        let amd_rrc = t.amd.functions_for("RandomResizedCrop").unwrap();
        assert!(amd_rrc.contains("precompute_coeffs"), "{amd_rrc:?}");
        let amd_total: usize = t
            .amd
            .ops()
            .iter()
            .map(|op| t.amd.functions_for(op).unwrap().functions.len())
            .sum();
        let intel_total: usize = t
            .intel
            .ops()
            .iter()
            .map(|op| t.intel.functions_for(op).unwrap().functions.len())
            .sum();
        assert!(
            amd_total >= intel_total,
            "amd {amd_total} vs intel {intel_total}"
        );
    }
}
