//! Table II: per-image elapsed time per preprocessing operation (average,
//! P90, fraction under 10 ms / 100 µs) for the IC, IS and OD pipelines,
//! plus the repository's audio-classification extension block.

use std::fmt;
use std::sync::Arc;

use lotus_core::trace::analysis::OpStats;
use lotus_core::trace::{LotusTrace, LotusTraceConfig, OpLogMode};
use lotus_uarch::{Machine, MachineConfig};
use lotus_workloads::{ExperimentConfig, PipelineKind};

use lotus_core::exec::run_jobs;

use crate::{ExecArgs, Scale};

/// One pipeline block of Table II.
#[derive(Debug, Clone)]
pub struct PipelineOpStats {
    /// Pipeline abbreviation (IC/IS/OD).
    pub pipeline: &'static str,
    /// Per-op statistics, in pipeline order.
    pub ops: Vec<OpStats>,
}

impl PipelineOpStats {
    /// Statistics for one op by name.
    #[must_use]
    pub fn op(&self, name: &str) -> Option<&OpStats> {
        self.ops.iter().find(|o| o.name == name)
    }
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// The pipeline blocks (IC/IS/OD + the AC extension).
    pub pipelines: Vec<PipelineOpStats>,
}

impl Table2 {
    /// The block for one pipeline.
    #[must_use]
    pub fn pipeline(&self, abbrev: &str) -> Option<&PipelineOpStats> {
        self.pipelines.iter().find(|p| p.pipeline == abbrev)
    }
}

/// Runs the pipelines under LotusTrace and collects Table II.
///
/// # Panics
///
/// Panics if a simulated run fails.
#[must_use]
pub fn run(scale: Scale) -> Table2 {
    run_with(scale, &ExecArgs::default())
}

/// [`run`] with explicit execution options: the four pipeline blocks are
/// independent deterministic simulations, so they fan out over
/// `exec.jobs` threads and join in pipeline order — the table is
/// identical for any job count.
///
/// # Panics
///
/// Panics if a simulated run fails.
#[must_use]
pub fn run_with(scale: Scale, exec: &ExecArgs) -> Table2 {
    let tasks: Vec<_> = [
        (PipelineKind::ImageClassification, 131_072),
        (PipelineKind::ImageSegmentation, 210),
        (PipelineKind::ObjectDetection, 8_192),
        // Extension: the audio-classification workload class the paper's
        // introduction cites as preprocessing-bound (not in the paper's
        // Table II).
        (PipelineKind::AudioClassification, 16_384),
    ]
    .into_iter()
    .map(|(kind, scaled_items)| {
        move || {
            let machine = Machine::new(MachineConfig::cloudlab_c4130());
            let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
                op_mode: OpLogMode::Aggregate,
                ..LotusTraceConfig::default()
            }));
            let mut config = ExperimentConfig::paper_default(kind);
            if let Some(items) = scale.items(scaled_items) {
                config = config.scaled_to(items);
            }
            config
                .build(&machine, Arc::clone(&trace) as _, None)
                .run()
                .expect("table2 run must complete");
            PipelineOpStats {
                pipeline: kind.abbrev(),
                ops: trace.op_stats(),
            }
        }
    })
    .collect();
    Table2 {
        pipelines: run_jobs(exec.jobs, tasks),
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table II — elapsed time per preprocessing operation (per image)"
        )?;
        for p in &self.pipelines {
            let title = if p.pipeline == "AC" {
                format!(
                    "\n[{} — repository extension, not in the paper]",
                    p.pipeline
                )
            } else {
                format!("\n[{}]", p.pipeline)
            };
            f.write_str(&crate::format_op_stats(&title, &p.ops))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Table2 {
        // Small but statistically meaningful.
        let mut t2 = Vec::new();
        for (kind, items) in [
            (PipelineKind::ImageClassification, 4_096),
            (PipelineKind::ImageSegmentation, 210),
            (PipelineKind::ObjectDetection, 1_024),
            (PipelineKind::AudioClassification, 2_048),
        ] {
            let machine = Machine::new(MachineConfig::cloudlab_c4130());
            let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
                op_mode: OpLogMode::Aggregate,
                ..LotusTraceConfig::default()
            }));
            ExperimentConfig::paper_default(kind)
                .scaled_to(items)
                .build(&machine, Arc::clone(&trace) as _, None)
                .run()
                .unwrap();
            t2.push(PipelineOpStats {
                pipeline: kind.abbrev(),
                ops: trace.op_stats(),
            });
        }
        Table2 { pipelines: t2 }
    }

    /// The paper's Table II values, with generous bands: the *shape* must
    /// hold (who is expensive, what fraction is sub-10 ms / sub-100 µs).
    #[test]
    fn ic_block_matches_paper_shape() {
        let t = quick();
        let ic = t.pipeline("IC").unwrap();
        let loader = ic.op("Loader").unwrap();
        assert!(
            (3.0..7.0).contains(&loader.summary.mean),
            "Loader avg {}",
            loader.summary.mean
        );
        let rrc = ic.op("RandomResizedCrop").unwrap();
        assert!(
            (0.6..1.7).contains(&rrc.summary.mean),
            "RRC avg {}",
            rrc.summary.mean
        );
        let rhf = ic.op("RandomHorizontalFlip").unwrap();
        assert!(rhf.summary.mean < 0.15, "RHF avg {}", rhf.summary.mean);
        assert!(rhf.frac_below_100us > 0.9);
        let collate = ic.op("C(128)").unwrap();
        assert!(
            (35.0..75.0).contains(&collate.summary.mean),
            "C(128) avg {}",
            collate.summary.mean
        );
        assert!(
            collate.frac_below_10ms < 0.05,
            "collation is never under 10 ms"
        );
        // Takeaway 1: ops with sub-10 ms (even sub-100 µs) elapsed times
        // exist in every pipeline.
        assert!(ic.ops.iter().any(|o| o.frac_below_100us > 0.9));
    }

    #[test]
    fn is_block_matches_paper_shape() {
        let t = quick();
        let is = t.pipeline("IS").unwrap();
        let rbc = is.op("RandBalancedCrop").unwrap();
        assert!(
            (40.0..150.0).contains(&rbc.summary.mean),
            "RBC avg {}",
            rbc.summary.mean
        );
        // RBC's bimodality: most executions are nearly free, the tail is
        // enormous (paper: 61% < 100 µs, P90 ≈ 300 ms).
        assert!(
            (0.4..0.75).contains(&rbc.frac_below_100us),
            "RBC <100us {}",
            rbc.frac_below_100us
        );
        assert!(rbc.summary.p90 > 100.0, "RBC p90 {}", rbc.summary.p90);
        let rba = is.op("RandomBrightnessAugmentation").unwrap();
        assert!(
            (0.8..0.95).contains(&rba.frac_below_100us),
            "RBA mostly a no-op"
        );
        let gn = is.op("GaussianNoise").unwrap();
        assert!(
            (0.8..0.95).contains(&gn.frac_below_100us),
            "GN mostly a no-op"
        );
        assert!(
            (2.0..12.0).contains(&gn.summary.mean),
            "GN avg {}",
            gn.summary.mean
        );
        let loader = is.op("Loader").unwrap();
        assert!(
            (40.0..150.0).contains(&loader.summary.mean),
            "Loader avg {}",
            loader.summary.mean
        );
        assert!(loader.frac_below_10ms < 0.1, "IS loads are never fast");
    }

    #[test]
    fn ac_extension_is_preprocessing_heavy_with_a_loader_dominant_mix() {
        let t = quick();
        let ac = t.pipeline("AC").unwrap();
        let loader = ac.op("Loader").unwrap();
        // FLAC decode of multi-second clips takes milliseconds.
        assert!(
            (1.0..20.0).contains(&loader.summary.mean),
            "Loader avg {}",
            loader.summary.mean
        );
        let mel = ac.op("MelSpectrogram").unwrap();
        assert!(mel.summary.mean > 0.3, "Mel avg {}", mel.summary.mean);
        // SpecAugment is nearly free.
        let aug = ac.op("SpecAugment").unwrap();
        assert!(
            aug.summary.mean < 0.2,
            "SpecAugment avg {}",
            aug.summary.mean
        );
        // Fixed-size features: collation present.
        assert!(ac.op("C(64)").is_some());
    }

    #[test]
    fn od_block_matches_paper_shape() {
        let t = quick();
        let od = t.pipeline("OD").unwrap();
        for (op, lo, hi) in [
            ("Loader", 4.0, 14.0),
            ("Resize", 5.0, 14.0),
            ("ToTensor", 3.5, 11.0),
            ("Normalize", 3.0, 12.0),
        ] {
            let s = od.op(op).unwrap();
            assert!(
                (lo..hi).contains(&s.summary.mean),
                "{op} avg {} outside [{lo},{hi})",
                s.summary.mean
            );
        }
        // No single op dominates (Takeaway 1): the largest op mean is
        // within ~4x of the second largest.
        let mut means: Vec<f64> = od.ops.iter().map(|o| o.summary.mean).collect();
        means.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!(means[0] < 4.0 * means[1]);
    }
}
