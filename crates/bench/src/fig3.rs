//! Figure 3: out-of-order arrival makes the main process wait (and the
//! ready batch wait) even though preprocessing already finished.

use std::fmt;
use std::sync::Arc;

use lotus_core::trace::analysis::{batch_timelines, BatchTimeline};
use lotus_core::trace::{LotusTrace, LotusTraceConfig, OpLogMode};
use lotus_sim::Span;
use lotus_uarch::{Machine, MachineConfig};
use lotus_workloads::{ExperimentConfig, PipelineKind};

/// An out-of-order episode extracted from a trace.
#[derive(Debug, Clone, Copy)]
pub struct OooEpisode {
    /// The batch that arrived early and had to wait in the cache.
    pub early_batch: BatchTimeline,
    /// How long the early batch sat preprocessed before consumption.
    pub delay: Span,
}

/// The figure's data: episodes plus totals.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Total batches in the run.
    pub total_batches: usize,
    /// Batches served from the out-of-order cache.
    pub ooo_batches: usize,
    /// A few representative episodes.
    pub episodes: Vec<OooEpisode>,
}

/// Runs a 4-worker IC configuration and extracts out-of-order episodes.
///
/// # Panics
///
/// Panics if the run fails.
#[must_use]
pub fn run() -> Fig3 {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
        op_mode: OpLogMode::Off,
        ..LotusTraceConfig::default()
    }));
    let mut config = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
    config.batch_size = 128;
    config.num_workers = 4;
    config.num_gpus = 4;
    let config = config.scaled_to(16_384);
    config
        .build(&machine, Arc::clone(&trace) as _, None)
        .run()
        .expect("fig3 run must complete");
    let timelines = batch_timelines(&trace.records());
    let episodes: Vec<OooEpisode> = timelines
        .iter()
        .filter(|t| t.wait.is_some_and(|(_, _, ooo)| ooo))
        .filter_map(|t| {
            t.delay().map(|delay| OooEpisode {
                early_batch: *t,
                delay,
            })
        })
        .take(5)
        .collect();
    Fig3 {
        total_batches: timelines.len(),
        ooo_batches: timelines
            .iter()
            .filter(|t| t.wait.is_some_and(|(_, _, o)| o))
            .count(),
        episodes,
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 3 — out-of-order arrivals")?;
        writeln!(
            f,
            "{} of {} batches arrived out of order and were pinned + cached",
            self.ooo_batches, self.total_batches
        )?;
        for e in &self.episodes {
            let t = &e.early_batch;
            let (p_start, p_dur) = t.preprocessed.expect("episode has fetch span");
            writeln!(
                f,
                "  batch {:>5} (worker pid {}): preprocessed by {}, consumed {} later \
                 (wait record carries the 1 µs marker)",
                t.batch_id,
                t.worker_pid.unwrap_or(0),
                p_start + p_dur,
                e.delay,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_episodes_exist_with_multiple_workers() {
        let fig = run();
        assert!(
            fig.ooo_batches > 0,
            "4 workers + variable image sizes must reorder"
        );
        assert!(!fig.episodes.is_empty());
    }

    #[test]
    fn early_batches_wait_despite_being_ready() {
        let fig = run();
        for e in &fig.episodes {
            assert!(
                e.delay > Span::ZERO,
                "an out-of-order batch sat ready before consumption"
            );
            // The wait record for a cached batch carries the paper's 1 µs
            // "no waiting" marker.
            let (_, wait_dur, ooo) = e.early_batch.wait.unwrap();
            assert!(ooo);
            assert_eq!(wait_dur, Span::from_micros(1));
        }
    }
}
