//! Figure 5: at batch 512, the main process waits > 500 ms for 30–100 %
//! of batches (a), and with more than one dataloader 32–62 % of batches
//! experience > 500 ms of delay (b) — driven by out-of-order arrivals.

use std::fmt;
use std::sync::Arc;

use lotus_core::trace::analysis::{fraction_delay_above, fraction_wait_above};
use lotus_core::trace::{LotusTrace, LotusTraceConfig, OpLogMode};
use lotus_sim::Span;
use lotus_uarch::{Machine, MachineConfig};
use lotus_workloads::{ExperimentConfig, PipelineKind};

use crate::Scale;

/// One GPU-count row.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// GPUs (= dataloaders).
    pub gpus: usize,
    /// Fraction of batches whose wait exceeded 500 ms.
    pub wait_above_500ms: f64,
    /// Fraction of batches whose delay exceeded 500 ms.
    pub delay_above_500ms: f64,
    /// Fraction of batches that arrived out of order.
    pub ooo_fraction: f64,
}

/// The figure: batch 512, GPUs = workers ∈ {1..4}.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// One row per GPU count.
    pub rows: Vec<Fig5Row>,
}

/// Runs the sweep.
///
/// # Panics
///
/// Panics if any run fails.
#[must_use]
pub fn run(scale: Scale) -> Fig5 {
    let threshold = Span::from_millis(500);
    let mut rows = Vec::new();
    for gpus in 1..=4usize {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
            op_mode: OpLogMode::Off,
            ..LotusTraceConfig::default()
        }));
        let mut config = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
        config.batch_size = 512;
        config.num_gpus = gpus;
        config.num_workers = gpus;
        if let Some(items) = scale.items(256 * 512) {
            config = config.scaled_to(items);
        }
        config
            .build(&machine, Arc::clone(&trace) as _, None)
            .run()
            .expect("fig5 run must complete");
        let records = trace.records();
        let timelines = lotus_core::trace::analysis::batch_timelines(&records);
        let ooo = timelines
            .iter()
            .filter(|t| t.wait.is_some_and(|(_, _, o)| o))
            .count();
        rows.push(Fig5Row {
            gpus,
            wait_above_500ms: fraction_wait_above(&records, threshold),
            delay_above_500ms: fraction_delay_above(&records, threshold),
            ooo_fraction: ooo as f64 / timelines.len().max(1) as f64,
        });
    }
    Fig5 { rows }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 5 — wait and delay times at batch 512")?;
        writeln!(
            f,
            "{:>5} {:>16} {:>16} {:>16}",
            "gpus", "wait>500ms %", "delay>500ms %", "out-of-order %"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>5} {:>16.1} {:>16.1} {:>16.1}",
                r.gpus,
                r.wait_above_500ms * 100.0,
                r.delay_above_500ms * 100.0,
                r.ooo_fraction * 100.0
            )?;
        }
        writeln!(
            f,
            "(paper: waits >500 ms for 30.84%–100% of batches; delays >500 ms for \
             32.1%–61.6% of batches when more than one dataloader is used)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waits_exceed_500ms_for_a_large_share_of_batches() {
        let fig = run(Scale::scaled());
        for r in &fig.rows {
            // Paper: 30.84%–100% of batches; cached out-of-order batches
            // count as 1 µs waits, pulling the multi-loader rows down.
            assert!(
                r.wait_above_500ms > 0.2,
                "gpus={} wait>500ms fraction {}",
                r.gpus,
                r.wait_above_500ms
            );
        }
        let single = fig.rows.iter().find(|r| r.gpus == 1).unwrap();
        assert!(
            single.wait_above_500ms > 0.9,
            "with one loader nearly every batch is waited for: {}",
            single.wait_above_500ms
        );
    }

    #[test]
    fn delays_exceed_500ms_only_with_multiple_dataloaders() {
        let fig = run(Scale::scaled());
        let single = fig.rows.iter().find(|r| r.gpus == 1).unwrap();
        assert!(
            single.delay_above_500ms < 0.15,
            "one loader cannot reorder: {}",
            single.delay_above_500ms
        );
        let multi_max = fig
            .rows
            .iter()
            .filter(|r| r.gpus > 1)
            .map(|r| r.delay_above_500ms)
            .fold(0.0, f64::max);
        // Reordering compounds over the epoch; the scaled run reaches the
        // lower end of the paper's 32.1%–61.6% full-epoch range.
        assert!(
            (0.15..0.9).contains(&multi_max),
            "multi-loader delay fraction {multi_max} (paper: 32.1%–61.6% at full scale)"
        );
    }

    #[test]
    fn reordering_grows_with_worker_count() {
        let fig = run(Scale::scaled());
        let one = fig.rows.iter().find(|r| r.gpus == 1).unwrap().ooo_fraction;
        let four = fig.rows.iter().find(|r| r.gpus == 4).unwrap().ooo_fraction;
        assert_eq!(one, 0.0, "a single loader cannot reorder");
        assert!(four > 0.04, "ooo fraction with 4 workers: {four}");
        assert!(four > one);
    }
}
