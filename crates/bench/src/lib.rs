//! # lotus-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation, each with a
//! `run(...)` function returning a typed result and a `Display` that
//! prints the same rows/series the paper reports. The bench targets under
//! `benches/` are thin wrappers (`harness = false`) so `cargo bench`
//! regenerates every result.
//!
//! ## Scale
//!
//! By default experiments run on deterministically truncated datasets
//! (identical distributions, smaller totals) so the whole suite finishes
//! in minutes. Set `LOTUS_FULL=1` to run the paper's full dataset sizes.

#![warn(missing_docs)]
// The whole workspace is safe Rust; determinism and auditability both
// lean on it. Gate any future exception through a crate-level decision.
#![deny(unsafe_code)]

pub mod ablation;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table1;
pub mod table2;
pub mod table3;

use lotus_core::exec::{self, DiskCache};
use lotus_core::map::Mapping;
use lotus_core::trace::analysis::OpStats;
use serde_json::Content;

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Run the paper's full dataset sizes.
    pub full: bool,
}

impl Scale {
    /// Reads `LOTUS_FULL` from the environment.
    #[must_use]
    pub fn from_env() -> Scale {
        Scale {
            full: std::env::var("LOTUS_FULL").is_ok_and(|v| v == "1"),
        }
    }

    /// A fixed scaled-down configuration (used by tests).
    #[must_use]
    pub fn scaled() -> Scale {
        Scale { full: false }
    }

    /// Dataset truncation: `None` (full dataset) when running full scale,
    /// otherwise `Some(scaled_items)`.
    #[must_use]
    pub fn items(&self, scaled_items: u64) -> Option<u64> {
        if self.full {
            None
        } else {
            Some(scaled_items)
        }
    }
}

/// Execution options shared by the bench binaries: how many parallel
/// measurement threads to fan independent runs across, and whether to
/// memoize expensive preparatory artifacts (the LotusMap mapping) in the
/// on-disk cache. Neither option changes a single output byte — every
/// run is a deterministic virtual-time simulation, results are joined in
/// submission order, and cache keys cover the full configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecArgs {
    /// Parallel measurement threads (≥ 1).
    pub jobs: usize,
    /// Reuse / populate the on-disk cache under `.lotus-cache/`.
    pub use_cache: bool,
}

impl Default for ExecArgs {
    /// All available cores, no cache — the hermetic library default
    /// (tests never touch the working directory).
    fn default() -> Self {
        ExecArgs {
            jobs: exec::default_jobs(),
            use_cache: false,
        }
    }
}

impl ExecArgs {
    /// Parses `--jobs N` and `--no-cache` from the process arguments.
    /// Unknown flags are ignored (`cargo bench` passes its own, e.g.
    /// `--bench`). Unlike [`Default`], the cache is **on** unless
    /// `--no-cache` is given — the binaries exist to regenerate results
    /// repeatedly.
    #[must_use]
    pub fn from_env() -> ExecArgs {
        Self::from_args(std::env::args().skip(1))
    }

    /// [`from_env`](Self::from_env) over an explicit argument list.
    #[must_use]
    pub fn from_args(raw: impl Iterator<Item = String>) -> ExecArgs {
        let mut args = ExecArgs {
            use_cache: true,
            ..ExecArgs::default()
        };
        let mut raw = raw.peekable();
        while let Some(arg) = raw.next() {
            match arg.as_str() {
                "--jobs" => {
                    if let Some(jobs) = raw.peek().and_then(|v| v.parse().ok()) {
                        if jobs >= 1 {
                            args.jobs = jobs;
                        }
                        raw.next();
                    }
                }
                "--no-cache" => args.use_cache = false,
                _ => {}
            }
        }
        args
    }
}

/// Returns the LotusMap mapping for `context`, consulting the on-disk
/// cache when `exec.use_cache` is set and falling back to `build`. The
/// mapping is the paper's "one-time preparatory step" (§IV-B): it
/// depends only on the machine type and batch size — both of which the
/// caller encodes into `context` — so a cached copy is valid forever.
/// Cache corruption or I/O failure silently degrades to building live.
#[must_use]
pub fn cached_mapping(exec: &ExecArgs, context: &str, build: impl FnOnce() -> Mapping) -> Mapping {
    if !exec.use_cache {
        return build();
    }
    let Ok(cache) = DiskCache::open(exec::DEFAULT_CACHE_DIR) else {
        return build();
    };
    if let Some(text) = cache.load("ic-mapping", context) {
        if let Some(mapping) = text.as_str().and_then(|s| Mapping::from_json(s).ok()) {
            return mapping;
        }
    }
    let mapping = build();
    let _ = cache.store("ic-mapping", context, Content::Str(mapping.to_json()));
    mapping
}

/// Formats one Table II-style block of per-op statistics.
#[must_use]
pub fn format_op_stats(title: &str, stats: &[OpStats]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<30} {:>9} {:>9} {:>8} {:>8}\n",
        "op", "avg ms", "P90 ms", "<10ms %", "<100us %"
    ));
    for op in stats {
        out.push_str(&format!(
            "{:<30} {:>9.2} {:>9.2} {:>8.2} {:>8.2}\n",
            op.name,
            op.summary.mean,
            op.summary.p90,
            op.frac_below_10ms * 100.0,
            op.frac_below_100us * 100.0
        ));
    }
    out
}

/// Output directory for generated artifacts (traces, mappings).
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("target/lotus-results");
    std::fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_items_respects_full_flag() {
        assert_eq!(Scale { full: false }.items(100), Some(100));
        assert_eq!(Scale { full: true }.items(100), None);
    }

    #[test]
    fn results_dir_is_created() {
        let dir = results_dir();
        assert!(dir.exists());
    }

    #[test]
    fn exec_args_parse_jobs_and_cache_flags() {
        let args = |raw: &[&str]| ExecArgs::from_args(raw.iter().map(ToString::to_string));
        assert_eq!(args(&["--jobs", "3"]).jobs, 3);
        assert!(args(&[]).use_cache, "binaries cache by default");
        assert!(!args(&["--no-cache"]).use_cache);
        // cargo-bench noise and bad values fall back to defaults.
        let noisy = args(&["--bench", "--jobs", "zero", "--no-cache"]);
        assert_eq!(noisy.jobs, ExecArgs::default().jobs);
        assert!(!noisy.use_cache);
        assert!(
            !ExecArgs::default().use_cache,
            "library default is hermetic"
        );
    }
}
