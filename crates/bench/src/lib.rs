//! # lotus-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation, each with a
//! `run(...)` function returning a typed result and a `Display` that
//! prints the same rows/series the paper reports. The bench targets under
//! `benches/` are thin wrappers (`harness = false`) so `cargo bench`
//! regenerates every result.
//!
//! ## Scale
//!
//! By default experiments run on deterministically truncated datasets
//! (identical distributions, smaller totals) so the whole suite finishes
//! in minutes. Set `LOTUS_FULL=1` to run the paper's full dataset sizes.

#![warn(missing_docs)]

pub mod ablation;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table1;
pub mod table2;
pub mod table3;

use lotus_core::trace::analysis::OpStats;

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Run the paper's full dataset sizes.
    pub full: bool,
}

impl Scale {
    /// Reads `LOTUS_FULL` from the environment.
    #[must_use]
    pub fn from_env() -> Scale {
        Scale {
            full: std::env::var("LOTUS_FULL").is_ok_and(|v| v == "1"),
        }
    }

    /// A fixed scaled-down configuration (used by tests).
    #[must_use]
    pub fn scaled() -> Scale {
        Scale { full: false }
    }

    /// Dataset truncation: `None` (full dataset) when running full scale,
    /// otherwise `Some(scaled_items)`.
    #[must_use]
    pub fn items(&self, scaled_items: u64) -> Option<u64> {
        if self.full {
            None
        } else {
            Some(scaled_items)
        }
    }
}

/// Formats one Table II-style block of per-op statistics.
#[must_use]
pub fn format_op_stats(title: &str, stats: &[OpStats]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<30} {:>9} {:>9} {:>8} {:>8}\n",
        "op", "avg ms", "P90 ms", "<10ms %", "<100us %"
    ));
    for op in stats {
        out.push_str(&format!(
            "{:<30} {:>9.2} {:>9.2} {:>8.2} {:>8.2}\n",
            op.name,
            op.summary.mean,
            op.summary.p90,
            op.frac_below_10ms * 100.0,
            op.frac_below_100us * 100.0
        ));
    }
    out
}

/// Output directory for generated artifacts (traces, mappings).
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("target/lotus-results");
    std::fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_items_respects_full_flag() {
        assert_eq!(Scale { full: false }.items(100), Some(100));
        assert_eq!(Scale { full: true }.items(100), None);
    }

    #[test]
    fn results_dir_is_created() {
        let dir = results_dir();
        assert!(dir.exists());
    }
}
