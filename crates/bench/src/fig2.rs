//! Figure 2: coarse traces of the three pipelines — IC is
//! preprocessing-bound (short delays), IS and OD are GPU-bound (delays of
//! ~10.9 s and ~1.64 s). Also writes the Chrome Trace Viewer files.

use std::fmt;
use std::sync::Arc;

use lotus_core::trace::analysis::{batch_timelines, BatchTimeline};
use lotus_core::trace::chrome::{to_chrome_trace, ChromeTraceOptions};
use lotus_core::trace::{LotusTrace, LotusTraceConfig, OpLogMode};
use lotus_sim::Span;
use lotus_uarch::{Machine, MachineConfig};
use lotus_workloads::{ExperimentConfig, PipelineKind};

use crate::Scale;

/// What dominates an epoch's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// The main process waits on preprocessing (Figure 2(a)).
    Preprocessing,
    /// Preprocessed batches queue up behind the GPU (Figure 2(b,c)).
    Gpu,
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bottleneck::Preprocessing => f.write_str("preprocessing-bound"),
            Bottleneck::Gpu => f.write_str("GPU-bound"),
        }
    }
}

/// One pipeline's coarse-trace summary.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Pipeline abbreviation.
    pub pipeline: &'static str,
    /// Mean main-process wait per batch.
    pub mean_wait: Span,
    /// Mean delay (preprocessed → consumed) per batch.
    pub mean_delay: Span,
    /// GPU step time per batch in this configuration.
    pub gpu_step: Span,
    /// Classification.
    pub bottleneck: Bottleneck,
    /// Where the Chrome trace was written.
    pub trace_path: std::path::PathBuf,
}

/// The figure's three panels.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// One row per pipeline.
    pub rows: Vec<Fig2Row>,
}

fn mean_span(values: impl Iterator<Item = Span>) -> Span {
    let v: Vec<Span> = values.collect();
    if v.is_empty() {
        return Span::ZERO;
    }
    Span::from_nanos(v.iter().map(|s| s.as_nanos()).sum::<u64>() / v.len() as u64)
}

/// Runs the three Figure 2 configurations and writes coarse Chrome traces
/// under `target/lotus-results/`.
///
/// # Panics
///
/// Panics if a run fails or a trace file cannot be written.
#[must_use]
pub fn run(scale: Scale) -> Fig2 {
    let mut rows = Vec::new();
    for (kind, batch, gpus, workers, scaled_items) in [
        // Figure 2(a): IC with batch 1024, 4 GPUs, 4 dataloaders.
        (PipelineKind::ImageClassification, 1024, 4, 4, 32_768),
        (PipelineKind::ImageSegmentation, 2, 1, 8, 210),
        (PipelineKind::ObjectDetection, 2, 1, 4, 512),
    ] {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
            op_mode: OpLogMode::Off,
            ..LotusTraceConfig::default()
        }));
        let mut config = ExperimentConfig::paper_default(kind);
        config.batch_size = batch;
        config.num_gpus = gpus;
        config.num_workers = workers;
        if let Some(items) = scale.items(scaled_items) {
            config = config.scaled_to(items);
        }
        let gpu_step = config
            .build(&machine, Arc::new(lotus_dataflow::NullTracer), None)
            .gpu
            .step_span(batch);
        config
            .build(&machine, Arc::clone(&trace) as _, None)
            .run()
            .expect("fig2 run must complete");

        let records = trace.records();
        let timelines = batch_timelines(&records);
        let mean_wait = mean_span(timelines.iter().filter_map(BatchTimeline::wait_span));
        let mean_delay = mean_span(timelines.iter().filter_map(BatchTimeline::delay));
        let bottleneck = if mean_wait > mean_delay {
            Bottleneck::Preprocessing
        } else {
            Bottleneck::Gpu
        };
        let trace_path = crate::results_dir().join(format!(
            "fig2_{}_coarse_trace.json",
            kind.abbrev().to_lowercase()
        ));
        let doc = to_chrome_trace(&records, ChromeTraceOptions { coarse: true });
        std::fs::write(
            &trace_path,
            serde_json::to_string_pretty(&doc).expect("serialize"),
        )
        .expect("write trace file");
        rows.push(Fig2Row {
            pipeline: kind.abbrev(),
            mean_wait,
            mean_delay,
            gpu_step,
            bottleneck,
            trace_path,
        });
    }
    Fig2 { rows }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2 — coarse traces (open the JSON in chrome://tracing)"
        )?;
        writeln!(
            f,
            "{:<4} {:>14} {:>14} {:>14}  {:<20} trace file",
            "", "mean wait", "mean delay", "GPU step", "bottleneck"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<4} {:>14} {:>14} {:>14}  {:<20} {}",
                r.pipeline,
                format!("{}", r.mean_wait),
                format!("{}", r.mean_delay),
                format!("{}", r.gpu_step),
                format!("{}", r.bottleneck),
                r.trace_path.display()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottleneck_classification_matches_the_paper() {
        let fig = run(Scale::scaled());
        let row = |p: &str| fig.rows.iter().find(|r| r.pipeline == p).unwrap();
        assert_eq!(row("IC").bottleneck, Bottleneck::Preprocessing);
        assert_eq!(row("IS").bottleneck, Bottleneck::Gpu);
        assert_eq!(row("OD").bottleneck, Bottleneck::Gpu);
    }

    #[test]
    fn gpu_bound_delays_exceed_the_step_time_many_fold() {
        let fig = run(Scale::scaled());
        let is = fig.rows.iter().find(|r| r.pipeline == "IS").unwrap();
        // Paper: 10.9 s delay vs 750 ms step.
        assert!(
            is.mean_delay > is.gpu_step * 4,
            "IS delay {} should dwarf the {} step",
            is.mean_delay,
            is.gpu_step
        );
        assert!(
            is.mean_delay.as_secs_f64() > 4.0 && is.mean_delay.as_secs_f64() < 20.0,
            "IS delay {} should be several seconds",
            is.mean_delay
        );
        let od = fig.rows.iter().find(|r| r.pipeline == "OD").unwrap();
        assert!(
            od.mean_delay.as_secs_f64() > 0.7 && od.mean_delay.as_secs_f64() < 4.0,
            "OD delay {} should be a couple of seconds",
            od.mean_delay
        );
    }

    #[test]
    fn trace_files_are_valid_chrome_documents() {
        let fig = run(Scale::scaled());
        for row in &fig.rows {
            let text = std::fs::read_to_string(&row.trace_path).unwrap();
            let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
            assert!(doc["traceEvents"].as_array().is_some_and(|a| !a.is_empty()));
        }
    }
}
