//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Sleep-gap bucketing** — without LotusMap's `sleep()` gap, skid
//!    mis-buckets decode kernels into `RandomResizedCrop`, inflating its
//!    attributed CPU time (the paper quantifies ~30 % for `decode_mcu`).
//! 2. **Sampling-rate frontier** — sweeping a sampling profiler's
//!    interval trades per-op fidelity against log volume and overhead;
//!    instrumented tracing (LotusTrace) sits off that trade-off curve.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use lotus_core::map::{split_metrics, IsolationConfig, Mapping};
use lotus_core::trace::{LotusTrace, LotusTraceConfig, OpLogMode};
use lotus_profilers::{ProfilerModel, SamplingConfig, SamplingProfiler};
use lotus_sim::Span;
use lotus_uarch::{CollectionMode, HwProfiler, Machine, MachineConfig, ProfilerConfig};
use lotus_workloads::{build_ic_mapping, ExperimentConfig, PipelineKind};

/// Result of the sleep-gap ablation.
#[derive(Debug, Clone)]
pub struct SleepGapAblation {
    /// RRC CPU time attributed with the clean (gap-on) mapping.
    pub rrc_cpu_clean: Span,
    /// RRC CPU time attributed with the polluted (gap-off) mapping.
    pub rrc_cpu_polluted: Span,
    /// RRC CPU time attributed when `decode_mcu` — the most CPU-hungry
    /// function — is deliberately mis-bucketed into RRC (the paper's
    /// hypothetical: a 30.21 % inflation).
    pub rrc_cpu_decode_misbucketed: Span,
    /// Functions in the polluted RRC bucket that the clean bucket lacks.
    pub leaked_functions: Vec<String>,
}

impl SleepGapAblation {
    /// Relative inflation of RRC's attributed CPU time from skid leakage.
    #[must_use]
    pub fn inflation(&self) -> f64 {
        relative(self.rrc_cpu_clean, self.rrc_cpu_polluted)
    }

    /// Relative inflation in the paper's hypothetical (`decode_mcu`
    /// bucketed under RRC).
    #[must_use]
    pub fn decode_misbucket_inflation(&self) -> f64 {
        relative(self.rrc_cpu_clean, self.rrc_cpu_decode_misbucketed)
    }
}

fn relative(clean: Span, inflated: Span) -> f64 {
    let c = clean.as_nanos() as f64;
    if c == 0.0 {
        0.0
    } else {
        (inflated.as_nanos() as f64 - c) / c
    }
}

/// Runs the sleep-gap ablation: same pipeline profile, two mappings.
///
/// # Panics
///
/// Panics if the pipeline run fails.
#[must_use]
pub fn sleep_gap() -> SleepGapAblation {
    let mapping_machine = Machine::new(MachineConfig::cloudlab_c4130());
    let clean = build_ic_mapping(&mapping_machine, IsolationConfig::default());
    let polluted_machine = Machine::new(MachineConfig::cloudlab_c4130());
    let polluted = build_ic_mapping(
        &polluted_machine,
        IsolationConfig {
            use_sleep_gap: false,
            runs_override: Some(600),
            ..IsolationConfig::default()
        },
    );

    // One profiled pipeline run provides the function-level counters.
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
        op_mode: OpLogMode::Aggregate,
        ..LotusTraceConfig::default()
    }));
    let hw = Arc::new(HwProfiler::new(ProfilerConfig {
        sampling_interval: Span::from_millis(10),
        skid: Span::from_micros(120),
        mode: CollectionMode::Sampling,
        start_paused: false,
    }));
    ExperimentConfig::paper_default(PipelineKind::ImageClassification)
        .scaled_to(16_384)
        .build(&machine, Arc::clone(&trace) as _, Some(Arc::clone(&hw)))
        .run()
        .expect("ablation run must complete");
    let op_times: BTreeMap<String, Span> = trace
        .op_stats()
        .iter()
        .map(|o| (o.name.clone(), o.total_cpu))
        .collect();
    let profile = hw.report(&machine);

    let rrc_cpu = |mapping: &Mapping| {
        split_metrics(&profile, mapping, &op_times)
            .into_iter()
            .find(|o| o.op == "RandomResizedCrop")
            .map_or(Span::ZERO, |o| o.cpu_time)
    };
    // The paper's hypothetical: bucket decode_mcu under RRC.
    let mut misbucketed = clean.clone();
    let mut rrc_bucket = misbucketed
        .functions_for("RandomResizedCrop")
        .expect("RRC mapped")
        .clone();
    rrc_bucket.functions.push(lotus_core::map::MappedFunction {
        name: "decode_mcu".into(),
        library: "libjpeg.so.9".into(),
        captured_runs: 1,
        total_runs: 1,
        samples: 1,
    });
    misbucketed.insert(rrc_bucket);
    let leaked = polluted
        .functions_for("RandomResizedCrop")
        .map(|b| {
            b.functions
                .iter()
                .filter(|f| {
                    clean
                        .functions_for("RandomResizedCrop")
                        .is_none_or(|c| !c.contains(&f.name))
                })
                .map(|f| f.name.clone())
                .collect()
        })
        .unwrap_or_default();
    SleepGapAblation {
        rrc_cpu_clean: rrc_cpu(&clean),
        rrc_cpu_polluted: rrc_cpu(&polluted),
        rrc_cpu_decode_misbucketed: rrc_cpu(&misbucketed),
        leaked_functions: leaked,
    }
}

impl fmt::Display for SleepGapAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation — LotusMap sleep-gap bucketing")?;
        writeln!(
            f,
            "RRC attributed CPU, clean mapping:    {}",
            self.rrc_cpu_clean
        )?;
        writeln!(
            f,
            "RRC attributed CPU, polluted mapping: {}",
            self.rrc_cpu_polluted
        )?;
        writeln!(
            f,
            "skid-leakage inflation: {:.1}%",
            self.inflation() * 100.0
        )?;
        writeln!(
            f,
            "decode_mcu-in-RRC hypothetical inflation: {:.1}% (paper: 30.21%)",
            self.decode_misbucket_inflation() * 100.0
        )?;
        writeln!(
            f,
            "functions leaked into the RRC bucket: {:?}",
            self.leaked_functions
        )
    }
}

/// One point of the sampling-rate frontier.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// Label ("lotus" or the sampling interval).
    pub label: String,
    /// Mean absolute relative error of per-op epoch totals vs. ground
    /// truth (ops missed entirely count as 100 % error).
    pub epoch_error: f64,
    /// Log storage written.
    pub log_bytes: u64,
    /// Wall-time overhead fraction.
    pub overhead: f64,
}

/// The frontier sweep result.
#[derive(Debug, Clone)]
pub struct SamplingFrontier {
    /// Lotus plus one point per sampling interval.
    pub points: Vec<FrontierPoint>,
}

/// Sweeps sampling intervals on the IC pipeline and contrasts with
/// LotusTrace.
///
/// # Panics
///
/// Panics if any run fails.
#[must_use]
pub fn sampling_frontier() -> SamplingFrontier {
    let items = 8_192u64;
    let config = {
        let mut c = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
        c.batch_size = 512;
        c.scaled_to(items)
    };
    let run = |tracer: Arc<dyn lotus_dataflow::Tracer>| {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        config
            .build(&machine, tracer, None)
            .run()
            .expect("frontier run must complete")
            .elapsed
    };

    // Ground truth per-op totals + baseline wall time.
    let truth_trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
        op_mode: OpLogMode::Aggregate,
        per_log_overhead: Span::ZERO,
    }));
    let baseline_wall = run(Arc::clone(&truth_trace) as _);
    let truth: BTreeMap<String, Span> = truth_trace
        .op_stats()
        .iter()
        .map(|o| (o.name.clone(), o.total_cpu))
        .collect();

    let mut points = Vec::new();
    // LotusTrace itself (with its real per-log overhead).
    {
        let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
            op_mode: OpLogMode::Aggregate,
            ..LotusTraceConfig::default()
        }));
        let wall = run(Arc::clone(&trace) as _);
        let estimates: BTreeMap<String, Span> = trace
            .op_stats()
            .iter()
            .map(|o| (o.name.clone(), o.total_cpu))
            .collect();
        points.push(FrontierPoint {
            label: "lotus (instrumented)".into(),
            epoch_error: epoch_error(&truth, &estimates),
            log_bytes: trace.log_storage_bytes(),
            overhead: overhead(baseline_wall, wall),
        });
    }
    for interval in [
        Span::from_millis(10),
        Span::from_millis(1),
        Span::from_micros(100),
    ] {
        // External sampler: per-sample target pause of ~3.2 µs.
        let dilation = 1.0 + 3_200.0 / interval.as_nanos() as f64;
        let profiler = Arc::new(SamplingProfiler::new(
            "sweep",
            SamplingConfig {
                interval,
                dilation,
                bytes_per_sample: 1_700,
                report_bytes: 0,
                resolves_ops: true,
            },
        ));
        let wall = run(Arc::clone(&profiler) as _);
        let output = profiler.finish(wall, 2);
        let estimates = output.per_op_epoch_totals.unwrap_or_default();
        points.push(FrontierPoint {
            label: format!("sampling @ {interval}"),
            epoch_error: epoch_error(&truth, &estimates),
            log_bytes: output.log_bytes,
            overhead: overhead(baseline_wall, wall),
        });
    }
    SamplingFrontier { points }
}

fn epoch_error(truth: &BTreeMap<String, Span>, estimate: &BTreeMap<String, Span>) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for (op, t) in truth {
        let t = t.as_nanos() as f64;
        if t == 0.0 {
            continue;
        }
        let e = estimate.get(op).copied().unwrap_or(Span::ZERO).as_nanos() as f64;
        total += ((e - t) / t).abs();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

fn overhead(baseline: Span, wall: Span) -> f64 {
    (wall.as_nanos() as f64 - baseline.as_nanos() as f64) / baseline.as_nanos() as f64
}

impl fmt::Display for SamplingFrontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — sampling-rate fidelity/overhead frontier (IC, batch 512)"
        )?;
        writeln!(
            f,
            "{:<24} {:>14} {:>14} {:>12}",
            "collector", "epoch error %", "log bytes", "overhead %"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:<24} {:>14.2} {:>14} {:>12.2}",
                p.label,
                p.epoch_error * 100.0,
                p.log_bytes,
                p.overhead * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mis_bucketing_inflates_rrc_substantially() {
        let ab = sleep_gap();
        assert!(
            !ab.leaked_functions.is_empty(),
            "the gap-off mapping must be polluted"
        );
        assert!(
            ab.inflation() > 0.02,
            "skid leakage inflation {:.3} should be measurable",
            ab.inflation()
        );
        // The paper's hypothetical: decode_mcu bucketed under RRC inflates
        // its CPU time by ~30%.
        assert!(
            (0.10..0.80).contains(&ab.decode_misbucket_inflation()),
            "decode_mcu mis-bucket inflation {:.3} (paper: 0.30)",
            ab.decode_misbucket_inflation()
        );
    }

    #[test]
    fn finer_sampling_buys_fidelity_with_storage() {
        let frontier = sampling_frontier();
        let by_label = |needle: &str| {
            frontier
                .points
                .iter()
                .find(|p| p.label.contains(needle))
                .unwrap_or_else(|| panic!("{needle} missing"))
        };
        let coarse = by_label("10.000ms");
        let fine = by_label("100.000us");
        assert!(
            fine.epoch_error < coarse.epoch_error,
            "finer sampling is more accurate"
        );
        assert!(
            fine.log_bytes > 20 * coarse.log_bytes,
            "…but writes far more log"
        );
        let lotus = by_label("lotus");
        assert!(lotus.epoch_error < 0.02, "instrumentation is near-exact");
        assert!(
            lotus.log_bytes < fine.log_bytes / 20,
            "lotus log {} vs fine sampling {}",
            lotus.log_bytes,
            fine.log_bytes
        );
    }
}
