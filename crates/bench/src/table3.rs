//! Tables III and IV: profiler overhead (wall time, log storage) and
//! functionality comparison on the IC pipeline (batch 512, 1 GPU,
//! 1 dataloader), on ImageNet and ImageNet-small.

use std::fmt;

use lotus_profilers::{ComparisonHarness, ComparisonRow};
use lotus_workloads::{ExperimentConfig, PipelineKind};

use crate::Scale;

/// A comparison block for one dataset.
#[derive(Debug, Clone)]
pub struct DatasetComparison {
    /// Dataset label.
    pub dataset: &'static str,
    /// Rows: Lotus first, then the four baselines.
    pub rows: Vec<ComparisonRow>,
}

impl DatasetComparison {
    /// The row for one profiler.
    #[must_use]
    pub fn row(&self, profiler: &str) -> Option<&ComparisonRow> {
        self.rows.iter().find(|r| r.profiler == profiler)
    }
}

/// Tables III + IV.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// ImageNet (full when `LOTUS_FULL=1`, truncated otherwise) and
    /// ImageNet-small blocks.
    pub datasets: Vec<DatasetComparison>,
}

impl Table3 {
    /// The block for one dataset.
    #[must_use]
    pub fn dataset(&self, label: &str) -> Option<&DatasetComparison> {
        self.datasets.iter().find(|d| d.dataset == label)
    }
}

fn ic_512() -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
    config.batch_size = 512;
    config.num_gpus = 1;
    config.num_workers = 1;
    config
}

/// Runs the comparison on both datasets.
///
/// # Panics
///
/// Panics if any run fails.
#[must_use]
pub fn run(scale: Scale) -> Table3 {
    let mut datasets = Vec::new();
    // "ImageNet": the full train split when LOTUS_FULL=1.
    let mut imagenet = ic_512();
    if let Some(items) = scale.items(128 * 512) {
        imagenet = imagenet.scaled_to(items);
    }
    datasets.push(DatasetComparison {
        dataset: "ImageNet",
        rows: ComparisonHarness::new(imagenet).run_all(),
    });
    // "ImageNet-small": always the paper's 26 061-image subset.
    let small = ic_512().scaled_to(26_061);
    datasets.push(DatasetComparison {
        dataset: "ImageNet-small",
        rows: ComparisonHarness::new(small).run_all(),
    });
    Table3 { datasets }
}

fn human_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1e9 {
        format!("{:.1} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} KB", b / 1e3)
    } else {
        format!("{bytes} B")
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table III — profiler overheads (vs. no-profiler baseline)"
        )?;
        for d in &self.datasets {
            writeln!(f, "\n[{}]", d.dataset)?;
            writeln!(
                f,
                "{:<18} {:>12} {:>12} {:>14} {:>6}",
                "profiler", "wall time", "overhead %", "log storage", "OOM"
            )?;
            for r in &d.rows {
                writeln!(
                    f,
                    "{:<18} {:>11.1}s {:>12.1} {:>14} {:>6}",
                    r.profiler,
                    r.wall_time.as_secs_f64(),
                    r.wall_overhead * 100.0,
                    human_bytes(r.log_bytes),
                    if r.out_of_memory { "yes" } else { "no" }
                )?;
            }
        }
        writeln!(f, "\nTable IV — functionality")?;
        writeln!(
            f,
            "{:<18} {:<5} {:<5} {:<5} {:<5} {:<5}",
            "profiler", "Epoch", "Batch", "Async", "Wait", "Delay"
        )?;
        if let Some(d) = self.datasets.first() {
            for r in &d.rows {
                writeln!(f, "{:<18} {}", r.profiler, r.capabilities.row())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_profilers::Capabilities;

    fn quick() -> DatasetComparison {
        DatasetComparison {
            dataset: "quick",
            rows: ComparisonHarness::new(ic_512().scaled_to(4 * 512)).run_all(),
        }
    }

    #[test]
    fn lotus_wins_on_overhead_among_op_resolving_profilers() {
        let d = quick();
        let lotus = d.row("Lotus").unwrap();
        assert!(
            lotus.wall_overhead < 0.05,
            "Lotus overhead {}",
            lotus.wall_overhead
        );
        for other in ["Scalene", "PyTorch Profiler"] {
            let row = d.row(other).unwrap();
            assert!(
                row.wall_overhead > 10.0 * lotus.wall_overhead.max(0.005),
                "{other} should cost far more than Lotus: {} vs {}",
                row.wall_overhead,
                lotus.wall_overhead
            );
        }
    }

    #[test]
    fn overhead_ordering_matches_table_3() {
        let d = quick();
        let oh = |p: &str| d.row(p).unwrap().wall_overhead;
        assert!(
            oh("Scalene") > oh("py-spy"),
            "Scalene {} vs py-spy {}",
            oh("Scalene"),
            oh("py-spy")
        );
        assert!(
            oh("py-spy") > oh("austin"),
            "py-spy {} vs austin {}",
            oh("py-spy"),
            oh("austin")
        );
        assert!(oh("PyTorch Profiler") > oh("py-spy"));
    }

    #[test]
    fn storage_ordering_matches_table_3() {
        let d = quick();
        let bytes = |p: &str| d.row(p).unwrap().log_bytes;
        // austin's 100 µs text stacks dominate everything.
        assert!(bytes("austin") > 50 * bytes("Lotus"));
        assert!(bytes("austin") > 100 * bytes("py-spy"));
    }

    #[test]
    fn functionality_matrix_matches_table_4() {
        let d = quick();
        let caps = |p: &str| d.row(p).unwrap().capabilities;
        assert_eq!(caps("Lotus").count(), 5, "Lotus captures everything");
        assert_eq!(caps("Scalene"), Capabilities::default());
        let pyspy = caps("py-spy");
        assert!(pyspy.epoch && !pyspy.batch && !pyspy.wait);
        let austin = caps("austin");
        assert!(austin.epoch && !austin.async_flow);
        let torch = caps("PyTorch Profiler");
        assert!(torch.wait && !torch.epoch && !torch.delay);
    }
}
