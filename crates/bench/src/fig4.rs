//! Figure 4: per-batch preprocessing time has high variance, growing with
//! batch size (σ between ~5 % and ~11 % of the mean per configuration;
//! IQR up to ~7× from batch 128 to batch 1024).

use std::fmt;
use std::sync::Arc;

use lotus_core::trace::analysis::preprocess_time_summary;
use lotus_core::trace::{LotusTrace, LotusTraceConfig, OpLogMode};
use lotus_data::stats::Summary;
use lotus_uarch::{Machine, MachineConfig};
use lotus_workloads::{ExperimentConfig, PipelineKind};

use crate::Scale;

/// One (batch size, GPU count) cell of the figure.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Cell {
    /// Batch size.
    pub batch_size: usize,
    /// GPUs (= dataloaders, as in the paper's sweep).
    pub gpus: usize,
    /// Per-batch preprocessing-time distribution, in milliseconds.
    pub summary: Summary,
}

impl Fig4Cell {
    /// σ as a fraction of the mean.
    #[must_use]
    pub fn cv(&self) -> f64 {
        self.summary.cv()
    }
}

/// The whole sweep.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// All 16 cells.
    pub cells: Vec<Fig4Cell>,
}

impl Fig4 {
    /// The cell for one configuration.
    #[must_use]
    pub fn cell(&self, batch_size: usize, gpus: usize) -> Option<&Fig4Cell> {
        self.cells
            .iter()
            .find(|c| c.batch_size == batch_size && c.gpus == gpus)
    }

    /// Range of coefficients of variation across configurations.
    #[must_use]
    pub fn cv_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for c in &self.cells {
            lo = lo.min(c.cv());
            hi = hi.max(c.cv());
        }
        (lo, hi)
    }

    /// Largest IQR growth factor from batch 128 to batch 1024 at equal
    /// GPU count (the paper reports up to 6.9×).
    #[must_use]
    pub fn max_iqr_growth(&self) -> f64 {
        (1..=4)
            .filter_map(|g| {
                let small = self.cell(128, g)?.summary.iqr;
                let large = self.cell(1024, g)?.summary.iqr;
                (small > 0.0).then_some(large / small)
            })
            .fold(0.0, f64::max)
    }
}

/// Runs the 4×4 sweep (batch ∈ {128…1024} × GPUs = workers ∈ {1…4}).
///
/// # Panics
///
/// Panics if any run fails.
#[must_use]
pub fn run(scale: Scale) -> Fig4 {
    let mut cells = Vec::new();
    for &batch_size in &[128usize, 256, 512, 1024] {
        for gpus in 1..=4usize {
            let machine = Machine::new(MachineConfig::cloudlab_c4130());
            let trace = Arc::new(LotusTrace::with_config(LotusTraceConfig {
                op_mode: OpLogMode::Off,
                ..LotusTraceConfig::default()
            }));
            let mut config = ExperimentConfig::paper_default(PipelineKind::ImageClassification);
            config.batch_size = batch_size;
            config.num_gpus = gpus;
            config.num_workers = gpus;
            // 96 batches per cell when scaled.
            if let Some(items) = scale.items(96 * batch_size as u64) {
                config = config.scaled_to(items);
            }
            config
                .build(&machine, Arc::clone(&trace) as _, None)
                .run()
                .expect("fig4 run must complete");
            cells.push(Fig4Cell {
                batch_size,
                gpus,
                summary: preprocess_time_summary(&trace.records()),
            });
        }
    }
    Fig4 { cells }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4 — per-batch preprocessing time (ms)")?;
        writeln!(
            f,
            "{:>6} {:>5} {:>10} {:>10} {:>8} {:>10} {:>10}",
            "batch", "gpus", "mean", "std", "cv %", "IQR", "P90"
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "{:>6} {:>5} {:>10.1} {:>10.1} {:>8.2} {:>10.1} {:>10.1}",
                c.batch_size,
                c.gpus,
                c.summary.mean,
                c.summary.std,
                c.cv() * 100.0,
                c.summary.iqr,
                c.summary.p90
            )?;
        }
        let (lo, hi) = self.cv_range();
        writeln!(
            f,
            "σ ranges from {:.2}% to {:.2}% of the per-config mean (paper: 5.48%–10.73%)",
            lo * 100.0,
            hi * 100.0
        )?;
        writeln!(
            f,
            "IQR grows up to {:.1}× from batch 128 to batch 1024 (paper: up to 6.9×)",
            self.max_iqr_growth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variance_shape_matches_the_paper() {
        let fig = run(Scale::scaled());
        assert_eq!(fig.cells.len(), 16);
        let (lo, hi) = fig.cv_range();
        // The paper reports 5.48%–10.73%; the shape requirement is
        // "consistently noticeable variance".
        assert!(lo > 0.02, "cv lower bound {lo}");
        assert!(hi < 0.30, "cv upper bound {hi}");
        // Absolute IQR grows substantially with batch size.
        assert!(
            fig.max_iqr_growth() > 3.0,
            "IQR growth {} should be several-fold",
            fig.max_iqr_growth()
        );
    }

    #[test]
    fn mean_batch_time_scales_with_batch_size() {
        let fig = run(Scale::scaled());
        let small = fig.cell(128, 1).unwrap().summary.mean;
        let large = fig.cell(1024, 1).unwrap().summary.mean;
        let ratio = large / small;
        assert!((6.0..10.5).contains(&ratio), "1024/128 mean ratio {ratio}");
    }
}
