//! Regenerates Table I: the Python-op → C/C++-function mapping on Intel
//! (VTune) and AMD (uProf) machines. Also writes `mapping_funcs.json`.

use lotus_core::map::IsolationConfig;
use lotus_sim::Span;

fn main() {
    // Target the smallest function of interest (~100 µs) so the run-count
    // formula yields a mapping that is complete on both vendors.
    let config = IsolationConfig {
        expected_fn_span: Span::from_micros(100),
        ..IsolationConfig::default()
    };
    let table = lotus_bench::table1::run(config);
    println!("{table}");
    let path = lotus_bench::results_dir().join("mapping_funcs.json");
    std::fs::write(&path, table.intel.to_json()).expect("write mapping json");
    println!("Intel mapping written to {}", path.display());
}
