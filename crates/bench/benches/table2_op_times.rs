//! Regenerates Table II: per-image elapsed time per preprocessing
//! operation for the IC, IS and OD pipelines.
//!
//! Accepts `--jobs N` (parallel measurement threads) and `--no-cache`;
//! neither changes a single output byte.

fn main() {
    let scale = lotus_bench::Scale::from_env();
    let exec = lotus_bench::ExecArgs::from_env();
    println!("{}", lotus_bench::table2::run_with(scale, &exec));
}
