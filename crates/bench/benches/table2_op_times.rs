//! Regenerates Table II: per-image elapsed time per preprocessing
//! operation for the IC, IS and OD pipelines.

fn main() {
    let scale = lotus_bench::Scale::from_env();
    println!("{}", lotus_bench::table2::run(scale));
}
