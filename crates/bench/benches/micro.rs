//! Criterion micro-benchmarks of the substrates themselves: simulation
//! queue throughput, codec decode, kernel cost evaluation, histogram
//! ingestion.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use lotus_codec::Codec;
use lotus_core::trace::hist::LogHistogram;
use lotus_data::Image;
use lotus_sim::{Simulation, Span};
use lotus_uarch::{CostCoeffs, CpuThread, Machine, MachineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sim_queue(c: &mut Criterion) {
    c.bench_function("sim_queue_1000_messages", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let q = sim.queue::<u64>("bench", Some(16));
            let tx = q.clone();
            sim.spawn("producer", move |ctx| {
                for i in 0..1000 {
                    tx.push(&ctx, i);
                }
            });
            sim.spawn("consumer", move |ctx| {
                for _ in 0..1000 {
                    let _ = q.pop(&ctx);
                }
            });
            sim.run().unwrap()
        });
    });
}

fn bench_codec_decode(c: &mut Criterion) {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let codec = Codec::new(&machine);
    let mut cpu = CpuThread::new(Arc::clone(&machine));
    let image = Image::synthetic(128, 128, &mut StdRng::seed_from_u64(1));
    let encoded = codec.encode(&image, 85, &mut cpu);
    c.bench_function("codec_decode_128x128", |b| {
        b.iter(|| codec.decode(&encoded, &mut cpu).unwrap());
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let machine = Machine::new(MachineConfig::cloudlab_c4130());
    let kernel = machine.kernel("bench_kernel", "lib", CostCoeffs::compute_default());
    let mut cpu = CpuThread::new(Arc::clone(&machine));
    c.bench_function("kernel_cost_evaluation", |b| {
        b.iter(|| cpu.exec(kernel, 10_000.0));
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("log_histogram_record", |b| {
        let mut h = LogHistogram::new();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(7919);
            h.record(Span::from_nanos(1 + i % 10_000_000));
        });
    });
}

criterion_group!(
    benches,
    bench_sim_queue,
    bench_codec_decode,
    bench_cost_model,
    bench_histogram
);
criterion_main!(benches);
