//! Regenerates Figure 5: fractions of batches with >500 ms wait and
//! delay times at batch 512.

fn main() {
    let scale = lotus_bench::Scale::from_env();
    println!("{}", lotus_bench::fig5::run(scale));
}
