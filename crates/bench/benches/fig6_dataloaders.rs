//! Regenerates Figure 6: the dataloader sweep combining LotusTrace
//! timings, the hardware profile and LotusMap metric splitting.

fn main() {
    let scale = lotus_bench::Scale::from_env();
    println!("{}", lotus_bench::fig6::run(scale));
    println!("\n-- AMD machine (uProf driver; the analysis the paper defers to its repository) --");
    println!("{}", lotus_bench::fig6::run_amd(scale));
}
