//! Regenerates Figure 6: the dataloader sweep combining LotusTrace
//! timings, the hardware profile and LotusMap metric splitting.
//!
//! Accepts `--jobs N` (parallel measurement threads) and `--no-cache`
//! (skip the on-disk mapping cache); neither changes a single output
//! byte.

use lotus_uarch::MachineConfig;

fn main() {
    let scale = lotus_bench::Scale::from_env();
    let exec = lotus_bench::ExecArgs::from_env();
    println!(
        "{}",
        lotus_bench::fig6::run_on_with(scale, MachineConfig::cloudlab_c4130(), &exec)
    );
    println!("\n-- AMD machine (uProf driver; the analysis the paper defers to its repository) --");
    println!(
        "{}",
        lotus_bench::fig6::run_on_with(scale, MachineConfig::amd_rome(), &exec)
    );
}
