//! Regenerates Figure 3: out-of-order batch arrivals and the waiting they
//! cause despite batches being ready.

fn main() {
    println!("{}", lotus_bench::fig3::run());
}
