//! Regenerates Figure 4: per-batch preprocessing-time variance across
//! batch sizes and GPU counts.

fn main() {
    let scale = lotus_bench::Scale::from_env();
    println!("{}", lotus_bench::fig4::run(scale));
}
