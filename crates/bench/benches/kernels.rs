//! Before/after benchmarks of the two hot preprocessing kernels the
//! native backend actually runs: the 8×8 DCT/IDCT pair in `lotus-codec`
//! (separable + cosine LUT vs. the O(8⁴) textbook reference) and the
//! bilinear resize in `lotus-transforms` (separable two-pass vs. the
//! naive per-pixel gather). Both optimized versions are differentially
//! tested against the references in their home crates; this file tracks
//! the speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use lotus_codec::dct::{fdct8x8, fdct8x8_ref, idct8x8, idct8x8_ref, BLOCK_LEN};
use lotus_data::Image;
use lotus_transforms::{resize_bilinear, resize_bilinear_ref};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_block() -> [f64; BLOCK_LEN] {
    let mut block = [0.0; BLOCK_LEN];
    for (i, b) in block.iter_mut().enumerate() {
        *b = ((i * 37) % 256) as f64 - 128.0;
    }
    block
}

fn bench_dct(c: &mut Criterion) {
    let block = sample_block();
    let coeffs = fdct8x8(&block);
    c.bench_function("dct8x8/fdct_separable", |b| b.iter(|| fdct8x8(&block)));
    c.bench_function("dct8x8/fdct_reference", |b| b.iter(|| fdct8x8_ref(&block)));
    c.bench_function("dct8x8/idct_separable", |b| b.iter(|| idct8x8(&coeffs)));
    c.bench_function("dct8x8/idct_reference", |b| b.iter(|| idct8x8_ref(&coeffs)));
}

fn bench_resize(c: &mut Criterion) {
    let img = Image::synthetic(500, 375, &mut StdRng::seed_from_u64(0x0107));
    c.bench_function("resize_bilinear/separable_500x375_to_224", |b| {
        b.iter(|| resize_bilinear(&img, 224, 224));
    });
    c.bench_function("resize_bilinear/reference_500x375_to_224", |b| {
        b.iter(|| resize_bilinear_ref(&img, 224, 224));
    });
}

criterion_group!(benches, bench_dct, bench_resize);
criterion_main!(benches);
