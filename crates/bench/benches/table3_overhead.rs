//! Regenerates Tables III and IV: profiler overhead and functionality.

fn main() {
    let scale = lotus_bench::Scale::from_env();
    println!("{}", lotus_bench::table3::run(scale));
}
