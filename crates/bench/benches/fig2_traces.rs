//! Regenerates Figure 2: coarse traces and bottleneck classification for
//! the three pipelines; writes Chrome Trace Viewer JSON files.

fn main() {
    let scale = lotus_bench::Scale::from_env();
    println!("{}", lotus_bench::fig2::run(scale));
}
