//! Runs the design-choice ablations: sleep-gap bucketing and the
//! sampling-rate fidelity/overhead frontier.

fn main() {
    println!("{}", lotus_bench::ablation::sleep_gap());
    println!();
    println!("{}", lotus_bench::ablation::sampling_frontier());
}
