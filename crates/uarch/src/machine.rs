//! The simulated machine: CPU parameters and shared-resource load tracking.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use lotus_sim::Span;

use crate::kernels::{CostCoeffs, KernelId, KernelRegistry, KernelSpec};

/// CPU vendor; selects the sampling-driver characteristics and which
/// vendor-specific library kernels (e.g. glibc memcpy variants) resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Intel: VTune semantics — 10 ms user-mode sampling interval.
    Intel,
    /// AMD: uProf semantics — 1 ms user-mode sampling interval.
    Amd,
}

impl Vendor {
    /// Default user-mode sampling interval of this vendor's profiler
    /// (10 ms for Intel VTune, 1 ms for AMD uProf — §IV-B of the paper).
    #[must_use]
    pub fn default_sampling_interval(self) -> Span {
        match self {
            Vendor::Intel => Span::from_millis(10),
            Vendor::Amd => Span::from_millis(1),
        }
    }
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Vendor::Intel => f.write_str("Intel"),
            Vendor::Amd => f.write_str("AMD"),
        }
    }
}

/// Static description of the simulated CPU.
///
/// The defaults model the paper's testbed: a dual-socket 3.2 GHz Intel Xeon
/// E5-2667 (CloudLab c4130) with 32 cores.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// CPU vendor.
    pub vendor: Vendor,
    /// Total hardware cores available for compute.
    pub cores: usize,
    /// Core frequency in GHz (cycles per nanosecond).
    pub freq_ghz: f64,
    /// Pipeline issue width (slots per cycle) for top-down accounting.
    pub issue_width: f64,
    /// L2 hit latency in cycles (services L1 misses).
    pub l2_latency: f64,
    /// LLC hit latency in cycles (services L2 misses).
    pub llc_latency: f64,
    /// Local-DRAM latency in cycles (services LLC misses).
    pub dram_latency: f64,
    /// Fraction of memory-stall cycles hidden by out-of-order overlap.
    pub mem_overlap: f64,
    /// Cycles to recover from one branch mispredict.
    pub mispredict_penalty: f64,
    /// Front-end slowdown per unit of machine load (shared fetch/decode and
    /// instruction-cache pressure as concurrent workers grow).
    pub fe_contention: f64,
    /// DRAM-latency inflation per unit of machine load (shared memory
    /// bandwidth).
    pub mem_contention: f64,
}

impl MachineConfig {
    /// The paper's Intel testbed (CloudLab c4130).
    #[must_use]
    pub fn cloudlab_c4130() -> MachineConfig {
        MachineConfig {
            vendor: Vendor::Intel,
            cores: 32,
            freq_ghz: 3.2,
            issue_width: 4.0,
            l2_latency: 12.0,
            llc_latency: 42.0,
            dram_latency: 220.0,
            mem_overlap: 0.65,
            mispredict_penalty: 16.0,
            fe_contention: 2.0,
            mem_contention: 0.55,
        }
    }

    /// An AMD variant of the testbed (for the uProf / AMDProfileControl
    /// side of LotusMap).
    #[must_use]
    pub fn amd_rome() -> MachineConfig {
        MachineConfig {
            vendor: Vendor::Amd,
            cores: 32,
            freq_ghz: 3.0,
            issue_width: 4.0,
            l2_latency: 13.0,
            llc_latency: 46.0,
            dram_latency: 240.0,
            mem_overlap: 0.65,
            mispredict_penalty: 18.0,
            fe_contention: 1.9,
            mem_contention: 0.6,
        }
    }

    /// Cycles per nanosecond.
    #[must_use]
    pub fn cycles_per_ns(&self) -> f64 {
        self.freq_ghz
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::cloudlab_c4130()
    }
}

/// A shared simulated machine: configuration, the native-kernel registry and
/// the instantaneous compute load used by the contention model.
///
/// One `Machine` is shared (via [`Arc`]) by every simulated process in a run;
/// workers report when they start and stop computing so that kernel costs can
/// reflect shared-resource contention.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    registry: RwLock<KernelRegistry>,
    active_threads: AtomicUsize,
}

impl Machine {
    /// Creates a machine with an empty kernel registry.
    #[must_use]
    pub fn new(config: MachineConfig) -> Arc<Machine> {
        Arc::new(Machine {
            config,
            registry: RwLock::new(KernelRegistry::new()),
            active_threads: AtomicUsize::new(0),
        })
    }

    /// The machine's static configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Registers a native kernel (name, library, cost coefficients) and
    /// returns its id. Registering the same name twice returns the existing
    /// id (so independent transform instances can share kernels).
    pub fn register_kernel(&self, spec: KernelSpec) -> KernelId {
        self.registry
            .write()
            .expect("registry poisoned")
            .register(spec)
    }

    /// Convenience wrapper over [`Machine::register_kernel`].
    pub fn kernel(&self, name: &str, library: &str, cost: CostCoeffs) -> KernelId {
        self.register_kernel(KernelSpec {
            name: name.to_string(),
            library: library.to_string(),
            cost,
        })
    }

    /// Looks up a kernel's spec by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this machine.
    #[must_use]
    pub fn kernel_spec(&self, id: KernelId) -> KernelSpec {
        self.registry
            .read()
            .expect("registry poisoned")
            .spec(id)
            .clone()
    }

    /// Looks up a kernel id by function name, if registered.
    #[must_use]
    pub fn kernel_by_name(&self, name: &str) -> Option<KernelId> {
        self.registry
            .read()
            .expect("registry poisoned")
            .by_name(name)
    }

    /// Number of registered kernels.
    #[must_use]
    pub fn kernel_count(&self) -> usize {
        self.registry.read().expect("registry poisoned").len()
    }

    /// Marks one more thread as actively computing.
    pub fn thread_started_compute(&self) {
        self.active_threads.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one thread as no longer computing.
    pub fn thread_stopped_compute(&self) {
        let prev = self.active_threads.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "thread_stopped_compute without matching start");
    }

    /// Number of threads currently computing.
    #[must_use]
    pub fn active_threads(&self) -> usize {
        self.active_threads.load(Ordering::Relaxed)
    }

    /// Instantaneous machine load in `[0, ∞)`: the fraction of cores busy.
    /// Values above ~0.5 begin to pressure shared resources.
    #[must_use]
    pub fn load(&self) -> f64 {
        self.active_threads() as f64 / self.config.cores as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendors_have_paper_sampling_intervals() {
        assert_eq!(
            Vendor::Intel.default_sampling_interval(),
            Span::from_millis(10)
        );
        assert_eq!(
            Vendor::Amd.default_sampling_interval(),
            Span::from_millis(1)
        );
    }

    #[test]
    fn load_tracks_active_threads() {
        let m = Machine::new(MachineConfig::cloudlab_c4130());
        assert_eq!(m.load(), 0.0);
        m.thread_started_compute();
        m.thread_started_compute();
        assert_eq!(m.active_threads(), 2);
        assert!((m.load() - 2.0 / 32.0).abs() < 1e-12);
        m.thread_stopped_compute();
        assert_eq!(m.active_threads(), 1);
    }

    #[test]
    fn kernel_registration_is_idempotent_by_name() {
        let m = Machine::new(MachineConfig::default());
        let a = m.kernel("decode_mcu", "libjpeg.so.9", CostCoeffs::default());
        let b = m.kernel("decode_mcu", "libjpeg.so.9", CostCoeffs::default());
        assert_eq!(a, b);
        assert_eq!(m.kernel_count(), 1);
        assert_eq!(m.kernel_by_name("decode_mcu"), Some(a));
        assert_eq!(m.kernel_by_name("missing"), None);
    }
}
