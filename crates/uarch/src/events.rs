//! Hardware performance-event vectors.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// A bundle of hardware performance-monitoring counters, as collected by the
/// simulated sampling driver (the Intel VTune / AMD uProf analog).
///
/// All values are event *counts* accumulated over some attribution scope
/// (one kernel invocation, one sample, or one function over a whole run).
/// Top-down analysis slots follow the 4-wide issue convention:
/// `slots = issue_width × clockticks`, partitioned into retiring /
/// front-end bound / backend (memory + core) bound / bad speculation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HwEvents {
    /// Unhalted core clock ticks.
    pub clockticks: f64,
    /// Retired instructions.
    pub instructions: f64,
    /// Micro-operations issued to the backend.
    pub uops: f64,
    /// L1 data-cache misses.
    pub l1_misses: f64,
    /// L2 cache misses.
    pub l2_misses: f64,
    /// Last-level-cache misses (serviced by DRAM).
    pub llc_misses: f64,
    /// Retired branch instructions.
    pub branches: f64,
    /// Mispredicted branches.
    pub branch_mispredicts: f64,
    /// Pipeline slots lost to instruction-fetch/decode starvation.
    pub frontend_bound_slots: f64,
    /// Pipeline slots lost to memory stalls (all levels).
    pub backend_bound_slots: f64,
    /// Pipeline slots lost specifically to loads serviced by local DRAM.
    pub dram_bound_slots: f64,
    /// Pipeline slots lost to branch mispredict recovery.
    pub bad_speculation_slots: f64,
    /// Pipeline slots that retired micro-operations.
    pub retiring_slots: f64,
}

impl HwEvents {
    /// An all-zero event bundle.
    pub const ZERO: HwEvents = HwEvents {
        clockticks: 0.0,
        instructions: 0.0,
        uops: 0.0,
        l1_misses: 0.0,
        l2_misses: 0.0,
        llc_misses: 0.0,
        branches: 0.0,
        branch_mispredicts: 0.0,
        frontend_bound_slots: 0.0,
        backend_bound_slots: 0.0,
        dram_bound_slots: 0.0,
        bad_speculation_slots: 0.0,
        retiring_slots: 0.0,
    };

    /// Total pipeline slots (`issue_width × clockticks` at synthesis time).
    #[must_use]
    pub fn total_slots(&self) -> f64 {
        self.retiring_slots
            + self.frontend_bound_slots
            + self.backend_bound_slots
            + self.bad_speculation_slots
    }

    /// Fraction of slots lost to front-end starvation (VTune's
    /// "Front-End Bound" metric). Zero if no slots were recorded.
    #[must_use]
    pub fn frontend_bound_fraction(&self) -> f64 {
        let total = self.total_slots();
        if total == 0.0 {
            0.0
        } else {
            self.frontend_bound_slots / total
        }
    }

    /// Fraction of slots lost to loads serviced by local DRAM (VTune's
    /// "Memory Bound → DRAM Bound → Local DRAM" drill-down).
    #[must_use]
    pub fn dram_bound_fraction(&self) -> f64 {
        let total = self.total_slots();
        if total == 0.0 {
            0.0
        } else {
            self.dram_bound_slots / total
        }
    }

    /// Micro-operations delivered to the backend per cycle (uop supply;
    /// low values indicate front-end undersupply).
    #[must_use]
    pub fn uops_per_cycle(&self) -> f64 {
        if self.clockticks == 0.0 {
            0.0
        } else {
            self.uops / self.clockticks
        }
    }

    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.clockticks == 0.0 {
            0.0
        } else {
            self.instructions / self.clockticks
        }
    }

    /// True if every counter is exactly zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == HwEvents::ZERO
    }
}

impl Add for HwEvents {
    type Output = HwEvents;
    fn add(self, rhs: HwEvents) -> HwEvents {
        HwEvents {
            clockticks: self.clockticks + rhs.clockticks,
            instructions: self.instructions + rhs.instructions,
            uops: self.uops + rhs.uops,
            l1_misses: self.l1_misses + rhs.l1_misses,
            l2_misses: self.l2_misses + rhs.l2_misses,
            llc_misses: self.llc_misses + rhs.llc_misses,
            branches: self.branches + rhs.branches,
            branch_mispredicts: self.branch_mispredicts + rhs.branch_mispredicts,
            frontend_bound_slots: self.frontend_bound_slots + rhs.frontend_bound_slots,
            backend_bound_slots: self.backend_bound_slots + rhs.backend_bound_slots,
            dram_bound_slots: self.dram_bound_slots + rhs.dram_bound_slots,
            bad_speculation_slots: self.bad_speculation_slots + rhs.bad_speculation_slots,
            retiring_slots: self.retiring_slots + rhs.retiring_slots,
        }
    }
}

impl AddAssign for HwEvents {
    fn add_assign(&mut self, rhs: HwEvents) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for HwEvents {
    type Output = HwEvents;
    fn mul(self, k: f64) -> HwEvents {
        HwEvents {
            clockticks: self.clockticks * k,
            instructions: self.instructions * k,
            uops: self.uops * k,
            l1_misses: self.l1_misses * k,
            l2_misses: self.l2_misses * k,
            llc_misses: self.llc_misses * k,
            branches: self.branches * k,
            branch_mispredicts: self.branch_mispredicts * k,
            frontend_bound_slots: self.frontend_bound_slots * k,
            backend_bound_slots: self.backend_bound_slots * k,
            dram_bound_slots: self.dram_bound_slots * k,
            bad_speculation_slots: self.bad_speculation_slots * k,
            retiring_slots: self.retiring_slots * k,
        }
    }
}

impl Sum for HwEvents {
    fn sum<I: Iterator<Item = HwEvents>>(iter: I) -> HwEvents {
        iter.fold(HwEvents::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HwEvents {
        HwEvents {
            clockticks: 100.0,
            instructions: 200.0,
            uops: 220.0,
            l1_misses: 10.0,
            l2_misses: 4.0,
            llc_misses: 1.0,
            branches: 20.0,
            branch_mispredicts: 1.0,
            frontend_bound_slots: 40.0,
            backend_bound_slots: 60.0,
            dram_bound_slots: 30.0,
            bad_speculation_slots: 20.0,
            retiring_slots: 280.0,
        }
    }

    #[test]
    fn addition_is_elementwise() {
        let a = sample();
        let b = a + a;
        assert_eq!(b.clockticks, 200.0);
        assert_eq!(b.retiring_slots, 560.0);
    }

    #[test]
    fn scaling_is_elementwise() {
        let half = sample() * 0.5;
        assert_eq!(half.instructions, 100.0);
        assert_eq!(half.dram_bound_slots, 15.0);
    }

    #[test]
    fn derived_metrics() {
        let e = sample();
        assert_eq!(e.total_slots(), 400.0);
        assert!((e.frontend_bound_fraction() - 0.1).abs() < 1e-12);
        assert!((e.dram_bound_fraction() - 0.075).abs() < 1e-12);
        assert!((e.uops_per_cycle() - 2.2).abs() < 1e-12);
        assert!((e.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_is_safe_for_ratios() {
        assert_eq!(HwEvents::ZERO.frontend_bound_fraction(), 0.0);
        assert_eq!(HwEvents::ZERO.ipc(), 0.0);
        assert!(HwEvents::ZERO.is_zero());
    }

    #[test]
    fn sum_folds_from_zero() {
        let total: HwEvents = vec![sample(); 3].into_iter().sum();
        assert_eq!(total.clockticks, 300.0);
    }
}
