//! # lotus-uarch — CPU micro-architecture, PMU and sampling-driver model
//!
//! The "hardware" substrate of the Lotus reproduction. Native C/C++
//! functions from the paper's Table I inventory are modelled as *kernels*
//! ([`KernelSpec`]) with analytic cost coefficients; executing a kernel on a
//! [`CpuThread`] yields elapsed virtual time plus a vector of hardware
//! events ([`HwEvents`]) reflecting cache behaviour, top-down pipeline
//! slots, and contention from other concurrently active workers
//! ([`Machine::load`]).
//!
//! A [`HwProfiler`] session observes kernel executions the way Intel VTune
//! or AMD uProf would: either exactly (counting) or through a sampling
//! driver with a fixed grid and attribution skid — the artifacts LotusMap's
//! methodology (bucketing, filtering, the run-count formula, the `sleep()`
//! gap) exists to overcome.
//!
//! ```
//! use std::sync::Arc;
//! use lotus_uarch::{CostCoeffs, CpuThread, HwProfiler, Machine, MachineConfig, ProfilerConfig};
//!
//! let machine = Machine::new(MachineConfig::cloudlab_c4130());
//! let decode = machine.kernel("decode_mcu", "libjpeg.so.9", CostCoeffs::compute_default());
//! let profiler = Arc::new(HwProfiler::new(ProfilerConfig::counting()));
//! let mut cpu = CpuThread::new(Arc::clone(&machine));
//! cpu.attach_profiler(Arc::clone(&profiler));
//! cpu.exec(decode, 50_000.0);
//! let report = profiler.report(&machine);
//! assert_eq!(report[0].name, "decode_mcu");
//! ```

#![warn(missing_docs)]
// The whole workspace is safe Rust; determinism and auditability both
// lean on it. Gate any future exception through a crate-level decision.
#![deny(unsafe_code)]

mod cost;
mod events;
mod feed;
mod kernels;
mod machine;
mod profiler;
mod thread;

pub use cost::{evaluate, KernelCost};
pub use events::HwEvents;
pub use feed::{KernelSample, KernelSpanFeed};
pub use kernels::{CostCoeffs, KernelId, KernelRegistry, KernelSpec};
pub use machine::{Machine, MachineConfig, Vendor};
pub use profiler::{
    format_report, CollectionMode, FnStats, FunctionProfile, HwProfiler, ProfilerConfig,
};
pub use thread::{CpuThread, Invocation};
