//! The analytic cost model: kernel invocation → elapsed cycles and
//! hardware events.

use lotus_sim::Span;

use crate::events::HwEvents;
use crate::kernels::CostCoeffs;
use crate::machine::MachineConfig;

/// Result of evaluating one kernel invocation under the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Elapsed virtual time of the invocation.
    pub elapsed: Span,
    /// Hardware events charged to the invocation.
    pub events: HwEvents,
}

/// Evaluates the cost of running a kernel over `work` units at machine
/// load `load` (fraction of cores busy, see [`crate::Machine::load`]).
///
/// The model is a standard top-down decomposition:
///
/// * compute cycles = instructions / base IPC
/// * memory stall cycles = Σ (misses at level L × latency of next level),
///   with LLC→DRAM latency inflated by bandwidth contention
///   (`1 + mem_contention × load`), and a fraction `mem_overlap` hidden by
///   out-of-order execution;
/// * front-end stall cycles = instructions × frontend_sensitivity ×
///   fe_contention × load — shared fetch/decode and I-cache pressure grow
///   with concurrently active workers (this is what Figure 6(f,g) of the
///   paper observes as workers increase);
/// * bad-speculation cycles = mispredicts × penalty.
///
/// Pipeline slots (`issue_width × clockticks`) are partitioned into
/// retiring / front-end bound / backend bound / bad speculation, with the
/// DRAM share of backend stalls tracked separately for the paper's
/// "loads serviced by local DRAM" drill-down.
#[must_use]
pub fn evaluate(config: &MachineConfig, cost: &CostCoeffs, work: f64, load: f64) -> KernelCost {
    debug_assert!(work >= 0.0, "work must be non-negative");
    debug_assert!(load >= 0.0, "load must be non-negative");

    let insts = cost.base_insts + cost.insts_per_unit * work;
    let uops = insts * cost.uops_per_inst;
    let branches = cost.branches_per_unit * work;
    let mispredicts = branches * cost.mispredict_rate;

    let l1 = cost.l1_miss_per_unit * work;
    let l2 = cost.l2_miss_per_unit * work;
    let llc = cost.llc_miss_per_unit * work;

    let compute_cycles = insts / cost.ipc_base;

    let dram_latency = config.dram_latency * (1.0 + config.mem_contention * load);
    let l2_service = (l1 - l2) * config.l2_latency;
    let llc_service = (l2 - llc) * config.llc_latency;
    let dram_service = llc * dram_latency;
    // Front-end pressure: shared fetch/decode and I-cache contention grows
    // with machine load, scaled by the kernel's code-footprint sensitivity.
    let fe_pressure = cost.frontend_sensitivity * config.fe_contention * load;
    let exposed = 1.0 - config.mem_overlap;
    let mem_cycles = (l2_service + llc_service + dram_service) * exposed;
    // When the front-end undersupplies uops, fewer loads are in flight and
    // the remaining memory stalls overlap more deeply — the paper's
    // Figure 6(f–h) observation that the *visible* DRAM pressure falls as
    // workers (and front-end stalls) grow. The effect shows up in the
    // DRAM-bound accounting; total elapsed time stays monotone in load.
    let dram_cycles = dram_service * exposed / (1.0 + fe_pressure);

    let fe_cycles = insts * fe_pressure / cost.ipc_base;
    let spec_cycles = mispredicts * config.mispredict_penalty;

    let clockticks = compute_cycles + mem_cycles + fe_cycles + spec_cycles;
    let slots = clockticks * config.issue_width;

    let frontend_bound_slots = fe_cycles * config.issue_width;
    let backend_bound_slots = mem_cycles * config.issue_width;
    let dram_bound_slots = dram_cycles * config.issue_width;
    let bad_speculation_slots = spec_cycles * config.issue_width;
    let retiring_slots =
        (slots - frontend_bound_slots - backend_bound_slots - bad_speculation_slots).max(0.0);

    let nanos = clockticks / config.cycles_per_ns();
    KernelCost {
        elapsed: Span::from_nanos(nanos.round() as u64),
        events: HwEvents {
            clockticks,
            instructions: insts,
            uops,
            l1_misses: l1,
            l2_misses: l2,
            llc_misses: llc,
            branches,
            branch_mispredicts: mispredicts,
            frontend_bound_slots,
            backend_bound_slots,
            dram_bound_slots,
            bad_speculation_slots,
            retiring_slots,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    fn config() -> MachineConfig {
        MachineConfig::cloudlab_c4130()
    }

    #[test]
    fn zero_work_still_charges_base_cost() {
        let c = evaluate(&config(), &CostCoeffs::compute_default(), 0.0, 0.0);
        assert!(c.elapsed.as_nanos() > 0);
        assert!(c.events.instructions > 0.0);
    }

    #[test]
    fn cost_scales_roughly_linearly_in_work() {
        let small = evaluate(&config(), &CostCoeffs::compute_default(), 10_000.0, 0.0);
        let large = evaluate(&config(), &CostCoeffs::compute_default(), 100_000.0, 0.0);
        let ratio = large.elapsed.as_nanos() as f64 / small.elapsed.as_nanos() as f64;
        assert!((9.0..=10.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn load_increases_frontend_bound_and_elapsed() {
        let idle = evaluate(&config(), &CostCoeffs::compute_default(), 50_000.0, 0.0);
        let busy = evaluate(&config(), &CostCoeffs::compute_default(), 50_000.0, 0.9);
        assert!(busy.elapsed > idle.elapsed);
        assert!(
            busy.events.frontend_bound_fraction() > idle.events.frontend_bound_fraction(),
            "frontend bound should grow with load"
        );
        // uop *supply rate* to the backend drops under contention.
        assert!(busy.events.uops_per_cycle() < idle.events.uops_per_cycle());
        // The DRAM share of total slots shrinks as the front-end dominates.
        assert!(busy.events.dram_bound_fraction() < idle.events.dram_bound_fraction());
    }

    #[test]
    fn streaming_kernels_are_dram_bound() {
        let c = evaluate(
            &config(),
            &CostCoeffs::streaming_default(),
            1_000_000.0,
            0.0,
        );
        assert!(
            c.events.dram_bound_fraction() > 0.3,
            "{}",
            c.events.dram_bound_fraction()
        );
        assert!(c.events.frontend_bound_fraction() < 0.05);
    }

    #[test]
    fn slot_partition_accounts_for_all_slots() {
        let c = evaluate(&config(), &CostCoeffs::compute_default(), 12_345.0, 0.4);
        let total = c.events.total_slots();
        let expected = c.events.clockticks * config().issue_width;
        assert!((total - expected).abs() < 1e-6 * expected);
    }

    #[test]
    fn elapsed_matches_clockticks_at_frequency() {
        let c = evaluate(&config(), &CostCoeffs::compute_default(), 10_000.0, 0.0);
        let expected_ns = c.events.clockticks / 3.2;
        assert!((c.elapsed.as_nanos() as f64 - expected_ns).abs() <= 1.0);
    }
}
