//! The simulated hardware profiler (Intel VTune / AMD uProf analog).
//!
//! Collects per-native-function hardware events, either exactly
//! ([`CollectionMode::Counting`], useful as ground truth in tests) or via a
//! **sampling driver** model ([`CollectionMode::Sampling`]) with the
//! artifacts the paper's LotusMap methodology has to work around:
//!
//! * the driver only samples every `sampling_interval` (10 ms in VTune
//!   user-mode sampling, 1 ms in uProf), so short-lived functions are
//!   captured only probabilistically (§IV-B's `C ≥ 1-(1-f/s)^n` formula);
//! * a sample taken shortly after a function boundary may be *skid*
//!   mis-attributed to the previous function (the paper attributes this to
//!   out-of-order execution) unless a time gap — the `sleep()` trick —
//!   separates the two.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use lotus_sim::{Span, Time};

use crate::cost::KernelCost;
use crate::events::HwEvents;
use crate::kernels::KernelId;
use crate::machine::Machine;
use crate::thread::Invocation;

/// How the profiler turns kernel invocations into per-function data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectionMode {
    /// Attribute events exactly, per invocation. No sampling artifacts.
    Counting,
    /// Event-based sampling on a fixed time grid with attribution skid.
    Sampling,
}

/// Configuration for a [`HwProfiler`] session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilerConfig {
    /// Sampling grid period (ignored in counting mode).
    pub sampling_interval: Span,
    /// Attribution skid window: samples landing within this span after a
    /// function boundary (with no idle gap before it) are charged to the
    /// previous function.
    pub skid: Span,
    /// Collection mode.
    pub mode: CollectionMode,
    /// Whether the session starts paused (resume explicitly, as the
    /// ITT / AMDProfileControl isolation flow in the paper's Listing 4
    /// does).
    pub start_paused: bool,
}

impl ProfilerConfig {
    /// VTune-like sampling session: 10 ms interval, 120 µs skid, starts
    /// paused for collection control.
    #[must_use]
    pub fn vtune_sampling() -> ProfilerConfig {
        ProfilerConfig {
            sampling_interval: Span::from_millis(10),
            skid: Span::from_micros(120),
            mode: CollectionMode::Sampling,
            start_paused: true,
        }
    }

    /// uProf-like sampling session: 1 ms interval.
    #[must_use]
    pub fn uprof_sampling() -> ProfilerConfig {
        ProfilerConfig {
            sampling_interval: Span::from_millis(1),
            skid: Span::from_micros(120),
            mode: CollectionMode::Sampling,
            start_paused: true,
        }
    }

    /// Exact counting session, collecting from the start.
    #[must_use]
    pub fn counting() -> ProfilerConfig {
        ProfilerConfig {
            sampling_interval: Span::from_millis(10),
            skid: Span::ZERO,
            mode: CollectionMode::Counting,
            start_paused: false,
        }
    }
}

/// Accumulated statistics for one native function.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FnStats {
    /// Number of samples attributed (sampling mode only).
    pub samples: u64,
    /// Estimated CPU time attributed to the function.
    pub cpu_time: Span,
    /// Hardware events attributed to the function.
    pub events: HwEvents,
}

/// One row of a profiler report: a native function with its attributed
/// statistics (the analog of one row of VTune's µarch-exploration view
/// grouped by function).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionProfile {
    /// Function symbol name.
    pub name: String,
    /// Library the symbol belongs to.
    pub library: String,
    /// Attributed statistics.
    pub stats: FnStats,
}

#[derive(Debug, Default)]
struct ProfilerState {
    per_fn: HashMap<KernelId, FnStats>,
    total_samples: u64,
}

/// A hardware profiling session.
///
/// Shared (via `Arc`) between the workload threads that report kernel
/// invocations and the harness that controls collection. The
/// `resume`/`pause`/`detach` methods mirror the ITT (Intel) and
/// AMDProfileControl (AMD) collection-control APIs used by LotusMap.
#[derive(Debug)]
pub struct HwProfiler {
    config: ProfilerConfig,
    collecting: AtomicBool,
    detached: AtomicBool,
    state: Mutex<ProfilerState>,
}

impl HwProfiler {
    /// Creates a new profiling session.
    #[must_use]
    pub fn new(config: ProfilerConfig) -> HwProfiler {
        HwProfiler {
            collecting: AtomicBool::new(!config.start_paused),
            detached: AtomicBool::new(false),
            config,
            state: Mutex::new(ProfilerState::default()),
        }
    }

    /// The session configuration.
    #[must_use]
    pub fn config(&self) -> &ProfilerConfig {
        &self.config
    }

    /// Resumes collection (ITT `itt.resume()` / uProf `amd.resume(1)`).
    /// No-op after [`HwProfiler::detach`].
    pub fn resume(&self) {
        if !self.detached.load(Ordering::Relaxed) {
            self.collecting.store(true, Ordering::Relaxed);
        }
    }

    /// Pauses collection (uProf `amd.pause(1)`).
    pub fn pause(&self) {
        self.collecting.store(false, Ordering::Relaxed);
    }

    /// Detaches the collector permanently (ITT `itt.detach()`).
    pub fn detach(&self) {
        self.detached.store(true, Ordering::Relaxed);
        self.collecting.store(false, Ordering::Relaxed);
    }

    /// True while samples are being collected.
    #[must_use]
    pub fn is_collecting(&self) -> bool {
        self.collecting.load(Ordering::Relaxed)
    }

    /// Records one kernel invocation `[start, start + cost.elapsed)`.
    ///
    /// `recent` is the short history of prior invocations on the same
    /// hardware thread (oldest first); it feeds the skid model.
    pub fn record(&self, recent: &[Invocation], kernel: KernelId, start: Time, cost: &KernelCost) {
        if !self.is_collecting() {
            return;
        }
        match self.config.mode {
            CollectionMode::Counting => {
                let mut st = self.state.lock().expect("profiler poisoned");
                let entry = st.per_fn.entry(kernel).or_default();
                entry.cpu_time += cost.elapsed;
                entry.events += cost.events;
            }
            CollectionMode::Sampling => self.record_sampled(recent, kernel, start, cost),
        }
    }

    fn record_sampled(
        &self,
        recent: &[Invocation],
        kernel: KernelId,
        start: Time,
        cost: &KernelCost,
    ) {
        let interval = self.config.sampling_interval.as_nanos();
        debug_assert!(interval > 0, "sampling interval must be positive");
        let begin = start.as_nanos();
        let end = begin + cost.elapsed.as_nanos();
        let first = begin.div_ceil(interval) * interval;
        if first >= end {
            return;
        }
        // Event rate over the invocation, charged per sampled interval.
        let duration = cost.elapsed.as_nanos().max(1) as f64;
        let per_sample = cost.events * (interval as f64 / duration);
        let skid = self.config.skid.as_nanos();
        let mut st = self.state.lock().expect("profiler poisoned");
        let mut ts = first;
        while ts < end {
            // Skid: the sampled instruction pointer lags the sampling
            // event, so a sample taken shortly after a function boundary
            // is attributed to whatever was executing `skid` earlier — a
            // prior function if it ran back-to-back, nothing (no
            // misattribution) across an idle `sleep()` gap.
            let mut attributed = kernel;
            if ts - begin < skid {
                let lookback = ts.saturating_sub(skid);
                if let Some(inv) = recent
                    .iter()
                    .rev()
                    .find(|inv| inv.start.as_nanos() <= lookback && lookback < inv.end.as_nanos())
                {
                    attributed = inv.kernel;
                }
            }
            let entry = st.per_fn.entry(attributed).or_default();
            entry.samples += 1;
            entry.cpu_time += self.config.sampling_interval;
            entry.events += per_sample;
            st.total_samples += 1;
            ts += interval;
        }
    }

    /// Total number of samples taken (sampling mode).
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.state.lock().expect("profiler poisoned").total_samples
    }

    /// Produces the per-function report, most CPU time first, resolving
    /// kernel names through `machine`'s registry.
    #[must_use]
    pub fn report(&self, machine: &Machine) -> Vec<FunctionProfile> {
        let st = self.state.lock().expect("profiler poisoned");
        let mut rows: Vec<FunctionProfile> = st
            .per_fn
            .iter()
            .map(|(&id, &stats)| {
                let spec = machine.kernel_spec(id);
                FunctionProfile {
                    name: spec.name,
                    library: spec.library,
                    stats,
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.stats
                .cpu_time
                .cmp(&a.stats.cpu_time)
                .then_with(|| a.name.cmp(&b.name))
        });
        rows
    }

    /// The set of kernel ids that received any attribution.
    #[must_use]
    pub fn observed_kernels(&self) -> Vec<KernelId> {
        let st = self.state.lock().expect("profiler poisoned");
        let mut ids: Vec<KernelId> = st.per_fn.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Clears accumulated data (collection state is unchanged).
    pub fn reset(&self) {
        let mut st = self.state.lock().expect("profiler poisoned");
        st.per_fn.clear();
        st.total_samples = 0;
    }
}

/// Formats a per-function report as a VTune-µarch-exploration-style text
/// table (grouped by function, most CPU time first).
#[must_use]
pub fn format_report(rows: &[FunctionProfile]) -> String {
    let mut out = format!(
        "{:<38} {:<40} {:>8} {:>12} {:>8} {:>10} {:>12}
",
        "Function", "Module", "samples", "CPU (s)", "IPC", "FE-bound%", "DRAM-bound%"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<38} {:<40} {:>8} {:>12.3} {:>8.2} {:>10.2} {:>12.2}
",
            r.name,
            r.library,
            r.stats.samples,
            r.stats.cpu_time.as_secs_f64(),
            r.stats.events.ipc(),
            r.stats.events.frontend_bound_fraction() * 100.0,
            r.stats.events.dram_bound_fraction() * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::evaluate;
    use crate::kernels::CostCoeffs;
    use crate::machine::MachineConfig;

    fn mk_cost(elapsed_ns: u64) -> KernelCost {
        KernelCost {
            elapsed: Span::from_nanos(elapsed_ns),
            events: HwEvents {
                clockticks: elapsed_ns as f64,
                ..HwEvents::ZERO
            },
        }
    }

    #[test]
    fn counting_mode_is_exact() {
        let machine = Machine::new(MachineConfig::default());
        let k = machine.kernel("f", "lib", CostCoeffs::compute_default());
        let prof = HwProfiler::new(ProfilerConfig::counting());
        let cost = evaluate(
            machine.config(),
            &CostCoeffs::compute_default(),
            1000.0,
            0.0,
        );
        prof.record(&[], k, Time::ZERO, &cost);
        prof.record(&[], k, Time::from_nanos(500), &cost);
        let report = prof.report(&machine);
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].name, "f");
        assert_eq!(report[0].stats.cpu_time, cost.elapsed * 2);
        assert!(
            (report[0].stats.events.instructions - 2.0 * cost.events.instructions).abs() < 1e-9
        );
    }

    #[test]
    fn paused_profiler_records_nothing() {
        let machine = Machine::new(MachineConfig::default());
        let k = machine.kernel("f", "lib", CostCoeffs::compute_default());
        let prof = HwProfiler::new(ProfilerConfig::vtune_sampling());
        assert!(!prof.is_collecting());
        prof.record(&[], k, Time::ZERO, &mk_cost(100_000_000));
        assert!(prof.report(&machine).is_empty());
        prof.resume();
        assert!(prof.is_collecting());
        prof.detach();
        assert!(!prof.is_collecting());
        prof.resume(); // detached: stays off
        assert!(!prof.is_collecting());
    }

    #[test]
    fn sampling_hits_grid_points_only() {
        let machine = Machine::new(MachineConfig::default());
        let k = machine.kernel("long", "lib", CostCoeffs::compute_default());
        let mut config = ProfilerConfig::vtune_sampling();
        config.start_paused = false;
        let prof = HwProfiler::new(config);
        // 35 ms invocation starting at 2 ms: samples at 10, 20, 30 ms → 3.
        prof.record(&[], k, Time::from_nanos(2_000_000), &mk_cost(35_000_000));
        assert_eq!(prof.total_samples(), 3);
        let report = prof.report(&machine);
        assert_eq!(report[0].stats.samples, 3);
        assert_eq!(report[0].stats.cpu_time, Span::from_millis(30));
    }

    #[test]
    fn short_functions_straddling_no_grid_point_are_missed() {
        let machine = Machine::new(MachineConfig::default());
        let k = machine.kernel("short", "lib", CostCoeffs::compute_default());
        let mut config = ProfilerConfig::vtune_sampling();
        config.start_paused = false;
        let prof = HwProfiler::new(config);
        // 600 µs invocation at 1 ms: entirely between grid points.
        prof.record(&[], k, Time::from_nanos(1_000_000), &mk_cost(600_000));
        assert_eq!(prof.total_samples(), 0);
        assert!(prof.report(&machine).is_empty());
    }

    #[test]
    fn skid_misattributes_to_previous_back_to_back_function() {
        let machine = Machine::new(MachineConfig::default());
        let a = machine.kernel("prev_fn", "lib", CostCoeffs::compute_default());
        let b = machine.kernel("curr_fn", "lib", CostCoeffs::compute_default());
        let mut config = ProfilerConfig::vtune_sampling();
        config.start_paused = false;
        let prof = HwProfiler::new(config);
        // `b` starts 50 µs before the 10 ms grid point, right after `a`.
        let b_start = Time::from_nanos(10_000_000 - 50_000);
        let history = [Invocation {
            kernel: a,
            start: Time::from_nanos(5_000_000),
            end: b_start,
        }];
        prof.record(&history, b, b_start, &mk_cost(2_000_000));
        let report = prof.report(&machine);
        assert_eq!(report.len(), 1);
        assert_eq!(
            report[0].name, "prev_fn",
            "sample should skid to the previous function"
        );
    }

    #[test]
    fn sleep_gap_defeats_skid() {
        let machine = Machine::new(MachineConfig::default());
        let a = machine.kernel("prev_fn", "lib", CostCoeffs::compute_default());
        let b = machine.kernel("curr_fn", "lib", CostCoeffs::compute_default());
        let mut config = ProfilerConfig::vtune_sampling();
        config.start_paused = false;
        let prof = HwProfiler::new(config);
        // `b` starts 50 µs before the 10 s grid point; `a` ended 1 s
        // earlier (the paper's sleep() trick).
        let b_start = Time::from_nanos(10_000_000_000 - 50_000);
        let a_end = Time::from_nanos(b_start.as_nanos() - 1_000_000_000);
        let history = [Invocation {
            kernel: a,
            start: Time::from_nanos(0),
            end: a_end,
        }];
        prof.record(&history, b, b_start, &mk_cost(2_000_000));
        let report = prof.report(&machine);
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].name, "curr_fn");
    }

    #[test]
    fn report_formatting_lists_functions_in_cpu_order() {
        let machine = Machine::new(MachineConfig::default());
        let hot = machine.kernel("hot_fn", "libhot.so", CostCoeffs::compute_default());
        let cold = machine.kernel("cold_fn", "libcold.so", CostCoeffs::compute_default());
        let prof = HwProfiler::new(ProfilerConfig::counting());
        prof.record(&[], cold, Time::ZERO, &mk_cost(1_000));
        prof.record(&[], hot, Time::ZERO, &mk_cost(9_000_000));
        let text = format_report(&prof.report(&machine));
        let hot_at = text.find("hot_fn").unwrap();
        let cold_at = text.find("cold_fn").unwrap();
        assert!(hot_at < cold_at, "hotter function first");
        assert!(text.contains("libhot.so"));
    }

    #[test]
    fn reset_clears_data_but_not_collection_state() {
        let machine = Machine::new(MachineConfig::default());
        let k = machine.kernel("f", "lib", CostCoeffs::compute_default());
        let prof = HwProfiler::new(ProfilerConfig::counting());
        prof.record(&[], k, Time::ZERO, &mk_cost(1_000));
        assert!(!prof.report(&machine).is_empty());
        prof.reset();
        assert!(prof.report(&machine).is_empty());
        assert!(prof.is_collecting());
    }
}
