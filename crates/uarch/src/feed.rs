//! Cooperative wall-clock kernel sample feed for the native backend.
//!
//! The simulated [`HwProfiler`](crate::HwProfiler) observes kernel
//! executions through the cost model; on the native backend the real
//! compute happens in plain Rust code whose duration the cost model never
//! sees. Kernel entry points in `lotus-codec` and `lotus-transforms`
//! wrap that real compute in [`CpuThread::observe_native`]
//! (crate::CpuThread::observe_native), which times it with a monotonic
//! clock and reports the span here — the software analogue of the
//! ITT/AMDProfileControl instrumentation APIs the paper drives VTune and
//! uProf with.
//!
//! The feed honors the same collection-control verbs as the simulated
//! profiler (`resume` / `pause` / `detach`, with `resume` a no-op after
//! `detach`), so LotusMap's isolation harness works identically on both
//! substrates. Every recording self-accounts its own cost into
//! [`KernelSpanFeed::overhead`], feeding the bench report's profiler
//! overhead line.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use lotus_sim::Span;

use crate::events::HwEvents;
use crate::kernels::KernelId;
use crate::machine::Machine;
use crate::profiler::{FnStats, FunctionProfile};

/// One observed real-compute span of a native kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSample {
    /// The kernel whose real compute was timed.
    pub kernel: KernelId,
    /// The high-level operation executing when the kernel ran (e.g.
    /// `"Loader"`, `"RandomResizedCrop"`), when one was in context.
    pub op: Option<String>,
    /// Name of the OS thread the kernel ran on (e.g. `"dataloader0"`).
    pub thread: String,
    /// Wall offset of the kernel's start from the feed's epoch.
    pub start_ns: u64,
    /// Measured wall duration of the real compute.
    pub elapsed_ns: u64,
}

/// A shared collector of [`KernelSample`]s with profiler-style
/// collection control.
#[derive(Debug)]
pub struct KernelSpanFeed {
    epoch: Instant,
    collecting: AtomicBool,
    detached: AtomicBool,
    samples: Mutex<Vec<KernelSample>>,
    overhead_ns: AtomicU64,
}

impl KernelSpanFeed {
    /// Creates a feed that is collecting from the start (whole-run
    /// profiling, `lotus run --profile`).
    #[must_use]
    pub fn new() -> KernelSpanFeed {
        KernelSpanFeed::with_collecting(true)
    }

    /// Creates a paused feed (isolation harnesses resume it around the
    /// iteration of interest, Listing 4 style).
    #[must_use]
    pub fn new_paused() -> KernelSpanFeed {
        KernelSpanFeed::with_collecting(false)
    }

    fn with_collecting(collecting: bool) -> KernelSpanFeed {
        KernelSpanFeed {
            epoch: Instant::now(),
            collecting: AtomicBool::new(collecting),
            detached: AtomicBool::new(false),
            samples: Mutex::new(Vec::new()),
            overhead_ns: AtomicU64::new(0),
        }
    }

    /// Resumes collection (ITT `itt.resume()`); no-op once detached.
    pub fn resume(&self) {
        if !self.detached.load(Ordering::Relaxed) {
            self.collecting.store(true, Ordering::Relaxed);
        }
    }

    /// Pauses collection (uProf `amd.pause(1)`).
    pub fn pause(&self) {
        self.collecting.store(false, Ordering::Relaxed);
    }

    /// Detaches the collector permanently (ITT `itt.detach()`).
    pub fn detach(&self) {
        self.detached.store(true, Ordering::Relaxed);
        self.collecting.store(false, Ordering::Relaxed);
    }

    /// True while samples are being collected.
    #[must_use]
    pub fn is_collecting(&self) -> bool {
        self.collecting.load(Ordering::Relaxed)
    }

    /// Records one observed kernel span that started at `start` and ran
    /// for `elapsed_ns` of wall time. The recording's own cost (the lock
    /// push plus this bookkeeping) is measured and added to the feed's
    /// overhead, never to the sample.
    pub fn record(&self, kernel: KernelId, op: Option<&str>, start: Instant, elapsed_ns: u64) {
        if !self.is_collecting() {
            return;
        }
        let entered = Instant::now();
        let start_ns = start
            .checked_duration_since(self.epoch)
            .map_or(0, |d| d.as_nanos() as u64);
        let thread = std::thread::current()
            .name()
            .unwrap_or("unnamed")
            .to_string();
        self.samples
            .lock()
            .expect("feed poisoned")
            .push(KernelSample {
                kernel,
                op: op.map(str::to_string),
                thread,
                start_ns,
                elapsed_ns,
            });
        self.overhead_ns
            .fetch_add(entered.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Number of samples currently held.
    ///
    /// # Panics
    ///
    /// Panics if a holder of the sample lock panicked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.lock().expect("feed poisoned").len()
    }

    /// True when no samples are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns every held sample (isolation harnesses drain
    /// per run; whole-run profiling drains once at the end).
    ///
    /// # Panics
    ///
    /// Panics if a holder of the sample lock panicked.
    #[must_use]
    pub fn take_samples(&self) -> Vec<KernelSample> {
        std::mem::take(&mut *self.samples.lock().expect("feed poisoned"))
    }

    /// Total measured cost of the feed's own recording path.
    #[must_use]
    pub fn overhead(&self) -> Span {
        Span::from_nanos(self.overhead_ns.load(Ordering::Relaxed))
    }

    /// Folds held samples into per-op function profiles: for each op, the
    /// observed kernels with their sample counts and total wall time,
    /// most time first — the native analogue of
    /// [`HwProfiler::report`](crate::HwProfiler::report), grouped by op.
    /// Samples with no op context fold under `"(none)"`.
    ///
    /// # Panics
    ///
    /// Panics if a holder of the sample lock panicked.
    #[must_use]
    pub fn per_op_function_totals(
        &self,
        machine: &Machine,
    ) -> BTreeMap<String, Vec<FunctionProfile>> {
        let samples = self.samples.lock().expect("feed poisoned");
        let mut per_op: BTreeMap<(String, KernelId), FnStats> = BTreeMap::new();
        for s in samples.iter() {
            let op = s.op.clone().unwrap_or_else(|| "(none)".to_string());
            let stats = per_op.entry((op, s.kernel)).or_default();
            stats.samples += 1;
            stats.cpu_time += Span::from_nanos(s.elapsed_ns);
            stats.events += HwEvents::ZERO;
        }
        drop(samples);
        let mut out: BTreeMap<String, Vec<FunctionProfile>> = BTreeMap::new();
        for ((op, kernel), stats) in per_op {
            let spec = machine.kernel_spec(kernel);
            out.entry(op).or_default().push(FunctionProfile {
                name: spec.name,
                library: spec.library,
                stats,
            });
        }
        for rows in out.values_mut() {
            rows.sort_by(|a, b| {
                b.stats
                    .cpu_time
                    .cmp(&a.stats.cpu_time)
                    .then_with(|| a.name.cmp(&b.name))
            });
        }
        out
    }
}

impl Default for KernelSpanFeed {
    fn default() -> Self {
        KernelSpanFeed::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::CostCoeffs;
    use crate::machine::MachineConfig;

    #[test]
    fn collection_control_mirrors_the_simulated_profiler() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let k = machine.kernel("f", "lib", CostCoeffs::compute_default());
        let feed = KernelSpanFeed::new_paused();
        assert!(!feed.is_collecting());
        feed.record(k, None, Instant::now(), 1_000);
        assert!(feed.is_empty());
        feed.resume();
        feed.record(k, None, Instant::now(), 1_000);
        assert_eq!(feed.len(), 1);
        feed.detach();
        feed.resume(); // detached: stays off
        assert!(!feed.is_collecting());
        feed.record(k, None, Instant::now(), 1_000);
        assert_eq!(feed.len(), 1);
    }

    #[test]
    fn samples_fold_into_per_op_totals_most_time_first() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let hot = machine.kernel("hot_fn", "lib", CostCoeffs::compute_default());
        let cold = machine.kernel("cold_fn", "lib", CostCoeffs::compute_default());
        let feed = KernelSpanFeed::new();
        let t = Instant::now();
        feed.record(hot, Some("Loader"), t, 5_000);
        feed.record(hot, Some("Loader"), t, 5_000);
        feed.record(cold, Some("Loader"), t, 1_000);
        feed.record(cold, Some("ToTensor"), t, 2_000);
        feed.record(cold, None, t, 3_000);
        let totals = feed.per_op_function_totals(&machine);
        let loader = &totals["Loader"];
        assert_eq!(loader.len(), 2);
        assert_eq!(loader[0].name, "hot_fn");
        assert_eq!(loader[0].stats.samples, 2);
        assert_eq!(loader[0].stats.cpu_time, Span::from_nanos(10_000));
        assert_eq!(loader[1].name, "cold_fn");
        assert_eq!(
            totals["ToTensor"][0].stats.cpu_time,
            Span::from_nanos(2_000)
        );
        assert_eq!(totals["(none)"][0].stats.cpu_time, Span::from_nanos(3_000));
    }

    #[test]
    fn take_samples_drains_and_overhead_accumulates() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let k = machine.kernel("f", "lib", CostCoeffs::compute_default());
        let feed = KernelSpanFeed::new();
        feed.record(k, Some("Op"), Instant::now(), 42);
        let drained = feed.take_samples();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].elapsed_ns, 42);
        assert_eq!(drained[0].op.as_deref(), Some("Op"));
        assert!(feed.is_empty());
        assert!(feed.overhead() > Span::ZERO, "recording self-accounts");
    }
}
