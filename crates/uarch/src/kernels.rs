//! Native-kernel descriptors and the per-machine kernel registry.
//!
//! A *kernel* models one low-level C/C++ function (the paper's Table I
//! inventory: `decode_mcu`, `jpeg_idct_islow`, `ImagingResampleHorizontal_8bpc`,
//! `__memcpy_avx_unaligned_erms`, …). Each kernel carries cost coefficients
//! from which the machine model synthesizes elapsed cycles and hardware
//! events for a given amount of work.

use std::collections::HashMap;

/// Identifier of a registered native kernel within one
/// [`crate::Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(pub(crate) u32);

impl KernelId {
    /// Dense index of this kernel in registration order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Cost coefficients for one native kernel, per unit of work.
///
/// "Work" is kernel-defined (pixels for image kernels, bytes for `memcpy`,
/// coefficients for IDCT, …); the transform implementations pass the natural
/// unit. All event counts scale linearly in work plus a fixed per-call base.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostCoeffs {
    /// Fixed instruction overhead per invocation (call frames, setup).
    pub base_insts: f64,
    /// Instructions retired per unit of work.
    pub insts_per_unit: f64,
    /// Micro-op expansion factor (uops issued per instruction).
    pub uops_per_inst: f64,
    /// Best-case IPC with no stalls (compute throughput limit).
    pub ipc_base: f64,
    /// L1D misses per unit of work.
    pub l1_miss_per_unit: f64,
    /// L2 misses per unit of work (must be ≤ L1 misses).
    pub l2_miss_per_unit: f64,
    /// LLC misses per unit of work (must be ≤ L2 misses; serviced by DRAM).
    pub llc_miss_per_unit: f64,
    /// Branch instructions per unit of work.
    pub branches_per_unit: f64,
    /// Fraction of branches mispredicted.
    pub mispredict_rate: f64,
    /// Sensitivity of this kernel to front-end pressure in `[0, 1]`:
    /// a proxy for code footprint / decode complexity. Large switchy
    /// decoders (entropy decode) are near 1; tiny copy loops near 0.
    pub frontend_sensitivity: f64,
}

impl CostCoeffs {
    /// A compute-ish default: 4 instructions per unit, modest memory
    /// traffic. Useful as a starting point for `with_*` tweaks in tests.
    #[must_use]
    pub fn compute_default() -> CostCoeffs {
        CostCoeffs {
            base_insts: 200.0,
            insts_per_unit: 4.0,
            uops_per_inst: 1.15,
            ipc_base: 2.4,
            l1_miss_per_unit: 0.02,
            l2_miss_per_unit: 0.006,
            llc_miss_per_unit: 0.002,
            branches_per_unit: 0.4,
            mispredict_rate: 0.01,
            frontend_sensitivity: 0.3,
        }
    }

    /// A streaming-memory default (memcpy/memset-like): few instructions,
    /// heavy DRAM traffic, negligible front-end footprint.
    #[must_use]
    pub fn streaming_default() -> CostCoeffs {
        CostCoeffs {
            base_insts: 60.0,
            insts_per_unit: 0.15,
            uops_per_inst: 1.0,
            ipc_base: 3.0,
            l1_miss_per_unit: 1.0 / 64.0,
            l2_miss_per_unit: 1.0 / 64.0,
            llc_miss_per_unit: 0.9 / 64.0,
            branches_per_unit: 0.02,
            mispredict_rate: 0.002,
            frontend_sensitivity: 0.05,
        }
    }

    /// Validates internal consistency (miss hierarchy, ranges).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.ipc_base <= 0.0 {
            return Err("ipc_base must be positive".into());
        }
        if self.l2_miss_per_unit > self.l1_miss_per_unit {
            return Err("l2 misses cannot exceed l1 misses".into());
        }
        if self.llc_miss_per_unit > self.l2_miss_per_unit {
            return Err("llc misses cannot exceed l2 misses".into());
        }
        if !(0.0..=1.0).contains(&self.mispredict_rate) {
            return Err("mispredict_rate must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.frontend_sensitivity) {
            return Err("frontend_sensitivity must be in [0,1]".into());
        }
        Ok(())
    }
}

impl Default for CostCoeffs {
    fn default() -> Self {
        CostCoeffs::compute_default()
    }
}

/// A named native kernel: function name, home library and cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Function symbol name as a profiler would display it.
    pub name: String,
    /// Shared library the symbol lives in (e.g. `libjpeg.so.9`).
    pub library: String,
    /// Cost coefficients.
    pub cost: CostCoeffs,
}

/// Registry of all native kernels known to one machine.
#[derive(Debug, Default)]
pub struct KernelRegistry {
    specs: Vec<KernelSpec>,
    by_name: HashMap<String, KernelId>,
}

impl KernelRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> KernelRegistry {
        KernelRegistry::default()
    }

    /// Registers `spec`, or returns the existing id if a kernel with the
    /// same name is already present.
    ///
    /// # Panics
    ///
    /// Panics if the cost coefficients are internally inconsistent (see
    /// [`CostCoeffs::validate`]); kernel definitions are static program
    /// data, so this is a programming error.
    pub fn register(&mut self, spec: KernelSpec) -> KernelId {
        if let Some(&id) = self.by_name.get(&spec.name) {
            return id;
        }
        spec.cost
            .validate()
            .unwrap_or_else(|e| panic!("invalid cost model for kernel '{}': {e}", spec.name));
        let id = KernelId(u32::try_from(self.specs.len()).expect("too many kernels"));
        self.by_name.insert(spec.name.clone(), id);
        self.specs.push(spec);
        id
    }

    /// The spec for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this registry.
    #[must_use]
    pub fn spec(&self, id: KernelId) -> &KernelSpec {
        &self.specs[id.index()]
    }

    /// Looks up a kernel id by symbol name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<KernelId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered kernels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True if no kernels are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Iterates over `(id, spec)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (KernelId, &KernelSpec)> {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, s)| (KernelId(i as u32), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = KernelRegistry::new();
        let id = reg.register(KernelSpec {
            name: "jpeg_idct_islow".into(),
            library: "libjpeg.so.9".into(),
            cost: CostCoeffs::compute_default(),
        });
        assert_eq!(reg.by_name("jpeg_idct_islow"), Some(id));
        assert_eq!(reg.spec(id).library, "libjpeg.so.9");
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }

    #[test]
    fn duplicate_names_share_an_id() {
        let mut reg = KernelRegistry::new();
        let spec = KernelSpec {
            name: "memcpy".into(),
            library: "libc.so.6".into(),
            cost: CostCoeffs::streaming_default(),
        };
        let a = reg.register(spec.clone());
        let b = reg.register(spec);
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid cost model")]
    fn inconsistent_miss_hierarchy_is_rejected() {
        let mut reg = KernelRegistry::new();
        let mut cost = CostCoeffs::compute_default();
        cost.llc_miss_per_unit = cost.l2_miss_per_unit * 2.0;
        reg.register(KernelSpec {
            name: "bad".into(),
            library: "x".into(),
            cost,
        });
    }

    #[test]
    fn defaults_validate() {
        assert!(CostCoeffs::compute_default().validate().is_ok());
        assert!(CostCoeffs::streaming_default().validate().is_ok());
    }

    #[test]
    fn iter_yields_registration_order() {
        let mut reg = KernelRegistry::new();
        for name in ["a", "b", "c"] {
            reg.register(KernelSpec {
                name: name.into(),
                library: "l".into(),
                cost: CostCoeffs::default(),
            });
        }
        let names: Vec<_> = reg.iter().map(|(_, s)| s.name.clone()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }
}
