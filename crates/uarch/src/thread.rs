//! A simulated hardware thread executing native kernels.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use lotus_sim::{Span, Time};

use crate::cost::{evaluate, KernelCost};
use crate::feed::KernelSpanFeed;
use crate::kernels::KernelId;
use crate::machine::Machine;
use crate::profiler::HwProfiler;

/// One completed kernel invocation on a hardware thread, kept in a short
/// per-thread history for the sampling driver's skid model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invocation {
    /// The kernel that ran.
    pub kernel: KernelId,
    /// When it started.
    pub start: Time,
    /// When it ended.
    pub end: Time,
}

/// How many recent invocations each thread remembers for skid lookback.
const HISTORY: usize = 48;

/// The execution context a simulated process uses to run native kernels.
///
/// A `CpuThread` keeps a *cursor* — the virtual time at which the next
/// kernel will start. Transform code executes kernels back-to-back without
/// touching the simulation scheduler; the owning process then advances the
/// simulated clock to the cursor in one step. This keeps per-kernel timing
/// exact while costing only a handful of scheduler interactions per batch.
///
/// ```
/// use std::sync::Arc;
/// use lotus_sim::Time;
/// use lotus_uarch::{CostCoeffs, CpuThread, Machine, MachineConfig};
///
/// let machine = Machine::new(MachineConfig::cloudlab_c4130());
/// let idct = machine.kernel("jpeg_idct_islow", "libjpeg.so.9", CostCoeffs::compute_default());
/// let mut cpu = CpuThread::new(Arc::clone(&machine));
/// cpu.set_cursor(Time::ZERO);
/// let cost = cpu.exec(idct, 64.0 * 64.0);
/// assert_eq!(cpu.cursor(), Time::ZERO + cost.elapsed);
/// ```
#[derive(Debug, Clone)]
pub struct CpuThread {
    machine: Arc<Machine>,
    profiler: Option<Arc<HwProfiler>>,
    native_feed: Option<Arc<KernelSpanFeed>>,
    op_context: Option<String>,
    cursor: Time,
    recent: VecDeque<Invocation>,
}

impl CpuThread {
    /// Creates a thread with the cursor at [`Time::ZERO`] and no profiler.
    #[must_use]
    pub fn new(machine: Arc<Machine>) -> CpuThread {
        CpuThread {
            machine,
            profiler: None,
            native_feed: None,
            op_context: None,
            cursor: Time::ZERO,
            recent: VecDeque::new(),
        }
    }

    /// The machine this thread executes on.
    #[must_use]
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Attaches a hardware profiler session; subsequent kernel executions
    /// are reported to it.
    pub fn attach_profiler(&mut self, profiler: Arc<HwProfiler>) {
        self.profiler = Some(profiler);
    }

    /// Detaches any attached profiler session.
    pub fn detach_profiler(&mut self) {
        self.profiler = None;
    }

    /// Attaches a native kernel-span feed; subsequent
    /// [`CpuThread::observe_native`] blocks are wall-timed and reported
    /// to it. Without a feed, observation is a zero-cost pass-through.
    pub fn attach_native_feed(&mut self, feed: Arc<KernelSpanFeed>) {
        self.native_feed = Some(feed);
    }

    /// The attached native feed, if any.
    #[must_use]
    pub fn native_feed(&self) -> Option<&Arc<KernelSpanFeed>> {
        self.native_feed.as_ref()
    }

    /// Sets the high-level operation name attributed to subsequent
    /// observed kernel spans (e.g. `"Loader"` before decode, the
    /// transform's name before each transform). Stored only while a
    /// native feed is attached, so unprofiled runs pay nothing.
    pub fn set_op_context(&mut self, op: &str) {
        if self.native_feed.is_some() {
            self.op_context = Some(op.to_string());
        }
    }

    /// Runs `f` — the *real* compute behind `kernel` — and, when a
    /// collecting native feed is attached, wall-times it and records the
    /// span under the current op context. Never charges any simulated
    /// cost: cost accounting stays with [`CpuThread::exec`] /
    /// `charge_*`-style code, observation only watches.
    pub fn observe_native<R>(&mut self, kernel: KernelId, f: impl FnOnce() -> R) -> R {
        let Some(feed) = self
            .native_feed
            .as_ref()
            .filter(|feed| feed.is_collecting())
        else {
            return f();
        };
        let feed = Arc::clone(feed);
        let start = Instant::now();
        let out = f();
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        feed.record(kernel, self.op_context.as_deref(), start, elapsed_ns);
        out
    }

    /// The virtual time at which the next kernel will start.
    #[must_use]
    pub fn cursor(&self) -> Time {
        self.cursor
    }

    /// Moves the cursor (typically to `ctx.now()` at the start of a fetch).
    pub fn set_cursor(&mut self, at: Time) {
        self.cursor = at;
    }

    /// Executes `kernel` over `work` units at the machine's current load,
    /// advancing the cursor and reporting to the attached profiler.
    /// Returns the evaluated cost.
    pub fn exec(&mut self, kernel: KernelId, work: f64) -> KernelCost {
        let load = self.machine.load();
        self.exec_at_load(kernel, work, load)
    }

    /// Like [`CpuThread::exec`] but with an explicit load value (used by
    /// tests and the isolation harness, which runs alone on the machine).
    pub fn exec_at_load(&mut self, kernel: KernelId, work: f64, load: f64) -> KernelCost {
        let spec = self.machine.kernel_spec(kernel);
        let cost = evaluate(self.machine.config(), &spec.cost, work, load);
        if let Some(profiler) = &self.profiler {
            self.recent.make_contiguous();
            profiler.record(self.recent.as_slices().0, kernel, self.cursor, &cost);
        }
        let start = self.cursor;
        self.cursor += cost.elapsed;
        if self.recent.len() == HISTORY {
            self.recent.pop_front();
        }
        self.recent.push_back(Invocation {
            kernel,
            start,
            end: self.cursor,
        });
        cost
    }

    /// Advances the cursor without executing anything (models `sleep()` —
    /// the gap LotusMap inserts to defeat attribution skid, and any other
    /// off-CPU time). The invocation history keeps its real timestamps,
    /// so the gap itself defeats skid lookback.
    pub fn idle(&mut self, span: Span) {
        self.cursor += span;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::CostCoeffs;
    use crate::machine::MachineConfig;
    use crate::profiler::{HwProfiler, ProfilerConfig};

    #[test]
    fn exec_advances_cursor_by_cost() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let k = machine.kernel("k", "lib", CostCoeffs::compute_default());
        let mut cpu = CpuThread::new(machine);
        let c1 = cpu.exec(k, 1000.0);
        let c2 = cpu.exec(k, 1000.0);
        assert_eq!(
            cpu.cursor().as_nanos(),
            c1.elapsed.as_nanos() + c2.elapsed.as_nanos()
        );
    }

    #[test]
    fn idle_advances_without_recording() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let prof = Arc::new(HwProfiler::new(ProfilerConfig::counting()));
        let mut cpu = CpuThread::new(Arc::clone(&machine));
        cpu.attach_profiler(Arc::clone(&prof));
        cpu.idle(Span::from_secs(1));
        assert_eq!(cpu.cursor().as_nanos(), 1_000_000_000);
        assert!(prof.report(&machine).is_empty());
    }

    #[test]
    fn profiler_sees_executions() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let k = machine.kernel("seen", "lib", CostCoeffs::compute_default());
        let prof = Arc::new(HwProfiler::new(ProfilerConfig::counting()));
        let mut cpu = CpuThread::new(Arc::clone(&machine));
        cpu.attach_profiler(Arc::clone(&prof));
        cpu.exec(k, 500.0);
        let report = prof.report(&machine);
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].name, "seen");
    }

    #[test]
    fn observe_native_reports_wall_spans_without_charging_cost() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let k = machine.kernel("native_fn", "lib", CostCoeffs::compute_default());
        let feed = Arc::new(KernelSpanFeed::new());
        let mut cpu = CpuThread::new(Arc::clone(&machine));
        // No feed: pure pass-through, op context not even stored.
        cpu.set_op_context("Ignored");
        assert_eq!(cpu.observe_native(k, || 7), 7);
        cpu.attach_native_feed(Arc::clone(&feed));
        cpu.set_op_context("Loader");
        let before = cpu.cursor();
        let out = cpu.observe_native(k, || {
            std::thread::sleep(std::time::Duration::from_millis(1));
            42
        });
        assert_eq!(out, 42);
        assert_eq!(cpu.cursor(), before, "observation never charges cost");
        let samples = feed.take_samples();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].op.as_deref(), Some("Loader"));
        assert!(samples[0].elapsed_ns >= 1_000_000);
    }

    #[test]
    fn paused_feed_observes_nothing() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let k = machine.kernel("native_fn", "lib", CostCoeffs::compute_default());
        let feed = Arc::new(KernelSpanFeed::new_paused());
        let mut cpu = CpuThread::new(Arc::clone(&machine));
        cpu.attach_native_feed(Arc::clone(&feed));
        cpu.observe_native(k, || ());
        assert!(feed.is_empty());
        feed.resume();
        cpu.observe_native(k, || ());
        assert_eq!(feed.len(), 1);
    }

    #[test]
    fn load_slows_execution() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let k = machine.kernel("k", "lib", CostCoeffs::compute_default());
        let mut cpu = CpuThread::new(Arc::clone(&machine));
        let idle = cpu.exec(k, 100_000.0);
        for _ in 0..28 {
            machine.thread_started_compute();
        }
        let busy = cpu.exec(k, 100_000.0);
        assert!(busy.elapsed > idle.elapsed);
    }
}
