//! Property-based tests for the cost model and sampling driver.

use std::sync::Arc;

use lotus_sim::{Span, Time};
use lotus_uarch::{
    evaluate, CollectionMode, CostCoeffs, CpuThread, HwProfiler, Machine, MachineConfig,
    ProfilerConfig,
};
use proptest::prelude::*;

fn arb_cost() -> impl Strategy<Value = CostCoeffs> {
    (
        0.0f64..10_000.0, // base_insts
        0.01f64..100.0,   // insts_per_unit
        1.0f64..1.5,      // uops_per_inst
        0.5f64..4.0,      // ipc_base
        0.0f64..0.2,      // l1
        0.0f64..1.0,      // l2 as fraction of l1
        0.0f64..1.0,      // llc as fraction of l2
        0.0f64..5.0,      // branches
        0.0f64..0.2,      // mispredict
        0.0f64..1.0,      // fe sensitivity
    )
        .prop_map(
            |(base, ipu, upi, ipc, l1, l2f, llcf, br, mr, fe)| CostCoeffs {
                base_insts: base,
                insts_per_unit: ipu,
                uops_per_inst: upi,
                ipc_base: ipc,
                l1_miss_per_unit: l1,
                l2_miss_per_unit: l1 * l2f,
                llc_miss_per_unit: l1 * l2f * llcf,
                branches_per_unit: br,
                mispredict_rate: mr,
                frontend_sensitivity: fe,
            },
        )
}

proptest! {
    /// Elapsed time is monotone in work at fixed load.
    #[test]
    fn cost_is_monotone_in_work(cost in arb_cost(), w1 in 0.0f64..1e7, w2 in 0.0f64..1e7, load in 0.0f64..1.0) {
        let config = MachineConfig::cloudlab_c4130();
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let a = evaluate(&config, &cost, lo, load);
        let b = evaluate(&config, &cost, hi, load);
        prop_assert!(a.elapsed <= b.elapsed, "{} > {}", a.elapsed, b.elapsed);
        prop_assert!(a.events.instructions <= b.events.instructions);
    }

    /// Elapsed time is monotone in machine load at fixed work.
    #[test]
    fn cost_is_monotone_in_load(cost in arb_cost(), work in 1.0f64..1e7, l1 in 0.0f64..2.0, l2 in 0.0f64..2.0) {
        let config = MachineConfig::cloudlab_c4130();
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        let a = evaluate(&config, &cost, work, lo);
        let b = evaluate(&config, &cost, work, hi);
        prop_assert!(a.elapsed <= b.elapsed);
        prop_assert!(a.events.frontend_bound_fraction() <= b.events.frontend_bound_fraction() + 1e-12);
    }

    /// Top-down slot accounting always balances: the four categories sum
    /// to issue_width × clockticks.
    #[test]
    fn slots_always_balance(cost in arb_cost(), work in 0.0f64..1e7, load in 0.0f64..2.0) {
        let config = MachineConfig::cloudlab_c4130();
        let c = evaluate(&config, &cost, work, load);
        let total = c.events.total_slots();
        let expected = c.events.clockticks * config.issue_width;
        prop_assert!((total - expected).abs() <= 1e-6 * expected.max(1.0),
            "slots {} vs {}", total, expected);
        // No category is negative.
        prop_assert!(c.events.retiring_slots >= 0.0);
        prop_assert!(c.events.frontend_bound_slots >= 0.0);
        prop_assert!(c.events.backend_bound_slots >= 0.0);
        prop_assert!(c.events.dram_bound_slots <= c.events.backend_bound_slots + 1e-9);
    }

    /// Elapsed virtual time equals clockticks at the machine frequency.
    #[test]
    fn elapsed_matches_frequency(cost in arb_cost(), work in 0.0f64..1e7) {
        let config = MachineConfig::cloudlab_c4130();
        let c = evaluate(&config, &cost, work, 0.3);
        let expected_ns = c.events.clockticks / config.cycles_per_ns();
        prop_assert!((c.elapsed.as_nanos() as f64 - expected_ns).abs() <= 1.0);
    }

    /// The sampling driver takes exactly one sample per grid point covered
    /// by execution, regardless of how the time is chopped into kernels.
    #[test]
    fn sample_count_depends_on_coverage_not_chunking(chunks in prop::collection::vec(1_000_000u64..40_000_000, 1..20)) {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let k = machine.kernel("k", "lib", CostCoeffs::compute_default());
        let profiler = Arc::new(HwProfiler::new(ProfilerConfig {
            sampling_interval: Span::from_millis(10),
            skid: Span::ZERO,
            mode: CollectionMode::Sampling,
            start_paused: false,
        }));
        let mut cpu = CpuThread::new(Arc::clone(&machine));
        cpu.attach_profiler(Arc::clone(&profiler));
        cpu.set_cursor(Time::from_nanos(1)); // off-grid start
        // Execute chunks back-to-back; total coverage is the cursor span.
        let mut covered = 0u64;
        for &target_ns in &chunks {
            // Work per ns for compute_default is ~1.94 cycles/unit at
            // 3.2 GHz; just use the actual elapsed from the exec.
            let before = cpu.cursor();
            let _ = cpu.exec(k, target_ns as f64 / 2.0);
            covered += cpu.cursor().since(before).as_nanos();
        }
        let expected = (1 + covered) / 10_000_000; // grid points in (1, 1+covered]
        prop_assert_eq!(profiler.total_samples(), expected);
    }
}
