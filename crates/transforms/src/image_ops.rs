//! Image-domain transforms: the IC/OD pipeline operations.

use lotus_data::{DType, Image, Tensor};
use lotus_uarch::{CostCoeffs, KernelId, Machine, Vendor};
use rand::Rng;

use crate::error::PipelineError;
use crate::sample::Sample;
use crate::transform::{Transform, TransformCtx};

const LIBTORCH: &str = "libtorch_cpu.so";
const PILLOW: &str = "_imaging.cpython-310-x86_64-linux-gnu.so";

fn pillow_resample_cost() -> CostCoeffs {
    CostCoeffs {
        base_insts: 400.0,
        insts_per_unit: 7.5, // per output-sample × tap
        uops_per_inst: 1.1,
        ipc_base: 2.7,
        l1_miss_per_unit: 0.02,
        l2_miss_per_unit: 0.005,
        llc_miss_per_unit: 0.0015,
        branches_per_unit: 0.5,
        mispredict_rate: 0.008,
        frontend_sensitivity: 0.25,
    }
}

/// Shared kernel ids for the Pillow-style resample path, used by both
/// [`RandomResizedCrop`] and [`Resize`].
#[derive(Debug, Clone, Copy)]
struct ResampleKernels {
    precompute_coeffs: KernelId,
    horizontal: KernelId,
    vertical: KernelId,
    bulk_move: KernelId,
    int_free: KernelId,
}

impl ResampleKernels {
    fn register(machine: &Machine) -> ResampleKernels {
        // glibc resolves different bulk-move entry points per machine —
        // the paper's Table I shows `__memmove_avx_unaligned_erms` on the
        // Intel box and `__memcpy_avx_unaligned_erms` on the AMD box for
        // the same Pillow resize.
        let bulk_move_name = match machine.config().vendor {
            Vendor::Intel => "__memmove_avx_unaligned_erms",
            Vendor::Amd => "__memcpy_avx_unaligned_erms",
        };
        let libc = match machine.config().vendor {
            Vendor::Intel => "libc.so.6",
            Vendor::Amd => "libc-2.31.so",
        };
        ResampleKernels {
            // Tiny per-call functions: captured reliably by uProf's 1 ms
            // sampling, usually missed by VTune's 10 ms sampling — which
            // is why Table I lists them as AMD-specific.
            precompute_coeffs: machine.kernel(
                "precompute_coeffs",
                PILLOW,
                CostCoeffs {
                    base_insts: 150.0,
                    // Normalized filter weights: one division + rounding
                    // per tap-window entry.
                    insts_per_unit: 120.0,
                    l1_miss_per_unit: 0.004,
                    l2_miss_per_unit: 0.001,
                    llc_miss_per_unit: 0.0005,
                    ..CostCoeffs::compute_default()
                },
            ),
            horizontal: machine.kernel(
                "ImagingResampleHorizontal_8bpc",
                PILLOW,
                pillow_resample_cost(),
            ),
            vertical: machine.kernel(
                "ImagingResampleVertical_8bpc",
                PILLOW,
                pillow_resample_cost(),
            ),
            bulk_move: machine.kernel(bulk_move_name, libc, CostCoeffs::streaming_default()),
            int_free: machine.kernel(
                "_int_free",
                libc,
                // Arena bookkeeping when the decoded crop is released:
                // cost is per free, not per byte.
                CostCoeffs {
                    base_insts: 140_000.0,
                    insts_per_unit: 0.0,
                    l1_miss_per_unit: 0.0,
                    l2_miss_per_unit: 0.0,
                    llc_miss_per_unit: 0.0,
                    ..CostCoeffs::compute_default()
                },
            ),
        }
    }

    /// Charges the two-pass resample of a `src_h × src_w` region to
    /// `out_h × out_w` (Pillow-style: horizontal pass then vertical pass,
    /// with tap counts growing with the downscale factor).
    fn charge(
        &self,
        ctx: &mut TransformCtx<'_>,
        src_h: usize,
        src_w: usize,
        out_h: usize,
        out_w: usize,
    ) {
        let taps_h = (src_w as f64 / out_w as f64).max(1.0) * 2.0;
        let taps_v = (src_h as f64 / out_h as f64).max(1.0) * 2.0;
        // Coefficient precomputation scales with output extent × filter
        // support (Pillow allocates one tap window per output column/row).
        ctx.cpu.exec(
            self.precompute_coeffs,
            (out_w as f64).mul_add(taps_h, out_h as f64 * taps_v),
        );
        ctx.cpu.exec(
            self.horizontal,
            (src_h * out_w * Image::CHANNELS) as f64 * taps_h,
        );
        ctx.cpu.exec(
            self.vertical,
            (out_h * out_w * Image::CHANNELS) as f64 * taps_v,
        );
        // Pillow moves the horizontal pass's intermediate buffer
        // (src_h × out_w) plus the final output.
        let moved_bytes = ((src_h * out_w + out_h * out_w) * Image::CHANNELS) as f64;
        ctx.cpu.exec(self.bulk_move, moved_bytes);
        ctx.cpu.exec(self.int_free, 1.0);
    }
}

/// Source taps for one output coordinate: the two neighbor indices and
/// the fractional weight of the second (Pillow's half-pixel convention).
fn bilinear_taps(src_len: usize, out_len: usize) -> Vec<(usize, usize, f64)> {
    let scale = src_len as f64 / out_len as f64;
    (0..out_len)
        .map(|o| {
            let s = ((o as f64 + 0.5) * scale - 0.5).max(0.0);
            let i0 = (s as usize).min(src_len - 1);
            let i1 = (i0 + 1).min(src_len - 1);
            (i0, i1, s - i0 as f64)
        })
        .collect()
}

/// Bilinear resize of an image region (real-compute path).
///
/// Separable two-pass implementation, the shape Pillow's
/// `ImagingResampleHorizontal/Vertical` pair uses: the horizontal pass
/// reads each source row once through precomputed taps into a planar
/// intermediate, and the vertical pass blends two intermediate rows per
/// output row. Both inner loops stream over flat buffers with
/// loop-invariant weights, so they autovectorize; per-pixel coordinate
/// math and the 4-neighbor gather of the naive version
/// ([`resize_bilinear_ref`]) are gone. The f64 expression tree per
/// output sample is identical to the reference, so results match it
/// bitwise.
#[must_use]
pub fn resize_bilinear(src: &Image, out_h: usize, out_w: usize) -> Image {
    const C: usize = Image::CHANNELS;
    let src_w = src.width();
    let taps_x = bilinear_taps(src_w, out_w);
    let taps_y = bilinear_taps(src.height(), out_h);
    let pixels = src.pixels();

    // Horizontal pass: src_h × out_w, kept in f64 for exactness.
    let mut mid = Vec::with_capacity(src.height() * out_w * C);
    for row in pixels.chunks_exact(src_w * C) {
        for &(x0, x1, fx) in &taps_x {
            let (a, b) = (&row[x0 * C..x0 * C + C], &row[x1 * C..x1 * C + C]);
            for c in 0..C {
                mid.push(f64::from(a[c]) * (1.0 - fx) + f64::from(b[c]) * fx);
            }
        }
    }

    // Vertical pass: blend two intermediate rows per output row.
    let stride = out_w * C;
    let mut out = Vec::with_capacity(out_h * stride);
    for &(y0, y1, fy) in &taps_y {
        let top = &mid[y0 * stride..y0 * stride + stride];
        let bot = &mid[y1 * stride..y1 * stride + stride];
        for (t, b) in top.iter().zip(bot) {
            out.push((t * (1.0 - fy) + b * fy).round().clamp(0.0, 255.0) as u8);
        }
    }
    Image::from_pixels(out_h, out_w, out)
}

/// The naive per-pixel bilinear resize — the reference
/// [`resize_bilinear`] is tested (and benchmarked) against.
#[must_use]
pub fn resize_bilinear_ref(src: &Image, out_h: usize, out_w: usize) -> Image {
    let mut out = Vec::with_capacity(out_h * out_w * Image::CHANNELS);
    let scale_y = src.height() as f64 / out_h as f64;
    let scale_x = src.width() as f64 / out_w as f64;
    for oy in 0..out_h {
        let sy = ((oy as f64 + 0.5) * scale_y - 0.5).max(0.0);
        let y0 = (sy as usize).min(src.height() - 1);
        let y1 = (y0 + 1).min(src.height() - 1);
        let fy = sy - y0 as f64;
        for ox in 0..out_w {
            let sx = ((ox as f64 + 0.5) * scale_x - 0.5).max(0.0);
            let x0 = (sx as usize).min(src.width() - 1);
            let x1 = (x0 + 1).min(src.width() - 1);
            let fx = sx - x0 as f64;
            let p00 = src.pixel(y0, x0);
            let p01 = src.pixel(y0, x1);
            let p10 = src.pixel(y1, x0);
            let p11 = src.pixel(y1, x1);
            for c in 0..Image::CHANNELS {
                let top = f64::from(p00[c]) * (1.0 - fx) + f64::from(p01[c]) * fx;
                let bot = f64::from(p10[c]) * (1.0 - fx) + f64::from(p11[c]) * fx;
                out.push((top * (1.0 - fy) + bot * fy).round().clamp(0.0, 255.0) as u8);
            }
        }
    }
    Image::from_pixels(out_h, out_w, out)
}

fn crop(src: &Image, top: usize, left: usize, h: usize, w: usize) -> Image {
    let mut out = Vec::with_capacity(h * w * Image::CHANNELS);
    for y in 0..h {
        for x in 0..w {
            out.extend_from_slice(&src.pixel(top + y, left + x));
        }
    }
    Image::from_pixels(h, w, out)
}

/// `torchvision.transforms.RandomResizedCrop`: crop a random area/aspect
/// region and resize it to a square target.
pub struct RandomResizedCrop {
    size: usize,
    scale: (f64, f64),
    ratio: (f64, f64),
    kernels: ResampleKernels,
}

impl std::fmt::Debug for RandomResizedCrop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomResizedCrop")
            .field("size", &self.size)
            .finish()
    }
}

impl RandomResizedCrop {
    /// Creates the transform with torchvision's default scale `(0.08, 1.0)`
    /// and ratio `(3/4, 4/3)`.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn new(machine: &Machine, size: usize) -> RandomResizedCrop {
        assert!(size > 0, "crop size must be positive");
        RandomResizedCrop {
            size,
            scale: (0.08, 1.0),
            ratio: (0.75, 4.0 / 3.0),
            kernels: ResampleKernels::register(machine),
        }
    }

    /// Picks the crop rectangle `(top, left, h, w)` for an input of
    /// `height × width`, following torchvision's 10-attempt algorithm with
    /// a center-crop fallback.
    fn pick_region(
        &self,
        height: usize,
        width: usize,
        rng: &mut impl Rng,
    ) -> (usize, usize, usize, usize) {
        let area = (height * width) as f64;
        for _ in 0..10 {
            let target_area = rng.gen_range(self.scale.0..=self.scale.1) * area;
            let log_ratio = (self.ratio.0.ln(), self.ratio.1.ln());
            let aspect = rng.gen_range(log_ratio.0..=log_ratio.1).exp();
            let w = (target_area * aspect).sqrt().round() as usize;
            let h = (target_area / aspect).sqrt().round() as usize;
            if w > 0 && h > 0 && w <= width && h <= height {
                let top = rng.gen_range(0..=height - h);
                let left = rng.gen_range(0..=width - w);
                return (top, left, h, w);
            }
        }
        // Fallback: central crop at the clamped aspect ratio.
        let in_ratio = width as f64 / height as f64;
        let (h, w) = if in_ratio < self.ratio.0 {
            let w = width;
            (((w as f64) / self.ratio.0).round() as usize, w)
        } else if in_ratio > self.ratio.1 {
            let h = height;
            (h, ((h as f64) * self.ratio.1).round() as usize)
        } else {
            (height, width)
        };
        ((height - h) / 2, (width - w) / 2, h.max(1), w.max(1))
    }
}

impl Transform for RandomResizedCrop {
    fn name(&self) -> &str {
        "RandomResizedCrop"
    }

    fn apply(&self, sample: Sample, ctx: &mut TransformCtx<'_>) -> Result<Sample, PipelineError> {
        let (height, width, data) = match sample {
            Sample::Image {
                height,
                width,
                data,
            } => (height, width, data),
            other => {
                return Err(PipelineError::type_mismatch(
                    self.name(),
                    "an image sample",
                    &other,
                ))
            }
        };
        let (top, left, h, w) = self.pick_region(height, width, ctx.rng);
        self.kernels.charge(ctx, h, w, self.size, self.size);
        let out = data.map(|img| {
            let cropped = ctx
                .cpu
                .observe_native(self.kernels.bulk_move, || crop(&img, top, left, h, w));
            ctx.cpu.observe_native(self.kernels.horizontal, || {
                resize_bilinear(&cropped, self.size, self.size)
            })
        });
        Ok(Sample::Image {
            height: self.size,
            width: self.size,
            data: out,
        })
    }
}

/// `torchvision.transforms.Resize` to a fixed (height, width) — the OD
/// pipeline's replacement for crop+resize.
pub struct Resize {
    out_h: usize,
    out_w: usize,
    kernels: ResampleKernels,
}

impl std::fmt::Debug for Resize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resize")
            .field("out", &(self.out_h, self.out_w))
            .finish()
    }
}

impl Resize {
    /// Creates a resize to `out_h × out_w`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(machine: &Machine, out_h: usize, out_w: usize) -> Resize {
        assert!(out_h > 0 && out_w > 0, "resize target must be positive");
        Resize {
            out_h,
            out_w,
            kernels: ResampleKernels::register(machine),
        }
    }
}

impl Transform for Resize {
    fn name(&self) -> &str {
        "Resize"
    }

    fn apply(&self, sample: Sample, ctx: &mut TransformCtx<'_>) -> Result<Sample, PipelineError> {
        let (height, width, data) = match sample {
            Sample::Image {
                height,
                width,
                data,
            } => (height, width, data),
            other => {
                return Err(PipelineError::type_mismatch(
                    self.name(),
                    "an image sample",
                    &other,
                ))
            }
        };
        self.kernels
            .charge(ctx, height, width, self.out_h, self.out_w);
        let out = data.map(|img| {
            ctx.cpu.observe_native(self.kernels.horizontal, || {
                resize_bilinear(&img, self.out_h, self.out_w)
            })
        });
        Ok(Sample::Image {
            height: self.out_h,
            width: self.out_w,
            data: out,
        })
    }
}

/// `torchvision.transforms.RandomHorizontalFlip`.
pub struct RandomHorizontalFlip {
    p: f64,
    flip_kernel: KernelId,
}

impl std::fmt::Debug for RandomHorizontalFlip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomHorizontalFlip")
            .field("p", &self.p)
            .finish()
    }
}

impl RandomHorizontalFlip {
    /// Creates the transform with flip probability `p` (0.5 by default in
    /// torchvision).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn new(machine: &Machine, p: f64) -> RandomHorizontalFlip {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        RandomHorizontalFlip {
            p,
            flip_kernel: machine.kernel(
                "ImagingFlipLeftRight",
                PILLOW,
                CostCoeffs {
                    base_insts: 200.0,
                    insts_per_unit: 1.4, // per byte moved
                    uops_per_inst: 1.05,
                    ipc_base: 2.8,
                    l1_miss_per_unit: 2.0 / 64.0,
                    l2_miss_per_unit: 0.02,
                    llc_miss_per_unit: 0.012,
                    branches_per_unit: 0.15,
                    mispredict_rate: 0.003,
                    frontend_sensitivity: 0.08,
                },
            ),
        }
    }
}

impl Transform for RandomHorizontalFlip {
    fn name(&self) -> &str {
        "RandomHorizontalFlip"
    }

    fn apply(&self, sample: Sample, ctx: &mut TransformCtx<'_>) -> Result<Sample, PipelineError> {
        let (height, width, data) = match sample {
            Sample::Image {
                height,
                width,
                data,
            } => (height, width, data),
            other => {
                return Err(PipelineError::type_mismatch(
                    self.name(),
                    "an image sample",
                    &other,
                ))
            }
        };
        if !ctx.rng.gen_bool(self.p) {
            return Ok(Sample::Image {
                height,
                width,
                data,
            });
        }
        ctx.cpu
            .exec(self.flip_kernel, (height * width * Image::CHANNELS) as f64);
        let out = data.map(|img| {
            ctx.cpu.observe_native(self.flip_kernel, || {
                let mut flipped = img.clone();
                for y in 0..height {
                    for x in 0..width {
                        flipped.set_pixel(y, x, img.pixel(y, width - 1 - x));
                    }
                }
                flipped
            })
        });
        Ok(Sample::Image {
            height,
            width,
            data: out,
        })
    }
}

/// `torchvision.transforms.ToTensor`: HWC u8 → CHW f32 in `[0, 1]`.
pub struct ToTensor {
    copy_kernel: KernelId,
    convert_kernel: KernelId,
}

impl std::fmt::Debug for ToTensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ToTensor")
    }
}

impl ToTensor {
    /// Creates the transform.
    #[must_use]
    pub fn new(machine: &Machine) -> ToTensor {
        ToTensor {
            copy_kernel: machine.kernel(
                "at_native_copy_kernel",
                LIBTORCH,
                CostCoeffs::streaming_default(),
            ),
            convert_kernel: machine.kernel(
                "at_native_convert_u8_f32",
                LIBTORCH,
                CostCoeffs {
                    base_insts: 300.0,
                    insts_per_unit: 1.1, // per element
                    uops_per_inst: 1.05,
                    ipc_base: 2.9,
                    l1_miss_per_unit: 5.0 / 64.0,
                    l2_miss_per_unit: 0.06,
                    llc_miss_per_unit: 0.05,
                    branches_per_unit: 0.05,
                    mispredict_rate: 0.002,
                    frontend_sensitivity: 0.06,
                },
            ),
        }
    }
}

impl Transform for ToTensor {
    fn name(&self) -> &str {
        "ToTensor"
    }

    fn apply(&self, sample: Sample, ctx: &mut TransformCtx<'_>) -> Result<Sample, PipelineError> {
        let (height, width, data) = match sample {
            Sample::Image {
                height,
                width,
                data,
            } => (height, width, data),
            other => {
                return Err(PipelineError::type_mismatch(
                    self.name(),
                    "an image sample",
                    &other,
                ))
            }
        };
        let elements = (height * width * Image::CHANNELS) as f64;
        ctx.cpu.exec(self.convert_kernel, elements);
        ctx.cpu.exec(self.copy_kernel, elements * 4.0); // f32 output bytes
        let shape = vec![Image::CHANNELS, height, width];
        let out = data.map(|img| {
            ctx.cpu.observe_native(self.convert_kernel, || {
                let mut chw = vec![0.0f32; img.len_bytes()];
                let plane = height * width;
                for y in 0..height {
                    for x in 0..width {
                        let p = img.pixel(y, x);
                        for c in 0..Image::CHANNELS {
                            chw[c * plane + y * width + x] = f32::from(p[c]) / 255.0;
                        }
                    }
                }
                Tensor::from_f32(&shape, chw)
            })
        });
        Ok(Sample::Tensor {
            shape,
            dtype: DType::F32,
            data: out,
        })
    }
}

/// `torchvision.transforms.Normalize`: per-channel `(x - mean) / std`.
pub struct Normalize {
    mean: [f32; 3],
    std: [f32; 3],
    sub_kernel: KernelId,
    div_kernel: KernelId,
}

impl std::fmt::Debug for Normalize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Normalize")
            .field("mean", &self.mean)
            .field("std", &self.std)
            .finish()
    }
}

impl Normalize {
    /// Creates the transform with the given per-channel statistics.
    ///
    /// # Panics
    ///
    /// Panics if any `std` entry is zero.
    #[must_use]
    pub fn new(machine: &Machine, mean: [f32; 3], std: [f32; 3]) -> Normalize {
        assert!(std.iter().all(|&s| s != 0.0), "std must be non-zero");
        let elementwise = CostCoeffs {
            base_insts: 250.0,
            insts_per_unit: 0.8,
            uops_per_inst: 1.05,
            ipc_base: 2.9,
            l1_miss_per_unit: 4.0 / 64.0,
            l2_miss_per_unit: 0.05,
            llc_miss_per_unit: 0.04,
            branches_per_unit: 0.04,
            mispredict_rate: 0.002,
            frontend_sensitivity: 0.05,
        };
        Normalize {
            mean,
            std,
            sub_kernel: machine.kernel("at_native_sub_kernel", LIBTORCH, elementwise),
            div_kernel: machine.kernel("at_native_div_kernel", LIBTORCH, elementwise),
        }
    }

    /// ImageNet's standard normalization constants.
    #[must_use]
    pub fn imagenet(machine: &Machine) -> Normalize {
        Normalize::new(machine, [0.485, 0.456, 0.406], [0.229, 0.224, 0.225])
    }
}

impl Transform for Normalize {
    fn name(&self) -> &str {
        "Normalize"
    }

    fn apply(&self, sample: Sample, ctx: &mut TransformCtx<'_>) -> Result<Sample, PipelineError> {
        let (shape, dtype, data) = match sample {
            Sample::Tensor { shape, dtype, data } => (shape, dtype, data),
            other => {
                return Err(PipelineError::type_mismatch(
                    self.name(),
                    "a tensor sample",
                    &other,
                ))
            }
        };
        if dtype != DType::F32 {
            return Err(PipelineError::ShapeMismatch {
                op: self.name().to_string(),
                expected: "an f32 tensor (apply ToTensor first)".to_string(),
                got: format!("{dtype:?}"),
            });
        }
        let elements: usize = shape.iter().product();
        ctx.cpu.exec(self.sub_kernel, elements as f64);
        ctx.cpu.exec(self.div_kernel, elements as f64);
        let out = data.map(|mut t| {
            ctx.cpu.observe_native(self.sub_kernel, || {
                let plane: usize = shape[1..].iter().product();
                let values = t.as_f32_mut();
                for (i, v) in values.iter_mut().enumerate() {
                    let c = (i / plane).min(2);
                    *v = (*v - self.mean[c]) / self.std[c];
                }
                t
            })
        });
        Ok(Sample::Tensor {
            shape,
            dtype,
            data: out,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_uarch::{CpuThread, MachineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn ctx_parts() -> (Arc<Machine>, CpuThread, StdRng) {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let cpu = CpuThread::new(Arc::clone(&machine));
        (machine, cpu, StdRng::seed_from_u64(7))
    }

    #[test]
    fn rrc_outputs_requested_size_with_and_without_data() {
        let (machine, mut cpu, mut rng) = ctx_parts();
        let rrc = RandomResizedCrop::new(&machine, 224);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };

        let meta_out = rrc.apply(Sample::image_meta(500, 400), &mut ctx).unwrap();
        assert!(matches!(
            meta_out,
            Sample::Image {
                height: 224,
                width: 224,
                data: None
            }
        ));

        let img = Image::synthetic(120, 90, &mut StdRng::seed_from_u64(1));
        let real_out = rrc.apply(Sample::image(img), &mut ctx).unwrap();
        let Sample::Image {
            height,
            width,
            data,
        } = real_out
        else {
            unreachable!()
        };
        assert_eq!((height, width), (224, 224));
        assert_eq!(data.unwrap().len_bytes(), 224 * 224 * 3);
    }

    #[test]
    fn rrc_charges_more_for_larger_inputs() {
        let (machine, _, _) = ctx_parts();
        let rrc = RandomResizedCrop::new(&machine, 224);
        let time_for = |h: usize, w: usize| {
            let mut cpu = CpuThread::new(Arc::clone(&machine));
            let mut rng = StdRng::seed_from_u64(3);
            let mut ctx = TransformCtx {
                cpu: &mut cpu,
                rng: &mut rng,
            };
            let _ = rrc.apply(Sample::image_meta(h, w), &mut ctx);
            cpu.cursor().as_nanos()
        };
        assert!(time_for(2000, 2000) > time_for(300, 300));
    }

    #[test]
    fn flip_reverses_pixels_horizontally() {
        let (machine, mut cpu, mut rng) = ctx_parts();
        let flip = RandomHorizontalFlip::new(&machine, 1.0);
        let mut img = Image::filled(2, 3, [0, 0, 0]);
        img.set_pixel(0, 0, [9, 9, 9]);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let out = flip.apply(Sample::image(img), &mut ctx).unwrap();
        let Sample::Image {
            data: Some(flipped),
            ..
        } = out
        else {
            unreachable!()
        };
        assert_eq!(flipped.pixel(0, 2), [9, 9, 9]);
        assert_eq!(flipped.pixel(0, 0), [0, 0, 0]);
    }

    #[test]
    fn flip_probability_zero_is_free_and_identity() {
        let (machine, mut cpu, mut rng) = ctx_parts();
        let flip = RandomHorizontalFlip::new(&machine, 0.0);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let before = ctx.cpu.cursor();
        let _ = flip.apply(Sample::image_meta(224, 224), &mut ctx);
        assert_eq!(ctx.cpu.cursor(), before, "skipped flip must charge nothing");
    }

    #[test]
    fn to_tensor_produces_chw_f32_in_unit_range() {
        let (machine, mut cpu, mut rng) = ctx_parts();
        let tt = ToTensor::new(&machine);
        let mut img = Image::filled(2, 2, [255, 0, 128]);
        img.set_pixel(1, 1, [0, 255, 0]);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let out = tt.apply(Sample::image(img), &mut ctx).unwrap();
        let Sample::Tensor {
            shape,
            dtype,
            data: Some(t),
        } = out
        else {
            unreachable!()
        };
        assert_eq!(shape, vec![3, 2, 2]);
        assert_eq!(dtype, DType::F32);
        let v = t.as_f32();
        assert_eq!(v[0], 1.0); // R plane, (0,0)
        assert_eq!(v[3], 0.0); // R plane, (1,1)
        assert_eq!(v[4 + 3], 1.0); // G plane, (1,1)
    }

    #[test]
    fn normalize_applies_channel_statistics() {
        let (machine, mut cpu, mut rng) = ctx_parts();
        let norm = Normalize::new(&machine, [0.5, 0.0, 0.0], [0.5, 1.0, 1.0]);
        let t = Tensor::from_f32(&[3, 1, 1], vec![1.0, 1.0, 1.0]);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let out = norm.apply(Sample::tensor(t), &mut ctx).unwrap();
        let Sample::Tensor { data: Some(t), .. } = out else {
            unreachable!()
        };
        // channel 0: (1 - 0.5) / 0.5 = 1; channels 1, 2: (1 - 0) / 1 = 1.
        assert_eq!(t.as_f32(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn resize_hits_exact_target() {
        let (machine, mut cpu, mut rng) = ctx_parts();
        let rs = Resize::new(&machine, 800, 1333);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let out = rs.apply(Sample::image_meta(480, 640), &mut ctx).unwrap();
        assert!(matches!(
            out,
            Sample::Image {
                height: 800,
                width: 1333,
                ..
            }
        ));
    }

    #[test]
    fn wrong_sample_variant_yields_typed_errors() {
        let (machine, mut cpu, mut rng) = ctx_parts();
        let tt = ToTensor::new(&machine);
        let norm = Normalize::imagenet(&machine);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };

        // An image transform fed a tensor: TypeMismatch naming the op.
        let tensor = Sample::tensor_meta(&[3, 8, 8], DType::F32);
        let err = tt.apply(tensor, &mut ctx).unwrap_err();
        assert!(matches!(err, PipelineError::TypeMismatch { ref op, .. } if op == "ToTensor"));

        // Normalize on a u8 tensor: ShapeMismatch (wrong dtype).
        let u8_tensor = Sample::tensor_meta(&[3, 8, 8], DType::U8);
        let err = norm.apply(u8_tensor, &mut ctx).unwrap_err();
        assert!(matches!(err, PipelineError::ShapeMismatch { ref op, .. } if op == "Normalize"));

        // Normalize fed an image: TypeMismatch.
        let err = norm.apply(Sample::image_meta(4, 4), &mut ctx).unwrap_err();
        assert!(matches!(err, PipelineError::TypeMismatch { ref op, .. } if op == "Normalize"));
    }

    #[test]
    fn bilinear_resize_preserves_flat_content() {
        let img = Image::filled(10, 10, [100, 150, 200]);
        let out = resize_bilinear(&img, 4, 7);
        for y in 0..4 {
            for x in 0..7 {
                assert_eq!(out.pixel(y, x), [100, 150, 200]);
            }
        }
    }

    #[test]
    fn separable_resize_matches_the_naive_reference_bitwise() {
        let mut rng = StdRng::seed_from_u64(0x0107);
        for (src_h, src_w, out_h, out_w) in [
            (37, 53, 224, 224),
            (480, 640, 100, 75),
            (8, 8, 8, 8),
            (1, 1, 3, 5),
        ] {
            let img = Image::synthetic(src_h, src_w, &mut rng);
            let fast = resize_bilinear(&img, out_h, out_w);
            let slow = resize_bilinear_ref(&img, out_h, out_w);
            assert_eq!(
                fast.pixels(),
                slow.pixels(),
                "{src_h}x{src_w} -> {out_h}x{out_w} diverged"
            );
        }
    }

    #[test]
    fn crop_extracts_the_right_region() {
        let mut img = Image::filled(5, 5, [0, 0, 0]);
        img.set_pixel(2, 3, [7, 7, 7]);
        let c = crop(&img, 2, 3, 2, 2);
        assert_eq!(c.pixel(0, 0), [7, 7, 7]);
        assert_eq!(c.pixel(1, 1), [0, 0, 0]);
    }

    #[test]
    fn pick_region_always_fits() {
        let (machine, _, mut rng) = ctx_parts();
        let rrc = RandomResizedCrop::new(&machine, 224);
        for _ in 0..500 {
            let (h, w) = (rng.gen_range(50..2000), rng.gen_range(50..2000));
            let (top, left, ch, cw) = rrc.pick_region(h, w, &mut rng);
            assert!(top + ch <= h, "crop escapes vertically: {top}+{ch} > {h}");
            assert!(
                left + cw <= w,
                "crop escapes horizontally: {left}+{cw} > {w}"
            );
            assert!(ch > 0 && cw > 0);
        }
    }
}
