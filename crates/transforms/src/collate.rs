//! Batch collation (`torch.utils.data._utils.collate.default_collate`).

use lotus_data::{DType, Tensor};
use lotus_uarch::{CostCoeffs, KernelId, Machine};

use crate::error::PipelineError;
use crate::sample::{Batch, Sample};
use crate::transform::TransformCtx;

/// Stacks per-sample tensors into a batch tensor, the `Collation(C(k))`
/// step of the paper's pipelines.
pub struct Collate {
    stack_kernel: KernelId,
    memcpy_kernel: KernelId,
}

impl std::fmt::Debug for Collate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Collate")
    }
}

impl Collate {
    /// The name LotusTrace logs for this step, parameterized by batch size
    /// (`C(128)` in Table II).
    #[must_use]
    pub fn display_name(batch_size: usize) -> String {
        format!("C({batch_size})")
    }

    /// Creates the collation step.
    #[must_use]
    pub fn new(machine: &Machine) -> Collate {
        Collate {
            stack_kernel: machine.kernel(
                "at_native_stack_serial_kernel",
                "libtorch_cpu.so",
                CostCoeffs {
                    base_insts: 2_000.0,
                    insts_per_unit: 0.12, // per byte stacked
                    uops_per_inst: 1.05,
                    ipc_base: 2.4,
                    l1_miss_per_unit: 1.0 / 64.0,
                    l2_miss_per_unit: 0.9 / 64.0,
                    llc_miss_per_unit: 0.85 / 64.0,
                    branches_per_unit: 0.01,
                    mispredict_rate: 0.005,
                    frontend_sensitivity: 0.1,
                },
            ),
            memcpy_kernel: machine.kernel(
                "__memcpy_avx_unaligned_erms",
                "libc.so.6",
                CostCoeffs::streaming_default(),
            ),
        }
    }

    /// Collates `samples` into a batch, charging kernel costs.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Collate`] if `samples` is empty, contains
    /// non-tensor samples, or the samples disagree on shape/dtype (the same
    /// conditions under which PyTorch's `default_collate` raises).
    pub fn apply(
        &self,
        samples: Vec<Sample>,
        ctx: &mut TransformCtx<'_>,
    ) -> Result<Batch, PipelineError> {
        if samples.is_empty() {
            return Err(PipelineError::Collate {
                reason: "cannot collate an empty batch".to_string(),
            });
        }
        let (first_shape, dtype) = match &samples[0] {
            Sample::Tensor { shape, dtype, .. } => (shape.clone(), *dtype),
            Sample::Image { .. } => {
                return Err(PipelineError::Collate {
                    reason: "collate expects tensor samples (apply ToTensor first)".to_string(),
                })
            }
        };
        let mut total_bytes = 0u64;
        for s in &samples {
            match s {
                Sample::Tensor {
                    shape, dtype: d, ..
                } => {
                    if shape != &first_shape {
                        return Err(PipelineError::Collate {
                            reason: format!(
                                "ragged batch: shapes differ ({first_shape:?} vs {shape:?})"
                            ),
                        });
                    }
                    if *d != dtype {
                        return Err(PipelineError::Collate {
                            reason: format!("ragged batch: dtypes differ ({dtype:?} vs {d:?})"),
                        });
                    }
                }
                Sample::Image { .. } => {
                    return Err(PipelineError::Collate {
                        reason: "collate expects tensor samples".to_string(),
                    })
                }
            }
            total_bytes += s.bytes();
        }
        ctx.cpu.exec(self.stack_kernel, total_bytes as f64);
        ctx.cpu.exec(self.memcpy_kernel, total_bytes as f64);

        let mut shape = Vec::with_capacity(first_shape.len() + 1);
        shape.push(samples.len());
        shape.extend_from_slice(&first_shape);

        let all_materialized = samples.iter().all(Sample::is_materialized);
        ctx.cpu
            .set_op_context(&Collate::display_name(samples.len()));
        let data = all_materialized.then(|| {
            ctx.cpu
                .observe_native(self.stack_kernel, || stack_tensors(&samples, &shape, dtype))
        });
        Ok(Batch {
            len: samples.len(),
            shape,
            bytes: total_bytes,
            data,
        })
    }
}

fn stack_tensors(samples: &[Sample], shape: &[usize], dtype: DType) -> Tensor {
    match dtype {
        DType::F32 => {
            let mut out = Vec::with_capacity(shape.iter().product());
            for s in samples {
                let Sample::Tensor { data: Some(t), .. } = s else {
                    unreachable!()
                };
                out.extend_from_slice(t.as_f32());
            }
            Tensor::from_f32(shape, out)
        }
        DType::U8 => {
            let mut out = Vec::with_capacity(shape.iter().product());
            for s in samples {
                let Sample::Tensor { data: Some(t), .. } = s else {
                    unreachable!()
                };
                out.extend_from_slice(t.as_u8());
            }
            Tensor::from_u8(shape, out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_uarch::Machine as M;
    use lotus_uarch::{CpuThread, MachineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (Arc<M>, CpuThread, StdRng) {
        let machine = M::new(MachineConfig::cloudlab_c4130());
        let cpu = CpuThread::new(Arc::clone(&machine));
        (machine, cpu, StdRng::seed_from_u64(5))
    }

    #[test]
    fn collate_stacks_meta_samples() {
        let (machine, mut cpu, mut rng) = setup();
        let collate = Collate::new(&machine);
        let samples: Vec<Sample> = (0..4)
            .map(|_| Sample::tensor_meta(&[3, 8, 8], DType::F32))
            .collect();
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let batch = collate.apply(samples, &mut ctx).unwrap();
        assert_eq!(batch.len, 4);
        assert_eq!(batch.shape, vec![4, 3, 8, 8]);
        assert_eq!(batch.bytes, 4 * 3 * 8 * 8 * 4);
        assert!(batch.data.is_none());
        assert!(cpu.cursor().as_nanos() > 0);
    }

    #[test]
    fn collate_stacks_real_tensors() {
        let (machine, mut cpu, mut rng) = setup();
        let collate = Collate::new(&machine);
        let samples: Vec<Sample> = (0..2)
            .map(|i| Sample::tensor(Tensor::from_f32(&[2], vec![i as f32, i as f32 + 0.5])))
            .collect();
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let batch = collate.apply(samples, &mut ctx).unwrap();
        let t = batch.data.unwrap();
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.as_f32(), &[0.0, 0.5, 1.0, 1.5]);
    }

    #[test]
    fn collate_cost_scales_with_batch_size() {
        let (machine, _, _) = setup();
        let collate = Collate::new(&machine);
        let cost = |n: usize| {
            let mut cpu = CpuThread::new(Arc::clone(&machine));
            let mut rng = StdRng::seed_from_u64(1);
            let mut ctx = TransformCtx {
                cpu: &mut cpu,
                rng: &mut rng,
            };
            let samples: Vec<Sample> = (0..n)
                .map(|_| Sample::tensor_meta(&[3, 224, 224], DType::F32))
                .collect();
            let _ = collate.apply(samples, &mut ctx);
            cpu.cursor().as_nanos()
        };
        let c2 = cost(2);
        let c128 = cost(128);
        assert!(c128 > 40 * c2, "c2={c2} c128={c128}");
    }

    #[test]
    fn ragged_batches_are_rejected() {
        let (machine, mut cpu, mut rng) = setup();
        let collate = Collate::new(&machine);
        let samples = vec![
            Sample::tensor_meta(&[3, 8, 8], DType::F32),
            Sample::tensor_meta(&[3, 9, 9], DType::F32),
        ];
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let err = collate.apply(samples, &mut ctx).unwrap_err();
        let PipelineError::Collate { reason } = &err else {
            panic!("expected a collate error, got {err:?}")
        };
        assert!(reason.contains("ragged batch"), "reason: {reason}");
        assert_eq!(err.op(), None);
    }

    #[test]
    fn empty_and_image_batches_are_rejected() {
        let (machine, mut cpu, mut rng) = setup();
        let collate = Collate::new(&machine);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        assert!(matches!(
            collate.apply(Vec::new(), &mut ctx),
            Err(PipelineError::Collate { .. })
        ));
        assert!(matches!(
            collate.apply(vec![Sample::image_meta(8, 8)], &mut ctx),
            Err(PipelineError::Collate { .. })
        ));
    }

    #[test]
    fn display_name_matches_paper_notation() {
        assert_eq!(Collate::display_name(128), "C(128)");
    }
}
