//! Volumetric transforms: the IS (image segmentation / U-Net3D) pipeline
//! operations, mirroring the MLPerf reference implementation's numpy code.

use lotus_data::dist::Normal;
use lotus_data::{DType, Tensor};
use lotus_uarch::{CostCoeffs, KernelId, Machine};
use rand::Rng;

use crate::error::PipelineError;
use crate::sample::Sample;
use crate::transform::{Transform, TransformCtx};

const NUMPY: &str = "_multiarray_umath.cpython-310-x86_64-linux-gnu.so";

fn elementwise_cost(insts_per_unit: f64) -> CostCoeffs {
    CostCoeffs {
        base_insts: 300.0,
        insts_per_unit,
        uops_per_inst: 1.05,
        ipc_base: 2.8,
        l1_miss_per_unit: 4.0 / 64.0,
        l2_miss_per_unit: 0.05,
        llc_miss_per_unit: 0.04,
        branches_per_unit: 0.05,
        mispredict_rate: 0.003,
        frontend_sensitivity: 0.08,
    }
}

fn volume_dims(op: &str, shape: &[usize]) -> Result<(usize, usize, usize), PipelineError> {
    if shape.len() != 3 {
        return Err(PipelineError::ShapeMismatch {
            op: op.to_string(),
            expected: "a 3-D volume tensor".to_string(),
            got: format!("{shape:?}"),
        });
    }
    Ok((shape[0], shape[1], shape[2]))
}

/// Dimensions of an already-validated 3-D shape (internal helpers only).
fn dims3(shape: &[usize]) -> (usize, usize, usize) {
    (shape[0], shape[1], shape[2])
}

/// `RandBalancedCrop`: foreground-aware patch cropping. With probability
/// `oversampling` the crop is centered on a foreground voxel, which
/// requires scanning the label volume (expensive); otherwise the origin is
/// uniform (nearly free — numpy slicing is a view). This bimodality is the
/// source of RBC's enormous variance in the paper's Table II
/// (61 % of executions < 100 µs, P90 ≈ 300 ms).
pub struct RandBalancedCrop {
    patch: (usize, usize, usize),
    oversampling: f64,
    scan_kernel: KernelId,
    copy_kernel: KernelId,
}

impl std::fmt::Debug for RandBalancedCrop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandBalancedCrop")
            .field("patch", &self.patch)
            .field("oversampling", &self.oversampling)
            .finish()
    }
}

impl RandBalancedCrop {
    /// Creates the transform (MLPerf default: 128³ patch, oversampling 0.4).
    ///
    /// # Panics
    ///
    /// Panics if `oversampling` is outside `[0, 1]` or the patch is empty.
    #[must_use]
    pub fn new(
        machine: &Machine,
        patch: (usize, usize, usize),
        oversampling: f64,
    ) -> RandBalancedCrop {
        assert!(
            (0.0..=1.0).contains(&oversampling),
            "oversampling must be in [0,1]"
        );
        assert!(
            patch.0 > 0 && patch.1 > 0 && patch.2 > 0,
            "patch must be non-empty"
        );
        RandBalancedCrop {
            patch,
            oversampling,
            scan_kernel: machine.kernel(
                "np_argwhere_nonzero",
                NUMPY,
                CostCoeffs {
                    // np.argwhere materializes large index arrays: heavy
                    // per-voxel instruction count and poor locality.
                    base_insts: 800.0,
                    insts_per_unit: 60.0, // per voxel scanned
                    uops_per_inst: 1.1,
                    ipc_base: 2.2,
                    l1_miss_per_unit: 0.18,
                    l2_miss_per_unit: 0.16,
                    llc_miss_per_unit: 0.15,
                    branches_per_unit: 1.0,
                    mispredict_rate: 0.03,
                    frontend_sensitivity: 0.2,
                },
            ),
            copy_kernel: machine.kernel("np_slice_copy", NUMPY, CostCoeffs::streaming_default()),
        }
    }
}

impl Transform for RandBalancedCrop {
    fn name(&self) -> &str {
        "RandBalancedCrop"
    }

    fn apply(&self, sample: Sample, ctx: &mut TransformCtx<'_>) -> Result<Sample, PipelineError> {
        let (shape, dtype, data) = match sample {
            Sample::Tensor { shape, dtype, data } => (shape, dtype, data),
            other => {
                return Err(PipelineError::type_mismatch(
                    self.name(),
                    "a volume tensor",
                    &other,
                ))
            }
        };
        let (d, h, w) = volume_dims(self.name(), &shape)?;
        let foreground = ctx.rng.gen_bool(self.oversampling);
        if foreground {
            // Scan the label volume for foreground voxels.
            ctx.cpu.exec(self.scan_kernel, (d * h * w) as f64);
        }
        // The output patch always has the configured dimensions: volumes
        // smaller than the patch are zero-padded (as MLPerf's reference
        // implementation pads), keeping batches rectangular.
        let out_shape = vec![self.patch.0, self.patch.1, self.patch.2];
        if foreground {
            // The foreground path materializes the patch (copy); the
            // random path returns a numpy view, which is free.
            let patch_bytes: usize = out_shape.iter().product::<usize>() * dtype.size_bytes();
            ctx.cpu.exec(self.copy_kernel, patch_bytes as f64);
        }
        let origin = (
            ctx.rng.gen_range(0..=d.saturating_sub(self.patch.0)),
            ctx.rng.gen_range(0..=h.saturating_sub(self.patch.1)),
            ctx.rng.gen_range(0..=w.saturating_sub(self.patch.2)),
        );
        let out = data.map(|t| crop_volume(&t, &shape, origin, self.patch));
        Ok(Sample::Tensor {
            shape: out_shape,
            dtype,
            data: out,
        })
    }
}

/// Extracts a patch starting at `origin`, zero-padding where the patch
/// extends past the volume.
fn crop_volume(
    t: &Tensor,
    shape: &[usize],
    origin: (usize, usize, usize),
    patch: (usize, usize, usize),
) -> Tensor {
    let (d, h, w) = dims3(shape);
    let src = t.as_f32();
    let mut out = Vec::with_capacity(patch.0 * patch.1 * patch.2);
    for z in 0..patch.0 {
        for y in 0..patch.1 {
            for x in 0..patch.2 {
                let (sz, sy, sx) = (origin.0 + z, origin.1 + y, origin.2 + x);
                if sz < d && sy < h && sx < w {
                    out.push(src[sz * h * w + sy * w + sx]);
                } else {
                    out.push(0.0);
                }
            }
        }
    }
    Tensor::from_f32(&[patch.0, patch.1, patch.2], out)
}

/// `RandomFlip`: reverses the volume along each axis independently with
/// probability 1/3 (so ~30 % of calls flip nothing, matching the paper's
/// 28.6 % of RF executions under 100 µs).
pub struct RandomFlip3d {
    axis_p: f64,
    flip_kernel: KernelId,
}

impl std::fmt::Debug for RandomFlip3d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomFlip3d")
            .field("axis_p", &self.axis_p)
            .finish()
    }
}

impl RandomFlip3d {
    /// Creates the transform with per-axis flip probability `axis_p`
    /// (MLPerf uses 1/3).
    ///
    /// # Panics
    ///
    /// Panics if `axis_p` is outside `[0, 1]`.
    #[must_use]
    pub fn new(machine: &Machine, axis_p: f64) -> RandomFlip3d {
        assert!(
            (0.0..=1.0).contains(&axis_p),
            "probability must be in [0,1]"
        );
        RandomFlip3d {
            axis_p,
            flip_kernel: machine.kernel(
                "np_flip_copy",
                NUMPY,
                CostCoeffs {
                    base_insts: 300.0,
                    insts_per_unit: 0.4, // per byte moved
                    uops_per_inst: 1.05,
                    ipc_base: 2.7,
                    l1_miss_per_unit: 2.0 / 64.0,
                    l2_miss_per_unit: 0.025,
                    llc_miss_per_unit: 0.02,
                    branches_per_unit: 0.05,
                    mispredict_rate: 0.002,
                    frontend_sensitivity: 0.06,
                },
            ),
        }
    }
}

impl Transform for RandomFlip3d {
    fn name(&self) -> &str {
        "RandomFlip"
    }

    fn apply(&self, sample: Sample, ctx: &mut TransformCtx<'_>) -> Result<Sample, PipelineError> {
        let (shape, dtype, data) = match sample {
            Sample::Tensor { shape, dtype, data } => (shape, dtype, data),
            other => {
                return Err(PipelineError::type_mismatch(
                    self.name(),
                    "a volume tensor",
                    &other,
                ))
            }
        };
        volume_dims(self.name(), &shape)?;
        let axes: Vec<bool> = (0..3).map(|_| ctx.rng.gen_bool(self.axis_p)).collect();
        let flips = axes.iter().filter(|&&f| f).count();
        if flips == 0 {
            return Ok(Sample::Tensor { shape, dtype, data });
        }
        let bytes: usize = shape.iter().product::<usize>() * dtype.size_bytes();
        ctx.cpu.exec(self.flip_kernel, (bytes * flips) as f64);
        let out = data.map(|t| flip_volume(&t, &shape, &axes));
        Ok(Sample::Tensor {
            shape,
            dtype,
            data: out,
        })
    }
}

fn flip_volume(t: &Tensor, shape: &[usize], axes: &[bool]) -> Tensor {
    let (d, h, w) = dims3(shape);
    let src = t.as_f32();
    let mut out = vec![0.0f32; src.len()];
    for z in 0..d {
        for y in 0..h {
            for x in 0..w {
                let sz = if axes[0] { d - 1 - z } else { z };
                let sy = if axes[1] { h - 1 - y } else { y };
                let sx = if axes[2] { w - 1 - x } else { x };
                out[z * h * w + y * w + x] = src[sz * h * w + sy * w + sx];
            }
        }
    }
    Tensor::from_f32(shape, out)
}

/// `Cast`: converts the volume from float32 to uint8 (the IS pipeline's
/// dtype squeeze).
pub struct Cast {
    cast_kernel: KernelId,
}

impl std::fmt::Debug for Cast {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Cast")
    }
}

impl Cast {
    /// Creates the transform.
    #[must_use]
    pub fn new(machine: &Machine) -> Cast {
        Cast {
            cast_kernel: machine.kernel("np_cast_f32_u8", NUMPY, elementwise_cost(1.2)),
        }
    }
}

impl Transform for Cast {
    fn name(&self) -> &str {
        "Cast"
    }

    fn apply(&self, sample: Sample, ctx: &mut TransformCtx<'_>) -> Result<Sample, PipelineError> {
        let (shape, dtype, data) = match sample {
            Sample::Tensor { shape, dtype, data } => (shape, dtype, data),
            other => {
                return Err(PipelineError::type_mismatch(
                    self.name(),
                    "a tensor sample",
                    &other,
                ))
            }
        };
        if dtype == DType::U8 {
            return Ok(Sample::Tensor { shape, dtype, data });
        }
        let elements: usize = shape.iter().product();
        ctx.cpu.exec(self.cast_kernel, elements as f64);
        let out = data.map(|t| t.to_u8_saturating());
        Ok(Sample::Tensor {
            shape,
            dtype: DType::U8,
            data: out,
        })
    }
}

/// `RandomBrightnessAugmentation`: with probability `p`, scales the volume
/// by a random factor (no-op otherwise — hence 88.7 % of executions under
/// 100 µs in Table II).
pub struct RandomBrightnessAugmentation {
    p: f64,
    factor_range: (f64, f64),
    mul_kernel: KernelId,
}

impl std::fmt::Debug for RandomBrightnessAugmentation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomBrightnessAugmentation")
            .field("p", &self.p)
            .finish()
    }
}

impl RandomBrightnessAugmentation {
    /// Creates the transform (MLPerf default: p = 0.1, factor ±0.3).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn new(machine: &Machine, p: f64) -> RandomBrightnessAugmentation {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        RandomBrightnessAugmentation {
            p,
            factor_range: (0.7, 1.3),
            // numpy upcasts u8→float, scales, clips and casts back:
            // three full passes over the volume.
            mul_kernel: machine.kernel("np_multiply_scalar", NUMPY, elementwise_cost(22.0)),
        }
    }
}

impl Transform for RandomBrightnessAugmentation {
    fn name(&self) -> &str {
        "RandomBrightnessAugmentation"
    }

    fn apply(&self, sample: Sample, ctx: &mut TransformCtx<'_>) -> Result<Sample, PipelineError> {
        let (shape, dtype, data) = match sample {
            Sample::Tensor { shape, dtype, data } => (shape, dtype, data),
            other => {
                return Err(PipelineError::type_mismatch(
                    self.name(),
                    "a tensor sample",
                    &other,
                ))
            }
        };
        if !ctx.rng.gen_bool(self.p) {
            return Ok(Sample::Tensor { shape, dtype, data });
        }
        let factor = ctx.rng.gen_range(self.factor_range.0..=self.factor_range.1) as f32;
        let elements: usize = shape.iter().product();
        ctx.cpu.exec(self.mul_kernel, elements as f64);
        let out = data.map(|mut t| {
            if dtype == DType::F32 {
                for v in t.as_f32_mut() {
                    *v *= factor;
                }
            } else {
                for v in t.as_u8_mut() {
                    *v = (f32::from(*v) * factor).clamp(0.0, 255.0) as u8;
                }
            }
            t
        });
        Ok(Sample::Tensor {
            shape,
            dtype,
            data: out,
        })
    }
}

/// `GaussianNoise`: with probability `p`, adds element-wise Gaussian noise
/// (expensive when taken: one normal draw per voxel).
pub struct GaussianNoise {
    p: f64,
    std: f64,
    rng_kernel: KernelId,
    add_kernel: KernelId,
}

impl std::fmt::Debug for GaussianNoise {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GaussianNoise")
            .field("p", &self.p)
            .field("std", &self.std)
            .finish()
    }
}

impl GaussianNoise {
    /// Creates the transform (MLPerf default: p = 0.1, σ = 0.1).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or `std` is negative.
    #[must_use]
    pub fn new(machine: &Machine, p: f64, std: f64) -> GaussianNoise {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        assert!(std >= 0.0, "std must be non-negative");
        GaussianNoise {
            p,
            std,
            rng_kernel: machine.kernel(
                "np_random_standard_normal",
                NUMPY,
                CostCoeffs {
                    base_insts: 600.0,
                    insts_per_unit: 170.0, // per voxel: legacy-generator gaussian draws
                    uops_per_inst: 1.15,
                    ipc_base: 1.9,
                    l1_miss_per_unit: 0.01,
                    l2_miss_per_unit: 0.003,
                    llc_miss_per_unit: 0.001,
                    branches_per_unit: 4.0,
                    mispredict_rate: 0.02,
                    frontend_sensitivity: 0.45,
                },
            ),
            add_kernel: machine.kernel("np_add_arrays", NUMPY, elementwise_cost(0.8)),
        }
    }
}

impl Transform for GaussianNoise {
    fn name(&self) -> &str {
        "GaussianNoise"
    }

    fn apply(&self, sample: Sample, ctx: &mut TransformCtx<'_>) -> Result<Sample, PipelineError> {
        let (shape, dtype, data) = match sample {
            Sample::Tensor { shape, dtype, data } => (shape, dtype, data),
            other => {
                return Err(PipelineError::type_mismatch(
                    self.name(),
                    "a tensor sample",
                    &other,
                ))
            }
        };
        if !ctx.rng.gen_bool(self.p) {
            return Ok(Sample::Tensor { shape, dtype, data });
        }
        let elements: usize = shape.iter().product();
        ctx.cpu.exec(self.rng_kernel, elements as f64);
        ctx.cpu.exec(self.add_kernel, elements as f64);
        let dist = Normal::new(0.0, self.std);
        let out = data.map(|mut t| {
            if dtype == DType::F32 {
                for v in t.as_f32_mut() {
                    *v += dist.sample(ctx.rng) as f32;
                }
            }
            t
        });
        Ok(Sample::Tensor {
            shape,
            dtype,
            data: out,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_uarch::{CpuThread, MachineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (Arc<Machine>, CpuThread, StdRng) {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let cpu = CpuThread::new(Arc::clone(&machine));
        (machine, cpu, StdRng::seed_from_u64(11))
    }

    fn meta_volume(d: usize, h: usize, w: usize) -> Sample {
        Sample::tensor_meta(&[d, h, w], DType::F32)
    }

    #[test]
    fn rbc_is_bimodal_in_cost() {
        let (machine, _, _) = setup();
        let rbc = RandBalancedCrop::new(&machine, (32, 32, 32), 0.4);
        let mut cheap = 0u32;
        let mut costs = Vec::new();
        for seed in 0..200 {
            let mut cpu = CpuThread::new(Arc::clone(&machine));
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ctx = TransformCtx {
                cpu: &mut cpu,
                rng: &mut rng,
            };
            let _ = rbc.apply(meta_volume(200, 256, 256), &mut ctx);
            let ns = cpu.cursor().as_nanos();
            if ns < 100_000 {
                cheap += 1;
            }
            costs.push(ns);
        }
        // ~60% of executions take the nearly-free random-crop path.
        assert!((90..=150).contains(&cheap), "cheap path count {cheap}");
        let max = costs.iter().max().unwrap();
        let min = costs.iter().min().unwrap();
        assert!(max / (min + 1) > 100, "expected bimodal cost: {min}..{max}");
    }

    #[test]
    fn rbc_crops_to_patch_and_respects_small_volumes() {
        let (machine, mut cpu, mut rng) = setup();
        let rbc = RandBalancedCrop::new(&machine, (128, 128, 128), 0.4);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let out = rbc.apply(meta_volume(64, 300, 300), &mut ctx).unwrap();
        let Sample::Tensor { shape, .. } = out else {
            unreachable!()
        };
        assert_eq!(
            shape,
            vec![128, 128, 128],
            "shallow volumes are padded to the patch"
        );
    }

    #[test]
    fn rbc_real_crop_extracts_values() {
        let (machine, mut cpu, mut rng) = setup();
        let rbc = RandBalancedCrop::new(&machine, (2, 2, 2), 1.0);
        let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let t = Tensor::from_f32(&[4, 4, 4], data);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let out = rbc.apply(Sample::tensor(t), &mut ctx).unwrap();
        let Sample::Tensor {
            shape,
            data: Some(patch),
            ..
        } = out
        else {
            unreachable!()
        };
        assert_eq!(shape, vec![2, 2, 2]);
        assert_eq!(patch.as_f32().len(), 8);
    }

    #[test]
    fn flip_all_axes_reverses_corner() {
        let t = {
            let mut v = vec![0.0f32; 8];
            v[0] = 1.0; // corner (0,0,0)
            Tensor::from_f32(&[2, 2, 2], v)
        };
        let flipped = flip_volume(&t, &[2, 2, 2], &[true, true, true]);
        assert_eq!(flipped.as_f32()[7], 1.0);
        assert_eq!(flipped.as_f32()[0], 0.0);
    }

    #[test]
    fn flip_no_op_rate_matches_axis_probability() {
        let (machine, _, _) = setup();
        let rf = RandomFlip3d::new(&machine, 1.0 / 3.0);
        let mut noop = 0;
        for seed in 0..3000 {
            let mut cpu = CpuThread::new(Arc::clone(&machine));
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ctx = TransformCtx {
                cpu: &mut cpu,
                rng: &mut rng,
            };
            let _ = rf.apply(meta_volume(16, 16, 16), &mut ctx);
            if cpu.cursor().as_nanos() == 0 {
                noop += 1;
            }
        }
        let rate = f64::from(noop) / 3000.0;
        // (2/3)^3 ≈ 0.296, the paper's 28.6% of sub-100 µs RF executions.
        assert!((0.25..0.35).contains(&rate), "no-op rate {rate}");
    }

    #[test]
    fn cast_changes_dtype_and_is_idempotent() {
        let (machine, mut cpu, mut rng) = setup();
        let cast = Cast::new(&machine);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let out = cast
            .apply(
                Sample::tensor(Tensor::from_f32(&[2, 2, 2], vec![300.0; 8])),
                &mut ctx,
            )
            .unwrap();
        let Sample::Tensor {
            dtype,
            data: Some(t),
            ..
        } = out
        else {
            unreachable!()
        };
        assert_eq!(dtype, DType::U8);
        assert!(t.as_u8().iter().all(|&b| b == 255));
        let again = cast.apply(Sample::tensor(t), &mut ctx).unwrap();
        assert!(matches!(
            again,
            Sample::Tensor {
                dtype: DType::U8,
                ..
            }
        ));
    }

    #[test]
    fn rba_and_noise_are_usually_noops_at_p01() {
        let (machine, _, _) = setup();
        let rba = RandomBrightnessAugmentation::new(&machine, 0.1);
        let gn = GaussianNoise::new(&machine, 0.1, 0.1);
        let mut rba_noop = 0;
        let mut gn_noop = 0;
        for seed in 0..2000 {
            for (which, t) in [(&rba as &dyn Transform, 0), (&gn as &dyn Transform, 1)] {
                let mut cpu = CpuThread::new(Arc::clone(&machine));
                let mut rng = StdRng::seed_from_u64(seed * 2 + t);
                let mut ctx = TransformCtx {
                    cpu: &mut cpu,
                    rng: &mut rng,
                };
                let _ = which.apply(meta_volume(8, 8, 8), &mut ctx);
                if cpu.cursor().as_nanos() == 0 {
                    if t == 0 {
                        rba_noop += 1;
                    } else {
                        gn_noop += 1;
                    }
                }
            }
        }
        for (label, n) in [("rba", rba_noop), ("gn", gn_noop)] {
            let rate = f64::from(n) / 2000.0;
            assert!((0.85..0.95).contains(&rate), "{label} no-op rate {rate}");
        }
    }

    #[test]
    fn gaussian_noise_perturbs_values_when_applied() {
        let (machine, mut cpu, mut rng) = setup();
        let gn = GaussianNoise::new(&machine, 1.0, 0.5);
        let t = Tensor::from_f32(&[4, 4, 4], vec![0.0; 64]);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let out = gn.apply(Sample::tensor(t), &mut ctx).unwrap();
        let Sample::Tensor { data: Some(t), .. } = out else {
            unreachable!()
        };
        assert!(t.as_f32().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn non_volume_inputs_yield_typed_errors() {
        let (machine, mut cpu, mut rng) = setup();
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };

        let rbc = RandBalancedCrop::new(&machine, (2, 2, 2), 1.0);
        let err = rbc.apply(Sample::image_meta(8, 8), &mut ctx).unwrap_err();
        assert!(matches!(err, PipelineError::TypeMismatch { .. }));
        assert_eq!(err.op(), Some("RandBalancedCrop"));

        // A 2-D tensor is a tensor, but not a volume.
        let rf = RandomFlip3d::new(&machine, 0.5);
        let err = rf
            .apply(Sample::tensor_meta(&[8, 8], DType::F32), &mut ctx)
            .unwrap_err();
        assert!(matches!(err, PipelineError::ShapeMismatch { .. }));
        assert_eq!(err.op(), Some("RandomFlip"));

        let cast = Cast::new(&machine);
        let err = cast.apply(Sample::image_meta(8, 8), &mut ctx).unwrap_err();
        assert!(matches!(err, PipelineError::TypeMismatch { .. }));
    }
}
