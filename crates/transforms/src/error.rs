//! Typed errors for the preprocessing pipeline.
//!
//! Every failure reachable from `Dataset::get_item` — a transform fed the
//! wrong sample variant, a ragged batch handed to collation, a corrupt
//! record, or a deliberately injected fault — surfaces as a
//! [`PipelineError`] instead of a panic, mirroring how a PyTorch worker
//! wraps exceptions in an `ExceptionWrapper` rather than crashing the
//! interpreter.

use crate::sample::Sample;

/// An error produced while loading, transforming or collating a sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A transform received a sample variant it cannot process (e.g. an
    /// audio transform fed an image).
    TypeMismatch {
        /// The transform that rejected the sample.
        op: String,
        /// What the transform expected (e.g. `"an image sample"`).
        expected: &'static str,
        /// A description of what it actually received.
        got: String,
    },
    /// A transform received a tensor of unexpected shape or dtype.
    ShapeMismatch {
        /// The transform that rejected the tensor.
        op: String,
        /// What the transform expected.
        expected: String,
        /// A description of what it actually received.
        got: String,
    },
    /// Batch collation failed (empty batch, ragged shapes, mixed dtypes).
    Collate {
        /// Why the batch could not be collated.
        reason: String,
    },
    /// Decoding a stored record failed (a corrupt file in the dataset).
    Decode {
        /// The dataset index of the corrupt record.
        index: u64,
        /// Why the decode failed.
        reason: String,
    },
    /// A fault-injection plan deliberately failed this sample.
    Injected {
        /// The operation the injected error reports.
        op: String,
        /// The dataset index of the failed sample.
        index: u64,
    },
    /// A worker panicked while fetching the batch. The native backend
    /// catches the unwind and ships this in-band — the analog of a
    /// PyTorch worker's `ExceptionWrapper` around an unexpected crash —
    /// instead of poisoning shared queues and cascading the panic into
    /// the consumer.
    WorkerPanic {
        /// The panic payload's message, when it carried one.
        reason: String,
    },
}

impl PipelineError {
    /// Convenience constructor for the common "wrong sample variant" case.
    #[must_use]
    pub fn type_mismatch(op: &str, expected: &'static str, got: &Sample) -> PipelineError {
        PipelineError::TypeMismatch {
            op: op.to_string(),
            expected,
            got: got.kind_name(),
        }
    }

    /// The operation name the error is attributed to, when it has one.
    #[must_use]
    pub fn op(&self) -> Option<&str> {
        match self {
            PipelineError::TypeMismatch { op, .. }
            | PipelineError::ShapeMismatch { op, .. }
            | PipelineError::Injected { op, .. } => Some(op),
            PipelineError::Collate { .. }
            | PipelineError::Decode { .. }
            | PipelineError::WorkerPanic { .. } => None,
        }
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::TypeMismatch { op, expected, got } => {
                write!(f, "{op} expects {expected}, got {got}")
            }
            PipelineError::ShapeMismatch { op, expected, got } => {
                write!(f, "{op} expects {expected}, got {got}")
            }
            PipelineError::Collate { reason } => write!(f, "collate failed: {reason}"),
            PipelineError::Decode { index, reason } => {
                write!(f, "decoding sample {index} failed: {reason}")
            }
            PipelineError::Injected { op, index } => {
                write!(f, "injected fault in {op} on sample {index}")
            }
            PipelineError::WorkerPanic { reason } => {
                write!(f, "worker panicked during fetch: {reason}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_op_and_sample() {
        let e = PipelineError::Injected {
            op: "Decode".into(),
            index: 42,
        };
        assert_eq!(e.to_string(), "injected fault in Decode on sample 42");
        assert_eq!(e.op(), Some("Decode"));
    }

    #[test]
    fn type_mismatch_describes_the_actual_sample() {
        let sample = Sample::image_meta(480, 640);
        let e = PipelineError::type_mismatch("ToTensor", "an image sample", &sample);
        let msg = e.to_string();
        assert!(msg.contains("ToTensor"), "{msg}");
        assert!(msg.contains("480"), "{msg}");
    }

    #[test]
    fn collate_and_decode_have_no_op_attribution() {
        assert_eq!(
            PipelineError::Collate {
                reason: "empty".into()
            }
            .op(),
            None
        );
        assert_eq!(
            PipelineError::Decode {
                index: 0,
                reason: "bad".into()
            }
            .op(),
            None
        );
    }
}
