//! # lotus-transforms — ML preprocessing transforms
//!
//! The torchvision/numpy-style transform library used by the paper's three
//! MLPerf pipelines. Each transform has a *real* implementation operating
//! on materialized [`lotus_data::Image`]/[`lotus_data::Tensor`] payloads
//! **and** charges named native-kernel costs to a
//! [`lotus_uarch::CpuThread`], so the same code path serves unit tests,
//! examples, LotusMap isolation runs and the large-scale (cost-only)
//! pipeline simulations.
//!
//! * IC / OD image ops: [`RandomResizedCrop`], [`Resize`],
//!   [`RandomHorizontalFlip`], [`ToTensor`], [`Normalize`]
//! * IS volume ops: [`RandBalancedCrop`], [`RandomFlip3d`], [`Cast`],
//!   [`RandomBrightnessAugmentation`], [`GaussianNoise`]
//! * Audio ops (extension workload): [`Resample`], [`MelSpectrogram`],
//!   [`SpecAugment`]
//! * Batch assembly: [`Collate`]
//! * Chaining + the LotusTrace \[T3\] hook: [`Compose`] /
//!   [`TransformObserver`]
//!
//! ```
//! use std::sync::Arc;
//! use lotus_transforms::{Compose, RandomResizedCrop, Sample, ToTensor, TransformCtx};
//! use lotus_uarch::{CpuThread, Machine, MachineConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let machine = Machine::new(MachineConfig::cloudlab_c4130());
//! let pipeline = Compose::new(&machine, vec![
//!     Box::new(RandomResizedCrop::new(&machine, 224)),
//!     Box::new(ToTensor::new(&machine)),
//! ]);
//! let mut cpu = CpuThread::new(Arc::clone(&machine));
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut ctx = TransformCtx { cpu: &mut cpu, rng: &mut rng };
//! let out = pipeline
//!     .apply(Sample::image_meta(500, 375), &mut ctx)
//!     .expect("an image sample satisfies every transform in the chain");
//! assert_eq!(out.bytes(), 3 * 224 * 224 * 4);
//! ```

#![warn(missing_docs)]
// The whole workspace is safe Rust; determinism and auditability both
// lean on it. Gate any future exception through a crate-level decision.
#![deny(unsafe_code)]

mod audio_ops;
mod collate;
mod error;
mod image_ops;
mod sample;
mod transform;
mod volume_ops;

pub use audio_ops::{MelSpectrogram, PadTrim, Resample, SpecAugment};
pub use collate::Collate;
pub use error::PipelineError;
pub use image_ops::{
    resize_bilinear, resize_bilinear_ref, Normalize, RandomHorizontalFlip, RandomResizedCrop,
    Resize, ToTensor,
};
pub use sample::{Batch, Sample};
pub use transform::{
    python_interp_kernel, Compose, NullObserver, Transform, TransformCtx, TransformObserver,
};
pub use volume_ops::{
    Cast, GaussianNoise, RandBalancedCrop, RandomBrightnessAugmentation, RandomFlip3d,
};
