//! Values flowing through a preprocessing pipeline.

use lotus_data::{DType, Image, Tensor};

/// A sample at some stage of a preprocessing pipeline.
///
/// Every sample carries its *geometry* (dimensions, dtype) so the cost
/// model can run without materialized data; the `data` field optionally
/// carries real pixels/values for the real-compute path (examples, codec
/// round-trips, LotusMap isolation runs).
#[derive(Debug, Clone, PartialEq)]
pub enum Sample {
    /// A decoded image (HWC, u8).
    Image {
        /// Height in pixels.
        height: usize,
        /// Width in pixels.
        width: usize,
        /// Real pixels, if materialized.
        data: Option<Image>,
    },
    /// A tensor (CHW after `ToTensor`, or a 3-D/4-D volume).
    Tensor {
        /// Tensor shape.
        shape: Vec<usize>,
        /// Element type.
        dtype: DType,
        /// Real values, if materialized.
        data: Option<Tensor>,
    },
}

impl Sample {
    /// A cost-only image sample.
    #[must_use]
    pub fn image_meta(height: usize, width: usize) -> Sample {
        Sample::Image {
            height,
            width,
            data: None,
        }
    }

    /// A materialized image sample.
    #[must_use]
    pub fn image(image: Image) -> Sample {
        Sample::Image {
            height: image.height(),
            width: image.width(),
            data: Some(image),
        }
    }

    /// A cost-only tensor sample.
    #[must_use]
    pub fn tensor_meta(shape: &[usize], dtype: DType) -> Sample {
        Sample::Tensor {
            shape: shape.to_vec(),
            dtype,
            data: None,
        }
    }

    /// A materialized tensor sample.
    #[must_use]
    pub fn tensor(tensor: Tensor) -> Sample {
        Sample::Tensor {
            shape: tensor.shape().to_vec(),
            dtype: tensor.dtype(),
            data: Some(tensor),
        }
    }

    /// Logical element count (pixels × channels, or tensor elements).
    #[must_use]
    pub fn elements(&self) -> u64 {
        match self {
            Sample::Image { height, width, .. } => (height * width * Image::CHANNELS) as u64,
            Sample::Tensor { shape, .. } => shape.iter().product::<usize>() as u64,
        }
    }

    /// Payload size in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        match self {
            Sample::Image { .. } => self.elements(),
            Sample::Tensor { dtype, .. } => self.elements() * dtype.size_bytes() as u64,
        }
    }

    /// A short human-readable description of the sample variant, used in
    /// [`crate::PipelineError`] messages.
    #[must_use]
    pub fn kind_name(&self) -> String {
        match self {
            Sample::Image { height, width, .. } => format!("an image sample ({height}x{width})"),
            Sample::Tensor { shape, dtype, .. } => {
                format!("a tensor sample ({shape:?}, {dtype:?})")
            }
        }
    }

    /// True if real data is attached.
    #[must_use]
    pub fn is_materialized(&self) -> bool {
        match self {
            Sample::Image { data, .. } => data.is_some(),
            Sample::Tensor { data, .. } => data.is_some(),
        }
    }
}

/// A collated batch ready for transfer to an accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Number of samples collated.
    pub len: usize,
    /// Stacked tensor shape (leading batch dimension included).
    pub shape: Vec<usize>,
    /// Total payload bytes.
    pub bytes: u64,
    /// Real stacked values, if every input was materialized.
    pub data: Option<Tensor>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_geometry_and_bytes() {
        let s = Sample::image_meta(10, 20);
        assert_eq!(s.elements(), 600);
        assert_eq!(s.bytes(), 600);
        assert!(!s.is_materialized());
    }

    #[test]
    fn f32_tensor_bytes_are_4x_elements() {
        let s = Sample::tensor_meta(&[3, 224, 224], DType::F32);
        assert_eq!(s.elements(), 3 * 224 * 224);
        assert_eq!(s.bytes(), 3 * 224 * 224 * 4);
    }

    #[test]
    fn materialized_samples_report_real_geometry() {
        let img = Image::filled(4, 6, [1, 2, 3]);
        let s = Sample::image(img);
        assert!(s.is_materialized());
        assert_eq!(s.elements(), 72);
    }
}
