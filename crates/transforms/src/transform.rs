//! The transform trait and `Compose`, mirroring
//! `torchvision.transforms.Compose`.

use lotus_sim::{ReadOutcome, Span, Time};
use lotus_uarch::{CostCoeffs, CpuThread, KernelId, Machine};
use rand::rngs::StdRng;

use crate::error::PipelineError;
use crate::sample::Sample;

/// Execution context handed to transforms: the simulated CPU to run
/// kernels on and a per-worker RNG for random transforms.
#[derive(Debug)]
pub struct TransformCtx<'a> {
    /// The hardware thread executing the preprocessing.
    pub cpu: &'a mut CpuThread,
    /// Deterministic per-worker randomness.
    pub rng: &'a mut StdRng,
}

/// One preprocessing operation (the analog of a torchvision transform
/// class with a `__call__` method).
pub trait Transform: Send + Sync {
    /// The Python-level class name, as LotusTrace would log it
    /// (`t.__class__.__name__` in the paper's Listing 3).
    fn name(&self) -> &str;

    /// Applies the transform, charging kernel costs to `ctx.cpu` and, when
    /// the sample is materialized, computing real output data.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] when the sample is not of the variant,
    /// shape or dtype the transform requires — the analog of a Python
    /// exception escaping a transform's `__call__` inside a worker.
    fn apply(&self, sample: Sample, ctx: &mut TransformCtx<'_>) -> Result<Sample, PipelineError>;
}

/// Observer of per-transform timing, the hook LotusTrace installs inside
/// `Compose.__call__` (\[T3\] in the paper).
pub trait TransformObserver {
    /// Called after each transform with its name, start time and elapsed
    /// virtual time.
    fn on_transform(&mut self, name: &str, start: Time, elapsed: Span);

    /// Called after each storage read the dataset's fetch path issues
    /// (the \[T0\] hook): the instant the read was issued and what the
    /// storage hierarchy observed serving it. Storage reads happen
    /// *inside* the "Loader" span reported through
    /// [`on_transform`](Self::on_transform). Defaults to ignoring the
    /// event, so observers that only care about transform timing — and
    /// backends without a simulated storage tier — need not implement it.
    fn on_storage_read(&mut self, start: Time, read: &ReadOutcome) {
        let _ = (start, read);
    }
}

/// A no-op observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl TransformObserver for NullObserver {
    fn on_transform(&mut self, _name: &str, _start: Time, _elapsed: Span) {}
}

/// Shared Python-interpreter overhead kernel: every transform call spends
/// some time in `PyEval_EvalFrameDefault`, which therefore maps to *many*
/// Python operations — exactly the multi-op C function whose hardware
/// metrics LotusMap must split by elapsed-time weights (§IV-B).
#[must_use]
pub fn python_interp_kernel(machine: &Machine) -> KernelId {
    machine.kernel(
        "PyEval_EvalFrameDefault",
        "libpython3.10.so.1.0",
        CostCoeffs {
            base_insts: 9_000.0,
            insts_per_unit: 0.0,
            uops_per_inst: 1.25,
            ipc_base: 1.2,
            l1_miss_per_unit: 0.0,
            l2_miss_per_unit: 0.0,
            llc_miss_per_unit: 0.0,
            branches_per_unit: 0.0,
            mispredict_rate: 0.0,
            frontend_sensitivity: 0.95,
        },
    )
}

/// A chain of transforms applied in order, with optional per-transform
/// timing observation (`torchvision.transforms.Compose` with the paper's
/// `log_transform_elapsed_time` instrumentation point).
pub struct Compose {
    transforms: Vec<Box<dyn Transform>>,
    python_overhead: KernelId,
}

impl std::fmt::Debug for Compose {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compose")
            .field(
                "transforms",
                &self.transforms.iter().map(|t| t.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Compose {
    /// Creates a compose chain.
    #[must_use]
    pub fn new(machine: &Machine, transforms: Vec<Box<dyn Transform>>) -> Compose {
        Compose {
            transforms,
            python_overhead: python_interp_kernel(machine),
        }
    }

    /// Names of the chained transforms, in order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.transforms.iter().map(|t| t.name()).collect()
    }

    /// Number of transforms in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transforms.len()
    }

    /// True if the chain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transforms.is_empty()
    }

    /// Applies the whole chain without observation.
    ///
    /// # Errors
    ///
    /// Returns the first [`PipelineError`] raised by a chained transform.
    pub fn apply(
        &self,
        sample: Sample,
        ctx: &mut TransformCtx<'_>,
    ) -> Result<Sample, PipelineError> {
        self.apply_observed(sample, ctx, &mut NullObserver)
    }

    /// Applies the whole chain, reporting each transform's `(name, start,
    /// elapsed)` to `observer` — the paper's Listing 3 instrumentation.
    ///
    /// # Errors
    ///
    /// Returns the first [`PipelineError`] raised by a chained transform;
    /// transforms after the failing one are not run, mirroring Python
    /// exception propagation out of `Compose.__call__`.
    pub fn apply_observed(
        &self,
        mut sample: Sample,
        ctx: &mut TransformCtx<'_>,
        observer: &mut dyn TransformObserver,
    ) -> Result<Sample, PipelineError> {
        for t in &self.transforms {
            let start = ctx.cpu.cursor();
            // Interpreter dispatch overhead for the Python-level call.
            ctx.cpu.exec(self.python_overhead, 0.0);
            // Native kernel spans observed inside this transform attribute
            // to its Python-level op name.
            ctx.cpu.set_op_context(t.name());
            sample = t.apply(sample, ctx)?;
            let elapsed = ctx.cpu.cursor().since(start);
            observer.on_transform(t.name(), start, elapsed);
        }
        Ok(sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_uarch::MachineConfig;
    use rand::SeedableRng;
    use std::sync::Arc;

    struct Noop(&'static str);
    impl Transform for Noop {
        fn name(&self) -> &str {
            self.0
        }
        fn apply(
            &self,
            sample: Sample,
            _ctx: &mut TransformCtx<'_>,
        ) -> Result<Sample, PipelineError> {
            Ok(sample)
        }
    }

    #[test]
    fn compose_applies_in_order_and_observes() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let compose = Compose::new(&machine, vec![Box::new(Noop("A")), Box::new(Noop("B"))]);
        assert_eq!(compose.names(), ["A", "B"]);
        assert_eq!(compose.len(), 2);

        let mut cpu = CpuThread::new(Arc::clone(&machine));
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let mut seen = Vec::new();
        struct Rec<'a>(&'a mut Vec<(String, u64)>);
        impl TransformObserver for Rec<'_> {
            fn on_transform(&mut self, name: &str, _start: Time, elapsed: Span) {
                self.0.push((name.to_string(), elapsed.as_nanos()));
            }
        }
        let out = compose
            .apply_observed(Sample::image_meta(8, 8), &mut ctx, &mut Rec(&mut seen))
            .unwrap();
        assert!(matches!(out, Sample::Image { .. }));
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].0, "A");
        assert_eq!(seen[1].0, "B");
        // Even a no-op transform pays interpreter dispatch.
        assert!(seen[0].1 > 0);
    }
}
