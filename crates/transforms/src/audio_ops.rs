//! Audio-domain transforms — the repository's extension pipeline for the
//! audio-classification workload class the paper's introduction names as
//! preprocessing-bound (via Mohan et al. [1]).
//!
//! Real implementations run on 1-D f32 waveform tensors using the DSP
//! substrate in [`lotus_codec::dsp`]; costs are charged as torchaudio-like
//! native kernels.

use lotus_codec::dsp::{hann_window, power_spectrum, MelFilterbank};
use lotus_data::{DType, Tensor};
use lotus_uarch::{CostCoeffs, KernelId, Machine};
use rand::Rng;

use crate::error::PipelineError;
use crate::sample::Sample;
use crate::transform::{Transform, TransformCtx};

const LIBSAMPLERATE: &str = "libsamplerate.so.0";
const LIBTORCH: &str = "libtorch_cpu.so";
const OPENBLAS: &str = "libopenblas.so.0";

fn waveform_len(op: &str, sample: &Sample) -> Result<usize, PipelineError> {
    match sample {
        Sample::Tensor { shape, dtype, .. } if shape.len() == 1 && *dtype == DType::F32 => {
            Ok(shape[0])
        }
        other => Err(PipelineError::type_mismatch(
            op,
            "a 1-D f32 waveform",
            other,
        )),
    }
}

/// `torchaudio.transforms.Resample`: sinc-interpolated sample-rate
/// conversion (libsamplerate's `src_process`).
pub struct Resample {
    from_hz: u32,
    to_hz: u32,
    kernel: KernelId,
}

impl std::fmt::Debug for Resample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resample")
            .field("from", &self.from_hz)
            .field("to", &self.to_hz)
            .finish()
    }
}

impl Resample {
    /// Creates a resampler from `from_hz` to `to_hz`.
    ///
    /// # Panics
    ///
    /// Panics if either rate is zero.
    #[must_use]
    pub fn new(machine: &Machine, from_hz: u32, to_hz: u32) -> Resample {
        assert!(from_hz > 0 && to_hz > 0, "sample rates must be positive");
        Resample {
            from_hz,
            to_hz,
            kernel: machine.kernel(
                "src_process",
                LIBSAMPLERATE,
                CostCoeffs {
                    base_insts: 2_000.0,
                    insts_per_unit: 70.0, // per output sample (sinc taps)
                    uops_per_inst: 1.1,
                    ipc_base: 2.6,
                    l1_miss_per_unit: 0.02,
                    l2_miss_per_unit: 0.004,
                    llc_miss_per_unit: 0.001,
                    branches_per_unit: 2.0,
                    mispredict_rate: 0.01,
                    frontend_sensitivity: 0.2,
                },
            ),
        }
    }
}

impl Transform for Resample {
    fn name(&self) -> &str {
        "Resample"
    }

    fn apply(&self, sample: Sample, ctx: &mut TransformCtx<'_>) -> Result<Sample, PipelineError> {
        let in_len = waveform_len(self.name(), &sample)?;
        let out_len = (in_len as u64 * u64::from(self.to_hz) / u64::from(self.from_hz)) as usize;
        ctx.cpu.exec(self.kernel, out_len as f64);
        let data = match sample {
            Sample::Tensor { data: Some(t), .. } => {
                let src = t.as_f32();
                let ratio = in_len as f64 / out_len.max(1) as f64;
                let out: Vec<f32> = (0..out_len)
                    .map(|i| {
                        let pos = i as f64 * ratio;
                        let idx = (pos as usize).min(in_len.saturating_sub(2));
                        let frac = (pos - idx as f64) as f32;
                        src[idx] * (1.0 - frac) + src[(idx + 1).min(in_len - 1)] * frac
                    })
                    .collect();
                Some(Tensor::from_f32(&[out_len], out))
            }
            _ => None,
        };
        Ok(Sample::Tensor {
            shape: vec![out_len],
            dtype: DType::F32,
            data,
        })
    }
}

/// `torchaudio.transforms.MelSpectrogram`: STFT power spectra through a
/// mel filterbank, producing a `[n_mels × frames]` feature tensor.
pub struct MelSpectrogram {
    n_fft: usize,
    hop: usize,
    filterbank: MelFilterbank,
    fft_kernel: KernelId,
    matmul_kernel: KernelId,
}

impl std::fmt::Debug for MelSpectrogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MelSpectrogram")
            .field("n_fft", &self.n_fft)
            .field("hop", &self.hop)
            .field("n_mels", &self.filterbank.n_mels())
            .finish()
    }
}

impl MelSpectrogram {
    /// Creates the transform.
    ///
    /// # Panics
    ///
    /// Panics unless `n_fft` is a power of two and `0 < hop ≤ n_fft`.
    #[must_use]
    pub fn new(
        machine: &Machine,
        sample_rate: u32,
        n_fft: usize,
        hop: usize,
        n_mels: usize,
    ) -> MelSpectrogram {
        assert!(n_fft.is_power_of_two(), "n_fft must be a power of two");
        assert!(hop > 0 && hop <= n_fft, "hop must be in (0, n_fft]");
        MelSpectrogram {
            n_fft,
            hop,
            filterbank: MelFilterbank::new(f64::from(sample_rate), n_fft, n_mels),
            fft_kernel: machine.kernel(
                "at_native_fft_r2c_kernel",
                LIBTORCH,
                CostCoeffs {
                    base_insts: 1_200.0,
                    insts_per_unit: 8.0, // per butterfly (n·log n units)
                    uops_per_inst: 1.1,
                    ipc_base: 2.7,
                    l1_miss_per_unit: 0.015,
                    l2_miss_per_unit: 0.003,
                    llc_miss_per_unit: 0.001,
                    branches_per_unit: 0.3,
                    mispredict_rate: 0.005,
                    frontend_sensitivity: 0.25,
                },
            ),
            matmul_kernel: machine.kernel(
                "cblas_sgemm",
                OPENBLAS,
                CostCoeffs {
                    base_insts: 800.0,
                    insts_per_unit: 2.2, // per multiply-accumulate
                    uops_per_inst: 1.05,
                    ipc_base: 3.2,
                    l1_miss_per_unit: 0.01,
                    l2_miss_per_unit: 0.002,
                    llc_miss_per_unit: 0.0006,
                    branches_per_unit: 0.05,
                    mispredict_rate: 0.002,
                    frontend_sensitivity: 0.1,
                },
            ),
        }
    }

    /// Number of STFT frames for a waveform of `len` samples (the signal
    /// is zero-padded to at least one frame).
    #[must_use]
    pub fn frames_for(&self, len: usize) -> usize {
        if len <= self.n_fft {
            1
        } else {
            1 + (len - self.n_fft).div_ceil(self.hop)
        }
    }
}

impl Transform for MelSpectrogram {
    fn name(&self) -> &str {
        "MelSpectrogram"
    }

    fn apply(&self, sample: Sample, ctx: &mut TransformCtx<'_>) -> Result<Sample, PipelineError> {
        let len = waveform_len(self.name(), &sample)?;
        let frames = self.frames_for(len);
        let n_mels = self.filterbank.n_mels();
        let log2n = self.n_fft.trailing_zeros() as f64;
        ctx.cpu
            .exec(self.fft_kernel, frames as f64 * self.n_fft as f64 * log2n);
        ctx.cpu.exec(
            self.matmul_kernel,
            (frames * n_mels * self.filterbank.n_bins()) as f64,
        );
        let out_shape = vec![n_mels, frames];
        let data = match sample {
            Sample::Tensor { data: Some(t), .. } => {
                let src = t.as_f32();
                let window = hann_window(self.n_fft);
                let mut out = vec![0.0f32; n_mels * frames];
                for frame in 0..frames {
                    let start = frame * self.hop;
                    let slice: Vec<f64> = (0..self.n_fft)
                        .map(|i| src.get(start + i).copied().unwrap_or(0.0) as f64)
                        .collect();
                    let mel = self.filterbank.apply(&power_spectrum(&slice, &window));
                    for (m, &v) in mel.iter().enumerate() {
                        out[m * frames + frame] = v as f32;
                    }
                }
                Some(Tensor::from_f32(&out_shape, out))
            }
            _ => None,
        };
        Ok(Sample::Tensor {
            shape: out_shape,
            dtype: DType::F32,
            data,
        })
    }
}

/// Pads (with zeros) or trims the waveform to a fixed length — the
/// standard torchaudio practice that keeps batches rectangular despite
/// variable clip durations.
pub struct PadTrim {
    target_len: usize,
    kernel: KernelId,
}

impl std::fmt::Debug for PadTrim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PadTrim")
            .field("target_len", &self.target_len)
            .finish()
    }
}

impl PadTrim {
    /// Creates the transform.
    ///
    /// # Panics
    ///
    /// Panics if `target_len == 0`.
    #[must_use]
    pub fn new(machine: &Machine, target_len: usize) -> PadTrim {
        assert!(target_len > 0, "target length must be positive");
        PadTrim {
            target_len,
            kernel: machine.kernel(
                "at_native_constant_pad_nd",
                LIBTORCH,
                CostCoeffs::streaming_default(),
            ),
        }
    }
}

impl Transform for PadTrim {
    fn name(&self) -> &str {
        "PadTrim"
    }

    fn apply(&self, sample: Sample, ctx: &mut TransformCtx<'_>) -> Result<Sample, PipelineError> {
        let len = waveform_len(self.name(), &sample)?;
        ctx.cpu.exec(self.kernel, self.target_len as f64 * 4.0); // f32 bytes
        let data = match sample {
            Sample::Tensor { data: Some(t), .. } => {
                let src = t.as_f32();
                let mut out = vec![0.0f32; self.target_len];
                let copy = len.min(self.target_len);
                out[..copy].copy_from_slice(&src[..copy]);
                Some(Tensor::from_f32(&[self.target_len], out))
            }
            _ => None,
        };
        Ok(Sample::Tensor {
            shape: vec![self.target_len],
            dtype: DType::F32,
            data,
        })
    }
}

/// SpecAugment-style masking: zeroes one random time strip and one random
/// frequency strip of the spectrogram.
pub struct SpecAugment {
    max_time_frames: usize,
    max_freq_bands: usize,
    kernel: KernelId,
}

impl std::fmt::Debug for SpecAugment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpecAugment")
            .field("max_time", &self.max_time_frames)
            .field("max_freq", &self.max_freq_bands)
            .finish()
    }
}

impl SpecAugment {
    /// Creates the transform with maximum mask extents.
    #[must_use]
    pub fn new(machine: &Machine, max_time_frames: usize, max_freq_bands: usize) -> SpecAugment {
        SpecAugment {
            max_time_frames,
            max_freq_bands,
            kernel: machine.kernel(
                "at_native_index_fill_kernel",
                LIBTORCH,
                CostCoeffs {
                    base_insts: 400.0,
                    insts_per_unit: 0.6, // per masked element
                    ..CostCoeffs::compute_default()
                },
            ),
        }
    }
}

impl Transform for SpecAugment {
    fn name(&self) -> &str {
        "SpecAugment"
    }

    fn apply(&self, sample: Sample, ctx: &mut TransformCtx<'_>) -> Result<Sample, PipelineError> {
        let (shape, dtype, data) = match sample {
            Sample::Tensor { shape, dtype, data } => (shape, dtype, data),
            other => {
                return Err(PipelineError::type_mismatch(
                    self.name(),
                    "a spectrogram tensor",
                    &other,
                ))
            }
        };
        if shape.len() != 2 {
            return Err(PipelineError::ShapeMismatch {
                op: self.name().to_string(),
                expected: "[n_mels x frames]".to_string(),
                got: format!("{shape:?}"),
            });
        }
        let (mels, frames) = (shape[0], shape[1]);
        let t_width = ctx.rng.gen_range(0..=self.max_time_frames.min(frames));
        let f_width = ctx.rng.gen_range(0..=self.max_freq_bands.min(mels));
        let t_start = ctx.rng.gen_range(0..=frames - t_width);
        let f_start = ctx.rng.gen_range(0..=mels - f_width);
        let masked = t_width * mels + f_width * frames;
        if masked > 0 {
            ctx.cpu.exec(self.kernel, masked as f64);
        }
        let data = data.map(|mut t| {
            {
                let v = t.as_f32_mut();
                for m in 0..mels {
                    for f in t_start..t_start + t_width {
                        v[m * frames + f] = 0.0;
                    }
                }
                for m in f_start..f_start + f_width {
                    for f in 0..frames {
                        v[m * frames + f] = 0.0;
                    }
                }
            }
            t
        });
        Ok(Sample::Tensor { shape, dtype, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_uarch::{CpuThread, MachineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (Arc<Machine>, CpuThread, StdRng) {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let cpu = CpuThread::new(Arc::clone(&machine));
        (machine, cpu, StdRng::seed_from_u64(4))
    }

    fn tone(len: usize, hz: f64, sr: f64) -> Tensor {
        let v: Vec<f32> = (0..len)
            .map(|i| (2.0 * std::f64::consts::PI * hz * i as f64 / sr).sin() as f32)
            .collect();
        Tensor::from_f32(&[len], v)
    }

    #[test]
    fn resample_scales_the_length() {
        let (machine, mut cpu, mut rng) = setup();
        let rs = Resample::new(&machine, 22_050, 16_000);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let out = rs
            .apply(Sample::tensor(tone(22_050, 440.0, 22_050.0)), &mut ctx)
            .unwrap();
        let Sample::Tensor {
            shape,
            data: Some(t),
            ..
        } = out
        else {
            unreachable!()
        };
        assert_eq!(shape, vec![16_000]);
        assert_eq!(t.as_f32().len(), 16_000);
        assert!(cpu.cursor().as_nanos() > 0);
    }

    #[test]
    fn mel_spectrogram_shape_and_tone_localization() {
        let (machine, mut cpu, mut rng) = setup();
        let mel = MelSpectrogram::new(&machine, 16_000, 1024, 512, 64);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let out = mel
            .apply(Sample::tensor(tone(16_000, 2_000.0, 16_000.0)), &mut ctx)
            .unwrap();
        let Sample::Tensor {
            shape,
            data: Some(t),
            ..
        } = out
        else {
            unreachable!()
        };
        assert_eq!(shape[0], 64);
        assert_eq!(shape[1], mel.frames_for(16_000));
        // The 2 kHz tone concentrates energy in a mid-high band.
        let frames = shape[1];
        let band_energy: Vec<f32> = (0..64)
            .map(|m| t.as_f32()[m * frames..(m + 1) * frames].iter().sum())
            .collect();
        let peak = band_energy
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((28..=40).contains(&peak), "peak band {peak}");
    }

    #[test]
    fn mel_spectrogram_meta_path_matches_real_geometry() {
        let (machine, _, _) = setup();
        let mel = MelSpectrogram::new(&machine, 16_000, 1024, 512, 64);
        let mut cpu_a = CpuThread::new(Arc::clone(&machine));
        let mut cpu_b = CpuThread::new(Arc::clone(&machine));
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        let meta = mel
            .apply(
                Sample::tensor_meta(&[16_000], DType::F32),
                &mut TransformCtx {
                    cpu: &mut cpu_a,
                    rng: &mut rng_a,
                },
            )
            .unwrap();
        let real = mel
            .apply(
                Sample::tensor(tone(16_000, 440.0, 16_000.0)),
                &mut TransformCtx {
                    cpu: &mut cpu_b,
                    rng: &mut rng_b,
                },
            )
            .unwrap();
        let (Sample::Tensor { shape: sa, .. }, Sample::Tensor { shape: sb, .. }) = (meta, real)
        else {
            unreachable!()
        };
        assert_eq!(sa, sb);
        assert_eq!(cpu_a.cursor(), cpu_b.cursor(), "identical charged cost");
    }

    #[test]
    fn pad_trim_fixes_the_length() {
        let (machine, mut cpu, mut rng) = setup();
        let pt = PadTrim::new(&machine, 1_000);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let short = pt
            .apply(Sample::tensor(tone(600, 100.0, 16_000.0)), &mut ctx)
            .unwrap();
        let Sample::Tensor {
            shape,
            data: Some(t),
            ..
        } = short
        else {
            unreachable!()
        };
        assert_eq!(shape, vec![1_000]);
        assert!(
            t.as_f32()[600..].iter().all(|&v| v == 0.0),
            "padding is silence"
        );
        let long = pt
            .apply(Sample::tensor(tone(5_000, 100.0, 16_000.0)), &mut ctx)
            .unwrap();
        assert!(matches!(long, Sample::Tensor { ref shape, .. } if shape == &vec![1_000]));
    }

    #[test]
    fn spec_augment_zeroes_strips() {
        let (machine, mut cpu, mut rng) = setup();
        let aug = SpecAugment::new(&machine, 8, 8);
        let t = Tensor::from_f32(&[16, 32], vec![1.0; 16 * 32]);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };
        let out = aug.apply(Sample::tensor(t), &mut ctx).unwrap();
        let Sample::Tensor { data: Some(t), .. } = out else {
            unreachable!()
        };
        let zeros = t.as_f32().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 0, "some cells must be masked");
        assert!(zeros < 16 * 32, "not everything");
    }

    #[test]
    fn non_waveform_inputs_yield_typed_errors() {
        let (machine, mut cpu, mut rng) = setup();
        let rs = Resample::new(&machine, 22_050, 16_000);
        let aug = SpecAugment::new(&machine, 8, 8);
        let mut ctx = TransformCtx {
            cpu: &mut cpu,
            rng: &mut rng,
        };

        // An image is not a waveform.
        let err = rs.apply(Sample::image_meta(8, 8), &mut ctx).unwrap_err();
        assert!(matches!(err, PipelineError::TypeMismatch { ref op, .. } if op == "Resample"));

        // A 2-D tensor is not a waveform either.
        let err = rs
            .apply(Sample::tensor_meta(&[4, 4], DType::F32), &mut ctx)
            .unwrap_err();
        assert!(matches!(err, PipelineError::TypeMismatch { .. }));

        // SpecAugment on a 1-D tensor: wrong rank.
        let err = aug
            .apply(Sample::tensor_meta(&[64], DType::F32), &mut ctx)
            .unwrap_err();
        assert!(matches!(err, PipelineError::ShapeMismatch { ref op, .. } if op == "SpecAugment"));
    }

    #[test]
    fn frames_for_covers_short_and_long_signals() {
        let (machine, _, _) = setup();
        let mel = MelSpectrogram::new(&machine, 16_000, 1024, 512, 32);
        assert_eq!(mel.frames_for(100), 1);
        assert_eq!(mel.frames_for(1024), 1);
        assert_eq!(mel.frames_for(1025), 2);
        assert_eq!(
            mel.frames_for(16_000),
            1 + (16_000usize - 1024).div_ceil(512)
        );
    }
}
