//! RGB ↔ YCbCr conversion and 4:2:0 chroma resampling.

/// A planar YCbCr image with 4:2:0 chroma subsampling.
///
/// Luma is full resolution; Cb/Cr are half resolution in both axes
/// (rounded up).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanarYcc {
    /// Luma height (pixels).
    pub height: usize,
    /// Luma width (pixels).
    pub width: usize,
    /// Full-resolution luma plane.
    pub y: Vec<u8>,
    /// Quarter-resolution blue-difference plane.
    pub cb: Vec<u8>,
    /// Quarter-resolution red-difference plane.
    pub cr: Vec<u8>,
}

impl PlanarYcc {
    /// Chroma plane width.
    #[must_use]
    pub fn chroma_width(&self) -> usize {
        self.width.div_ceil(2)
    }

    /// Chroma plane height.
    #[must_use]
    pub fn chroma_height(&self) -> usize {
        self.height.div_ceil(2)
    }
}

/// Converts one RGB pixel to YCbCr (BT.601 full range, as libjpeg's
/// `rgb_ycc_convert`).
#[must_use]
pub fn rgb_to_ycc(rgb: [u8; 3]) -> [u8; 3] {
    let (r, g, b) = (f64::from(rgb[0]), f64::from(rgb[1]), f64::from(rgb[2]));
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = -0.168_736 * r - 0.331_264 * g + 0.5 * b + 128.0;
    let cr = 0.5 * r - 0.418_688 * g - 0.081_312 * b + 128.0;
    [clamp_u8(y), clamp_u8(cb), clamp_u8(cr)]
}

/// Converts one YCbCr pixel back to RGB (libjpeg's `ycc_rgb_convert`).
#[must_use]
pub fn ycc_to_rgb(ycc: [u8; 3]) -> [u8; 3] {
    let (y, cb, cr) = (
        f64::from(ycc[0]),
        f64::from(ycc[1]) - 128.0,
        f64::from(ycc[2]) - 128.0,
    );
    let r = y + 1.402 * cr;
    let g = y - 0.344_136 * cb - 0.714_136 * cr;
    let b = y + 1.772 * cb;
    [clamp_u8(r), clamp_u8(g), clamp_u8(b)]
}

fn clamp_u8(v: f64) -> u8 {
    v.round().clamp(0.0, 255.0) as u8
}

/// Converts an interleaved RGB buffer to planar 4:2:0 YCbCr, averaging
/// each 2×2 chroma neighbourhood (the encoder's downsample).
///
/// # Panics
///
/// Panics if `rgb.len() != height * width * 3`.
#[must_use]
pub fn rgb_to_planar_420(rgb: &[u8], height: usize, width: usize) -> PlanarYcc {
    assert_eq!(rgb.len(), height * width * 3, "rgb buffer size mismatch");
    let mut y_plane = vec![0u8; height * width];
    let cw = width.div_ceil(2);
    let ch = height.div_ceil(2);
    let mut cb_acc = vec![0u32; ch * cw];
    let mut cr_acc = vec![0u32; ch * cw];
    let mut counts = vec![0u32; ch * cw];
    for py in 0..height {
        for px in 0..width {
            let base = (py * width + px) * 3;
            let [y, cb, cr] = rgb_to_ycc([rgb[base], rgb[base + 1], rgb[base + 2]]);
            y_plane[py * width + px] = y;
            let ci = (py / 2) * cw + px / 2;
            cb_acc[ci] += u32::from(cb);
            cr_acc[ci] += u32::from(cr);
            counts[ci] += 1;
        }
    }
    let cb = cb_acc
        .iter()
        .zip(&counts)
        .map(|(&a, &n)| (a / n.max(1)) as u8)
        .collect();
    let cr = cr_acc
        .iter()
        .zip(&counts)
        .map(|(&a, &n)| (a / n.max(1)) as u8)
        .collect();
    PlanarYcc {
        height,
        width,
        y: y_plane,
        cb,
        cr,
    }
}

/// Upsamples the chroma planes (nearest-neighbour, libjpeg's
/// `sep_upsample` in its simplest mode) and converts to interleaved RGB.
#[must_use]
pub fn planar_420_to_rgb(ycc: &PlanarYcc) -> Vec<u8> {
    let cw = ycc.chroma_width();
    let mut rgb = Vec::with_capacity(ycc.height * ycc.width * 3);
    for py in 0..ycc.height {
        for px in 0..ycc.width {
            let y = ycc.y[py * ycc.width + px];
            let ci = (py / 2) * cw + px / 2;
            let pixel = ycc_to_rgb([y, ycc.cb[ci], ycc.cr[ci]]);
            rgb.extend_from_slice(&pixel);
        }
    }
    rgb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primaries_round_trip_approximately() {
        for rgb in [
            [255, 0, 0],
            [0, 255, 0],
            [0, 0, 255],
            [128, 64, 200],
            [0, 0, 0],
            [255, 255, 255],
        ] {
            let back = ycc_to_rgb(rgb_to_ycc(rgb));
            for c in 0..3 {
                assert!(
                    (i32::from(back[c]) - i32::from(rgb[c])).abs() <= 2,
                    "channel {c} of {rgb:?} became {back:?}"
                );
            }
        }
    }

    #[test]
    fn grey_has_neutral_chroma() {
        let [_, cb, cr] = rgb_to_ycc([100, 100, 100]);
        assert_eq!(cb, 128);
        assert_eq!(cr, 128);
    }

    #[test]
    fn planar_round_trip_on_flat_image() {
        let rgb = vec![200u8; 6 * 10 * 3];
        let planar = rgb_to_planar_420(&rgb, 6, 10);
        assert_eq!(planar.cb.len(), 3 * 5);
        let back = planar_420_to_rgb(&planar);
        assert_eq!(back.len(), rgb.len());
        for (a, b) in rgb.iter().zip(&back) {
            assert!((i32::from(*a) - i32::from(*b)).abs() <= 2);
        }
    }

    #[test]
    fn odd_dimensions_are_handled() {
        let rgb = vec![90u8; 5 * 7 * 3];
        let planar = rgb_to_planar_420(&rgb, 5, 7);
        assert_eq!(planar.chroma_height(), 3);
        assert_eq!(planar.chroma_width(), 4);
        let back = planar_420_to_rgb(&planar);
        assert_eq!(back.len(), 5 * 7 * 3);
    }
}
