//! Bit-level I/O for the entropy coder.

/// Accumulates bits MSB-first into a byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    current: u8,
    filled: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Writes the low `count` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn write_bits(&mut self, value: u32, count: u8) {
        assert!(count <= 32, "cannot write more than 32 bits at once");
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            self.current = (self.current << 1) | bit as u8;
            self.filled += 1;
            if self.filled == 8 {
                self.bytes.push(self.current);
                self.current = 0;
                self.filled = 0;
            }
        }
    }

    /// Number of bits written so far.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.filled as usize
    }

    /// Flushes any partial byte (zero-padded) and returns the buffer.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.current <<= 8 - self.filled;
            self.bytes.push(self.current);
        }
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos_bits: usize,
}

/// Error returned when a [`BitReader`] runs out of input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitstreamExhausted;

impl std::fmt::Display for BitstreamExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("bitstream exhausted")
    }
}

impl std::error::Error for BitstreamExhausted {}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos_bits: 0 }
    }

    /// Reads `count` bits, MSB first.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamExhausted`] if fewer than `count` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn read_bits(&mut self, count: u8) -> Result<u32, BitstreamExhausted> {
        assert!(count <= 32, "cannot read more than 32 bits at once");
        if self.pos_bits + count as usize > self.bytes.len() * 8 {
            return Err(BitstreamExhausted);
        }
        let mut value = 0u32;
        for _ in 0..count {
            let byte = self.bytes[self.pos_bits / 8];
            let bit = (byte >> (7 - self.pos_bits % 8)) & 1;
            value = (value << 1) | u32::from(bit);
            self.pos_bits += 1;
        }
        Ok(value)
    }

    /// Bits consumed so far.
    #[must_use]
    pub fn bits_read(&self) -> usize {
        self.pos_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFFFF, 16);
        w.write_bits(0, 1);
        w.write_bits(0b1101_0110, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xFFFF);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(8).unwrap(), 0b1101_0110);
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        // The flush pads to 8 bits; reading 9 must fail.
        assert!(r.read_bits(8).is_ok());
        assert_eq!(r.read_bits(1), Err(BitstreamExhausted));
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b11, 2);
        assert_eq!(w.bit_len(), 2);
        w.write_bits(0, 7);
        assert_eq!(w.bit_len(), 9);
    }

    #[test]
    fn zero_width_writes_are_noops() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.finish().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn arbitrary_sequences_round_trip(values in prop::collection::vec((0u32..=u32::MAX, 1u8..=32), 0..200)) {
            let mut w = BitWriter::new();
            for &(v, c) in &values {
                let masked = if c == 32 { v } else { v & ((1 << c) - 1) };
                w.write_bits(masked, c);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &(v, c) in &values {
                let masked = if c == 32 { v } else { v & ((1 << c) - 1) };
                prop_assert_eq!(r.read_bits(c).unwrap(), masked);
            }
        }
    }
}
