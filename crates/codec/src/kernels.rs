//! Registration of the codec's native-kernel inventory (the paper's
//! Table I "Loader" rows), with vendor-specific variants.

use lotus_uarch::{CostCoeffs, KernelId, Machine, Vendor};

/// Library name constants matching Table I of the paper.
pub mod libs {
    /// libjpeg 9e.
    pub const LIBJPEG: &str = "libjpeg.so.9";
    /// glibc.
    pub const LIBC: &str = "libc.so.6";
    /// glibc as named on the paper's AMD machine.
    pub const LIBC_AMD: &str = "libc-2.31.so";
    /// Pillow's native extension module (`#` in Table I).
    pub const PILLOW: &str = "_imaging.cpython-310-x86_64-linux-gnu.so";
}

/// Kernel ids for the decode (Loader) and encode paths.
///
/// Intel and AMD machines resolve slightly different inventories, exactly
/// as the paper's Table I records: e.g. `__libc_calloc` shows up on Intel
/// while AMD surfaces Pillow's `copy`, `process_data_simple_main` and
/// `sep_upsample`.
#[derive(Debug, Clone, Copy)]
pub struct CodecKernels {
    /// Entropy decode of MCU coefficients (`decode_mcu`).
    pub decode_mcu: KernelId,
    /// Bit-buffer refill (`jpeg_fill_bit_buffer`).
    pub fill_bit_buffer: KernelId,
    /// Luma inverse DCT (`jpeg_idct_islow`).
    pub idct_islow: KernelId,
    /// Chroma/scaled inverse DCT (`jpeg_idct_16x16`).
    pub idct_16x16: KernelId,
    /// YCbCr → RGB (`ycc_rgb_convert`).
    pub ycc_rgb_convert: KernelId,
    /// Decompression driver: `decompress_onepass` on Intel,
    /// `process_data_simple_main` on AMD.
    pub decompress_driver: KernelId,
    /// Chroma upsampling (`sep_upsample`; surfaced on AMD, merged into the
    /// driver on Intel).
    pub sep_upsample: Option<KernelId>,
    /// Pillow's RGB unpack (`ImagingUnpackRGB`).
    pub unpack_rgb: KernelId,
    /// Output allocation: `__libc_calloc` (Intel) or Pillow `copy` (AMD).
    pub alloc_output: KernelId,
    /// Bulk zeroing (`__memset_avx2_unaligned_erms` / `_avx2_unaligned`).
    pub memset: KernelId,
    /// Bulk copy (`__memcpy_avx_unaligned_erms`).
    pub memcpy: KernelId,
    /// Forward color conversion (`rgb_ycc_convert`, encode path).
    pub rgb_ycc_convert: KernelId,
    /// Forward DCT (`jpeg_fdct_islow`, encode path).
    pub fdct_islow: KernelId,
    /// Entropy encode (`encode_mcu_huff`, encode path).
    pub encode_mcu: KernelId,
}

impl CodecKernels {
    /// Registers the inventory on `machine`, resolving vendor variants.
    #[must_use]
    pub fn register(machine: &Machine) -> CodecKernels {
        let vendor = machine.config().vendor;
        // Entropy decode: branchy, table-driven, large code footprint —
        // strongly front-end sensitive (the paper's most CPU-hungry
        // function).
        let decode_mcu = machine.kernel(
            "decode_mcu",
            libs::LIBJPEG,
            CostCoeffs {
                base_insts: 400.0,
                insts_per_unit: 60.0, // per encoded byte
                uops_per_inst: 1.2,
                ipc_base: 1.6,
                l1_miss_per_unit: 0.06,
                l2_miss_per_unit: 0.012,
                llc_miss_per_unit: 0.003,
                branches_per_unit: 14.0,
                mispredict_rate: 0.06,
                frontend_sensitivity: 0.9,
            },
        );
        let fill_bit_buffer = machine.kernel(
            "jpeg_fill_bit_buffer",
            libs::LIBJPEG,
            CostCoeffs {
                base_insts: 80.0,
                insts_per_unit: 9.0, // per encoded byte
                uops_per_inst: 1.1,
                ipc_base: 2.2,
                l1_miss_per_unit: 1.0 / 64.0,
                l2_miss_per_unit: 0.004,
                llc_miss_per_unit: 0.002,
                branches_per_unit: 2.0,
                mispredict_rate: 0.02,
                frontend_sensitivity: 0.5,
            },
        );
        let idct = CostCoeffs {
            base_insts: 300.0,
            insts_per_unit: 14.0, // per coefficient sample
            uops_per_inst: 1.15,
            ipc_base: 2.8,
            l1_miss_per_unit: 0.01,
            l2_miss_per_unit: 0.002,
            llc_miss_per_unit: 0.0005,
            branches_per_unit: 0.3,
            mispredict_rate: 0.01,
            frontend_sensitivity: 0.35,
        };
        let idct_islow = machine.kernel("jpeg_idct_islow", libs::LIBJPEG, idct);
        let idct_16x16 = machine.kernel("jpeg_idct_16x16", libs::LIBJPEG, idct);
        let ycc_rgb_convert = machine.kernel(
            "ycc_rgb_convert",
            libs::LIBJPEG,
            CostCoeffs {
                base_insts: 120.0,
                insts_per_unit: 9.0, // per pixel
                uops_per_inst: 1.1,
                ipc_base: 2.6,
                l1_miss_per_unit: 3.0 / 64.0,
                l2_miss_per_unit: 0.01,
                llc_miss_per_unit: 0.004,
                branches_per_unit: 1.0,
                mispredict_rate: 0.005,
                frontend_sensitivity: 0.2,
            },
        );
        let driver_cost = CostCoeffs {
            base_insts: 500.0,
            insts_per_unit: 3.0, // per output pixel
            uops_per_inst: 1.1,
            ipc_base: 2.2,
            l1_miss_per_unit: 0.02,
            l2_miss_per_unit: 0.004,
            llc_miss_per_unit: 0.001,
            branches_per_unit: 0.8,
            mispredict_rate: 0.02,
            frontend_sensitivity: 0.6,
        };
        let decompress_driver = match vendor {
            Vendor::Intel => machine.kernel("decompress_onepass", libs::LIBJPEG, driver_cost),
            Vendor::Amd => machine.kernel("process_data_simple_main", libs::LIBJPEG, driver_cost),
        };
        let sep_upsample = match vendor {
            Vendor::Intel => None,
            Vendor::Amd => Some(machine.kernel(
                "sep_upsample",
                libs::LIBJPEG,
                CostCoeffs {
                    base_insts: 100.0,
                    insts_per_unit: 2.5, // per chroma sample
                    uops_per_inst: 1.05,
                    ipc_base: 2.8,
                    l1_miss_per_unit: 2.0 / 64.0,
                    l2_miss_per_unit: 0.01,
                    llc_miss_per_unit: 0.004,
                    branches_per_unit: 0.3,
                    mispredict_rate: 0.005,
                    frontend_sensitivity: 0.1,
                },
            )),
        };
        let unpack_rgb = machine.kernel(
            "ImagingUnpackRGB",
            libs::PILLOW,
            CostCoeffs {
                base_insts: 150.0,
                insts_per_unit: 2.2, // per pixel
                uops_per_inst: 1.05,
                ipc_base: 2.9,
                l1_miss_per_unit: 6.0 / 64.0,
                l2_miss_per_unit: 0.05,
                llc_miss_per_unit: 0.03,
                branches_per_unit: 0.3,
                mispredict_rate: 0.004,
                frontend_sensitivity: 0.1,
            },
        );
        let alloc_output = match vendor {
            Vendor::Intel => machine.kernel(
                "__libc_calloc",
                libs::LIBC,
                CostCoeffs {
                    base_insts: 300.0,
                    insts_per_unit: 0.05, // per byte (page-touch amortized)
                    uops_per_inst: 1.1,
                    ipc_base: 2.0,
                    l1_miss_per_unit: 0.5 / 64.0,
                    l2_miss_per_unit: 0.4 / 64.0,
                    llc_miss_per_unit: 0.35 / 64.0,
                    branches_per_unit: 0.01,
                    mispredict_rate: 0.01,
                    frontend_sensitivity: 0.15,
                },
            ),
            Vendor::Amd => machine.kernel(
                "copy",
                libs::PILLOW,
                CostCoeffs {
                    base_insts: 250.0,
                    insts_per_unit: 0.3,
                    uops_per_inst: 1.05,
                    ipc_base: 2.6,
                    l1_miss_per_unit: 1.0 / 64.0,
                    l2_miss_per_unit: 0.8 / 64.0,
                    llc_miss_per_unit: 0.7 / 64.0,
                    branches_per_unit: 0.02,
                    mispredict_rate: 0.005,
                    frontend_sensitivity: 0.05,
                },
            ),
        };
        let memset_name = match vendor {
            Vendor::Intel => "__memset_avx2_unaligned_erms",
            Vendor::Amd => "__memset_avx2_unaligned",
        };
        let libc_name = match vendor {
            Vendor::Intel => libs::LIBC,
            Vendor::Amd => libs::LIBC_AMD,
        };
        let memset = machine.kernel(memset_name, libc_name, CostCoeffs::streaming_default());
        let memcpy = machine.kernel(
            "__memcpy_avx_unaligned_erms",
            libc_name,
            CostCoeffs::streaming_default(),
        );
        let rgb_ycc_convert = machine.kernel(
            "rgb_ycc_convert",
            libs::LIBJPEG,
            CostCoeffs {
                base_insts: 120.0,
                insts_per_unit: 10.0,
                uops_per_inst: 1.1,
                ipc_base: 2.6,
                l1_miss_per_unit: 3.0 / 64.0,
                l2_miss_per_unit: 0.01,
                llc_miss_per_unit: 0.004,
                branches_per_unit: 1.0,
                mispredict_rate: 0.005,
                frontend_sensitivity: 0.2,
            },
        );
        let fdct_islow = machine.kernel("jpeg_fdct_islow", libs::LIBJPEG, idct);
        let encode_mcu = machine.kernel(
            "encode_mcu_huff",
            libs::LIBJPEG,
            CostCoeffs {
                base_insts: 300.0,
                insts_per_unit: 40.0,
                uops_per_inst: 1.2,
                ipc_base: 1.8,
                l1_miss_per_unit: 0.04,
                l2_miss_per_unit: 0.008,
                llc_miss_per_unit: 0.002,
                branches_per_unit: 10.0,
                mispredict_rate: 0.05,
                frontend_sensitivity: 0.8,
            },
        );
        CodecKernels {
            decode_mcu,
            fill_bit_buffer,
            idct_islow,
            idct_16x16,
            ycc_rgb_convert,
            decompress_driver,
            sep_upsample,
            unpack_rgb,
            alloc_output,
            memset,
            memcpy,
            rgb_ycc_convert,
            fdct_islow,
            encode_mcu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_uarch::MachineConfig;

    #[test]
    fn intel_inventory_matches_table_1() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let k = CodecKernels::register(&machine);
        assert!(machine.kernel_by_name("decompress_onepass").is_some());
        assert!(machine.kernel_by_name("__libc_calloc").is_some());
        assert!(machine.kernel_by_name("process_data_simple_main").is_none());
        assert!(k.sep_upsample.is_none());
        assert_eq!(
            machine.kernel_spec(k.memset).name,
            "__memset_avx2_unaligned_erms"
        );
    }

    #[test]
    fn amd_inventory_matches_table_1() {
        let machine = Machine::new(MachineConfig::amd_rome());
        let k = CodecKernels::register(&machine);
        assert!(machine.kernel_by_name("process_data_simple_main").is_some());
        assert!(machine.kernel_by_name("sep_upsample").is_some());
        assert!(machine.kernel_by_name("__libc_calloc").is_none());
        assert_eq!(machine.kernel_spec(k.alloc_output).name, "copy");
        assert_eq!(
            machine.kernel_spec(k.memset).name,
            "__memset_avx2_unaligned"
        );
        assert_eq!(machine.kernel_spec(k.memset).library, libs::LIBC_AMD);
    }

    #[test]
    fn registration_is_stable_across_calls() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let a = CodecKernels::register(&machine);
        let b = CodecKernels::register(&machine);
        assert_eq!(a.decode_mcu, b.decode_mcu);
        assert_eq!(a.memcpy, b.memcpy);
    }
}
