//! # lotus-codec — the SJPG image codec
//!
//! A real, from-scratch JPEG-style codec (DCT, quantization, zig-zag,
//! run-length/category entropy coding, 4:2:0 chroma) whose internal phases
//! are factored into the *named native kernels* of the paper's Table I
//! (`decode_mcu`, `jpeg_idct_islow`, `ycc_rgb_convert`,
//! `__memcpy_avx_unaligned_erms`, …). Decoding an image both produces real
//! pixels and charges modelled hardware cost to a
//! [`lotus_uarch::CpuThread`]; the geometry-only twin
//! [`Codec::charge_decode`] charges identical cost without materializing
//! pixels, which is what the large-scale pipeline simulations use.
//!
//! See [`Codec`] for an end-to-end example.

#![warn(missing_docs)]
// The whole workspace is safe Rust; determinism and auditability both
// lean on it. Gate any future exception through a crate-level decision.
#![deny(unsafe_code)]

pub mod bits;
pub mod color;
pub mod dct;
pub mod dsp;
pub mod entropy;

mod codec;
mod kernels;

pub use codec::{Codec, CodecError, EncodedImage, HEADER_BYTES};
pub use kernels::{libs, CodecKernels};
