//! Signal-processing primitives for the audio preprocessing pipeline:
//! an iterative radix-2 FFT, Hann windowing, power spectra and mel
//! filterbanks.
//!
//! The paper's introduction names audio classification among the
//! preprocessing-bound workloads; this module is the substrate for the
//! repository's audio-pipeline extension.

use std::f64::consts::PI;

/// A complex number (no external crate; two fields suffice here).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The complex number `re + im·i`.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// Squared magnitude.
    #[must_use]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }

    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }

    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `inverse` computes the unnormalized inverse transform; divide by `n`
/// to recover the signal (as [`ifft`] does).
///
/// # Panics
///
/// Panics unless `data.len()` is a power of two.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterfly stages.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * 2.0 * PI / len as f64;
        let w_len = Complex::new(angle.cos(), angle.sin());
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for k in 0..half {
                let a = chunk[k];
                let b = chunk[k + half].mul(w);
                chunk[k] = a.add(b);
                chunk[k + half] = a.sub(b);
                w = w.mul(w_len);
            }
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal, returning the full complex spectrum.
///
/// # Panics
///
/// Panics unless `signal.len()` is a power of two.
#[must_use]
pub fn fft(signal: &[f64]) -> Vec<Complex> {
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft_in_place(&mut data, false);
    data
}

/// Inverse FFT, returning the real parts (normalized).
///
/// # Panics
///
/// Panics unless `spectrum.len()` is a power of two.
#[must_use]
pub fn ifft(spectrum: &[Complex]) -> Vec<f64> {
    let mut data = spectrum.to_vec();
    fft_in_place(&mut data, true);
    let n = data.len() as f64;
    data.into_iter().map(|c| c.re / n).collect()
}

/// The Hann window of length `n`.
#[must_use]
pub fn hann_window(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if n <= 1 {
                1.0
            } else {
                0.5 * (1.0 - (2.0 * PI * i as f64 / (n - 1) as f64).cos())
            }
        })
        .collect()
}

/// The one-sided power spectrum (`n/2 + 1` bins) of one windowed frame.
///
/// # Panics
///
/// Panics unless `frame.len()` is a power of two and matches `window`.
#[must_use]
pub fn power_spectrum(frame: &[f64], window: &[f64]) -> Vec<f64> {
    assert_eq!(frame.len(), window.len(), "frame/window length mismatch");
    let windowed: Vec<f64> = frame.iter().zip(window).map(|(&x, &w)| x * w).collect();
    let spectrum = fft(&windowed);
    spectrum[..=frame.len() / 2]
        .iter()
        .map(|c| c.norm_sq())
        .collect()
}

/// Index of the largest value, by IEEE 754 total order.
///
/// `total_cmp` makes this well-defined (no panic) on NaN-bearing input —
/// a real hazard for power spectra, where one `0.0 / 0.0` upstream used
/// to unwind the worker. NaN sorts above every number in total order, so
/// a NaN's index is returned if one is present; callers treating NaN as
/// data corruption can check `values[i].is_nan()` on the result.
#[must_use]
pub fn argmax(values: &[f64]) -> Option<usize> {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
}

/// Hz → mel (HTK formula).
#[must_use]
pub fn hz_to_mel(hz: f64) -> f64 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// mel → Hz (HTK formula).
#[must_use]
pub fn mel_to_hz(mel: f64) -> f64 {
    700.0 * (10f64.powf(mel / 2595.0) - 1.0)
}

/// A triangular mel filterbank: `n_mels` filters over `n_fft/2 + 1`
/// linear-frequency bins at `sample_rate`.
#[derive(Debug, Clone, PartialEq)]
pub struct MelFilterbank {
    n_mels: usize,
    n_bins: usize,
    /// Row-major `[n_mels × n_bins]` weights.
    weights: Vec<f64>,
}

impl MelFilterbank {
    /// Builds the filterbank.
    ///
    /// # Panics
    ///
    /// Panics if `n_mels == 0` or `n_fft < 2`.
    #[must_use]
    pub fn new(sample_rate: f64, n_fft: usize, n_mels: usize) -> MelFilterbank {
        assert!(n_mels > 0, "need at least one mel band");
        assert!(n_fft >= 2, "FFT size too small");
        let n_bins = n_fft / 2 + 1;
        let max_mel = hz_to_mel(sample_rate / 2.0);
        // n_mels + 2 equally spaced mel points.
        let mel_points: Vec<f64> = (0..n_mels + 2)
            .map(|i| max_mel * i as f64 / (n_mels + 1) as f64)
            .collect();
        let bin_of = |mel: f64| mel_to_hz(mel) * n_fft as f64 / sample_rate;
        let mut weights = vec![0.0; n_mels * n_bins];
        for m in 0..n_mels {
            let (lo, mid, hi) = (
                bin_of(mel_points[m]),
                bin_of(mel_points[m + 1]),
                bin_of(mel_points[m + 2]),
            );
            for bin in 0..n_bins {
                let f = bin as f64;
                let w = if f >= lo && f <= mid && mid > lo {
                    (f - lo) / (mid - lo)
                } else if f > mid && f <= hi && hi > mid {
                    (hi - f) / (hi - mid)
                } else {
                    0.0
                };
                weights[m * n_bins + bin] = w.max(0.0);
            }
        }
        MelFilterbank {
            n_mels,
            n_bins,
            weights,
        }
    }

    /// Number of mel bands.
    #[must_use]
    pub fn n_mels(&self) -> usize {
        self.n_mels
    }

    /// Number of linear-frequency input bins.
    #[must_use]
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Applies the filterbank to one power spectrum.
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len() != n_bins()`.
    #[must_use]
    pub fn apply(&self, spectrum: &[f64]) -> Vec<f64> {
        assert_eq!(spectrum.len(), self.n_bins, "spectrum size mismatch");
        (0..self.n_mels)
            .map(|m| {
                self.weights[m * self.n_bins..(m + 1) * self.n_bins]
                    .iter()
                    .zip(spectrum)
                    .map(|(&w, &p)| w * p)
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut signal = vec![0.0; 64];
        signal[0] = 1.0;
        let spectrum = fft(&signal);
        for c in &spectrum {
            assert!((c.re - 1.0).abs() < 1e-9 && c.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_round_trips() {
        let signal: Vec<f64> = (0..256)
            .map(|i| ((i * 13) % 31) as f64 / 31.0 - 0.5)
            .collect();
        let back = ifft(&fft(&signal));
        for (a, b) in signal.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sinusoid_peaks_at_its_bin() {
        let n = 512;
        let k = 37;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k as f64 * i as f64 / n as f64).sin())
            .collect();
        let power = power_spectrum(&signal, &vec![1.0; n]);
        assert_eq!(argmax(&power).unwrap(), k);
    }

    #[test]
    fn argmax_survives_nan_input() {
        // `partial_cmp(..).unwrap()` panicked here; total order must not.
        let with_nan = [1.0, f64::NAN, 3.0];
        let i = argmax(&with_nan).unwrap();
        assert!(with_nan[i].is_nan(), "NaN sorts above all in total order");

        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmax(&[f64::NEG_INFINITY, -1.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let signal: Vec<f64> = (0..128).map(|i| ((i * 7) % 17) as f64 - 8.0).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 =
            fft(&signal).iter().map(|c| c.norm_sq()).sum::<f64>() / signal.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy);
    }

    #[test]
    fn hann_window_shape() {
        let w = hann_window(64);
        assert!(w[0].abs() < 1e-12);
        assert!((w[63]).abs() < 1e-12);
        let mid = w[31].max(w[32]);
        assert!(mid > 0.99, "window peaks near the middle: {mid}");
    }

    #[test]
    fn mel_conversion_round_trips() {
        for hz in [0.0, 125.0, 1000.0, 4000.0, 8000.0] {
            assert!((mel_to_hz(hz_to_mel(hz)) - hz).abs() < 1e-6);
        }
    }

    #[test]
    fn filterbank_rows_are_triangular_and_cover_the_range() {
        let fb = MelFilterbank::new(16_000.0, 512, 40);
        assert_eq!(fb.n_mels(), 40);
        assert_eq!(fb.n_bins(), 257);
        // Every filter has some positive weight; a flat spectrum maps to
        // all-positive mel energies.
        let flat = vec![1.0; fb.n_bins()];
        let mel = fb.apply(&flat);
        assert!(mel.iter().all(|&m| m > 0.0), "{mel:?}");
    }

    #[test]
    fn filterbank_localizes_a_tone() {
        let (sr, n_fft) = (16_000.0, 1024);
        let fb = MelFilterbank::new(sr, n_fft, 64);
        // A 2 kHz tone.
        let n = n_fft;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 2000.0 * i as f64 / sr).sin())
            .collect();
        let power = power_spectrum(&signal, &hann_window(n));
        let mel = fb.apply(&power);
        let peak_band = argmax(&mel).unwrap();
        // 2 kHz ≈ mel 1521 of max-mel 2840 (8 kHz Nyquist): band ≈ 34/64.
        assert!((28..=40).contains(&peak_band), "peak band {peak_band}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_is_rejected() {
        let _ = fft(&[0.0; 48]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn fft_is_linear(a in prop::collection::vec(-10.0f64..10.0, 64), k in -4.0f64..4.0) {
            let scaled: Vec<f64> = a.iter().map(|x| x * k).collect();
            let fa = fft(&a);
            let fs = fft(&scaled);
            for (x, y) in fa.iter().zip(&fs) {
                prop_assert!((x.re * k - y.re).abs() < 1e-7);
                prop_assert!((x.im * k - y.im).abs() < 1e-7);
            }
        }

        #[test]
        fn round_trip_any_signal(signal in prop::collection::vec(-100.0f64..100.0, 128)) {
            let back = ifft(&fft(&signal));
            for (a, b) in signal.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-7);
            }
        }
    }
}
