//! The SJPG codec: a real JPEG-style encoder/decoder whose phases execute
//! (and are costed as) the paper's Table I native kernels.

use lotus_data::Image;
use lotus_uarch::{CpuThread, Machine, Vendor};

use crate::bits::{BitReader, BitWriter};
use crate::color::{planar_420_to_rgb, rgb_to_planar_420, PlanarYcc};
use crate::dct::{
    dequantize, fdct8x8, idct8x8, quantize, scale_quant_table, BLOCK, BLOCK_LEN, CHROMA_QUANT,
    LUMA_QUANT,
};
use crate::entropy::{decode_blocks, encode_blocks};
use crate::kernels::CodecKernels;

/// Size of the SJPG header in bytes (magic + dims + quality), counted into
/// [`EncodedImage::file_bytes`].
pub const HEADER_BYTES: u64 = 16;

/// Errors from decoding an [`EncodedImage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The entropy bitstream ended before all blocks were decoded.
    Truncated,
    /// The header declares a zero-sized image.
    InvalidDimensions {
        /// Declared width.
        width: u32,
        /// Declared height.
        height: u32,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("truncated sjpg bitstream"),
            CodecError::InvalidDimensions { width, height } => {
                write!(f, "invalid sjpg dimensions {width}x{height}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// An encoded SJPG image ("file").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedImage {
    /// Decoded width in pixels.
    pub width: u32,
    /// Decoded height in pixels.
    pub height: u32,
    /// Encoding quality (1–100).
    pub quality: u8,
    data: Vec<u8>,
}

impl EncodedImage {
    /// Total simulated file size (header + entropy data).
    #[must_use]
    pub fn file_bytes(&self) -> u64 {
        HEADER_BYTES + self.data.len() as u64
    }

    /// The entropy-coded payload.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.data
    }

    /// Truncates the entropy payload to at most `len` bytes — a
    /// fault-injection helper for exercising decoder robustness against
    /// corrupt files.
    pub fn truncate_payload(&mut self, len: usize) {
        self.data.truncate(len);
    }
}

/// Per-plane block geometry for an image, shared by the real decode path
/// and the cost-only path so the two always charge identical work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockGeometry {
    luma_blocks: u64,
    chroma_blocks_per_plane: u64,
    pixels: u64,
    chroma_samples: u64,
}

fn geometry(width: u32, height: u32) -> BlockGeometry {
    let (w, h) = (u64::from(width), u64::from(height));
    let (cw, ch) = (w.div_ceil(2), h.div_ceil(2));
    BlockGeometry {
        luma_blocks: w.div_ceil(8) * h.div_ceil(8),
        chroma_blocks_per_plane: cw.div_ceil(8) * ch.div_ceil(8),
        pixels: w * h,
        chroma_samples: cw * ch * 2,
    }
}

/// The SJPG codec bound to one machine's kernel registry.
///
/// ```
/// use std::sync::Arc;
/// use lotus_codec::Codec;
/// use lotus_data::Image;
/// use lotus_uarch::{CpuThread, Machine, MachineConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let machine = Machine::new(MachineConfig::cloudlab_c4130());
/// let codec = Codec::new(&machine);
/// let mut cpu = CpuThread::new(Arc::clone(&machine));
/// let original = Image::synthetic(48, 64, &mut StdRng::seed_from_u64(1));
/// let encoded = codec.encode(&original, 85, &mut cpu);
/// let decoded = codec.decode(&encoded, &mut cpu)?;
/// assert_eq!(decoded.width(), 64);
/// # Ok::<(), lotus_codec::CodecError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Codec {
    kernels: CodecKernels,
    vendor: Vendor,
}

impl Codec {
    /// Creates a codec, registering its kernel inventory on `machine`.
    #[must_use]
    pub fn new(machine: &Machine) -> Codec {
        Codec {
            kernels: CodecKernels::register(machine),
            vendor: machine.config().vendor,
        }
    }

    /// The codec's kernel ids (for mapping and attribution tests).
    #[must_use]
    pub fn kernels(&self) -> &CodecKernels {
        &self.kernels
    }

    /// Encodes `image` at `quality`, executing the encode-path kernels on
    /// `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `quality` is outside 1–100.
    #[must_use]
    pub fn encode(&self, image: &Image, quality: u8, cpu: &mut CpuThread) -> EncodedImage {
        let geo = geometry(image.width() as u32, image.height() as u32);
        cpu.exec(self.kernels.rgb_ycc_convert, geo.pixels as f64);
        let planar = cpu.observe_native(self.kernels.rgb_ycc_convert, || {
            rgb_to_planar_420(image.pixels(), image.height(), image.width())
        });
        let luma_table = scale_quant_table(&LUMA_QUANT, quality);
        let chroma_table = scale_quant_table(&CHROMA_QUANT, quality);

        cpu.exec(
            self.kernels.fdct_islow,
            (geo.luma_blocks + 2 * geo.chroma_blocks_per_plane) as f64 * BLOCK_LEN as f64,
        );
        let (y_blocks, cb_blocks, cr_blocks) = cpu.observe_native(self.kernels.fdct_islow, || {
            (
                plane_to_blocks(&planar.y, planar.height, planar.width, &luma_table),
                plane_to_blocks(
                    &planar.cb,
                    planar.chroma_height(),
                    planar.chroma_width(),
                    &chroma_table,
                ),
                plane_to_blocks(
                    &planar.cr,
                    planar.chroma_height(),
                    planar.chroma_width(),
                    &chroma_table,
                ),
            )
        });

        let data = cpu.observe_native(self.kernels.encode_mcu, || {
            let mut writer = BitWriter::new();
            encode_blocks(&y_blocks, &mut writer);
            encode_blocks(&cb_blocks, &mut writer);
            encode_blocks(&cr_blocks, &mut writer);
            writer.finish()
        });
        cpu.exec(self.kernels.encode_mcu, data.len() as f64);
        cpu.exec(self.kernels.memcpy, data.len() as f64);
        EncodedImage {
            width: image.width() as u32,
            height: image.height() as u32,
            quality,
            data,
        }
    }

    /// Decodes `encoded`, executing the decode-path (Loader) kernels on
    /// `cpu`. This is the real-compute twin of
    /// [`Codec::charge_decode`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] for truncated or malformed input.
    pub fn decode(&self, encoded: &EncodedImage, cpu: &mut CpuThread) -> Result<Image, CodecError> {
        if encoded.width == 0 || encoded.height == 0 {
            return Err(CodecError::InvalidDimensions {
                width: encoded.width,
                height: encoded.height,
            });
        }
        self.charge_decode(encoded.width, encoded.height, encoded.file_bytes(), cpu);

        let geo = geometry(encoded.width, encoded.height);
        let mut reader = BitReader::new(&encoded.data);
        let decoded = cpu.observe_native(self.kernels.decode_mcu, || {
            let y = decode_blocks(&mut reader, geo.luma_blocks as usize)?;
            let cb = decode_blocks(&mut reader, geo.chroma_blocks_per_plane as usize)?;
            let cr = decode_blocks(&mut reader, geo.chroma_blocks_per_plane as usize)?;
            Ok((y.0, cb.0, cr.0))
        });
        let (y_blocks, cb_blocks, cr_blocks) =
            decoded.map_err(|_: crate::bits::BitstreamExhausted| CodecError::Truncated)?;

        let luma_table = scale_quant_table(&LUMA_QUANT, encoded.quality);
        let chroma_table = scale_quant_table(&CHROMA_QUANT, encoded.quality);
        let (w, h) = (encoded.width as usize, encoded.height as usize);
        let (cw, ch) = (w.div_ceil(2), h.div_ceil(2));
        let y = cpu.observe_native(self.kernels.idct_islow, || {
            blocks_to_plane(&y_blocks, h, w, &luma_table)
        });
        let (cb, cr) = cpu.observe_native(self.kernels.idct_16x16, || {
            (
                blocks_to_plane(&cb_blocks, ch, cw, &chroma_table),
                blocks_to_plane(&cr_blocks, ch, cw, &chroma_table),
            )
        });
        let planar = PlanarYcc {
            height: h,
            width: w,
            y,
            cb,
            cr,
        };
        let rgb = cpu.observe_native(self.kernels.ycc_rgb_convert, || planar_420_to_rgb(&planar));
        Ok(cpu.observe_native(self.kernels.unpack_rgb, || Image::from_pixels(h, w, rgb)))
    }

    /// Charges the encode-path kernel costs for an image of the given
    /// dimensions producing `payload_bytes` of entropy data, without
    /// touching pixels — the cost-only twin of [`Codec::encode`].
    pub fn charge_encode(&self, width: u32, height: u32, payload_bytes: u64, cpu: &mut CpuThread) {
        let geo = geometry(width, height);
        cpu.exec(self.kernels.rgb_ycc_convert, geo.pixels as f64);
        cpu.exec(
            self.kernels.fdct_islow,
            (geo.luma_blocks + 2 * geo.chroma_blocks_per_plane) as f64 * BLOCK_LEN as f64,
        );
        cpu.exec(self.kernels.encode_mcu, payload_bytes as f64);
        cpu.exec(self.kernels.memcpy, payload_bytes as f64);
    }

    /// Charges the decode-path kernel costs for an image of the given
    /// dimensions and encoded size, without touching pixel data. The
    /// simulation's fast path; guaranteed to charge exactly what
    /// [`Codec::decode`] charges for the same geometry.
    pub fn charge_decode(&self, width: u32, height: u32, file_bytes: u64, cpu: &mut CpuThread) {
        let geo = geometry(width, height);
        let payload = file_bytes.saturating_sub(HEADER_BYTES) as f64;
        let decoded_bytes = (geo.pixels * 3) as f64;
        cpu.exec(self.kernels.alloc_output, decoded_bytes);
        cpu.exec(self.kernels.memset, decoded_bytes);
        cpu.exec(self.kernels.fill_bit_buffer, payload);
        cpu.exec(self.kernels.decode_mcu, payload);
        cpu.exec(
            self.kernels.idct_islow,
            (geo.luma_blocks * BLOCK_LEN as u64) as f64,
        );
        cpu.exec(
            self.kernels.idct_16x16,
            (2 * geo.chroma_blocks_per_plane * BLOCK_LEN as u64) as f64,
        );
        match self.vendor {
            Vendor::Intel => {
                // Upsampling is merged into the one-pass driver on Intel.
                cpu.exec(
                    self.kernels.decompress_driver,
                    (geo.pixels + geo.chroma_samples) as f64,
                );
            }
            Vendor::Amd => {
                cpu.exec(self.kernels.decompress_driver, geo.pixels as f64);
                if let Some(upsample) = self.kernels.sep_upsample {
                    cpu.exec(upsample, geo.chroma_samples as f64);
                }
            }
        }
        cpu.exec(self.kernels.ycc_rgb_convert, geo.pixels as f64);
        cpu.exec(self.kernels.unpack_rgb, geo.pixels as f64);
        cpu.exec(self.kernels.memcpy, decoded_bytes);
    }
}

/// Splits a plane into quantized 8×8 blocks (row-major block order),
/// padding edges by replication.
fn plane_to_blocks(
    plane: &[u8],
    height: usize,
    width: usize,
    table: &[u16; BLOCK_LEN],
) -> Vec<[i16; BLOCK_LEN]> {
    let mut blocks = Vec::with_capacity(height.div_ceil(8) * width.div_ceil(8));
    for by in 0..height.div_ceil(8) {
        for bx in 0..width.div_ceil(8) {
            let mut samples = [0.0f64; BLOCK_LEN];
            for y in 0..BLOCK {
                for x in 0..BLOCK {
                    let py = (by * BLOCK + y).min(height - 1);
                    let px = (bx * BLOCK + x).min(width - 1);
                    samples[y * BLOCK + x] = f64::from(plane[py * width + px]) - 128.0;
                }
            }
            blocks.push(quantize(&fdct8x8(&samples), table));
        }
    }
    blocks
}

/// Reassembles a plane from quantized blocks.
fn blocks_to_plane(
    blocks: &[[i16; BLOCK_LEN]],
    height: usize,
    width: usize,
    table: &[u16; BLOCK_LEN],
) -> Vec<u8> {
    let blocks_wide = width.div_ceil(8);
    let mut plane = vec![0u8; height * width];
    for (bi, q) in blocks.iter().enumerate() {
        let by = bi / blocks_wide;
        let bx = bi % blocks_wide;
        let samples = idct8x8(&dequantize(q, table));
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                let py = by * BLOCK + y;
                let px = bx * BLOCK + x;
                if py < height && px < width {
                    plane[py * width + px] =
                        (samples[y * BLOCK + x] + 128.0).round().clamp(0.0, 255.0) as u8;
                }
            }
        }
    }
    plane
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_uarch::MachineConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (Arc<Machine>, Codec, CpuThread) {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let codec = Codec::new(&machine);
        let cpu = CpuThread::new(Arc::clone(&machine));
        (machine, codec, cpu)
    }

    fn psnr(a: &Image, b: &Image) -> f64 {
        let mse: f64 = a
            .pixels()
            .iter()
            .zip(b.pixels())
            .map(|(&x, &y)| (f64::from(x) - f64::from(y)).powi(2))
            .sum::<f64>()
            / a.pixels().len() as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }

    #[test]
    fn round_trip_preserves_dimensions_and_content() {
        let (_m, codec, mut cpu) = setup();
        let original = Image::synthetic(40, 56, &mut StdRng::seed_from_u64(5));
        let encoded = codec.encode(&original, 90, &mut cpu);
        let decoded = codec.decode(&encoded, &mut cpu).unwrap();
        assert_eq!(decoded.height(), 40);
        assert_eq!(decoded.width(), 56);
        let q = psnr(&original, &decoded);
        assert!(q > 28.0, "PSNR too low: {q} dB");
    }

    #[test]
    fn higher_quality_means_bigger_files_and_better_psnr() {
        let (_m, codec, mut cpu) = setup();
        let original = Image::synthetic(64, 64, &mut StdRng::seed_from_u64(9));
        let low = codec.encode(&original, 20, &mut cpu);
        let high = codec.encode(&original, 95, &mut cpu);
        assert!(high.file_bytes() > low.file_bytes());
        let low_psnr = psnr(&original, &codec.decode(&low, &mut cpu).unwrap());
        let high_psnr = psnr(&original, &codec.decode(&high, &mut cpu).unwrap());
        assert!(high_psnr > low_psnr, "{high_psnr} vs {low_psnr}");
    }

    #[test]
    fn compression_actually_compresses() {
        let (_m, codec, mut cpu) = setup();
        let original = Image::synthetic(96, 96, &mut StdRng::seed_from_u64(2));
        let encoded = codec.encode(&original, 75, &mut cpu);
        assert!(
            encoded.file_bytes() < original.len_bytes() as u64 / 2,
            "encoded {} vs raw {}",
            encoded.file_bytes(),
            original.len_bytes()
        );
    }

    #[test]
    fn decode_charges_exactly_what_charge_decode_charges() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let codec = Codec::new(&machine);
        let mut cpu = CpuThread::new(Arc::clone(&machine));
        let original = Image::synthetic(33, 47, &mut StdRng::seed_from_u64(3));
        let encoded = codec.encode(&original, 80, &mut cpu);

        let mut real_cpu = CpuThread::new(Arc::clone(&machine));
        codec.decode(&encoded, &mut real_cpu).unwrap();
        let mut cost_cpu = CpuThread::new(Arc::clone(&machine));
        codec.charge_decode(
            encoded.width,
            encoded.height,
            encoded.file_bytes(),
            &mut cost_cpu,
        );
        assert_eq!(real_cpu.cursor(), cost_cpu.cursor());
    }

    #[test]
    fn encode_charges_exactly_what_charge_encode_charges() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let codec = Codec::new(&machine);
        let original = Image::synthetic(40, 24, &mut StdRng::seed_from_u64(8));
        let mut real = CpuThread::new(Arc::clone(&machine));
        let encoded = codec.encode(&original, 80, &mut real);
        let mut cost = CpuThread::new(Arc::clone(&machine));
        codec.charge_encode(
            encoded.width,
            encoded.height,
            encoded.payload().len() as u64,
            &mut cost,
        );
        assert_eq!(real.cursor(), cost.cursor());
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let (_m, codec, mut cpu) = setup();
        let original = Image::synthetic(32, 32, &mut StdRng::seed_from_u64(4));
        let mut encoded = codec.encode(&original, 80, &mut cpu);
        let quarter = encoded.payload().len() / 4;
        encoded.truncate_payload(quarter);
        assert_eq!(codec.decode(&encoded, &mut cpu), Err(CodecError::Truncated));
    }

    #[test]
    fn zero_dimensions_are_rejected() {
        let (_m, codec, mut cpu) = setup();
        let bogus = EncodedImage {
            width: 0,
            height: 32,
            quality: 80,
            data: vec![],
        };
        assert!(matches!(
            codec.decode(&bogus, &mut cpu),
            Err(CodecError::InvalidDimensions { .. })
        ));
    }

    #[test]
    fn odd_sized_images_round_trip() {
        let (_m, codec, mut cpu) = setup();
        let original = Image::synthetic(17, 23, &mut StdRng::seed_from_u64(11));
        let encoded = codec.encode(&original, 85, &mut cpu);
        let decoded = codec.decode(&encoded, &mut cpu).unwrap();
        assert_eq!((decoded.height(), decoded.width()), (17, 23));
    }

    #[test]
    fn decode_time_scales_with_image_size() {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let codec = Codec::new(&machine);
        let mut small = CpuThread::new(Arc::clone(&machine));
        codec.charge_decode(100, 100, 8_000, &mut small);
        let mut large = CpuThread::new(Arc::clone(&machine));
        codec.charge_decode(1000, 1000, 600_000, &mut large);
        assert!(large.cursor().as_nanos() > 20 * small.cursor().as_nanos());
    }
}
