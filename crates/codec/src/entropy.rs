//! JPEG-style entropy coding of quantized DCT blocks: DC prediction,
//! zero-run-length AC coding, and category/magnitude bit packing.

use crate::bits::{BitReader, BitWriter, BitstreamExhausted};
use crate::dct::{BLOCK_LEN, ZIGZAG};

/// Number of bits needed to represent `v.abs()` (JPEG "category"; 0 for 0).
#[must_use]
pub fn category(v: i16) -> u8 {
    (16 - i32::from(v)
        .unsigned_abs()
        .leading_zeros()
        .saturating_sub(16)) as u8
}

fn magnitude_bits(v: i16, cat: u8) -> u32 {
    // JPEG convention: negative values are stored as v + 2^cat - 1.
    if v >= 0 {
        v as u32
    } else {
        (v + ((1 << cat) - 1)) as u32
    }
}

fn decode_magnitude(bits: u32, cat: u8) -> i16 {
    if cat == 0 {
        return 0;
    }
    let half = 1u32 << (cat - 1);
    if bits >= half {
        bits as i16
    } else {
        (bits as i32 - ((1 << cat) - 1)) as i16
    }
}

/// Statistics from encoding or decoding one block sequence, used for
/// kernel work accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EntropyStats {
    /// Number of (run, value) symbols coded, including EOB/ZRL markers.
    pub symbols: u64,
}

/// Encodes a sequence of quantized blocks into `writer`.
///
/// The DC coefficient of each block is delta-coded against the previous
/// block; AC coefficients use (zero-run, category) symbols with EOB and
/// ZRL markers, mirroring baseline JPEG's Huffman layer (the codes
/// themselves are fixed-width nibbles rather than true Huffman codes).
pub fn encode_blocks(blocks: &[[i16; BLOCK_LEN]], writer: &mut BitWriter) -> EntropyStats {
    let mut stats = EntropyStats::default();
    let mut prev_dc = 0i16;
    for block in blocks {
        // DC delta.
        let diff = block[ZIGZAG[0]] - prev_dc;
        prev_dc = block[ZIGZAG[0]];
        let cat = category(diff);
        writer.write_bits(u32::from(cat), 4);
        writer.write_bits(magnitude_bits(diff, cat), cat);
        stats.symbols += 1;
        // AC run-length.
        let mut run = 0u8;
        for &zz in &ZIGZAG[1..] {
            let v = block[zz];
            if v == 0 {
                run += 1;
                continue;
            }
            while run >= 16 {
                // ZRL: sixteen zeros.
                writer.write_bits(0xF, 4);
                writer.write_bits(0x0, 4);
                stats.symbols += 1;
                run -= 16;
            }
            let cat = category(v);
            writer.write_bits(u32::from(run), 4);
            writer.write_bits(u32::from(cat), 4);
            writer.write_bits(magnitude_bits(v, cat), cat);
            stats.symbols += 1;
            run = 0;
        }
        if run > 0 {
            // EOB.
            writer.write_bits(0x0, 4);
            writer.write_bits(0x0, 4);
            stats.symbols += 1;
        }
    }
    stats
}

/// Decodes `count` blocks from `reader`.
///
/// # Errors
///
/// Returns [`BitstreamExhausted`] on a truncated stream.
pub fn decode_blocks(
    reader: &mut BitReader<'_>,
    count: usize,
) -> Result<(Vec<[i16; BLOCK_LEN]>, EntropyStats), BitstreamExhausted> {
    let mut stats = EntropyStats::default();
    let mut blocks = Vec::with_capacity(count);
    let mut prev_dc = 0i16;
    for _ in 0..count {
        let mut block = [0i16; BLOCK_LEN];
        let cat = reader.read_bits(4)? as u8;
        let bits = reader.read_bits(cat)?;
        prev_dc += decode_magnitude(bits, cat);
        block[ZIGZAG[0]] = prev_dc;
        stats.symbols += 1;
        let mut pos = 1usize;
        while pos < BLOCK_LEN {
            let run = reader.read_bits(4)? as usize;
            let cat = reader.read_bits(4)? as u8;
            stats.symbols += 1;
            if run == 0 && cat == 0 {
                break; // EOB
            }
            if run == 15 && cat == 0 {
                pos += 16; // ZRL
                continue;
            }
            pos += run;
            if pos >= BLOCK_LEN {
                return Err(BitstreamExhausted);
            }
            let bits = reader.read_bits(cat)?;
            block[ZIGZAG[pos]] = decode_magnitude(bits, cat);
            pos += 1;
        }
        blocks.push(block);
    }
    Ok((blocks, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(blocks: &[[i16; BLOCK_LEN]]) {
        let mut w = BitWriter::new();
        let enc_stats = encode_blocks(blocks, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let (decoded, dec_stats) = decode_blocks(&mut r, blocks.len()).unwrap();
        assert_eq!(decoded, blocks);
        assert_eq!(enc_stats.symbols, dec_stats.symbols);
    }

    #[test]
    fn category_matches_bit_width() {
        assert_eq!(category(0), 0);
        assert_eq!(category(1), 1);
        assert_eq!(category(-1), 1);
        assert_eq!(category(2), 2);
        assert_eq!(category(-3), 2);
        assert_eq!(category(255), 8);
        assert_eq!(category(-256), 9);
        assert_eq!(category(1023), 10);
    }

    #[test]
    fn empty_blocks_round_trip() {
        round_trip(&[[0i16; BLOCK_LEN]; 3]);
    }

    #[test]
    fn dense_blocks_round_trip() {
        let mut block = [0i16; BLOCK_LEN];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i as i16 - 32) * 3;
        }
        round_trip(&[block, block]);
    }

    #[test]
    fn sparse_blocks_with_long_runs_round_trip() {
        let mut block = [0i16; BLOCK_LEN];
        block[0] = 100;
        block[ZIGZAG[40]] = -7; // forces > 16-zero runs (ZRL path)
        block[ZIGZAG[63]] = 3;
        round_trip(&[block]);
    }

    #[test]
    fn dc_prediction_spans_blocks() {
        let mut a = [0i16; BLOCK_LEN];
        let mut b = [0i16; BLOCK_LEN];
        a[0] = 500;
        b[0] = 510;
        round_trip(&[a, b]);
        // With prediction, the second DC costs only the 10-unit delta.
        let mut w_pred = BitWriter::new();
        encode_blocks(&[a, b], &mut w_pred);
        b[0] = -500;
        let mut w_jump = BitWriter::new();
        encode_blocks(&[a, b], &mut w_jump);
        assert!(w_pred.bit_len() < w_jump.bit_len());
    }

    #[test]
    fn truncated_stream_errors() {
        let mut block = [0i16; BLOCK_LEN];
        block[0] = 100;
        let mut w = BitWriter::new();
        encode_blocks(&[block], &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes[..bytes.len().saturating_sub(1)]);
        // Ask for more blocks than are present.
        assert!(decode_blocks(&mut r, 5).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn arbitrary_quantized_blocks_round_trip(
            raw in prop::collection::vec(-1024i16..=1024, BLOCK_LEN * 3)
        ) {
            let mut blocks = Vec::new();
            for chunk in raw.chunks_exact(BLOCK_LEN) {
                let mut b = [0i16; BLOCK_LEN];
                b.copy_from_slice(chunk);
                blocks.push(b);
            }
            let mut w = BitWriter::new();
            encode_blocks(&blocks, &mut w);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            let (decoded, _) = decode_blocks(&mut r, blocks.len()).unwrap();
            prop_assert_eq!(decoded, blocks);
        }
    }
}
