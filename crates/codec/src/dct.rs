//! 8×8 forward/inverse DCT, quantization tables and zig-zag scan.

use std::f64::consts::PI;

/// Blocks are 8×8 samples, as in JPEG.
pub const BLOCK: usize = 8;
/// Samples per block.
pub const BLOCK_LEN: usize = BLOCK * BLOCK;

/// The JPEG Annex K luminance quantization table.
pub const LUMA_QUANT: [u16; BLOCK_LEN] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// The JPEG Annex K chrominance quantization table.
pub const CHROMA_QUANT: [u16; BLOCK_LEN] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// The JPEG zig-zag scan order (index `i` of the scan reads flat position
/// `ZIGZAG[i]`).
pub const ZIGZAG: [usize; BLOCK_LEN] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Scales a base quantization table by JPEG quality (1–100).
///
/// # Panics
///
/// Panics if `quality` is 0 or greater than 100.
#[must_use]
pub fn scale_quant_table(base: &[u16; BLOCK_LEN], quality: u8) -> [u16; BLOCK_LEN] {
    assert!((1..=100).contains(&quality), "quality must be 1..=100");
    let scale: i64 = if quality < 50 {
        5000 / i64::from(quality)
    } else {
        200 - 2 * i64::from(quality)
    };
    let mut out = [0u16; BLOCK_LEN];
    for (o, &b) in out.iter_mut().zip(base.iter()) {
        let v = (i64::from(b) * scale + 50) / 100;
        *o = v.clamp(1, 255) as u16;
    }
    out
}

/// `cos_table()[u][x] = c(u)/2 · cos((2x+1)·u·π/16)` — one row per
/// frequency, so each 1-D DCT pass is an 8×8 matrix product with fixed
/// coefficients the optimizer can keep in registers and vectorize.
/// (`cos` is not const-evaluable, hence the lazy init.)
fn cos_table() -> &'static [[f64; BLOCK]; BLOCK] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[f64; BLOCK]; BLOCK]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[0.0; BLOCK]; BLOCK];
        for (u, row) in t.iter_mut().enumerate() {
            let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
            for (x, cell) in row.iter_mut().enumerate() {
                *cell = 0.5 * cu * ((2 * x + 1) as f64 * u as f64 * PI / 16.0).cos();
            }
        }
        t
    })
}

/// One separable 1-D DCT pass over the rows of `input`, writing the
/// result transposed. Two passes therefore yield the full 2-D transform
/// with the output back in row-major order. The inner loop is a fixed
/// 8-element dot product over precomputed cosines — no trigonometry, no
/// bounds checks after the chunk split — which autovectorizes cleanly.
#[inline]
fn dct_pass(input: &[f64; BLOCK_LEN], basis: &[[f64; BLOCK]; BLOCK]) -> [f64; BLOCK_LEN] {
    let mut out = [0.0; BLOCK_LEN];
    for (y, row) in input.chunks_exact(BLOCK).enumerate() {
        for (u, coeffs) in basis.iter().enumerate() {
            let mut sum = 0.0;
            for x in 0..BLOCK {
                sum += row[x] * coeffs[x];
            }
            out[u * BLOCK + y] = sum;
        }
    }
    out
}

/// The transposed pass for the inverse transform: reconstructs sample
/// `x` of each row from its 8 frequency coefficients.
#[inline]
fn idct_pass(input: &[f64; BLOCK_LEN], basis: &[[f64; BLOCK]; BLOCK]) -> [f64; BLOCK_LEN] {
    let mut out = [0.0; BLOCK_LEN];
    for (y, row) in input.chunks_exact(BLOCK).enumerate() {
        for x in 0..BLOCK {
            let mut sum = 0.0;
            for (u, coeffs) in basis.iter().enumerate() {
                sum += row[u] * coeffs[x];
            }
            out[x * BLOCK + y] = sum;
        }
    }
    out
}

/// Forward 8×8 DCT-II of one block of centered samples (`sample - 128`).
///
/// Computed as two separable 1-D passes over a precomputed cosine basis
/// (rows, then columns) — O(8³) multiplies instead of the direct O(8⁴)
/// definition, with vectorizable fixed-length inner loops.
#[must_use]
pub fn fdct8x8(block: &[f64; BLOCK_LEN]) -> [f64; BLOCK_LEN] {
    let basis = cos_table();
    dct_pass(&dct_pass(block, basis), basis)
}

/// Inverse 8×8 DCT (DCT-III), producing centered samples. Separable,
/// like [`fdct8x8`].
#[must_use]
pub fn idct8x8(coeffs: &[f64; BLOCK_LEN]) -> [f64; BLOCK_LEN] {
    let basis = cos_table();
    idct_pass(&idct_pass(coeffs, basis), basis)
}

/// Forward DCT by the O(8⁴) textbook definition — the reference the
/// separable implementation is tested (and benchmarked) against.
#[must_use]
pub fn fdct8x8_ref(block: &[f64; BLOCK_LEN]) -> [f64; BLOCK_LEN] {
    let mut out = [0.0; BLOCK_LEN];
    for v in 0..BLOCK {
        for u in 0..BLOCK {
            let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
            let cv = if v == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
            let mut sum = 0.0;
            for y in 0..BLOCK {
                for x in 0..BLOCK {
                    sum += block[y * BLOCK + x]
                        * ((2 * x + 1) as f64 * u as f64 * PI / 16.0).cos()
                        * ((2 * y + 1) as f64 * v as f64 * PI / 16.0).cos();
                }
            }
            out[v * BLOCK + u] = 0.25 * cu * cv * sum;
        }
    }
    out
}

/// Inverse DCT by the O(8⁴) textbook definition — see [`fdct8x8_ref`].
#[must_use]
pub fn idct8x8_ref(coeffs: &[f64; BLOCK_LEN]) -> [f64; BLOCK_LEN] {
    let mut out = [0.0; BLOCK_LEN];
    for y in 0..BLOCK {
        for x in 0..BLOCK {
            let mut sum = 0.0;
            for v in 0..BLOCK {
                for u in 0..BLOCK {
                    let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
                    let cv = if v == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
                    sum += cu
                        * cv
                        * coeffs[v * BLOCK + u]
                        * ((2 * x + 1) as f64 * u as f64 * PI / 16.0).cos()
                        * ((2 * y + 1) as f64 * v as f64 * PI / 16.0).cos();
                }
            }
            out[y * BLOCK + x] = 0.25 * sum;
        }
    }
    out
}

/// Quantizes DCT coefficients to integers.
#[must_use]
pub fn quantize(coeffs: &[f64; BLOCK_LEN], table: &[u16; BLOCK_LEN]) -> [i16; BLOCK_LEN] {
    let mut out = [0i16; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        out[i] = (coeffs[i] / f64::from(table[i]))
            .round()
            .clamp(-2047.0, 2047.0) as i16;
    }
    out
}

/// Dequantizes integer coefficients back to DCT magnitudes.
#[must_use]
pub fn dequantize(quant: &[i16; BLOCK_LEN], table: &[u16; BLOCK_LEN]) -> [f64; BLOCK_LEN] {
    let mut out = [0.0; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        out[i] = f64::from(quant[i]) * f64::from(table[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; BLOCK_LEN];
        for &i in &ZIGZAG {
            assert!(!seen[i], "duplicate zig-zag index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // DC first, then the two nearest AC coefficients.
        assert_eq!(&ZIGZAG[..3], &[0, 1, 8]);
    }

    #[test]
    fn dct_round_trips_to_within_epsilon() {
        let mut block = [0.0; BLOCK_LEN];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i * 37) % 256) as f64 - 128.0;
        }
        let coeffs = fdct8x8(&block);
        let back = idct8x8(&coeffs);
        for i in 0..BLOCK_LEN {
            assert!((block[i] - back[i]).abs() < 1e-6, "sample {i} drifted");
        }
    }

    #[test]
    fn flat_block_has_only_dc_energy() {
        let block = [42.0; BLOCK_LEN];
        let coeffs = fdct8x8(&block);
        assert!((coeffs[0] - 42.0 * 8.0).abs() < 1e-9);
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-9, "AC coefficient {i} should be zero, was {c}");
        }
    }

    #[test]
    fn separable_dct_matches_the_textbook_reference() {
        // A handful of structured and pseudo-random blocks.
        let mut blocks: Vec<[f64; BLOCK_LEN]> = vec![[0.0; BLOCK_LEN], [127.0; BLOCK_LEN]];
        let mut ramp = [0.0; BLOCK_LEN];
        for (i, r) in ramp.iter_mut().enumerate() {
            *r = i as f64 - 32.0;
        }
        blocks.push(ramp);
        let mut lcg: u64 = 0x0107;
        let mut noisy = [0.0; BLOCK_LEN];
        for n in noisy.iter_mut() {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *n = ((lcg >> 33) % 256) as f64 - 128.0;
        }
        blocks.push(noisy);
        for block in &blocks {
            let fast = fdct8x8(block);
            let slow = fdct8x8_ref(block);
            for i in 0..BLOCK_LEN {
                assert!((fast[i] - slow[i]).abs() < 1e-9, "fdct diverges at {i}");
            }
            let fast_back = idct8x8(&fast);
            let slow_back = idct8x8_ref(&slow);
            for i in 0..BLOCK_LEN {
                assert!(
                    (fast_back[i] - slow_back[i]).abs() < 1e-9,
                    "idct diverges at {i}"
                );
            }
        }
    }

    #[test]
    fn quality_scaling_is_monotone() {
        let q10 = scale_quant_table(&LUMA_QUANT, 10);
        let q50 = scale_quant_table(&LUMA_QUANT, 50);
        let q95 = scale_quant_table(&LUMA_QUANT, 95);
        for i in 0..BLOCK_LEN {
            assert!(q10[i] >= q50[i]);
            assert!(q50[i] >= q95[i]);
            assert!(q95[i] >= 1);
        }
        // Quality 50 is the base table.
        assert_eq!(q50, LUMA_QUANT);
    }

    #[test]
    fn quantize_dequantize_bounds_error_by_table_step() {
        let mut coeffs = [0.0; BLOCK_LEN];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = (i as f64 - 32.0) * 7.3;
        }
        let table = scale_quant_table(&LUMA_QUANT, 75);
        let q = quantize(&coeffs, &table);
        let back = dequantize(&q, &table);
        for i in 0..BLOCK_LEN {
            assert!(
                (coeffs[i] - back[i]).abs() <= f64::from(table[i]) / 2.0 + 1e-9,
                "error at {i} exceeds half a quant step"
            );
        }
    }
}
