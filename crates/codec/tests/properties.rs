//! Property-based tests for the SJPG codec: round trips at arbitrary
//! geometry, cost/real-path agreement, and quality monotonicity.

use std::sync::Arc;

use lotus_codec::Codec;
use lotus_data::Image;
use lotus_uarch::{CpuThread, Machine, MachineConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Encode→decode preserves dimensions and stays visually close for
    /// arbitrary (small) geometry, content seeds and qualities.
    #[test]
    fn round_trip_any_geometry(
        h in 8usize..48,
        w in 8usize..48,
        seed in 0u64..1_000,
        quality in 30u8..=95,
    ) {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let codec = Codec::new(&machine);
        let mut cpu = CpuThread::new(Arc::clone(&machine));
        let original = Image::synthetic(h, w, &mut StdRng::seed_from_u64(seed));
        let encoded = codec.encode(&original, quality, &mut cpu);
        let decoded = codec.decode(&encoded, &mut cpu).unwrap();
        prop_assert_eq!(decoded.height(), h);
        prop_assert_eq!(decoded.width(), w);
        // Mean absolute error bounded (lossy but sane).
        let mae: f64 = original
            .pixels()
            .iter()
            .zip(decoded.pixels())
            .map(|(&a, &b)| (f64::from(a) - f64::from(b)).abs())
            .sum::<f64>()
            / original.pixels().len() as f64;
        prop_assert!(mae < 24.0, "MAE {mae} at q{quality} {h}x{w}");
    }

    /// The cost-only path charges exactly what the real decode charges,
    /// for arbitrary geometry.
    #[test]
    fn charge_decode_matches_real_decode(h in 8usize..64, w in 8usize..64, seed in 0u64..500) {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let codec = Codec::new(&machine);
        let mut enc_cpu = CpuThread::new(Arc::clone(&machine));
        let original = Image::synthetic(h, w, &mut StdRng::seed_from_u64(seed));
        let encoded = codec.encode(&original, 80, &mut enc_cpu);

        let mut real = CpuThread::new(Arc::clone(&machine));
        codec.decode(&encoded, &mut real).unwrap();
        let mut cost = CpuThread::new(Arc::clone(&machine));
        codec.charge_decode(encoded.width, encoded.height, encoded.file_bytes(), &mut cost);
        prop_assert_eq!(real.cursor(), cost.cursor());
    }

    /// Truncating the payload anywhere never panics — it either still
    /// decodes (truncation hit padding) or reports an error.
    #[test]
    fn truncation_is_always_graceful(cut in 0usize..200, seed in 0u64..100) {
        let machine = Machine::new(MachineConfig::cloudlab_c4130());
        let codec = Codec::new(&machine);
        let mut cpu = CpuThread::new(Arc::clone(&machine));
        let original = Image::synthetic(24, 24, &mut StdRng::seed_from_u64(seed));
        let encoded = codec.encode(&original, 75, &mut cpu);
        let mut truncated = encoded.clone();
        let keep = truncated.payload().len().saturating_sub(cut);
        truncated = {
            // Rebuild with a shorter payload through the public surface:
            // decode errors are the interesting outcome either way.
            let mut t = truncated;
            t.truncate_payload(keep);
            t
        };
        let _ = codec.decode(&truncated, &mut cpu); // must not panic
    }
}
