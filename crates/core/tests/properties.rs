//! Property-based tests for LotusTrace/LotusMap data structures: log-line
//! round trips, histogram-vs-exact agreement, mapping serialization, and
//! conservation laws of metric splitting.

use std::collections::BTreeMap;

use lotus_core::map::{split_metrics, split_metrics_mix_aware, MappedFunction, Mapping, OpMapping};
use lotus_core::metrics::TraceEvent;
use lotus_core::trace::hist::LogHistogram;
use lotus_core::trace::{SpanKind, TraceRecord};
use lotus_data::stats::Summary;
use lotus_sim::{Span, Time};
use lotus_uarch::{FnStats, FunctionProfile, HwEvents};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = SpanKind> {
    prop_oneof![
        Just(SpanKind::BatchPreprocessed),
        Just(SpanKind::BatchWait),
        Just(SpanKind::BatchConsumed),
        Just(SpanKind::WorkerDied),
        Just(SpanKind::BatchRedispatched),
        "[A-Za-z][A-Za-z0-9_()]{0,24}".prop_map(SpanKind::Op),
        "[A-Za-z][A-Za-z0-9_()]{0,24}".prop_map(SpanKind::FaultInjected),
    ]
}

proptest! {
    #[test]
    fn batch_log_lines_round_trip(
        kind in arb_kind(),
        pid in 0u32..100_000,
        batch in 0u64..1 << 40,
        start in 0u64..1 << 50,
        dur in 0u64..1 << 50,
        ooo in any::<bool>(),
        queue_delay in 0u64..1 << 50,
    ) {
        let record = TraceRecord {
            kind: kind.clone(),
            pid,
            batch_id: batch,
            start: Time::from_nanos(start),
            duration: Span::from_nanos(dur),
            out_of_order: ooo,
            queue_delay: Span::from_nanos(queue_delay),
        };
        let parsed = TraceRecord::parse_log_line(&record.to_log_line()).unwrap();
        prop_assert_eq!(&parsed.kind, &record.kind);
        prop_assert_eq!(parsed.pid, record.pid);
        prop_assert_eq!(parsed.start, record.start);
        prop_assert_eq!(parsed.duration, record.duration);
        prop_assert_eq!(parsed.out_of_order, record.out_of_order);
        prop_assert_eq!(parsed.queue_delay, record.queue_delay);
        // Op and WorkerDied labels carry no batch id; all others round-trip it.
        if !matches!(record.kind, SpanKind::Op(_) | SpanKind::WorkerDied) {
            prop_assert_eq!(parsed.batch_id, record.batch_id);
        }
    }

    /// The zero-duration fault marks (`FaultInjected`, `WorkerDied`,
    /// `BatchRedispatched`) survive the full streaming path: sink event →
    /// trace record → log line → parsed record.
    #[test]
    fn instant_marks_round_trip_through_log_lines(
        which in 0usize..3,
        pid in 0u32..100_000,
        from_pid in 0u32..100_000,
        batch in 0u64..1 << 40,
        at in 0u64..1 << 50,
        op in "[A-Za-z][A-Za-z0-9_()]{0,24}",
    ) {
        let at_t = Time::from_nanos(at);
        let event = match which {
            0 => TraceEvent::FaultInjected { pid, batch_id: batch, op: &op, at: at_t },
            1 => TraceEvent::WorkerDied { pid, at: at_t },
            _ => TraceEvent::BatchRedispatched { batch_id: batch, from_pid, to_pid: pid, at: at_t },
        };
        let record = event.to_record().unwrap();
        // Instant marks anchor at their instant and have no extent.
        prop_assert_eq!(record.start, at_t);
        prop_assert_eq!(record.duration, Span::ZERO);

        let parsed = TraceRecord::parse_log_line(&record.to_log_line()).unwrap();
        prop_assert_eq!(&parsed.kind, &record.kind);
        prop_assert_eq!(parsed.pid, record.pid);
        prop_assert_eq!(parsed.start, record.start);
        prop_assert_eq!(parsed.duration, Span::ZERO);
        prop_assert_eq!(parsed.out_of_order, false);
        prop_assert_eq!(parsed.queue_delay, Span::ZERO);
        // WorkerDied labels carry no batch id; the other marks round-trip it.
        if !matches!(record.kind, SpanKind::WorkerDied) {
            prop_assert_eq!(parsed.batch_id, record.batch_id);
        }
    }

    /// The streaming histogram agrees with exact statistics on means
    /// (exactly) and percentiles (within its documented quantization).
    #[test]
    fn histogram_tracks_exact_statistics(samples in prop::collection::vec(1_000u64..10_000_000_000, 2..300)) {
        let mut hist = LogHistogram::new();
        for &ns in &samples {
            hist.record(Span::from_nanos(ns));
        }
        let exact_ms: Vec<f64> = samples.iter().map(|&ns| ns as f64 / 1e6).collect();
        let exact = Summary::of(&exact_ms);
        let approx = hist.summary_ms();
        prop_assert_eq!(approx.count, exact.count);
        prop_assert!((approx.mean - exact.mean).abs() <= 1e-9 * exact.mean.max(1.0));
        prop_assert!((approx.std - exact.std).abs() <= 1e-6 * exact.std.max(1.0));
        prop_assert_eq!(approx.min, exact.min);
        prop_assert_eq!(approx.max, exact.max);
        // The histogram implements nearest-rank percentiles; compare
        // against that definition with one log-bucket (≈4.4 %) of slack.
        let mut sorted = exact_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let nearest_rank_p90 =
            sorted[((0.9 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1];
        prop_assert!(
            approx.p90 >= nearest_rank_p90 * 0.95 && approx.p90 <= nearest_rank_p90 * 1.06,
            "p90 approx {} vs nearest-rank {}", approx.p90, nearest_rank_p90
        );
    }

    #[test]
    fn mapping_json_round_trips(
        ops in prop::collection::vec(("[a-z]{1,12}", prop::collection::vec(("[a-z_]{1,20}", 0usize..50, 0u64..500), 0..8)), 0..6)
    ) {
        let mut mapping = Mapping::new();
        for (op, functions) in ops {
            mapping.insert(OpMapping {
                op,
                functions: functions
                    .into_iter()
                    .map(|(name, runs, samples)| MappedFunction {
                        name,
                        library: "lib.so".into(),
                        captured_runs: runs,
                        total_runs: 50,
                        samples,
                    })
                    .collect(),
            });
        }
        let parsed = Mapping::from_json(&mapping.to_json()).unwrap();
        prop_assert_eq!(parsed, mapping);
    }

    /// Both splitting strategies conserve events: everything a mapped
    /// function collected ends up attributed, nothing more.
    #[test]
    fn splitting_conserves_counters(
        fn_cpu in prop::collection::vec(1u64..1_000_000, 1..8),
        t_a in 1u64..1_000_000,
        t_b in 1u64..1_000_000,
        samples_a in 1u64..1_000,
        samples_b in 1u64..1_000,
    ) {
        let mut mapping = Mapping::new();
        let mf = |name: String, samples: u64| MappedFunction {
            name,
            library: "lib.so".into(),
            captured_runs: 5,
            total_runs: 5,
            samples,
        };
        // Every function is shared by both ops with different mixes.
        let names: Vec<String> = (0..fn_cpu.len()).map(|i| format!("fn{i}")).collect();
        mapping.insert(OpMapping {
            op: "A".into(),
            functions: names.iter().map(|n| mf(n.clone(), samples_a)).collect(),
        });
        mapping.insert(OpMapping {
            op: "B".into(),
            functions: names.iter().map(|n| mf(n.clone(), samples_b)).collect(),
        });
        let op_times = BTreeMap::from([
            ("A".to_string(), Span::from_nanos(t_a)),
            ("B".to_string(), Span::from_nanos(t_b)),
        ]);
        let profile: Vec<FunctionProfile> = names
            .iter()
            .zip(&fn_cpu)
            .map(|(name, &cpu)| FunctionProfile {
                name: name.clone(),
                library: "lib.so".into(),
                stats: FnStats {
                    samples: 1,
                    cpu_time: Span::from_nanos(cpu),
                    events: HwEvents { instructions: cpu as f64, ..HwEvents::ZERO },
                },
            })
            .collect();
        let total_insts: f64 = fn_cpu.iter().map(|&c| c as f64).sum();
        for split in [
            split_metrics(&profile, &mapping, &op_times),
            split_metrics_mix_aware(&profile, &mapping, &op_times),
        ] {
            let attributed: f64 = split.iter().map(|o| o.events.instructions).sum();
            prop_assert!((attributed - total_insts).abs() < 1e-6 * total_insts.max(1.0),
                "attributed {} vs collected {}", attributed, total_insts);
        }
    }
}
