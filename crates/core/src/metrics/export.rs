//! Metrics exporters: Prometheus text, JSON snapshot, CSV time-series.
//!
//! All three render a [`MetricsSnapshot`], whose maps are ordered and
//! whose samples are virtual-time-stamped — so the output of a seeded run
//! is **byte-identical** across repeats (the determinism-guard test
//! depends on this).
//!
//! Prometheus naming: every family gets a `lotus_` prefix, and a dotted
//! metric name becomes a label on its base family —
//! `queue_depth.data_queue` exports as
//! `lotus_queue_depth{queue="data_queue"}`, `worker_busy_ns.4243` as
//! `lotus_worker_busy_ns{pid="4243"}`, and any other dotted name gets a
//! generic `series` label. Histograms export as Prometheus summaries
//! (`{quantile="…"}` plus `_sum`/`_count`).

use std::fmt::Write as _;

use serde_json::{json, Content, Value};

use super::registry::MetricsSnapshot;

/// Splits a dotted metric name into its base family and label suffix.
fn split_dotted(name: &str) -> (&str, Option<&str>) {
    match name.split_once('.') {
        Some((base, suffix)) => (base, Some(suffix)),
        None => (name, None),
    }
}

/// The Prometheus label key used for a base family's dotted suffix.
fn label_key(base: &str) -> &'static str {
    match base {
        "queue_depth" => "queue",
        "worker_busy_ns" => "pid",
        "sampler_thread_cpu_ns"
        | "sampler_ctx_switches_voluntary"
        | "sampler_ctx_switches_involuntary" => "thread",
        _ => "series",
    }
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote and newline are the only characters that need
/// escaping inside `label="…"`. Everything else — including the dots,
/// slashes and dashes OS thread names carry — passes through unchanged.
fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn family_line(out: &mut String, name: &str, value: impl std::fmt::Display) {
    let (base, suffix) = split_dotted(name);
    match suffix {
        Some(s) => {
            let _ = writeln!(
                out,
                "lotus_{base}{{{key}=\"{s}\"}} {value}",
                key = label_key(base),
                s = escape_label_value(s)
            );
        }
        None => {
            let _ = writeln!(out, "lotus_{base} {value}");
        }
    }
}

/// Renders the snapshot in the Prometheus text exposition format.
///
/// Counters export their totals, gauges their *latest* value (Prometheus
/// has no native notion of a backfilled series; use [`to_csv`] for the
/// full time-series), histograms as summaries.
#[must_use]
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_base = String::new();
    for (name, value) in &snapshot.counters {
        let (base, _) = split_dotted(name);
        if base != last_base {
            let _ = writeln!(out, "# TYPE lotus_{base} counter");
            last_base = base.to_string();
        }
        family_line(&mut out, name, value);
    }
    last_base.clear();
    for (name, series) in &snapshot.gauges {
        let (base, _) = split_dotted(name);
        if base != last_base {
            let _ = writeln!(out, "# TYPE lotus_{base} gauge");
            last_base = base.to_string();
        }
        family_line(&mut out, name, series.last().unwrap_or(0.0));
    }
    for (name, h) in &snapshot.histograms {
        let _ = writeln!(out, "# TYPE lotus_{name} summary");
        let _ = writeln!(out, "lotus_{name}{{quantile=\"0.5\"}} {}", h.p50_ns);
        let _ = writeln!(out, "lotus_{name}{{quantile=\"0.9\"}} {}", h.p90_ns);
        let _ = writeln!(out, "lotus_{name}{{quantile=\"0.99\"}} {}", h.p99_ns);
        let _ = writeln!(out, "lotus_{name}_sum {}", h.sum.as_nanos());
        let _ = writeln!(out, "lotus_{name}_count {}", h.count);
    }
    out
}

/// Renders the full snapshot — counters, complete gauge time-series, and
/// histogram summaries — as a pretty-printed JSON document.
#[must_use]
pub fn to_json(snapshot: &MetricsSnapshot) -> String {
    let counters = Content::Map(
        snapshot
            .counters
            .iter()
            .map(|(name, &v)| (name.clone(), Content::U64(v)))
            .collect(),
    );
    let gauges = Content::Map(
        snapshot
            .gauges
            .iter()
            .map(|(name, series)| {
                let samples = series
                    .samples()
                    .iter()
                    .map(|&(t, v)| Content::Seq(vec![Content::U64(t.as_nanos()), Content::F64(v)]))
                    .collect();
                (name.clone(), Content::Seq(samples))
            })
            .collect(),
    );
    let histograms = Content::Map(
        snapshot
            .histograms
            .iter()
            .map(|(name, h)| {
                (
                    name.clone(),
                    json!({
                        "count": h.count,
                        "sum_ns": h.sum.as_nanos(),
                        "mean_ns": h.mean_ns,
                        "p50_ns": h.p50_ns,
                        "p90_ns": h.p90_ns,
                        "p99_ns": h.p99_ns,
                    })
                    .0,
                )
            })
            .collect(),
    );
    let doc = Value(Content::Map(vec![
        (
            "horizon_ns".to_string(),
            Content::U64(snapshot.horizon().as_nanos()),
        ),
        ("counters".to_string(), counters),
        ("gauges".to_string(), gauges),
        ("histograms".to_string(), histograms),
    ]));
    let mut text = serde_json::to_string_pretty(&doc).expect("metrics snapshot serializes");
    text.push('\n');
    text
}

/// Renders every gauge time-series as CSV rows `metric,time_ns,value`,
/// sorted by metric name then sample order — the raw material for
/// external plotting of queue depths and utilization over virtual time.
#[must_use]
pub fn to_csv(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("metric,time_ns,value\n");
    for (name, series) in &snapshot.gauges {
        for &(t, v) in series.samples() {
            let _ = writeln!(out, "{name},{},{v}", t.as_nanos());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use lotus_sim::{Span, Time};

    use super::*;
    use crate::metrics::registry::MetricsRegistry;
    use crate::metrics::sink::names;

    fn sample_registry() -> Arc<MetricsRegistry> {
        let r = Arc::new(MetricsRegistry::new());
        r.inc_counter(names::BATCHES_PRODUCED, 7);
        r.inc_counter(&names::worker_busy(4243), 5_000_000);
        r.set_gauge("queue_depth.data_queue", Time::from_nanos(10), 2.0);
        r.set_gauge("queue_depth.data_queue", Time::from_nanos(20), 1.0);
        r.set_gauge(names::LIVE_WORKERS, Time::ZERO, 4.0);
        r.record_latency(names::T1_FETCH, Span::from_millis(5));
        r
    }

    #[test]
    fn prometheus_text_maps_dotted_names_to_labels() {
        let text = to_prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE lotus_batches_produced_total counter"));
        assert!(text.contains("lotus_batches_produced_total 7"));
        assert!(text.contains("lotus_worker_busy_ns{pid=\"4243\"} 5000000"));
        assert!(text.contains("lotus_queue_depth{queue=\"data_queue\"} 1"));
        assert!(text.contains("lotus_live_workers 4"));
        assert!(text.contains("# TYPE lotus_t1_batch_fetch_ns summary"));
        assert!(text.contains("lotus_t1_batch_fetch_ns_count 1"));
        assert!(text.contains("lotus_t1_batch_fetch_ns_sum 5000000"));
    }

    #[test]
    fn sampler_families_get_thread_labels_with_escaping() {
        let r = MetricsRegistry::new();
        // Thread names out of /proc/self/task/*/comm can carry dots,
        // slashes, quotes — anything but NUL. Dots survive inside the
        // label value because only the FIRST dot splits family/label.
        r.set_gauge("sampler_thread_cpu_ns.tokio.rt/w-1", Time::ZERO, 5.0);
        r.set_gauge("sampler_thread_cpu_ns.say\"hi\"", Time::ZERO, 7.0);
        r.set_gauge("sampler_ctx_switches_voluntary.io\\wq", Time::ZERO, 3.0);
        r.set_gauge("sampler_rss_kb", Time::ZERO, 1024.0);
        let text = to_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE lotus_sampler_thread_cpu_ns gauge"));
        assert!(text.contains("lotus_sampler_thread_cpu_ns{thread=\"tokio.rt/w-1\"} 5"));
        assert!(text.contains("lotus_sampler_thread_cpu_ns{thread=\"say\\\"hi\\\"\"} 7"));
        assert!(text.contains("lotus_sampler_ctx_switches_voluntary{thread=\"io\\\\wq\"} 3"));
        assert!(
            text.contains("lotus_sampler_rss_kb 1024"),
            "undotted name stays bare"
        );
    }

    #[test]
    fn label_values_escape_only_the_prometheus_specials() {
        assert_eq!(escape_label_value("plain-name_0"), "plain-name_0");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(escape_label_value("dots.and/slashes"), "dots.and/slashes");
    }

    #[test]
    fn json_snapshot_has_all_three_sections() {
        let text = to_json(&sample_registry().snapshot());
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(doc["counters"][names::BATCHES_PRODUCED].as_u64(), Some(7));
        let series = &doc["gauges"]["queue_depth.data_queue"];
        assert_eq!(series[0][0].as_u64(), Some(10));
        assert_eq!(series[1][1].as_f64(), Some(1.0));
        assert_eq!(
            doc["histograms"][names::T1_FETCH]["count"].as_u64(),
            Some(1)
        );
        assert_eq!(doc["horizon_ns"].as_u64(), Some(20));
    }

    #[test]
    fn csv_lists_gauge_series_in_order() {
        let text = to_csv(&sample_registry().snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "metric,time_ns,value");
        assert_eq!(lines[1], "live_workers,0,4");
        assert_eq!(lines[2], "queue_depth.data_queue,10,2");
        assert_eq!(lines[3], "queue_depth.data_queue,20,1");
    }

    #[test]
    fn exports_are_deterministic_across_identical_registries() {
        let a = sample_registry().snapshot();
        let b = sample_registry().snapshot();
        assert_eq!(to_prometheus(&a), to_prometheus(&b));
        assert_eq!(to_json(&a), to_json(&b));
        assert_eq!(to_csv(&a), to_csv(&b));
    }
}
