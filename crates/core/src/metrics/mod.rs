//! Live metrics and streaming trace sinks.
//!
//! The paper's offline pipeline — run, dump the trace, analyze — answers
//! "what happened?"; this module answers "what is happening?". Engine
//! hooks stream through a fan-out [`MultiSink`] into any combination of
//! backends: the classic LotusTrace log, Chrome/viz buffers, and a
//! [`MetricsSink`] that folds events into a [`MetricsRegistry`] of
//! counters, virtual-time gauge series, and latency histograms. The
//! registry exports to Prometheus text, JSON, and CSV
//! ([`export`]) and renders as a `lotus top` terminal dashboard
//! ([`dashboard`]).
//!
//! Determinism contract: every sample is stamped with virtual [`lotus_sim::Time`],
//! every map is ordered, and nothing consults the wall clock — two
//! identical seeded runs export byte-identical metrics.

pub mod dashboard;
pub mod export;
pub mod registry;
pub mod sink;

pub use dashboard::{render_dashboard, sparkline, utilization_bar, DashboardOptions};
pub use export::{to_csv, to_json, to_prometheus};
pub use registry::{GaugeSeries, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use sink::{names, ChromeSink, MetricsSink, MultiSink, TraceEvent, TraceSink, VizSink};
