//! `lotus top` — a terminal dashboard over a [`MetricsSnapshot`].
//!
//! Renders the live view of a pipeline run: per-queue depth sparklines
//! over virtual time, per-worker utilization bars (busy nanoseconds over
//! the run horizon), throughput, latency summaries, and the fault
//! counters. Pure function of the snapshot — deterministic, snapshot-
//! testable like [`crate::trace::viz`].

use std::fmt::Write as _;

use lotus_sim::Time;

use super::registry::{GaugeSeries, MetricsSnapshot};
use super::sink::names;

/// Sparkline glyphs, lowest to highest level.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
/// Utilization bar glyphs.
const BAR_FILL: char = '█';
const BAR_EMPTY: char = '░';

/// Rendering options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DashboardOptions {
    /// Characters available for sparklines and utilization bars.
    pub width: usize,
}

impl Default for DashboardOptions {
    fn default() -> Self {
        DashboardOptions { width: 48 }
    }
}

/// Renders one gauge series as a sparkline: the series is sampled at
/// `width` evenly spaced virtual-time points up to `horizon` (step-
/// function semantics) and scaled against its own maximum. Sample points
/// before the series' first recording clamp to that first value — a
/// series with one sample late in the horizon renders a solid line, not
/// a run of stale empty cells.
#[must_use]
pub fn sparkline(series: &GaugeSeries, horizon: Time, width: usize) -> String {
    assert!(width > 0, "sparkline width must be positive");
    let max = series.max();
    let first = series.samples().first().map_or(0.0, |&(_, v)| v);
    (0..width)
        .map(|i| {
            let at = Time::from_nanos(if width == 1 {
                horizon.as_nanos()
            } else {
                horizon.as_nanos() * i as u64 / (width as u64 - 1)
            });
            let v = series.value_at(at).unwrap_or(first);
            if max <= 0.0 {
                SPARKS[0]
            } else {
                let level = ((v / max) * (SPARKS.len() as f64 - 1.0)).round() as usize;
                SPARKS[level.min(SPARKS.len() - 1)]
            }
        })
        .collect()
}

/// Renders a `[0,1]` fraction as a filled bar of `width` cells.
#[must_use]
pub fn utilization_bar(fraction: f64, width: usize) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut bar = String::with_capacity(width * 3);
    for i in 0..width {
        bar.push(if i < filled { BAR_FILL } else { BAR_EMPTY });
    }
    bar
}

/// Renders the full dashboard.
#[must_use]
pub fn render_dashboard(snapshot: &MetricsSnapshot, options: DashboardOptions) -> String {
    let width = options.width.max(1);
    let horizon = snapshot.horizon();
    let mut out = String::new();
    let _ = writeln!(out, "lotus top — virtual time {horizon}");

    // Queue depths: every `queue_depth.*` gauge, plus the in-flight
    // inventory, as sparklines over the run horizon.
    let queue_gauges: Vec<(&String, &GaugeSeries)> = snapshot
        .gauges
        .iter()
        .filter(|(name, _)| name.starts_with(names::QUEUE_DEPTH_PREFIX))
        .collect();
    if !queue_gauges.is_empty() || snapshot.gauges.contains_key(names::IN_FLIGHT) {
        let _ = writeln!(out, "\nqueue depth");
        let label_w = queue_gauges
            .iter()
            .map(|(n, _)| n.len() - names::QUEUE_DEPTH_PREFIX.len())
            .chain(std::iter::once(names::IN_FLIGHT.len()))
            .max()
            .unwrap_or(0);
        for (name, series) in &queue_gauges {
            let short = &name[names::QUEUE_DEPTH_PREFIX.len()..];
            let _ = writeln!(
                out,
                "  {short:<label_w$}  {}  now {:.0}  max {:.0}",
                sparkline(series, horizon, width),
                series.last().unwrap_or(0.0),
                series.max(),
            );
        }
        if let Some(series) = snapshot.gauges.get(names::IN_FLIGHT) {
            let _ = writeln!(
                out,
                "  {:<label_w$}  {}  now {:.0}  max {:.0}",
                names::IN_FLIGHT,
                sparkline(series, horizon, width),
                series.last().unwrap_or(0.0),
                series.max(),
            );
        }
    }

    // Worker utilization: busy nanoseconds over the run horizon.
    let busy_prefix = "worker_busy_ns.";
    let busy: Vec<(&String, &u64)> = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with(busy_prefix))
        .collect();
    if !busy.is_empty() {
        let _ = writeln!(out, "\nworker utilization");
        for (name, &busy_ns) in &busy {
            let pid = &name[busy_prefix.len()..];
            let frac = if horizon > Time::ZERO {
                busy_ns as f64 / horizon.as_nanos() as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  worker {pid}  {}  {:5.1}%",
                utilization_bar(frac, width),
                frac * 100.0,
            );
        }
    }

    // OS sampler: per-thread CPU-time sparklines plus the resident-set
    // trail. Present only on profiled native runs.
    let cpu_prefix = "sampler_thread_cpu_ns.";
    let sampled: Vec<(&String, &GaugeSeries)> = snapshot
        .gauges
        .iter()
        .filter(|(name, _)| name.starts_with(cpu_prefix))
        .collect();
    if !sampled.is_empty() {
        let _ = writeln!(out, "\nsampler (per-thread CPU time)");
        let label_w = sampled
            .iter()
            .map(|(n, _)| n.len() - cpu_prefix.len())
            .max()
            .unwrap_or(0);
        for (name, series) in &sampled {
            let thread = &name[cpu_prefix.len()..];
            let _ = writeln!(
                out,
                "  {thread:<label_w$}  {}  {:.1}ms on-CPU",
                sparkline(series, horizon, width),
                series.last().unwrap_or(0.0) / 1e6,
            );
        }
        if let Some(series) = snapshot.gauges.get("sampler_rss_kb") {
            let _ = writeln!(
                out,
                "  rss now {:.0} kB  peak {:.0} kB",
                series.last().unwrap_or(0.0),
                series.max(),
            );
        }
    }

    // Storage tier: per-tier read/byte counters, seek totals, the T0
    // latency summary, and queue-depth sparklines. Present only when the
    // run modeled a storage hierarchy.
    let reads_prefix = "storage_reads_total.";
    let tiers: Vec<&String> = snapshot
        .counters
        .keys()
        .filter(|name| name.starts_with(reads_prefix))
        .collect();
    if !tiers.is_empty() {
        let _ = writeln!(out, "\nstorage");
        let label_w = tiers
            .iter()
            .map(|n| n.len() - reads_prefix.len())
            .max()
            .unwrap_or(0);
        for name in &tiers {
            let tier = &name[reads_prefix.len()..];
            let reads = snapshot.counters.get(*name).copied().unwrap_or(0);
            let bytes = snapshot
                .counters
                .get(&names::storage_bytes(tier))
                .copied()
                .unwrap_or(0);
            let _ = writeln!(
                out,
                "  {tier:<label_w$}  {reads} reads  {:.1} MiB",
                bytes as f64 / (1024.0 * 1024.0),
            );
            if let Some(series) = snapshot.gauges.get(&names::storage_queue_depth(tier)) {
                let _ = writeln!(
                    out,
                    "  {:<label_w$}  {}  depth now {:.0}  max {:.0}",
                    "",
                    sparkline(series, horizon, width),
                    series.last().unwrap_or(0.0),
                    series.max(),
                );
            }
        }
        let seeks = snapshot
            .counters
            .get(names::STORAGE_SEEKS)
            .copied()
            .unwrap_or(0);
        if let Some(h) = snapshot.histograms.get(names::T0_STORAGE) {
            let _ = writeln!(
                out,
                "  t0 fetch: p50 {:.2}ms  p99 {:.2}ms  n={}  seeks {seeks}",
                h.p50_ns / 1e6,
                h.p99_ns / 1e6,
                h.count,
            );
        }
    }

    // Throughput and latency.
    let consumed = snapshot
        .counters
        .get(names::BATCHES_CONSUMED)
        .copied()
        .unwrap_or(0);
    let samples = snapshot
        .counters
        .get(names::SAMPLES_CONSUMED)
        .copied()
        .unwrap_or(0);
    let _ = writeln!(out, "\nthroughput");
    if horizon > Time::ZERO {
        let _ = writeln!(
            out,
            "  {consumed} batches ({samples} samples), {:.1} batches/s",
            consumed as f64 / horizon.as_secs_f64(),
        );
    } else {
        let _ = writeln!(out, "  {consumed} batches ({samples} samples)");
    }
    if let Some(series) = snapshot.gauges.get(names::MAIN_WAIT_FRACTION) {
        let _ = writeln!(
            out,
            "  main wait fraction {:.3}",
            series.last().unwrap_or(0.0)
        );
    }
    for (hist, label) in [
        (names::T1_FETCH, "t1 fetch"),
        (names::T2_WAIT, "t2 wait"),
        (names::QUEUE_DELAY, "queue delay"),
    ] {
        if let Some(h) = snapshot.histograms.get(hist) {
            let _ = writeln!(
                out,
                "  {label}: p50 {:.2}ms  p99 {:.2}ms  n={}",
                h.p50_ns / 1e6,
                h.p99_ns / 1e6,
                h.count,
            );
        }
    }

    // Fault counters, only when something actually went wrong.
    let faults = snapshot
        .counters
        .get(names::FAULTS_INJECTED)
        .copied()
        .unwrap_or(0);
    let deaths = snapshot
        .counters
        .get(names::WORKER_DEATHS)
        .copied()
        .unwrap_or(0);
    let redispatches = snapshot
        .counters
        .get(names::REDISPATCHES)
        .copied()
        .unwrap_or(0);
    if faults + deaths + redispatches > 0 {
        let _ = writeln!(
            out,
            "\nfaults: {faults} injected, {deaths} worker deaths, {redispatches} redispatches"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use lotus_sim::Time;

    use super::*;
    use crate::metrics::registry::MetricsRegistry;

    #[test]
    fn sparkline_scales_to_its_own_max() {
        let r = MetricsRegistry::new();
        r.set_gauge("g", Time::from_nanos(0), 0.0);
        r.set_gauge("g", Time::from_nanos(50), 4.0);
        r.set_gauge("g", Time::from_nanos(100), 2.0);
        let s = sparkline(&r.gauge("g").unwrap(), Time::from_nanos(100), 8);
        assert_eq!(s.chars().count(), 8);
        assert_eq!(s.chars().next(), Some('▁'));
        assert!(s.contains('█'), "peak renders as the top glyph: {s}");
        assert_eq!(s.chars().last(), Some('▅'), "2.0 of max 4.0 is mid-level");
    }

    #[test]
    fn single_sample_series_renders_solid_not_stale() {
        // One recording late in the horizon: every cell before it must
        // clamp to that value instead of rendering stale empty cells.
        let r = MetricsRegistry::new();
        r.set_gauge("g", Time::from_nanos(90), 3.0);
        let s = sparkline(&r.gauge("g").unwrap(), Time::from_nanos(100), 8);
        assert_eq!(s, "████████");
    }

    #[test]
    fn dashboard_shows_sampler_section_when_gauges_present() {
        let r = MetricsRegistry::new();
        r.set_gauge(
            "sampler_thread_cpu_ns.dataloader0",
            Time::from_nanos(10_000_000),
            2_000_000.0,
        );
        r.set_gauge("sampler_rss_kb", Time::from_nanos(10_000_000), 24_000.0);
        let out = render_dashboard(&r.snapshot(), DashboardOptions { width: 8 });
        assert!(out.contains("sampler (per-thread CPU time)"));
        assert!(out.contains("dataloader0"));
        assert!(out.contains("2.0ms on-CPU"));
        assert!(out.contains("rss now 24000 kB  peak 24000 kB"));
    }

    #[test]
    fn dashboard_shows_storage_section_when_tiers_present() {
        let r = MetricsRegistry::new();
        r.inc_counter(&names::storage_reads("object-store"), 12);
        r.inc_counter(&names::storage_bytes("object-store"), 3 * 1024 * 1024);
        r.inc_counter(names::STORAGE_SEEKS, 4);
        r.set_gauge(
            &names::storage_queue_depth("object-store"),
            Time::from_nanos(5_000_000),
            2.0,
        );
        r.record_latency(names::T0_STORAGE, lotus_sim::Span::from_millis(5));
        let out = render_dashboard(&r.snapshot(), DashboardOptions { width: 8 });
        assert!(out.contains("\nstorage\n"), "storage section header: {out}");
        assert!(out.contains("object-store"));
        assert!(out.contains("12 reads  3.0 MiB"));
        assert!(out.contains("depth now 2  max 2"));
        assert!(out.contains("t0 fetch: p50 5.00ms"));
        assert!(out.contains("seeks 4"));
    }

    #[test]
    fn dashboard_without_storage_omits_the_section() {
        let r = MetricsRegistry::new();
        r.inc_counter(names::BATCHES_CONSUMED, 1);
        let out = render_dashboard(&r.snapshot(), DashboardOptions::default());
        assert!(!out.contains("\nstorage\n"));
    }

    #[test]
    fn empty_series_renders_flat() {
        let s = sparkline(&GaugeSeries::default(), Time::from_nanos(100), 5);
        assert_eq!(s, "▁▁▁▁▁");
    }

    #[test]
    fn utilization_bar_rounds_to_cells() {
        assert_eq!(utilization_bar(0.0, 4), "░░░░");
        assert_eq!(utilization_bar(0.5, 4), "██░░");
        assert_eq!(utilization_bar(1.0, 4), "████");
        assert_eq!(utilization_bar(7.0, 4), "████", "clamps above 1.0");
    }

    #[test]
    fn dashboard_renders_all_sections() {
        let r = MetricsRegistry::new();
        r.set_gauge("queue_depth.data_queue", Time::from_nanos(10), 2.0);
        r.set_gauge("queue_depth.data_queue", Time::from_nanos(1_000_000), 1.0);
        r.set_gauge(names::IN_FLIGHT, Time::from_nanos(5), 3.0);
        r.inc_counter("worker_busy_ns.4243", 500_000);
        r.inc_counter(names::BATCHES_CONSUMED, 10);
        r.inc_counter(names::SAMPLES_CONSUMED, 80);
        r.inc_counter(names::WORKER_DEATHS, 1);
        r.record_latency(names::T1_FETCH, lotus_sim::Span::from_millis(2));
        let out = render_dashboard(&r.snapshot(), DashboardOptions { width: 16 });
        assert!(out.contains("lotus top"));
        assert!(out.contains("queue depth"));
        assert!(out.contains("data_queue"));
        assert!(out.contains("in_flight_batches"));
        assert!(out.contains("worker 4243"));
        assert!(out.contains("throughput"));
        assert!(out.contains("10 batches (80 samples)"));
        assert!(out.contains("t1 fetch: p50"));
        assert!(out.contains("faults: 0 injected, 1 worker deaths"));
    }

    #[test]
    fn dashboard_never_renders_nan_for_the_wait_fraction() {
        use std::sync::Arc;

        use crate::metrics::sink::{MetricsSink, TraceEvent, TraceSink};
        use lotus_sim::Span;

        // A zero-duration wait completing at t=0 is the degenerate case
        // that used to divide 0/0; the sink must publish a finite 0.0 and
        // the dashboard must render it.
        let registry = Arc::new(MetricsRegistry::new());
        let sink = MetricsSink::new(Arc::clone(&registry), 1);
        let _ = sink.on_event(&TraceEvent::BatchWait {
            pid: 4242,
            batch_id: 0,
            start: Time::ZERO,
            dur: Span::ZERO,
            out_of_order: false,
            queue_delay: Span::ZERO,
        });
        let out = render_dashboard(&registry.snapshot(), DashboardOptions::default());
        assert!(
            out.contains("main wait fraction 0.000"),
            "degenerate wait renders a finite fraction: {out}"
        );
        assert!(
            !out.contains("NaN"),
            "no NaN anywhere in the dashboard: {out}"
        );
    }

    #[test]
    fn dashboard_of_empty_snapshot_is_calm() {
        let out = render_dashboard(
            &MetricsRegistry::new().snapshot(),
            DashboardOptions::default(),
        );
        assert!(out.contains("lotus top"));
        assert!(out.contains("0 batches (0 samples)"));
        assert!(!out.contains("faults:"));
    }
}
