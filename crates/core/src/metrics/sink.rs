//! Streaming trace sinks: incremental event delivery with per-sink
//! virtual-time overhead accounting.
//!
//! The pre-metrics design buffered a `Vec<TraceRecord>` and analyzed it
//! after the run. Here the data flow is inverted: the engine's
//! [`Tracer`] hooks are fanned out through a [`MultiSink`] to any number
//! of [`TraceSink`]s, each of which consumes events *as they happen* —
//! the log backend keeps recording, the Chrome/viz backends stream into
//! their buffers, and the [`MetricsSink`] folds events into live
//! counters, gauge time-series and latency histograms.
//!
//! Every sink self-accounts the virtual-time overhead it charges to the
//! traced program ([`TraceSink::overhead`]), so Table III-style
//! profiler-overhead comparisons can attribute cost sink by sink, and a
//! run with **no** sinks charges exactly zero (NullTracer parity).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lotus_dataflow::Tracer;
use lotus_sim::{ReadOutcome, Span, Time};

use super::registry::MetricsRegistry;
use crate::trace::{LotusTrace, SpanKind, TraceRecord};

/// Well-known metric names recorded by [`MetricsSink`].
pub mod names {
    /// Batches fully preprocessed by workers (\[T1\] completions).
    pub const BATCHES_PRODUCED: &str = "batches_produced_total";
    /// Batches consumed by the main process.
    pub const BATCHES_CONSUMED: &str = "batches_consumed_total";
    /// Samples consumed by the main process.
    pub const SAMPLES_CONSUMED: &str = "samples_consumed_total";
    /// Per-item preprocessing operations executed (\[T3\] events).
    pub const OPS: &str = "ops_total";
    /// Per-sample errors injected by the fault plan.
    pub const FAULTS_INJECTED: &str = "faults_injected_total";
    /// Worker deaths observed by the main process.
    pub const WORKER_DEATHS: &str = "worker_deaths_total";
    /// Orphaned batches re-sent to surviving workers.
    pub const REDISPATCHES: &str = "redispatches_total";
    /// Waits satisfied from the out-of-order pinned cache.
    pub const OOO_CACHE_HITS: &str = "ooo_cache_hits_total";
    /// Cumulative main-process wait, nanoseconds.
    pub const MAIN_WAIT_NS: &str = "main_wait_ns_total";

    /// Gauge: live DataLoader workers.
    pub const LIVE_WORKERS: &str = "live_workers";
    /// Gauge: fraction of elapsed virtual time the main process spent
    /// blocked waiting for a batch.
    pub const MAIN_WAIT_FRACTION: &str = "main_wait_fraction";
    /// Gauge: dispatched-but-unreturned batches (fed by the engine).
    pub const IN_FLIGHT: &str = "in_flight_batches";
    /// Gauge: out-of-order batches pinned in the main-process cache
    /// (fed by the engine).
    pub const PINNED_CACHE: &str = "pinned_cache_batches";
    /// Gauge: cumulative consumed batches over virtual time (the
    /// dashboard differentiates this series into throughput).
    pub const BATCHES_CONSUMED_SERIES: &str = "batches_consumed";
    /// Prefix of the per-queue depth gauges fed by the engine
    /// (`queue_depth.data_queue`, `queue_depth.index_queue_0`, …).
    pub const QUEUE_DEPTH_PREFIX: &str = "queue_depth.";

    /// Histogram: per-read storage fetch latency (\[T0\]).
    pub const T0_STORAGE: &str = "t0_storage_read_ns";
    /// Histogram: per-batch fetch latency (\[T1\]).
    pub const T1_FETCH: &str = "t1_batch_fetch_ns";
    /// Histogram: main-process wait latency (\[T2\]).
    pub const T2_WAIT: &str = "t2_batch_wait_ns";
    /// Histogram: per-operation latency (\[T3\]).
    pub const T3_OP: &str = "t3_op_ns";
    /// Histogram: shared-queue residency of delivered batches.
    pub const QUEUE_DELAY: &str = "queue_delay_ns";

    /// Counter: storage reads that required a device seek.
    pub const STORAGE_SEEKS: &str = "storage_seeks_total";

    /// Counter: batches a scheduling policy stole off their round-robin
    /// target worker.
    pub const STEALS: &str = "steals_total";
    /// Counter: batches a lane-aware policy classified into the slow lane.
    pub const LANE_SLOW: &str = "lane_slow_total";
    /// Counter: prefetch-window resizes by an adaptive policy.
    pub const PREFETCH_RESIZES: &str = "prefetch_resizes_total";
    /// Gauge: the adaptive policy's current per-worker prefetch target.
    pub const PREFETCH_TARGET: &str = "prefetch_target";

    /// Counter name for a worker's cumulative busy (fetch) nanoseconds.
    #[must_use]
    pub fn worker_busy(pid: u32) -> String {
        format!("worker_busy_ns.{pid}")
    }

    /// Counter name for reads served by a storage tier
    /// (`storage_reads_total.page-cache`, …).
    #[must_use]
    pub fn storage_reads(tier: &str) -> String {
        format!("storage_reads_total.{tier}")
    }

    /// Counter name for bytes served by a storage tier
    /// (`storage_bytes_total.object-store`, …).
    #[must_use]
    pub fn storage_bytes(tier: &str) -> String {
        format!("storage_bytes_total.{tier}")
    }

    /// Gauge name for a backing device's observed queue depth
    /// (`storage_queue_depth.local-disk`, …).
    #[must_use]
    pub fn storage_queue_depth(tier: &str) -> String {
        format!("storage_queue_depth.{tier}")
    }
}

/// One data-flow event, as delivered incrementally to every sink.
///
/// This is the streaming union of the [`Tracer`] hooks: span completions
/// (\[T1\]/\[T2\]/\[T3\] and consumption), the zero-duration fault marks,
/// and the engine's gauge feed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent<'a> {
    /// One preprocessing operation finished on a worker (\[T3\]).
    Op {
        /// Emitting worker pid.
        pid: u32,
        /// Batch the item belongs to.
        batch_id: u64,
        /// Operation name.
        name: &'a str,
        /// Span start.
        start: Time,
        /// Span duration.
        dur: Span,
    },
    /// A dataset storage read completed on a worker (\[T0\]).
    StorageRead {
        /// Emitting worker pid.
        pid: u32,
        /// Batch being fetched.
        batch_id: u64,
        /// Read start (request issue).
        start: Time,
        /// The storage hierarchy's full account of the read (tier, span,
        /// bytes, seek, observed queue depth).
        read: ReadOutcome,
    },
    /// A worker finished fetching a whole batch (\[T1\]).
    BatchPreprocessed {
        /// Emitting worker pid.
        pid: u32,
        /// Batch id.
        batch_id: u64,
        /// Span start.
        start: Time,
        /// Span duration.
        dur: Span,
    },
    /// The main process finished waiting for a batch (\[T2\]).
    BatchWait {
        /// Main-process pid.
        pid: u32,
        /// Batch id.
        batch_id: u64,
        /// Span start.
        start: Time,
        /// Span duration.
        dur: Span,
        /// Served from the pinned out-of-order cache.
        out_of_order: bool,
        /// Shared-queue residency of the delivered batch.
        queue_delay: Span,
    },
    /// The main process consumed a batch.
    BatchConsumed {
        /// Main-process pid.
        pid: u32,
        /// Batch id.
        batch_id: u64,
        /// Span start.
        start: Time,
        /// Span duration.
        dur: Span,
        /// Samples in the batch.
        batch_len: usize,
    },
    /// A fault plan injected an error into sample fetching.
    FaultInjected {
        /// Emitting worker pid.
        pid: u32,
        /// Batch being fetched.
        batch_id: u64,
        /// Operation the injected error reports.
        op: &'a str,
        /// Injection instant.
        at: Time,
    },
    /// The main process observed a worker's death.
    WorkerDied {
        /// The dead worker's pid.
        pid: u32,
        /// Observation instant.
        at: Time,
    },
    /// An orphaned batch was re-sent to a survivor.
    BatchRedispatched {
        /// Batch id.
        batch_id: u64,
        /// The dead owner's pid.
        from_pid: u32,
        /// The receiving survivor's pid.
        to_pid: u32,
        /// Redispatch instant.
        at: Time,
    },
    /// A scheduling policy stole a batch off its round-robin target.
    BatchStolen {
        /// Batch id.
        batch_id: u64,
        /// The round-robin target the batch was taken from.
        from_pid: u32,
        /// The worker that received it instead.
        to_pid: u32,
        /// Steal instant.
        at: Time,
    },
    /// A lane-aware policy classified a batch into a fast/slow lane.
    LaneAssigned {
        /// Batch id.
        batch_id: u64,
        /// Lane name (`"fast"` or `"slow"`).
        lane: &'a str,
        /// The worker that received the batch.
        to_pid: u32,
        /// Assignment instant.
        at: Time,
    },
    /// An adaptive policy resized the per-worker prefetch window.
    PrefetchResized {
        /// New per-worker prefetch target.
        target: usize,
        /// Resize instant.
        at: Time,
    },
    /// A named scalar sampled by the engine (queue depths, in-flight
    /// inventory).
    Gauge {
        /// Gauge name.
        name: &'a str,
        /// Sampled value.
        value: f64,
        /// Sampling instant.
        at: Time,
    },
}

impl TraceEvent<'_> {
    /// Converts a span/instant event to the log-record form; gauge
    /// samples have no record representation and return `None`.
    #[must_use]
    pub fn to_record(&self) -> Option<TraceRecord> {
        let (kind, pid, batch_id, start, duration, out_of_order, queue_delay) = match *self {
            TraceEvent::Op {
                pid,
                batch_id,
                name,
                start,
                dur,
            } => (
                SpanKind::Op(name.to_string()),
                pid,
                batch_id,
                start,
                dur,
                false,
                Span::ZERO,
            ),
            TraceEvent::StorageRead {
                pid,
                batch_id,
                start,
                read,
            } => (
                SpanKind::StorageRead(read.tier.as_str().to_string()),
                pid,
                batch_id,
                start,
                read.span,
                false,
                Span::ZERO,
            ),
            TraceEvent::BatchPreprocessed {
                pid,
                batch_id,
                start,
                dur,
            } => (
                SpanKind::BatchPreprocessed,
                pid,
                batch_id,
                start,
                dur,
                false,
                Span::ZERO,
            ),
            TraceEvent::BatchWait {
                pid,
                batch_id,
                start,
                dur,
                out_of_order,
                queue_delay,
            } => (
                SpanKind::BatchWait,
                pid,
                batch_id,
                start,
                dur,
                out_of_order,
                queue_delay,
            ),
            TraceEvent::BatchConsumed {
                pid,
                batch_id,
                start,
                dur,
                ..
            } => (
                SpanKind::BatchConsumed,
                pid,
                batch_id,
                start,
                dur,
                false,
                Span::ZERO,
            ),
            TraceEvent::FaultInjected {
                pid,
                batch_id,
                op,
                at,
            } => (
                SpanKind::FaultInjected(op.to_string()),
                pid,
                batch_id,
                at,
                Span::ZERO,
                false,
                Span::ZERO,
            ),
            TraceEvent::WorkerDied { pid, at } => (
                SpanKind::WorkerDied,
                pid,
                0,
                at,
                Span::ZERO,
                false,
                Span::ZERO,
            ),
            TraceEvent::BatchRedispatched {
                batch_id,
                to_pid,
                at,
                ..
            } => (
                SpanKind::BatchRedispatched,
                to_pid,
                batch_id,
                at,
                Span::ZERO,
                false,
                Span::ZERO,
            ),
            TraceEvent::BatchStolen {
                batch_id,
                to_pid,
                at,
                ..
            } => (
                SpanKind::BatchStolen,
                to_pid,
                batch_id,
                at,
                Span::ZERO,
                false,
                Span::ZERO,
            ),
            TraceEvent::LaneAssigned {
                batch_id,
                lane,
                to_pid,
                at,
            } => (
                SpanKind::LaneAssigned(lane.to_string()),
                to_pid,
                batch_id,
                at,
                Span::ZERO,
                false,
                Span::ZERO,
            ),
            // The resize target rides the batch-id slot (the label
            // notation is `SPrefetchResized_{target}`); the emitter is
            // always the main process.
            TraceEvent::PrefetchResized { target, at } => (
                SpanKind::PrefetchResized,
                4242,
                target as u64,
                at,
                Span::ZERO,
                false,
                Span::ZERO,
            ),
            TraceEvent::Gauge { .. } => return None,
        };
        Some(TraceRecord {
            kind,
            pid,
            batch_id,
            start,
            duration,
            out_of_order,
            queue_delay,
        })
    }
}

/// An incremental consumer of data-flow events.
///
/// `on_event` returns the virtual-time overhead the sink charges the
/// traced program for this event; implementations must also accumulate
/// everything they return so [`TraceSink::overhead`] reports their total
/// self-accounted cost (how Table III attributes overhead per backend).
pub trait TraceSink: Send + Sync {
    /// Stable sink name for overhead reports.
    fn name(&self) -> &str;

    /// Consumes one event, returning the overhead charged for it.
    fn on_event(&self, event: &TraceEvent<'_>) -> Span;

    /// Total virtual-time overhead this sink has charged so far.
    fn overhead(&self) -> Span;
}

/// The log backend is a sink: every span/instant event is appended to the
/// LotusTrace record log exactly as the direct [`Tracer`] wiring would,
/// and gauge samples are ignored (the paper's log format has no gauge
/// rows). Overhead is the tracer's own per-record charge.
impl TraceSink for LotusTrace {
    fn name(&self) -> &str {
        "lotus-trace"
    }

    fn on_event(&self, event: &TraceEvent<'_>) -> Span {
        match *event {
            TraceEvent::Op {
                pid,
                batch_id,
                name,
                start,
                dur,
            } => self.on_op(pid, batch_id, name, start, dur),
            TraceEvent::StorageRead {
                pid,
                batch_id,
                start,
                ref read,
            } => self.on_storage_read(pid, batch_id, start, read),
            TraceEvent::BatchPreprocessed {
                pid,
                batch_id,
                start,
                dur,
            } => self.on_batch_preprocessed(pid, batch_id, start, dur),
            TraceEvent::BatchWait {
                pid,
                batch_id,
                start,
                dur,
                out_of_order,
                queue_delay,
            } => self.on_batch_wait(pid, batch_id, start, dur, out_of_order, queue_delay),
            TraceEvent::BatchConsumed {
                pid,
                batch_id,
                start,
                dur,
                batch_len,
            } => self.on_batch_consumed(pid, batch_id, start, dur, batch_len),
            TraceEvent::FaultInjected {
                pid,
                batch_id,
                op,
                at,
            } => self.on_fault_injected(pid, batch_id, op, at),
            TraceEvent::WorkerDied { pid, at } => self.on_worker_died(pid, at),
            TraceEvent::BatchRedispatched {
                batch_id,
                from_pid,
                to_pid,
                at,
            } => self.on_batch_redispatched(batch_id, from_pid, to_pid, at),
            TraceEvent::BatchStolen {
                batch_id,
                from_pid,
                to_pid,
                at,
            } => self.on_batch_stolen(batch_id, from_pid, to_pid, at),
            TraceEvent::LaneAssigned {
                batch_id,
                lane,
                to_pid,
                at,
            } => self.on_lane_assigned(batch_id, lane, to_pid, at),
            TraceEvent::PrefetchResized { target, at } => self.on_prefetch_resized(target, at),
            TraceEvent::Gauge { .. } => Span::ZERO,
        }
    }

    fn overhead(&self) -> Span {
        self.charged_overhead()
    }
}

/// Streams events into the live metrics registry: counters, gauge
/// time-series (sampled in virtual time) and latency histograms.
#[derive(Debug)]
pub struct MetricsSink {
    registry: Arc<MetricsRegistry>,
    per_event_overhead: Span,
    charged_ns: AtomicU64,
    state: Mutex<MetricsState>,
}

#[derive(Debug)]
struct MetricsState {
    live_workers: usize,
    wait_ns_total: u64,
}

impl MetricsSink {
    /// Virtual-time cost charged per consumed event: two atomic bumps
    /// and a bucket increment — cheaper than formatting a log line.
    pub const DEFAULT_PER_EVENT_OVERHEAD: Span = Span::from_nanos(250);

    /// Creates a sink feeding `registry`, for a job with `workers`
    /// DataLoader workers (seeds the `live_workers` gauge).
    #[must_use]
    pub fn new(registry: Arc<MetricsRegistry>, workers: usize) -> MetricsSink {
        MetricsSink::with_overhead(registry, workers, MetricsSink::DEFAULT_PER_EVENT_OVERHEAD)
    }

    /// Creates a sink with an explicit per-event overhead (zero makes the
    /// metrics layer free, for overhead-ablation runs).
    #[must_use]
    pub fn with_overhead(
        registry: Arc<MetricsRegistry>,
        workers: usize,
        per_event_overhead: Span,
    ) -> MetricsSink {
        registry.set_gauge(names::LIVE_WORKERS, Time::ZERO, workers as f64);
        MetricsSink {
            registry,
            per_event_overhead,
            charged_ns: AtomicU64::new(0),
            state: Mutex::new(MetricsState {
                live_workers: workers,
                wait_ns_total: 0,
            }),
        }
    }

    /// The registry this sink feeds.
    #[must_use]
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    fn charge(&self) -> Span {
        self.charged_ns
            .fetch_add(self.per_event_overhead.as_nanos(), Ordering::Relaxed);
        self.per_event_overhead
    }
}

impl TraceSink for MetricsSink {
    fn name(&self) -> &str {
        "metrics"
    }

    fn on_event(&self, event: &TraceEvent<'_>) -> Span {
        let r = &self.registry;
        match *event {
            TraceEvent::Op { dur, .. } => {
                r.inc_counter(names::OPS, 1);
                r.record_latency(names::T3_OP, dur);
            }
            TraceEvent::StorageRead {
                start, ref read, ..
            } => {
                let tier = read.tier.as_str();
                r.inc_counter(&names::storage_reads(tier), 1);
                r.inc_counter(&names::storage_bytes(tier), read.bytes);
                if read.seek {
                    r.inc_counter(names::STORAGE_SEEKS, 1);
                }
                r.record_latency(names::T0_STORAGE, read.span);
                r.set_gauge(
                    &names::storage_queue_depth(tier),
                    start + read.span,
                    f64::from(read.queue_depth),
                );
            }
            TraceEvent::BatchPreprocessed { pid, dur, .. } => {
                r.inc_counter(names::BATCHES_PRODUCED, 1);
                r.inc_counter(&names::worker_busy(pid), dur.as_nanos());
                r.record_latency(names::T1_FETCH, dur);
            }
            TraceEvent::BatchWait {
                start,
                dur,
                out_of_order,
                queue_delay,
                ..
            } => {
                r.record_latency(names::T2_WAIT, dur);
                r.record_latency(names::QUEUE_DELAY, queue_delay);
                r.inc_counter(names::MAIN_WAIT_NS, dur.as_nanos());
                if out_of_order {
                    r.inc_counter(names::OOO_CACHE_HITS, 1);
                }
                let mut state = self.state.lock().expect("metrics sink poisoned");
                state.wait_ns_total += dur.as_nanos();
                let now = start + dur;
                // A zero-duration wait completing at t=0 would divide by
                // zero; always publish a finite fraction in [0, 1] so the
                // dashboard never renders NaN.
                let fraction = if now > Time::ZERO {
                    (state.wait_ns_total as f64 / now.as_nanos() as f64).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                r.set_gauge(names::MAIN_WAIT_FRACTION, now, fraction);
            }
            TraceEvent::BatchConsumed {
                start,
                dur,
                batch_len,
                ..
            } => {
                r.inc_counter(names::BATCHES_CONSUMED, 1);
                r.inc_counter(names::SAMPLES_CONSUMED, batch_len as u64);
                r.set_gauge(
                    names::BATCHES_CONSUMED_SERIES,
                    start + dur,
                    r.counter(names::BATCHES_CONSUMED) as f64,
                );
            }
            TraceEvent::FaultInjected { .. } => r.inc_counter(names::FAULTS_INJECTED, 1),
            TraceEvent::WorkerDied { at, .. } => {
                r.inc_counter(names::WORKER_DEATHS, 1);
                let mut state = self.state.lock().expect("metrics sink poisoned");
                state.live_workers = state.live_workers.saturating_sub(1);
                r.set_gauge(names::LIVE_WORKERS, at, state.live_workers as f64);
            }
            TraceEvent::BatchRedispatched { .. } => r.inc_counter(names::REDISPATCHES, 1),
            TraceEvent::BatchStolen { .. } => r.inc_counter(names::STEALS, 1),
            TraceEvent::LaneAssigned { lane, .. } => {
                if lane == "slow" {
                    r.inc_counter(names::LANE_SLOW, 1);
                }
            }
            TraceEvent::PrefetchResized { target, at } => {
                r.inc_counter(names::PREFETCH_RESIZES, 1);
                r.set_gauge(names::PREFETCH_TARGET, at, target as f64);
            }
            TraceEvent::Gauge { name, value, at } => {
                // Engine-internal samples piggyback on queue transitions
                // the engine already paid for; only span/instant events
                // carry the per-event fold cost.
                r.set_gauge(name, at, value);
                return Span::ZERO;
            }
        }
        self.charge()
    }

    fn overhead(&self) -> Span {
        Span::from_nanos(self.charged_ns.load(Ordering::Relaxed))
    }
}

/// A record-buffering sink core shared by the Chrome and viz backends.
#[derive(Debug, Default)]
struct RecordBuffer {
    records: Mutex<Vec<TraceRecord>>,
    charged_ns: AtomicU64,
}

impl RecordBuffer {
    fn consume(&self, event: &TraceEvent<'_>, per_event: Span) -> Span {
        let Some(record) = event.to_record() else {
            return Span::ZERO; // gauges have no span representation
        };
        self.records.lock().expect("sink poisoned").push(record);
        self.charged_ns
            .fetch_add(per_event.as_nanos(), Ordering::Relaxed);
        per_event
    }

    fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().expect("sink poisoned").clone()
    }

    fn overhead(&self) -> Span {
        Span::from_nanos(self.charged_ns.load(Ordering::Relaxed))
    }
}

/// Streams events into a buffer for Chrome-trace export
/// ([`crate::trace::chrome::to_chrome_trace`]). Charges a heavier
/// per-event cost than the plain log: each event is held as a structured
/// JSON candidate, the torch-profiler failure mode of Table III.
#[derive(Debug, Default)]
pub struct ChromeSink {
    buffer: RecordBuffer,
}

impl ChromeSink {
    /// Per-event virtual-time cost of structured-trace collection.
    pub const PER_EVENT_OVERHEAD: Span = Span::from_nanos(2_500);

    /// Creates an empty Chrome sink.
    #[must_use]
    pub fn new() -> ChromeSink {
        ChromeSink::default()
    }

    /// The records collected so far.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        self.buffer.records()
    }

    /// Exports the collected stream as a Chrome Trace Viewer document.
    #[must_use]
    pub fn to_chrome_trace(
        &self,
        options: crate::trace::chrome::ChromeTraceOptions,
    ) -> serde_json::Value {
        crate::trace::chrome::to_chrome_trace(&self.records(), options)
    }
}

impl TraceSink for ChromeSink {
    fn name(&self) -> &str {
        "chrome"
    }

    fn on_event(&self, event: &TraceEvent<'_>) -> Span {
        self.buffer.consume(event, ChromeSink::PER_EVENT_OVERHEAD)
    }

    fn overhead(&self) -> Span {
        self.buffer.overhead()
    }
}

/// Streams events into a buffer for ASCII-timeline rendering
/// ([`crate::trace::viz::render_timeline`]).
#[derive(Debug, Default)]
pub struct VizSink {
    buffer: RecordBuffer,
}

impl VizSink {
    /// Per-event virtual-time cost of timeline collection.
    pub const PER_EVENT_OVERHEAD: Span = Span::from_nanos(500);

    /// Creates an empty viz sink.
    #[must_use]
    pub fn new() -> VizSink {
        VizSink::default()
    }

    /// The records collected so far.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        self.buffer.records()
    }

    /// Renders the collected stream as an ASCII timeline.
    #[must_use]
    pub fn render(&self, options: crate::trace::viz::TimelineOptions) -> String {
        crate::trace::viz::render_timeline(&self.records(), options)
    }
}

impl TraceSink for VizSink {
    fn name(&self) -> &str {
        "viz"
    }

    fn on_event(&self, event: &TraceEvent<'_>) -> Span {
        self.buffer.consume(event, VizSink::PER_EVENT_OVERHEAD)
    }

    fn overhead(&self) -> Span {
        self.buffer.overhead()
    }
}

/// Fan-out [`Tracer`]: converts every engine hook into a [`TraceEvent`]
/// and delivers it to each registered sink in registration order,
/// charging the traced program the *sum* of the sinks' overheads.
///
/// An empty `MultiSink` is the no-sink configuration and charges exactly
/// zero everywhere — identical to [`lotus_dataflow::NullTracer`].
#[derive(Default)]
pub struct MultiSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl MultiSink {
    /// Creates a sink-less fan-out (charges zero, captures nothing).
    #[must_use]
    pub fn new() -> MultiSink {
        MultiSink::default()
    }

    /// Adds a sink (builder style).
    #[must_use]
    pub fn with(mut self, sink: Arc<dyn TraceSink>) -> MultiSink {
        self.sinks.push(sink);
        self
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: Arc<dyn TraceSink>) {
        self.sinks.push(sink);
    }

    /// The registered sinks, in delivery order.
    #[must_use]
    pub fn sinks(&self) -> &[Arc<dyn TraceSink>] {
        &self.sinks
    }

    /// Per-sink self-accounted overhead totals, in delivery order.
    #[must_use]
    pub fn overheads(&self) -> Vec<(String, Span)> {
        self.sinks
            .iter()
            .map(|s| (s.name().to_string(), s.overhead()))
            .collect()
    }

    fn fan_out(&self, event: &TraceEvent<'_>) -> Span {
        self.sinks.iter().map(|s| s.on_event(event)).sum()
    }
}

impl std::fmt::Debug for MultiSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiSink")
            .field(
                "sinks",
                &self.sinks.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Tracer for MultiSink {
    fn on_op(&self, pid: u32, batch_id: u64, name: &str, start: Time, dur: Span) -> Span {
        self.fan_out(&TraceEvent::Op {
            pid,
            batch_id,
            name,
            start,
            dur,
        })
    }

    fn on_storage_read(&self, pid: u32, batch_id: u64, start: Time, read: &ReadOutcome) -> Span {
        self.fan_out(&TraceEvent::StorageRead {
            pid,
            batch_id,
            start,
            read: *read,
        })
    }

    fn on_batch_preprocessed(&self, pid: u32, batch_id: u64, start: Time, dur: Span) -> Span {
        self.fan_out(&TraceEvent::BatchPreprocessed {
            pid,
            batch_id,
            start,
            dur,
        })
    }

    fn on_batch_wait(
        &self,
        pid: u32,
        batch_id: u64,
        start: Time,
        dur: Span,
        out_of_order: bool,
        queue_delay: Span,
    ) -> Span {
        self.fan_out(&TraceEvent::BatchWait {
            pid,
            batch_id,
            start,
            dur,
            out_of_order,
            queue_delay,
        })
    }

    fn on_batch_consumed(
        &self,
        pid: u32,
        batch_id: u64,
        start: Time,
        dur: Span,
        batch_len: usize,
    ) -> Span {
        self.fan_out(&TraceEvent::BatchConsumed {
            pid,
            batch_id,
            start,
            dur,
            batch_len,
        })
    }

    fn on_fault_injected(&self, pid: u32, batch_id: u64, op: &str, at: Time) -> Span {
        self.fan_out(&TraceEvent::FaultInjected {
            pid,
            batch_id,
            op,
            at,
        })
    }

    fn on_worker_died(&self, pid: u32, at: Time) -> Span {
        self.fan_out(&TraceEvent::WorkerDied { pid, at })
    }

    fn on_batch_redispatched(&self, batch_id: u64, from_pid: u32, to_pid: u32, at: Time) -> Span {
        self.fan_out(&TraceEvent::BatchRedispatched {
            batch_id,
            from_pid,
            to_pid,
            at,
        })
    }

    fn on_batch_stolen(&self, batch_id: u64, from_pid: u32, to_pid: u32, at: Time) -> Span {
        self.fan_out(&TraceEvent::BatchStolen {
            batch_id,
            from_pid,
            to_pid,
            at,
        })
    }

    fn on_lane_assigned(&self, batch_id: u64, lane: &str, to_pid: u32, at: Time) -> Span {
        self.fan_out(&TraceEvent::LaneAssigned {
            batch_id,
            lane,
            to_pid,
            at,
        })
    }

    fn on_prefetch_resized(&self, target: usize, at: Time) -> Span {
        self.fan_out(&TraceEvent::PrefetchResized { target, at })
    }

    fn on_gauge(&self, name: &str, value: f64, at: Time) -> Span {
        self.fan_out(&TraceEvent::Gauge { name, value, at })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(sink: &dyn TraceSink) -> Span {
        let mut total = Span::ZERO;
        total += sink.on_event(&TraceEvent::Op {
            pid: 4243,
            batch_id: 0,
            name: "Loader",
            start: Time::ZERO,
            dur: Span::from_millis(2),
        });
        total += sink.on_event(&TraceEvent::BatchPreprocessed {
            pid: 4243,
            batch_id: 0,
            start: Time::ZERO,
            dur: Span::from_millis(5),
        });
        total += sink.on_event(&TraceEvent::BatchWait {
            pid: 4242,
            batch_id: 0,
            start: Time::from_nanos(1_000),
            dur: Span::from_millis(1),
            out_of_order: false,
            queue_delay: Span::from_micros(40),
        });
        total += sink.on_event(&TraceEvent::BatchConsumed {
            pid: 4242,
            batch_id: 0,
            start: Time::from_nanos(2_000_000),
            dur: Span::from_millis(1),
            batch_len: 8,
        });
        total += sink.on_event(&TraceEvent::Gauge {
            name: "queue_depth.data_queue",
            value: 2.0,
            at: Time::from_nanos(500),
        });
        total
    }

    #[test]
    fn lotus_trace_sink_matches_direct_tracer_wiring() {
        let direct = LotusTrace::new();
        let _ = direct.on_op(4243, 0, "Loader", Time::ZERO, Span::from_millis(2));
        let _ = direct.on_batch_preprocessed(4243, 0, Time::ZERO, Span::from_millis(5));
        let _ = direct.on_batch_wait(
            4242,
            0,
            Time::from_nanos(1_000),
            Span::from_millis(1),
            false,
            Span::from_micros(40),
        );
        let _ = direct.on_batch_consumed(
            4242,
            0,
            Time::from_nanos(2_000_000),
            Span::from_millis(1),
            8,
        );

        let streamed = LotusTrace::new();
        let charged = feed(&streamed);
        assert_eq!(streamed.records(), direct.records());
        // The gauge sample costs nothing and records nothing.
        assert_eq!(charged, streamed.charged_overhead());
        assert_eq!(charged, TraceSink::overhead(&streamed));
    }

    #[test]
    fn metrics_sink_folds_events_into_the_registry() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = MetricsSink::new(Arc::clone(&registry), 4);
        let charged = feed(&sink);
        assert_eq!(registry.counter(names::OPS), 1);
        assert_eq!(registry.counter(names::BATCHES_PRODUCED), 1);
        assert_eq!(registry.counter(names::BATCHES_CONSUMED), 1);
        assert_eq!(registry.counter(names::SAMPLES_CONSUMED), 8);
        assert_eq!(
            registry.counter(&names::worker_busy(4243)),
            Span::from_millis(5).as_nanos()
        );
        assert_eq!(registry.latency_summary_ms(names::T1_FETCH).count, 1);
        assert_eq!(registry.latency_summary_ms(names::T2_WAIT).count, 1);
        assert_eq!(
            registry.gauge("queue_depth.data_queue").unwrap().last(),
            Some(2.0)
        );
        assert_eq!(
            registry.gauge(names::LIVE_WORKERS).unwrap().last(),
            Some(4.0)
        );
        // 4 span events at the default per-event cost (the gauge sample
        // is free), all self-accounted.
        assert_eq!(charged, MetricsSink::DEFAULT_PER_EVENT_OVERHEAD * 4);
        assert_eq!(sink.overhead(), charged);
    }

    #[test]
    fn storage_reads_fold_into_per_tier_metrics_and_records() {
        let event = TraceEvent::StorageRead {
            pid: 4243,
            batch_id: 2,
            start: Time::from_nanos(1_000),
            read: ReadOutcome {
                tier: lotus_sim::StorageTier::LocalDisk,
                span: Span::from_micros(700),
                bytes: 131_072,
                seek: true,
                queue_depth: 3,
            },
        };

        let registry = Arc::new(MetricsRegistry::new());
        let sink = MetricsSink::new(Arc::clone(&registry), 2);
        let _ = sink.on_event(&event);
        assert_eq!(registry.counter(&names::storage_reads("local-disk")), 1);
        assert_eq!(
            registry.counter(&names::storage_bytes("local-disk")),
            131_072
        );
        assert_eq!(registry.counter(names::STORAGE_SEEKS), 1);
        assert_eq!(registry.latency_summary_ms(names::T0_STORAGE).count, 1);
        assert_eq!(
            registry
                .gauge(&names::storage_queue_depth("local-disk"))
                .unwrap()
                .last(),
            Some(3.0)
        );

        let record = event.to_record().unwrap();
        assert_eq!(record.kind, SpanKind::StorageRead("local-disk".into()));
        assert_eq!(record.duration, Span::from_micros(700));
        assert_eq!(record.batch_id, 2);

        // The fan-out delivers the hook to log sinks too.
        let trace = Arc::new(LotusTrace::new());
        let multi = MultiSink::new().with(Arc::clone(&trace) as Arc<dyn TraceSink>);
        let read = ReadOutcome {
            tier: lotus_sim::StorageTier::PageCache,
            span: Span::from_micros(2),
            bytes: 4_096,
            seek: false,
            queue_depth: 0,
        };
        let _ = multi.on_storage_read(4243, 0, Time::ZERO, &read);
        assert_eq!(
            trace.records()[0].kind,
            SpanKind::StorageRead("page-cache".into())
        );
    }

    #[test]
    fn worker_death_decrements_live_workers_and_counts() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = MetricsSink::new(Arc::clone(&registry), 2);
        let _ = sink.on_event(&TraceEvent::WorkerDied {
            pid: 4244,
            at: Time::from_nanos(50),
        });
        let _ = sink.on_event(&TraceEvent::FaultInjected {
            pid: 4243,
            batch_id: 3,
            op: "Decode",
            at: Time::from_nanos(60),
        });
        let _ = sink.on_event(&TraceEvent::BatchRedispatched {
            batch_id: 3,
            from_pid: 4244,
            to_pid: 4243,
            at: Time::from_nanos(70),
        });
        assert_eq!(registry.counter(names::WORKER_DEATHS), 1);
        assert_eq!(registry.counter(names::FAULTS_INJECTED), 1);
        assert_eq!(registry.counter(names::REDISPATCHES), 1);
        let live = registry.gauge(names::LIVE_WORKERS).unwrap();
        assert_eq!(
            live.samples(),
            &[(Time::ZERO, 2.0), (Time::from_nanos(50), 1.0)]
        );
    }

    #[test]
    fn chrome_and_viz_sinks_buffer_spans_but_not_gauges() {
        let chrome = ChromeSink::new();
        let viz = VizSink::new();
        let chrome_charge = feed(&chrome);
        let viz_charge = feed(&viz);
        // 4 span events, 1 gauge: the gauge is dropped and costs nothing.
        assert_eq!(chrome.records().len(), 4);
        assert_eq!(viz.records().len(), 4);
        assert_eq!(chrome_charge, ChromeSink::PER_EVENT_OVERHEAD * 4);
        assert_eq!(viz_charge, VizSink::PER_EVENT_OVERHEAD * 4);
        assert_eq!(chrome.overhead(), chrome_charge);
        assert_eq!(viz.overhead(), viz_charge);
        let doc = chrome.to_chrome_trace(crate::trace::chrome::ChromeTraceOptions { coarse: true });
        assert!(doc["traceEvents"].as_array().is_some());
        let timeline = viz.render(crate::trace::viz::TimelineOptions::default());
        assert!(timeline.contains("main 4242"));
    }

    #[test]
    fn multi_sink_sums_overheads_and_empty_is_free() {
        let empty = MultiSink::new();
        assert_eq!(
            empty.on_batch_preprocessed(1, 0, Time::ZERO, Span::from_millis(1)),
            Span::ZERO
        );
        assert_eq!(
            empty.on_gauge("queue_depth.data_queue", 1.0, Time::ZERO),
            Span::ZERO
        );
        assert!(empty.overheads().is_empty());

        let registry = Arc::new(MetricsRegistry::new());
        let trace = Arc::new(LotusTrace::new());
        let metrics = Arc::new(MetricsSink::new(Arc::clone(&registry), 1));
        let multi = MultiSink::new()
            .with(Arc::clone(&trace) as Arc<dyn TraceSink>)
            .with(Arc::clone(&metrics) as Arc<dyn TraceSink>);
        let oh = multi.on_batch_preprocessed(4243, 0, Time::ZERO, Span::from_millis(1));
        assert_eq!(
            oh,
            trace.charged_overhead() + metrics.overhead(),
            "fan-out charges the sum of sink overheads"
        );
        assert_eq!(trace.len(), 1);
        assert_eq!(registry.counter(names::BATCHES_PRODUCED), 1);
        let overheads = multi.overheads();
        assert_eq!(overheads[0].0, "lotus-trace");
        assert_eq!(overheads[1].0, "metrics");
    }

    #[test]
    fn scheduling_events_fold_into_counters_and_records() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = MetricsSink::new(Arc::clone(&registry), 2);
        let _ = sink.on_event(&TraceEvent::BatchStolen {
            batch_id: 7,
            from_pid: 4243,
            to_pid: 4244,
            at: Time::from_nanos(10),
        });
        let _ = sink.on_event(&TraceEvent::LaneAssigned {
            batch_id: 7,
            lane: "slow",
            to_pid: 4244,
            at: Time::from_nanos(10),
        });
        let _ = sink.on_event(&TraceEvent::LaneAssigned {
            batch_id: 8,
            lane: "fast",
            to_pid: 4243,
            at: Time::from_nanos(20),
        });
        let _ = sink.on_event(&TraceEvent::PrefetchResized {
            target: 3,
            at: Time::from_nanos(30),
        });
        assert_eq!(registry.counter(names::STEALS), 1);
        assert_eq!(
            registry.counter(names::LANE_SLOW),
            1,
            "fast lane not counted"
        );
        assert_eq!(registry.counter(names::PREFETCH_RESIZES), 1);
        assert_eq!(
            registry.gauge(names::PREFETCH_TARGET).unwrap().last(),
            Some(3.0)
        );

        let stolen = TraceEvent::BatchStolen {
            batch_id: 7,
            from_pid: 4243,
            to_pid: 4244,
            at: Time::from_nanos(10),
        }
        .to_record()
        .unwrap();
        assert_eq!(stolen.kind, SpanKind::BatchStolen);
        assert_eq!(stolen.pid, 4244, "steal records the receiving worker");
        let lane = TraceEvent::LaneAssigned {
            batch_id: 7,
            lane: "slow",
            to_pid: 4244,
            at: Time::from_nanos(10),
        }
        .to_record()
        .unwrap();
        assert_eq!(lane.kind, SpanKind::LaneAssigned("slow".into()));
        let resized = TraceEvent::PrefetchResized {
            target: 3,
            at: Time::from_nanos(30),
        }
        .to_record()
        .unwrap();
        assert_eq!(resized.kind, SpanKind::PrefetchResized);
        assert_eq!(resized.batch_id, 3, "target rides the batch-id slot");
        assert_eq!(resized.pid, 4242, "resize is a main-process event");
    }

    #[test]
    fn wait_fraction_gauge_is_always_finite_and_clamped() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = MetricsSink::new(Arc::clone(&registry), 1);
        // A zero-duration wait completing at t=0 must not divide by zero.
        let _ = sink.on_event(&TraceEvent::BatchWait {
            pid: 4242,
            batch_id: 0,
            start: Time::ZERO,
            dur: Span::ZERO,
            out_of_order: false,
            queue_delay: Span::ZERO,
        });
        assert_eq!(
            registry.gauge(names::MAIN_WAIT_FRACTION).unwrap().last(),
            Some(0.0)
        );
        // Waiting for the whole elapsed window pins the fraction at 1.
        let _ = sink.on_event(&TraceEvent::BatchWait {
            pid: 4242,
            batch_id: 1,
            start: Time::ZERO,
            dur: Span::from_millis(1),
            out_of_order: false,
            queue_delay: Span::ZERO,
        });
        let samples = registry.gauge(names::MAIN_WAIT_FRACTION).unwrap();
        let last = samples.last().unwrap();
        assert!(last.is_finite());
        assert!((0.0..=1.0).contains(&last));
        assert_eq!(last, 1.0);
    }

    #[test]
    fn instant_events_round_trip_to_records() {
        let e = TraceEvent::BatchRedispatched {
            batch_id: 9,
            from_pid: 4244,
            to_pid: 4245,
            at: Time::from_nanos(30),
        };
        let r = e.to_record().unwrap();
        assert_eq!(r.kind, SpanKind::BatchRedispatched);
        assert_eq!(r.pid, 4245, "redispatch records the receiving worker");
        assert!(TraceEvent::Gauge {
            name: "x",
            value: 1.0,
            at: Time::ZERO
        }
        .to_record()
        .is_none());
    }
}
