//! The metrics registry: named counters, virtual-time-sampled gauge
//! series, and latency histograms.
//!
//! Everything is keyed by `BTreeMap`, every gauge sample is stamped with
//! the virtual [`Time`] it was observed at, and no wall-clock or random
//! state is involved anywhere — two identical seeded runs therefore
//! produce **bit-identical** registries, and bit-identical exports.

use std::collections::BTreeMap;
use std::sync::Mutex;

use lotus_data::stats::Summary;
use lotus_sim::{Span, Time};

use crate::trace::hist::LogHistogram;

/// One gauge time-series: `(Time, value)` samples in emission order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GaugeSeries {
    samples: Vec<(Time, f64)>,
}

impl GaugeSeries {
    /// Appends a sample. Consecutive samples with the same value are
    /// collapsed (the series is a step function; repeating the level adds
    /// no information and would grow memory with every queue poll).
    fn push(&mut self, at: Time, value: f64) {
        if self.samples.last().is_some_and(|&(_, v)| v == value) {
            return;
        }
        self.samples.push((at, value));
    }

    /// The raw samples, in emission order.
    #[must_use]
    pub fn samples(&self) -> &[(Time, f64)] {
        &self.samples
    }

    /// The most recent value, if any sample was recorded.
    #[must_use]
    pub fn last(&self) -> Option<f64> {
        self.samples.last().map(|&(_, v)| v)
    }

    /// The value in effect at virtual time `at`: the last sample at or
    /// before `at` (step-function semantics). `None` before the first
    /// sample.
    #[must_use]
    pub fn value_at(&self, at: Time) -> Option<f64> {
        self.samples
            .iter()
            .take_while(|&&(t, _)| t <= at)
            .last()
            .map(|&(_, v)| v)
    }

    /// The largest sampled value, or 0.0 when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.samples.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// The time of the last sample, if any.
    #[must_use]
    pub fn last_time(&self) -> Option<Time> {
        self.samples.last().map(|&(t, _)| t)
    }
}

/// Point-in-time summary of one latency histogram (nanosecond units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded durations.
    pub count: u64,
    /// Exact sum of all recorded durations.
    pub sum: Span,
    /// Exact mean, ns.
    pub mean_ns: f64,
    /// Approximate median, ns.
    pub p50_ns: f64,
    /// Approximate 90th percentile, ns.
    pub p90_ns: f64,
    /// Approximate 99th percentile, ns.
    pub p99_ns: f64,
}

/// A consistent copy of the whole registry, for exporters and the
/// dashboard. Maps are ordered, so iteration (and any serialization) is
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Gauge time-series.
    pub gauges: BTreeMap<String, GaugeSeries>,
    /// Latency histogram summaries.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The latest virtual time observed across all gauge series (the
    /// registry's notion of "now"). `Time::ZERO` when no gauge was set.
    #[must_use]
    pub fn horizon(&self) -> Time {
        self.gauges
            .values()
            .filter_map(GaugeSeries::last_time)
            .max()
            .unwrap_or(Time::ZERO)
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, GaugeSeries>,
    histograms: BTreeMap<String, LogHistogram>,
}

/// Thread-safe registry of counters, gauges, and latency histograms for
/// one run. Handed to a [`crate::metrics::MetricsSink`] for live
/// population and to the exporters ([`crate::metrics::export`]) and
/// dashboard ([`crate::metrics::dashboard`]) for read-out.
///
/// # Examples
///
/// ```
/// use lotus_core::metrics::MetricsRegistry;
/// use lotus_sim::{Span, Time};
///
/// let registry = MetricsRegistry::new();
/// registry.inc_counter("batches_consumed_total", 3);
/// registry.set_gauge("queue_depth.data_queue", Time::ZERO, 2.0);
/// registry.record_latency("t2_batch_wait_ns", Span::from_micros(150));
///
/// let snapshot = registry.snapshot();
/// assert_eq!(snapshot.counters["batches_consumed_total"], 3);
/// assert_eq!(snapshot.gauges["queue_depth.data_queue"].last(), Some(2.0));
/// assert_eq!(snapshot.histograms["t2_batch_wait_ns"].count, 1);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero.
    pub fn inc_counter(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of a counter (zero if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("registry poisoned");
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a gauge sample at virtual time `at`.
    pub fn set_gauge(&self, name: &str, at: Time, value: f64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .gauges
            .entry(name.to_string())
            .or_default()
            .push(at, value);
    }

    /// A copy of the named gauge series, if it exists.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<GaugeSeries> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner.gauges.get(name).cloned()
    }

    /// The gauge value in effect at virtual time `at` (step-function
    /// lookup). `None` for an unknown gauge or a time before its first
    /// sample.
    #[must_use]
    pub fn gauge_at(&self, name: &str, at: Time) -> Option<f64> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner.gauges.get(name).and_then(|g| g.value_at(at))
    }

    /// Records one duration into the named latency histogram.
    pub fn record_latency(&self, name: &str, dur: Span) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(dur);
    }

    /// Millisecond summary of the named histogram (all-zero when the
    /// histogram is missing or empty — an all-faulted run still exports).
    #[must_use]
    pub fn latency_summary_ms(&self, name: &str) -> Summary {
        let inner = self.inner.lock().expect("registry poisoned");
        inner
            .histograms
            .get(name)
            .map(LogHistogram::summary_ms)
            .unwrap_or_else(|| LogHistogram::new().summary_ms())
    }

    /// Takes a consistent, deterministic snapshot of everything.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        HistogramSnapshot {
                            count: h.count(),
                            sum: h.total(),
                            mean_ns: h.mean_ns(),
                            p50_ns: h.percentile_ns(50.0),
                            p90_ns: h.percentile_ns(90.0),
                            p99_ns: h.percentile_ns(99.0),
                        },
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_from_zero() {
        let r = MetricsRegistry::new();
        assert_eq!(r.counter("batches_produced_total"), 0);
        r.inc_counter("batches_produced_total", 2);
        r.inc_counter("batches_produced_total", 3);
        assert_eq!(r.counter("batches_produced_total"), 5);
    }

    #[test]
    fn gauge_series_are_step_functions() {
        let r = MetricsRegistry::new();
        let g = "queue_depth.data_queue";
        r.set_gauge(g, Time::from_nanos(10), 1.0);
        r.set_gauge(g, Time::from_nanos(20), 3.0);
        r.set_gauge(g, Time::from_nanos(30), 0.0);
        let series = r.gauge(g).unwrap();
        assert_eq!(series.samples().len(), 3);
        assert_eq!(series.last(), Some(0.0));
        assert_eq!(series.max(), 3.0);
        assert_eq!(r.gauge_at(g, Time::from_nanos(5)), None);
        assert_eq!(r.gauge_at(g, Time::from_nanos(10)), Some(1.0));
        assert_eq!(r.gauge_at(g, Time::from_nanos(25)), Some(3.0));
        assert_eq!(r.gauge_at(g, Time::from_nanos(999)), Some(0.0));
    }

    #[test]
    fn repeated_gauge_levels_are_collapsed() {
        let r = MetricsRegistry::new();
        for t in 0..100u64 {
            r.set_gauge("in_flight_batches", Time::from_nanos(t), 4.0);
        }
        assert_eq!(r.gauge("in_flight_batches").unwrap().samples().len(), 1);
    }

    #[test]
    fn latency_histograms_summarize_and_snapshot() {
        let r = MetricsRegistry::new();
        for ms in [1u64, 2, 3] {
            r.record_latency("t1_batch_preprocess_ns", Span::from_millis(ms));
        }
        let s = r.latency_summary_ms("t1_batch_preprocess_ns");
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-9);
        // Missing histograms summarize to zero instead of panicking.
        assert_eq!(r.latency_summary_ms("t2_batch_wait_ns").count, 0);

        let snap = r.snapshot();
        let h = &snap.histograms["t1_batch_preprocess_ns"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, Span::from_millis(6));
        assert!(h.p50_ns > 0.0);
    }

    #[test]
    fn snapshot_horizon_tracks_latest_gauge_sample() {
        let r = MetricsRegistry::new();
        assert_eq!(r.snapshot().horizon(), Time::ZERO);
        r.set_gauge("a", Time::from_nanos(5), 1.0);
        r.set_gauge("b", Time::from_nanos(9), 1.0);
        assert_eq!(r.snapshot().horizon(), Time::from_nanos(9));
    }
}
