//! A scoped-thread job pool for independent deterministic simulations.
//!
//! Jobs are claimed from a shared queue by worker threads, but results
//! are joined **by submission index, never by completion order** — the
//! caller always sees the same `Vec<T>` a serial loop would have built,
//! so every downstream consumer (report orders, pruning replays, JSON
//! exports) stays byte-identical no matter how the OS schedules the
//! threads. Built on [`std::thread::scope`]: no extra dependencies, and
//! jobs may borrow from the caller's stack.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default fan-out width: the machine's available parallelism, or 1
/// when it cannot be queried.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// One slot of the job queue: the pending closure, then (after a worker
/// claimed and ran it) its result.
enum Slot<F, T> {
    Pending(F),
    Claimed,
    Done(T),
}

/// Runs every task and returns their results **in submission order**.
///
/// With `jobs <= 1` (or fewer than two tasks) this degenerates to a
/// plain serial loop on the calling thread — no threads are spawned, so
/// a `--jobs 1` run is exactly the code path a pre-parallel build took.
/// Otherwise `min(jobs, tasks.len())` scoped OS threads claim tasks
/// greedily and write results into the per-index slot they claimed.
///
/// # Panics
///
/// Propagates the first panicking task's payload (via
/// [`std::thread::scope`]'s join).
///
/// # Examples
///
/// ```
/// use lotus_core::exec::run_jobs;
///
/// let tasks: Vec<_> = (0..8u64).map(|i| move || i * i).collect();
/// assert_eq!(run_jobs(4, tasks), vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_jobs<F, T>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    if jobs <= 1 || tasks.len() <= 1 {
        return tasks.into_iter().map(|task| task()).collect();
    }
    let threads = jobs.min(tasks.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Slot<F, T>>> = tasks
        .into_iter()
        .map(|task| Mutex::new(Slot::Pending(task)))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(slot) = slots.get(index) else { break };
                let Slot::Pending(task) =
                    std::mem::replace(&mut *slot.lock().expect("job slot"), Slot::Claimed)
                else {
                    unreachable!("slot {index} claimed twice");
                };
                // The lock is dropped while the task runs: claiming and
                // publishing are the only critical sections.
                let result = task();
                *slot.lock().expect("job slot") = Slot::Done(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| match slot.into_inner().expect("job slot") {
            Slot::Done(result) => result,
            _ => unreachable!("scope joined with an unfinished slot"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn joins_by_submission_index_under_artificial_delays() {
        // Earlier submissions sleep *longer*, so completion order is the
        // reverse of submission order — the join must still return
        // submission order.
        let n = 8usize;
        let tasks: Vec<_> = (0..n)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_millis(5 * (n - i) as u64));
                    i
                }
            })
            .collect();
        assert_eq!(run_jobs(n, tasks), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_jobs(1, (0..32u64).map(|i| move || i * 3 + 1).collect::<Vec<_>>());
        let parallel = run_jobs(4, (0..32u64).map(|i| move || i * 3 + 1).collect::<Vec<_>>());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..100)
            .map(|i| {
                let ran = &ran;
                move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    i
                }
            })
            .collect();
        let results = run_jobs(7, tasks);
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(results, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn more_jobs_than_tasks_is_fine() {
        assert_eq!(run_jobs(64, vec![|| 1, || 2]), vec![1, 2]);
        assert_eq!(run_jobs(64, Vec::<fn() -> u8>::new()), Vec::<u8>::new());
    }

    #[test]
    fn tasks_may_borrow_from_the_caller() {
        let data = [10u64, 20, 30];
        let tasks: Vec<_> = data.iter().map(|v| move || v + 1).collect();
        assert_eq!(run_jobs(2, tasks), vec![11, 21, 31]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
