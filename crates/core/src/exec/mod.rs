//! Deterministic parallel execution: a scoped-thread job pool plus a
//! content-addressed on-disk result cache.
//!
//! Every simulation in this workspace is a pure function of its
//! configuration and seed, which buys two things at once:
//!
//! * **Parallelism without divergence** — independent runs can fan out
//!   across OS threads ([`run_jobs`]) as long as results are joined by
//!   submission index, never completion order. `--jobs 4` output is
//!   byte-identical to `--jobs 1`.
//! * **Caching without staleness** — a measured result keyed by the full
//!   configuration fingerprint ([`TrialCache`]) is valid forever; a
//!   cache-warm sweep replays to byte-identical reports with zero live
//!   simulations.

mod cache;
mod pool;

pub use cache::{fnv1a64, DiskCache, TrialCache, CACHE_FORMAT_VERSION, DEFAULT_CACHE_DIR};
pub use pool::{default_jobs, run_jobs};
