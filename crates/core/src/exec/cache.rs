//! Content-addressed on-disk cache for deterministic trial results.
//!
//! Every simulation this workspace runs is a pure function of its
//! configuration, so a measured result can be reused forever — the cache
//! key is a stable hash of everything that feeds the run (workload
//! fingerprint, fault plan, seed, trial knobs) plus a format version
//! that invalidates every entry when the serialized payload shape
//! changes. Entries live under `.lotus-cache/v<N>/<hash>.json` and store
//! the full context/key strings alongside the payload, so a hash
//! collision or a stale file reads back as a miss, never as a wrong
//! result.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde_json::{Content, Value};

use crate::tune::{Scorecard, TrialConfig};

/// Version tag of the on-disk payload format. Bump on any change to the
/// serialized shapes; old entries become invisible (they live under a
/// different subdirectory) rather than misparsed.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Conventional cache root directory name, relative to the working
/// directory (`lotus tune` and the bench binaries use this unless told
/// otherwise).
pub const DEFAULT_CACHE_DIR: &str = ".lotus-cache";

/// 64-bit FNV-1a — a stable, dependency-free content hash. Not
/// cryptographic; collisions are tolerated because [`DiskCache::load`]
/// verifies the stored context/key strings before trusting an entry.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A generic JSON blob store addressed by `(context, key)` content
/// hashes. `context` names the fixed surroundings of a sweep (workload,
/// machine, fault plan, seed); `key` names one point inside it (a trial
/// configuration, a mapping batch size). Writes are atomic
/// (temp-file + rename), so concurrent producers of the same entry
/// race benignly — both write identical bytes.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Opens (creating if needed) the cache rooted at `root`; entries go
    /// in the version-tagged subdirectory `v<CACHE_FORMAT_VERSION>`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn open(root: impl AsRef<Path>) -> io::Result<DiskCache> {
        let dir = root.as_ref().join(format!("v{CACHE_FORMAT_VERSION}"));
        fs::create_dir_all(&dir)?;
        Ok(DiskCache { dir })
    }

    /// The directory entries are stored in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, context: &str, key: &str) -> PathBuf {
        // \x1f (unit separator) cannot appear in either string's role,
        // so "ab"+"c" and "a"+"bc" hash differently.
        let hash = fnv1a64(format!("{context}\x1f{key}").as_bytes());
        self.dir.join(format!("{hash:016x}.json"))
    }

    /// Loads the payload stored for `(context, key)`, or `None` on a
    /// miss, an unreadable file, or a context/key mismatch (collision or
    /// stale entry).
    #[must_use]
    pub fn load(&self, context: &str, key: &str) -> Option<Value> {
        let text = fs::read_to_string(self.path_of(context, key)).ok()?;
        let doc: Value = serde_json::from_str(&text).ok()?;
        if doc["context"] != *context || doc["key"] != *key {
            return None;
        }
        doc.get("payload").cloned()
    }

    /// Stores `payload` for `(context, key)`, atomically replacing any
    /// existing entry.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the entry cannot be written.
    pub fn store(&self, context: &str, key: &str, payload: Content) -> io::Result<()> {
        let doc = Value(Content::Map(vec![
            ("context".to_string(), Content::Str(context.to_string())),
            ("key".to_string(), Content::Str(key.to_string())),
            ("payload".to_string(), payload),
        ]));
        let text = serde_json::to_string_pretty(&doc).expect("cache entry serializes");
        let path = self.path_of(context, key);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, text)?;
        fs::rename(&tmp, &path)
    }
}

/// The tuner's trial cache: [`DiskCache`] specialized to
/// `TrialConfig → Scorecard` under one fixed sweep context. Because the
/// [`Scorecard`] JSON round trip is lossless, a cache-warm sweep
/// reproduces byte-identical [`crate::tune::TuneReport`] output while
/// executing zero live simulations.
#[derive(Debug, Clone)]
pub struct TrialCache {
    disk: DiskCache,
    context: String,
}

impl TrialCache {
    /// Opens the trial cache rooted at `root` for the sweep described by
    /// `context` (workload fingerprint + machine + fault plan + seed —
    /// everything a trial's outcome depends on besides its own knobs).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the cache directory cannot be created.
    pub fn open(root: impl AsRef<Path>, context: impl Into<String>) -> io::Result<TrialCache> {
        Ok(TrialCache {
            disk: DiskCache::open(root)?,
            context: context.into(),
        })
    }

    /// The sweep context this cache is scoped to.
    #[must_use]
    pub fn context(&self) -> &str {
        &self.context
    }

    /// The cached scorecard for `trial`, if one exists and parses
    /// cleanly. Any corruption degrades to a miss (the trial reruns
    /// live), never to a wrong card.
    #[must_use]
    pub fn lookup(&self, trial: &TrialConfig) -> Option<Scorecard> {
        let payload = self.disk.load(&self.context, &trial.label())?;
        Scorecard::from_json_value(&payload)
            .ok()
            .filter(|card| card.config == *trial)
    }

    /// Stores `card` as the measured result for `trial`. Best-effort: an
    /// unwritable cache directory silently degrades to live execution on
    /// the next sweep rather than failing the current one.
    pub fn store(&self, trial: &TrialConfig, card: &Scorecard) {
        let _ = self
            .disk
            .store(&self.context, &trial.label(), card.to_json_content());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lotus-cache-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn trial(workers: usize) -> TrialConfig {
        TrialConfig {
            num_workers: workers,
            prefetch_factor: 2,
            data_queue_cap: None,
            pin_memory: true,
        }
    }

    fn card(workers: usize) -> Scorecard {
        Scorecard {
            config: trial(workers),
            throughput: 123.456,
            elapsed: lotus_sim::Span::from_millis(250),
            samples: 64,
            batches: 8,
            wait_fraction: 0.25,
            mean_wait_ms: 1.5,
            mean_queue_delay_ms: 0.75,
            footprint_batches: 5.0,
            verdict: Some(crate::tune::TuneVerdict::PreprocessingBound),
            faults_injected: 0,
            worker_deaths: 0,
            failed: None,
        }
    }

    #[test]
    fn fnv_is_stable_and_spreads() {
        // Reference vectors for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"w1 pf2"), fnv1a64(b"w2 pf1"));
    }

    #[test]
    fn disk_cache_round_trips_and_verifies_keys() {
        let root = scratch_dir("disk");
        let cache = DiskCache::open(&root).unwrap();
        assert!(cache.load("ctx", "key").is_none(), "cold cache misses");
        cache
            .store("ctx", "key", Content::Str("hello".into()))
            .unwrap();
        assert_eq!(cache.load("ctx", "key").unwrap().as_str(), Some("hello"));
        // A different context or key misses even though the file layout
        // is content-addressed.
        assert!(cache.load("other-ctx", "key").is_none());
        assert!(cache.load("ctx", "other-key").is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn trial_cache_round_trips_scorecards() {
        let root = scratch_dir("trial");
        let cache = TrialCache::open(&root, "workload=IC seed=7").unwrap();
        assert!(cache.lookup(&trial(4)).is_none());
        cache.store(&trial(4), &card(4));
        assert_eq!(cache.lookup(&trial(4)), Some(card(4)));
        assert!(cache.lookup(&trial(2)).is_none(), "other trials miss");
        // A different sweep context sees nothing.
        let other = TrialCache::open(&root, "workload=IC seed=8").unwrap();
        assert!(other.lookup(&trial(4)).is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_degrade_to_misses() {
        let root = scratch_dir("corrupt");
        let cache = TrialCache::open(&root, "ctx").unwrap();
        cache.store(&trial(2), &card(2));
        // Truncate every entry file in place.
        for entry in fs::read_dir(cache.disk.dir()).unwrap() {
            fs::write(entry.unwrap().path(), "{ not json").unwrap();
        }
        assert!(cache.lookup(&trial(2)).is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn version_tag_scopes_the_directory() {
        let root = scratch_dir("version");
        let cache = DiskCache::open(&root).unwrap();
        assert!(cache.dir().ends_with(format!("v{CACHE_FORMAT_VERSION}")));
        let _ = fs::remove_dir_all(&root);
    }
}
