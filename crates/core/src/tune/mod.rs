//! `lotus tune` — automatic DataLoader configuration search over the
//! deterministic simulation.
//!
//! The paper's characterization answers *"where does the time go?"*;
//! this module closes the loop and answers *"what should I set?"*. It
//! sweeps a [`SearchSpace`] of DataLoader knobs (`num_workers`,
//! `prefetch_factor`, `data_queue_cap`, `pin_memory`), runs one
//! deterministic simulated epoch per candidate through an
//! oracle closure, folds each run's metrics registry and trace into a
//! [`Scorecard`], and reports:
//!
//! * the **Pareto frontier** of throughput vs. peak resident batches
//!   (the memory footprint of queued + pinned + in-progress data),
//! * a per-config **bottleneck verdict** built from the paper's T1/T2/T3
//!   measurements (preprocessing-, fetch-, collate-, or GPU-bound),
//! * a **recommended configuration** with its predicted speedup over
//!   the baseline.
//!
//! Search is either an exhaustive grid with early dominance pruning
//! (configs beaten on *both* throughput and mean T2 wait by a
//! smaller-worker sibling cut the rest of their worker sweep) or greedy
//! hill climbing over single-knob moves — see [`Strategy`].
//!
//! Everything is virtual-time simulation: a full sweep costs
//! milliseconds of wall clock, and the same seed always yields
//! byte-identical [`TuneReport::to_json`] output. Fault plans compose —
//! a candidate whose run degrades (e.g. every worker killed) becomes a
//! failed [`Scorecard`] instead of aborting the sweep.
//!
//! # Examples
//!
//! ```
//! use lotus_core::tune::{SearchSpace, Strategy, TrialConfig, Tuner};
//! use lotus_core::tune::TrialMeasurement;
//! use lotus_core::metrics::MetricsRegistry;
//! use lotus_core::trace::analysis::OpClassTotals;
//! use lotus_sim::Span;
//!
//! let tuner = Tuner { space: SearchSpace::default(), strategy: Strategy::Grid };
//! let baseline = TrialConfig {
//!     num_workers: 1, prefetch_factor: 2, data_queue_cap: None, pin_memory: true,
//! };
//! let report = tuner.run(baseline, |c| {
//!     // A real oracle runs a simulated epoch; this toy one just makes
//!     // workers help linearly.
//!     Ok(TrialMeasurement {
//!         elapsed: Span::from_millis(800 / c.num_workers as u64),
//!         batches: 16,
//!         samples: 128,
//!         snapshot: MetricsRegistry::new().snapshot(),
//!         op_classes: OpClassTotals::default(),
//!     })
//! })?;
//! assert_eq!(report.recommended.num_workers, 8);
//! println!("{}", report.render_table());
//! # Ok::<(), String>(())
//! ```

mod score;
mod search;
mod space;

pub use score::{Scorecard, TrialMeasurement, TuneVerdict, WAIT_BOUND_THRESHOLD};
pub use search::{Strategy, TuneReport, Tuner};
pub use space::{SearchSpace, TrialConfig};
