//! The tuning search space: which DataLoader knobs `lotus tune` explores
//! and how candidate configurations enumerate.

use lotus_dataflow::DataLoaderConfig;
use serde_json::{Content, Value};

/// One candidate point in the search space: the four DataLoader knobs the
/// tuner varies. Everything else (batch size, sampler, GPU model) stays
/// fixed at the workload's values so trials differ only in loader
/// configuration.
///
/// # Examples
///
/// ```
/// use lotus_core::tune::TrialConfig;
/// use lotus_dataflow::DataLoaderConfig;
///
/// let trial = TrialConfig { num_workers: 4, prefetch_factor: 2, data_queue_cap: Some(8), pin_memory: true };
/// let loader = trial.apply(DataLoaderConfig::default());
/// assert_eq!(loader.num_workers, 4);
/// assert_eq!(loader.data_queue_cap, Some(8));
/// assert_eq!(trial.label(), "w4 pf2 cap8 pin");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrialConfig {
    /// DataLoader worker processes (≥ 1).
    pub num_workers: usize,
    /// Index batches pre-queued per worker (≥ 1).
    pub prefetch_factor: usize,
    /// Bound on the shared data queue in batches; `None` = unbounded
    /// (PyTorch's behavior).
    pub data_queue_cap: Option<usize>,
    /// Whether the main process pins batches to page-locked memory.
    pub pin_memory: bool,
}

impl TrialConfig {
    /// Overlays this trial's knobs onto a base loader configuration,
    /// keeping the base's batch size, sampler, and `drop_last`.
    #[must_use]
    pub fn apply(&self, base: DataLoaderConfig) -> DataLoaderConfig {
        DataLoaderConfig {
            num_workers: self.num_workers,
            prefetch_factor: self.prefetch_factor,
            data_queue_cap: self.data_queue_cap,
            pin_memory: self.pin_memory,
            ..base
        }
    }

    /// Short human-readable label, e.g. `w4 pf2 cap8 pin` or
    /// `w1 pf1 cap- nopin` (`cap-` = unbounded data queue).
    #[must_use]
    pub fn label(&self) -> String {
        let cap = match self.data_queue_cap {
            Some(c) => format!("cap{c}"),
            None => "cap-".to_string(),
        };
        format!(
            "w{} pf{} {} {}",
            self.num_workers,
            self.prefetch_factor,
            cap,
            if self.pin_memory { "pin" } else { "nopin" }
        )
    }

    /// The JSON object for this configuration, with a fixed field order
    /// so report output stays byte-deterministic.
    #[must_use]
    pub fn to_json_content(&self) -> Content {
        Content::Map(vec![
            (
                "num_workers".to_string(),
                Content::U64(self.num_workers as u64),
            ),
            (
                "prefetch_factor".to_string(),
                Content::U64(self.prefetch_factor as u64),
            ),
            (
                "data_queue_cap".to_string(),
                match self.data_queue_cap {
                    Some(cap) => Content::U64(cap as u64),
                    None => Content::Null,
                },
            ),
            ("pin_memory".to_string(), Content::Bool(self.pin_memory)),
        ])
    }

    /// Parses a configuration previously produced by
    /// [`to_json_content`](Self::to_json_content).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json_value(value: &Value) -> Result<TrialConfig, String> {
        let uint = |field: &str| -> Result<usize, String> {
            value[field]
                .as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| format!("trial config field '{field}' missing or not an integer"))
        };
        let data_queue_cap = match &value["data_queue_cap"].0 {
            Content::Null => None,
            _ => Some(uint("data_queue_cap")?),
        };
        Ok(TrialConfig {
            num_workers: uint("num_workers")?,
            prefetch_factor: uint("prefetch_factor")?,
            data_queue_cap,
            pin_memory: value["pin_memory"]
                .as_bool()
                .ok_or("trial config field 'pin_memory' missing or not a boolean")?,
        })
    }
}

/// The axes of the grid the tuner sweeps. Each axis lists the candidate
/// values in the order the grid visits them; `workers` is the innermost
/// (fastest-varying) axis so dominance pruning can skip the tail of a
/// worker sweep once adding workers stops paying.
///
/// # Examples
///
/// ```
/// use lotus_core::tune::SearchSpace;
///
/// let space = SearchSpace::default();
/// assert!(space.validate().is_ok());
/// // grid size = product of the axis lengths
/// assert_eq!(space.grid().len(), space.workers.len() * space.prefetch.len());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    /// Candidate worker counts, ascending.
    pub workers: Vec<usize>,
    /// Candidate prefetch factors.
    pub prefetch: Vec<usize>,
    /// Candidate data-queue capacities (`None` = unbounded).
    pub queue_caps: Vec<Option<usize>>,
    /// Candidate pin-memory settings.
    pub pin_memory: Vec<bool>,
}

impl Default for SearchSpace {
    /// A small practical sweep: 1–8 workers, prefetch 1/2/4, unbounded
    /// data queue, pinned memory — the knobs PyTorch users actually turn.
    fn default() -> Self {
        SearchSpace {
            workers: vec![1, 2, 4, 8],
            prefetch: vec![1, 2, 4],
            queue_caps: vec![None],
            pin_memory: vec![true],
        }
    }
}

impl SearchSpace {
    /// Checks the axes are non-empty and every value satisfies the
    /// [`DataLoaderConfig`] field invariants (all counts ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid axis.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers.is_empty() {
            return Err("search space needs at least one worker count".into());
        }
        if self.prefetch.is_empty() {
            return Err("search space needs at least one prefetch factor".into());
        }
        if self.queue_caps.is_empty() {
            return Err("search space needs at least one queue capacity".into());
        }
        if self.pin_memory.is_empty() {
            return Err("search space needs at least one pin-memory setting".into());
        }
        if self.workers.contains(&0) {
            return Err("num_workers must be at least 1 (worker-process data loading)".into());
        }
        if self.prefetch.contains(&0) {
            return Err("prefetch_factor must be at least 1 (workers need an index batch)".into());
        }
        if self.queue_caps.contains(&Some(0)) {
            return Err(
                "data_queue_cap must be at least 1 (a zero-capacity data queue deadlocks)".into(),
            );
        }
        Ok(())
    }

    /// Enumerates the full grid. The nesting order is pin-memory →
    /// queue capacity → prefetch factor → workers, so each contiguous
    /// run of grid entries is one "slice" that varies only the worker
    /// count — the unit over which the tuner applies dominance pruning.
    #[must_use]
    pub fn grid(&self) -> Vec<TrialConfig> {
        let mut out = Vec::new();
        for &pin_memory in &self.pin_memory {
            for &data_queue_cap in &self.queue_caps {
                for &prefetch_factor in &self.prefetch {
                    for &num_workers in &self.workers {
                        out.push(TrialConfig {
                            num_workers,
                            prefetch_factor,
                            data_queue_cap,
                            pin_memory,
                        });
                    }
                }
            }
        }
        out
    }

    /// The hill-climbing neighborhood of `config`: every configuration
    /// reachable by moving one knob one step along its axis (or toggling
    /// pin-memory to another listed value). Knobs whose current value is
    /// not on the axis contribute no moves. The result is deterministic
    /// and never contains `config` itself.
    #[must_use]
    pub fn neighbors(&self, config: TrialConfig) -> Vec<TrialConfig> {
        let mut out = Vec::new();
        let step = |axis: &[usize], v: usize, out: &mut Vec<usize>| {
            if let Some(i) = axis.iter().position(|&a| a == v) {
                if i > 0 {
                    out.push(axis[i - 1]);
                }
                if i + 1 < axis.len() {
                    out.push(axis[i + 1]);
                }
            }
        };
        let mut worker_moves = Vec::new();
        step(&self.workers, config.num_workers, &mut worker_moves);
        for num_workers in worker_moves {
            out.push(TrialConfig {
                num_workers,
                ..config
            });
        }
        let mut prefetch_moves = Vec::new();
        step(&self.prefetch, config.prefetch_factor, &mut prefetch_moves);
        for prefetch_factor in prefetch_moves {
            out.push(TrialConfig {
                prefetch_factor,
                ..config
            });
        }
        if let Some(i) = self
            .queue_caps
            .iter()
            .position(|&c| c == config.data_queue_cap)
        {
            if i > 0 {
                out.push(TrialConfig {
                    data_queue_cap: self.queue_caps[i - 1],
                    ..config
                });
            }
            if i + 1 < self.queue_caps.len() {
                out.push(TrialConfig {
                    data_queue_cap: self.queue_caps[i + 1],
                    ..config
                });
            }
        }
        for &pin_memory in &self.pin_memory {
            if pin_memory != config.pin_memory {
                out.push(TrialConfig {
                    pin_memory,
                    ..config
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_orders_workers_innermost() {
        let space = SearchSpace {
            workers: vec![1, 2],
            prefetch: vec![1, 2],
            queue_caps: vec![None],
            pin_memory: vec![true],
        };
        let grid = space.grid();
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0].num_workers, 1);
        assert_eq!(grid[1].num_workers, 2);
        assert_eq!(grid[0].prefetch_factor, 1);
        assert_eq!(grid[2].prefetch_factor, 2);
    }

    #[test]
    fn neighbors_move_one_knob_one_step() {
        let space = SearchSpace {
            workers: vec![1, 2, 4],
            prefetch: vec![1, 2],
            queue_caps: vec![None, Some(4)],
            pin_memory: vec![true, false],
        };
        let at = TrialConfig {
            num_workers: 2,
            prefetch_factor: 1,
            data_queue_cap: None,
            pin_memory: true,
        };
        let n = space.neighbors(at);
        assert!(n.contains(&TrialConfig {
            num_workers: 1,
            ..at
        }));
        assert!(n.contains(&TrialConfig {
            num_workers: 4,
            ..at
        }));
        assert!(n.contains(&TrialConfig {
            prefetch_factor: 2,
            ..at
        }));
        assert!(n.contains(&TrialConfig {
            data_queue_cap: Some(4),
            ..at
        }));
        assert!(n.contains(&TrialConfig {
            pin_memory: false,
            ..at
        }));
        assert!(!n.contains(&at));
        assert_eq!(n.len(), 5);
    }

    #[test]
    fn trial_config_json_round_trips() {
        for config in [
            TrialConfig {
                num_workers: 4,
                prefetch_factor: 2,
                data_queue_cap: Some(8),
                pin_memory: true,
            },
            TrialConfig {
                num_workers: 1,
                prefetch_factor: 1,
                data_queue_cap: None,
                pin_memory: false,
            },
        ] {
            let value = Value(config.to_json_content());
            assert_eq!(TrialConfig::from_json_value(&value), Ok(config));
        }
        let err = TrialConfig::from_json_value(&Value::null()).unwrap_err();
        assert!(err.contains("num_workers"), "{err}");
    }

    #[test]
    fn invalid_axes_are_rejected() {
        let mut space = SearchSpace {
            workers: vec![],
            ..SearchSpace::default()
        };
        assert!(space.validate().is_err());
        space.workers = vec![0];
        assert_eq!(
            space.validate().unwrap_err(),
            "num_workers must be at least 1 (worker-process data loading)"
        );
    }
}
