//! The tuning search itself: grid sweep with dominance pruning, optional
//! hill-climbing refinement, Pareto frontier extraction, and the final
//! report (table + byte-deterministic JSON).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde_json::{Content, Value};

use super::score::{Scorecard, TrialMeasurement};
use super::space::{SearchSpace, TrialConfig};

/// How the tuner walks the search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Exhaustive sweep of [`SearchSpace::grid`], with dominance pruning
    /// inside each worker slice: once adding workers produces a card
    /// that is no better on either throughput or mean \[T2\] wait than
    /// an earlier (smaller-worker) card of the same slice, the remaining
    /// larger worker counts of that slice are skipped — they can only
    /// cost more memory.
    Grid,
    /// Greedy hill climbing from the baseline configuration: evaluate
    /// all [`SearchSpace::neighbors`], move to the best strictly-better
    /// one, repeat up to `max_moves` times. Evaluates far fewer configs
    /// than the grid on large spaces; may stop at a local optimum.
    HillClimb {
        /// Maximum number of accepted moves before stopping.
        max_moves: usize,
    },
}

/// The tuner: a search space plus a strategy. Measurement is delegated
/// to an *oracle* closure so the engine stays independent of any
/// concrete workload — the oracle runs one deterministic simulation for
/// a candidate configuration and folds its metrics into a
/// [`TrialMeasurement`] (or an error string for a degraded run).
///
/// # Examples
///
/// ```
/// use lotus_core::tune::{SearchSpace, Strategy, TrialConfig, Tuner};
/// # use lotus_core::metrics::MetricsRegistry;
/// # use lotus_core::trace::analysis::OpClassTotals;
/// # use lotus_core::tune::TrialMeasurement;
/// # use lotus_sim::Span;
///
/// let tuner = Tuner {
///     space: SearchSpace { workers: vec![1, 2], prefetch: vec![2], queue_caps: vec![None], pin_memory: vec![true] },
///     strategy: Strategy::Grid,
/// };
/// let baseline = TrialConfig { num_workers: 1, prefetch_factor: 2, data_queue_cap: None, pin_memory: true };
/// // A toy oracle: doubling workers halves the epoch.
/// let report = tuner.run(baseline, |c| {
///     Ok(TrialMeasurement {
///         elapsed: Span::from_millis(100 / c.num_workers as u64),
///         batches: 8,
///         samples: 64,
///         snapshot: MetricsRegistry::new().snapshot(),
///         op_classes: OpClassTotals::default(),
///     })
/// })?;
/// assert_eq!(report.recommended.num_workers, 2);
/// assert!(report.predicted_speedup.unwrap() > 1.9);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tuner {
    /// Candidate knob values.
    pub space: SearchSpace,
    /// Search strategy.
    pub strategy: Strategy,
}

/// Outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// The baseline configuration's card (always evaluated first).
    pub baseline: Scorecard,
    /// Every evaluated configuration, in evaluation order. Contains the
    /// baseline too when the search space covers it.
    pub cards: Vec<Scorecard>,
    /// Configurations skipped by dominance pruning, in grid order.
    pub pruned: Vec<TrialConfig>,
    /// The Pareto frontier over (throughput max, footprint min), sorted
    /// by ascending footprint. Only successful cards participate.
    pub frontier: Vec<TrialConfig>,
    /// The recommended configuration: highest throughput, ties broken
    /// toward smaller footprint, then fewer workers.
    pub recommended: TrialConfig,
    /// Predicted epoch speedup of `recommended` over the baseline
    /// (baseline elapsed / recommended elapsed). `None` when the
    /// baseline itself failed.
    pub predicted_speedup: Option<f64>,
}

impl Tuner {
    /// Runs the search. `baseline` is measured first (it anchors the
    /// speedup prediction and seeds hill climbing); the oracle is called
    /// once per distinct configuration (results are memoized).
    ///
    /// An oracle error does **not** abort the search — the configuration
    /// is recorded as a failed (degraded) card and the sweep continues,
    /// which is what makes tuning under a fault plan total.
    ///
    /// # Errors
    ///
    /// Returns an error when the search space fails
    /// [`SearchSpace::validate`] or when no configuration (baseline
    /// included) completed successfully.
    pub fn run<F>(&self, baseline: TrialConfig, mut oracle: F) -> Result<TuneReport, String>
    where
        F: FnMut(&TrialConfig) -> Result<TrialMeasurement, String>,
    {
        self.space.validate()?;
        let mut memo: BTreeMap<TrialConfig, Scorecard> = BTreeMap::new();
        let mut order: Vec<TrialConfig> = Vec::new();
        let mut evaluate = |config: TrialConfig,
                            memo: &mut BTreeMap<TrialConfig, Scorecard>,
                            order: &mut Vec<TrialConfig>|
         -> Scorecard {
            if let Some(card) = memo.get(&config) {
                return card.clone();
            }
            let card = match oracle(&config) {
                Ok(m) => Scorecard::from_measurement(config, &m),
                Err(e) => Scorecard::from_failure(config, e),
            };
            memo.insert(config, card.clone());
            order.push(config);
            card
        };

        let baseline_card = evaluate(baseline, &mut memo, &mut order);
        let mut pruned: Vec<TrialConfig> = Vec::new();

        match self.strategy {
            Strategy::Grid => {
                let slice_len = self.space.workers.len();
                let grid = self.space.grid();
                for slice in grid.chunks(slice_len) {
                    // Cards of this slice that completed, in worker order;
                    // pruning compares only within the slice so a bounded
                    // queue or disabled pinning is never judged against an
                    // unbounded sibling.
                    let mut slice_cards: Vec<Scorecard> = Vec::new();
                    let mut cut = false;
                    for &config in slice {
                        if cut {
                            pruned.push(config);
                            continue;
                        }
                        let card = evaluate(config, &mut memo, &mut order);
                        if card.is_ok() {
                            // Weak dominance: an earlier card with fewer
                            // workers that is at least as good on both
                            // axes means adding workers stopped paying —
                            // larger counts only cost memory.
                            if slice_cards.iter().any(|prev: &Scorecard| {
                                prev.throughput >= card.throughput
                                    && prev.mean_wait_ms <= card.mean_wait_ms
                            }) {
                                cut = true;
                            }
                            slice_cards.push(card);
                        }
                    }
                }
            }
            Strategy::HillClimb { max_moves } => {
                let mut at = baseline;
                let mut at_card = baseline_card.clone();
                for _ in 0..max_moves {
                    let mut best: Option<Scorecard> = None;
                    for next in self.space.neighbors(at) {
                        let card = evaluate(next, &mut memo, &mut order);
                        if !card.is_ok() {
                            continue;
                        }
                        if best.as_ref().is_none_or(|b| card.throughput > b.throughput) {
                            best = Some(card);
                        }
                    }
                    match best {
                        Some(card) if card.throughput > at_card.throughput => {
                            at = card.config;
                            at_card = card;
                        }
                        _ => break,
                    }
                }
            }
        }

        let cards: Vec<Scorecard> = order.iter().map(|c| memo[c].clone()).collect();
        let mut ok_cards: Vec<&Scorecard> = cards.iter().filter(|c| c.is_ok()).collect();
        if ok_cards.is_empty() {
            return Err("no configuration completed successfully".into());
        }
        // Recommended: throughput desc, then footprint asc, workers asc,
        // config order as the final deterministic tie-break.
        ok_cards.sort_by(|a, b| {
            b.throughput
                .total_cmp(&a.throughput)
                .then(a.footprint_batches.total_cmp(&b.footprint_batches))
                .then(a.config.num_workers.cmp(&b.config.num_workers))
                .then(a.config.cmp(&b.config))
        });
        let recommended_card = ok_cards[0].clone();
        let predicted_speedup = if baseline_card.is_ok() {
            Some(baseline_card.elapsed.as_secs_f64() / recommended_card.elapsed.as_secs_f64())
        } else {
            None
        };

        // Pareto frontier on (throughput max, footprint min).
        let mut frontier: Vec<&Scorecard> = ok_cards
            .iter()
            .filter(|c| {
                !ok_cards.iter().any(|o| {
                    (o.throughput >= c.throughput && o.footprint_batches < c.footprint_batches)
                        || (o.throughput > c.throughput
                            && o.footprint_batches <= c.footprint_batches)
                })
            })
            .copied()
            .collect();
        frontier.sort_by(|a, b| {
            a.footprint_batches
                .total_cmp(&b.footprint_batches)
                .then(a.config.cmp(&b.config))
        });
        // Exact ties on both axes are one Pareto point; keep the first.
        frontier.dedup_by(|a, b| {
            a.throughput == b.throughput && a.footprint_batches == b.footprint_batches
        });

        Ok(TuneReport {
            baseline: baseline_card,
            frontier: frontier.iter().map(|c| c.config).collect(),
            recommended: recommended_card.config,
            predicted_speedup,
            cards,
            pruned,
        })
    }
}

impl TuneReport {
    /// The scorecard of the recommended configuration.
    ///
    /// # Panics
    ///
    /// Never — the recommended config is always among the cards.
    #[must_use]
    pub fn recommended_card(&self) -> &Scorecard {
        self.cards
            .iter()
            .find(|c| c.config == self.recommended)
            .expect("recommended config was evaluated")
    }

    /// Renders the report as a fixed-width text table plus the verdict
    /// footer (what `lotus tune` prints without `--json`).
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>8} {:>9} {:>10} {:>7}  {:<20} flags",
            "config", "samples/s", "wait%", "t2 ms", "delay ms", "peak#", "verdict"
        );
        let _ = writeln!(out, "{}", "-".repeat(100));
        for card in &self.cards {
            let mut flags = Vec::new();
            if card.config == self.baseline.config {
                flags.push("baseline");
            }
            if card.config == self.recommended {
                flags.push("recommended");
            }
            if self.frontier.contains(&card.config) {
                flags.push("pareto");
            }
            if card.worker_deaths > 0 || card.faults_injected > 0 {
                flags.push("faults");
            }
            match &card.failed {
                Some(err) => {
                    let _ = writeln!(
                        out,
                        "{:<22} {:>12} {:>8} {:>9} {:>10} {:>7}  {:<20} {}",
                        card.config.label(),
                        "-",
                        "-",
                        "-",
                        "-",
                        "-",
                        format!("degraded: {err}"),
                        flags.join(",")
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{:<22} {:>12.1} {:>7.1}% {:>9.2} {:>10.2} {:>7.1}  {:<20} {}",
                        card.config.label(),
                        card.throughput,
                        card.wait_fraction * 100.0,
                        card.mean_wait_ms,
                        card.mean_queue_delay_ms,
                        card.footprint_batches,
                        card.verdict.map_or("-", |v| v.as_str()),
                        flags.join(",")
                    );
                }
            }
        }
        if !self.pruned.is_empty() {
            let labels: Vec<String> = self.pruned.iter().map(TrialConfig::label).collect();
            let _ = writeln!(out, "pruned (dominated): {}", labels.join(", "));
        }
        let rec = self.recommended_card();
        let _ = writeln!(out, "\nrecommended: {}", rec.config.label());
        match self.predicted_speedup {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "predicted speedup over baseline {}: {:.2}x",
                    self.baseline.config.label(),
                    s
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "baseline {} degraded; no speedup prediction",
                    self.baseline.config.label()
                );
            }
        }
        if let Some(v) = rec.verdict {
            let _ = writeln!(out, "bottleneck at recommended config: {}", v.as_str());
        }
        out
    }

    /// Serializes the report as pretty-printed JSON. Maps are emitted in
    /// insertion order and every field is derived from the deterministic
    /// simulation, so the same tuning run always produces byte-identical
    /// output.
    #[must_use]
    pub fn to_json(&self) -> String {
        let config_json = |c: &TrialConfig| {
            Content::Map(vec![
                (
                    "num_workers".to_string(),
                    Content::U64(c.num_workers as u64),
                ),
                (
                    "prefetch_factor".to_string(),
                    Content::U64(c.prefetch_factor as u64),
                ),
                (
                    "data_queue_cap".to_string(),
                    match c.data_queue_cap {
                        Some(cap) => Content::U64(cap as u64),
                        None => Content::Null,
                    },
                ),
                ("pin_memory".to_string(), Content::Bool(c.pin_memory)),
            ])
        };
        let card_json = |card: &Scorecard| {
            Content::Map(vec![
                ("config".to_string(), config_json(&card.config)),
                ("label".to_string(), Content::Str(card.config.label())),
                (
                    "throughput_samples_per_s".to_string(),
                    Content::F64(card.throughput),
                ),
                (
                    "elapsed_ns".to_string(),
                    Content::U64(card.elapsed.as_nanos()),
                ),
                ("samples".to_string(), Content::U64(card.samples)),
                ("batches".to_string(), Content::U64(card.batches)),
                (
                    "wait_fraction".to_string(),
                    Content::F64(card.wait_fraction),
                ),
                ("mean_wait_ms".to_string(), Content::F64(card.mean_wait_ms)),
                (
                    "mean_queue_delay_ms".to_string(),
                    Content::F64(card.mean_queue_delay_ms),
                ),
                (
                    "footprint_batches".to_string(),
                    Content::F64(card.footprint_batches),
                ),
                (
                    "verdict".to_string(),
                    match card.verdict {
                        Some(v) => Content::Str(v.as_str().to_string()),
                        None => Content::Null,
                    },
                ),
                (
                    "faults_injected".to_string(),
                    Content::U64(card.faults_injected),
                ),
                (
                    "worker_deaths".to_string(),
                    Content::U64(card.worker_deaths),
                ),
                (
                    "failed".to_string(),
                    match &card.failed {
                        Some(e) => Content::Str(e.clone()),
                        None => Content::Null,
                    },
                ),
            ])
        };
        let doc = Value(Content::Map(vec![
            ("baseline".to_string(), card_json(&self.baseline)),
            (
                "cards".to_string(),
                Content::Seq(self.cards.iter().map(card_json).collect()),
            ),
            (
                "pruned".to_string(),
                Content::Seq(self.pruned.iter().map(&config_json).collect()),
            ),
            (
                "pareto_frontier".to_string(),
                Content::Seq(self.frontier.iter().map(&config_json).collect()),
            ),
            ("recommended".to_string(), config_json(&self.recommended)),
            (
                "predicted_speedup".to_string(),
                match self.predicted_speedup {
                    Some(s) => Content::F64(s),
                    None => Content::Null,
                },
            ),
        ]));
        let mut text = serde_json::to_string_pretty(&doc).expect("tune report serializes");
        text.push('\n');
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{names, MetricsRegistry};
    use crate::trace::analysis::OpClassTotals;
    use lotus_sim::{Span, Time};

    fn space() -> SearchSpace {
        SearchSpace {
            workers: vec![1, 2, 4, 8],
            prefetch: vec![2],
            queue_caps: vec![None],
            pin_memory: vec![true],
        }
    }

    /// Synthetic workload: preprocessing takes 80 ms of worker time per
    /// batch, the consumer 10 ms; workers parallelize perfectly up to 4
    /// then saturate (the source serializes).
    fn toy_oracle(c: &TrialConfig) -> Result<TrialMeasurement, String> {
        let batches = 32u64;
        let per_batch_ms = 10.0 + 80.0 / (c.num_workers.min(4) as f64);
        let elapsed = Span::from_secs_f64(per_batch_ms * batches as f64 / 1e3);
        let registry = MetricsRegistry::new();
        let wait_ms = (per_batch_ms - 10.0).max(0.0);
        registry.inc_counter(names::MAIN_WAIT_NS, (wait_ms * batches as f64 * 1e6) as u64);
        registry.record_latency(names::T2_WAIT, Span::from_secs_f64(wait_ms / 1e3));
        registry.record_latency(names::QUEUE_DELAY, Span::from_micros(50));
        registry.set_gauge("queue_depth.data_queue", Time::ZERO, c.num_workers as f64);
        Ok(TrialMeasurement {
            elapsed,
            batches,
            samples: batches * 8,
            snapshot: registry.snapshot(),
            op_classes: OpClassTotals {
                load: Span::from_millis(5),
                transform: Span::from_millis(75),
                collate: Span::from_millis(2),
            },
        })
    }

    fn baseline() -> TrialConfig {
        TrialConfig {
            num_workers: 1,
            prefetch_factor: 2,
            data_queue_cap: None,
            pin_memory: true,
        }
    }

    #[test]
    fn grid_prunes_saturated_worker_counts() {
        let tuner = Tuner {
            space: SearchSpace {
                workers: vec![1, 2, 4, 8, 16],
                ..space()
            },
            strategy: Strategy::Grid,
        };
        let report = tuner.run(baseline(), toy_oracle).unwrap();
        // Workers saturate at 4: the 8-worker card ties it on both axes,
        // which cuts the slice — 16 workers is never evaluated.
        assert_eq!(report.recommended.num_workers, 4);
        assert_eq!(report.pruned.len(), 1);
        assert_eq!(report.pruned[0].num_workers, 16);
        assert!(report.cards.iter().all(|c| c.config.num_workers != 16));
        let speedup = report.predicted_speedup.unwrap();
        assert!(speedup > 2.5, "90ms -> 30ms per batch: {speedup}");
        assert!(report.frontier.contains(&report.recommended));
        // The saturated 8-worker card ties the 4-worker card exactly on
        // throughput but costs more memory, so only one survives on the
        // frontier.
        assert!(!report.frontier.iter().any(|c| c.num_workers == 8));
    }

    #[test]
    fn hill_climb_reaches_the_same_optimum() {
        let tuner = Tuner {
            space: space(),
            strategy: Strategy::HillClimb { max_moves: 8 },
        };
        let report = tuner.run(baseline(), toy_oracle).unwrap();
        assert_eq!(report.recommended.num_workers, 4);
        // Hill climbing should evaluate fewer configs than grid + memoize.
        assert!(report.cards.len() <= 4);
    }

    #[test]
    fn failed_trials_degrade_without_aborting() {
        let tuner = Tuner {
            space: space(),
            strategy: Strategy::Grid,
        };
        let report = tuner
            .run(baseline(), |c| {
                if c.num_workers == 2 {
                    Err("worker 1 killed by fault plan".into())
                } else {
                    toy_oracle(c)
                }
            })
            .unwrap();
        let failed: Vec<_> = report.cards.iter().filter(|c| !c.is_ok()).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].config.num_workers, 2);
        assert_eq!(
            failed[0].failed.as_deref(),
            Some("worker 1 killed by fault plan")
        );
        // Failure must not prune the rest of the slice.
        assert!(report.cards.iter().any(|c| c.config.num_workers == 4));
        assert_eq!(report.recommended.num_workers, 4);
    }

    #[test]
    fn all_failures_is_an_error() {
        let tuner = Tuner {
            space: space(),
            strategy: Strategy::Grid,
        };
        let err = tuner.run(baseline(), |_| Err("dead".into())).unwrap_err();
        assert_eq!(err, "no configuration completed successfully");
    }

    #[test]
    fn report_renders_table_and_deterministic_json() {
        let tuner = Tuner {
            space: space(),
            strategy: Strategy::Grid,
        };
        let a = tuner.run(baseline(), toy_oracle).unwrap();
        let b = tuner.run(baseline(), toy_oracle).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "same run, same bytes");
        let table = a.render_table();
        assert!(table.contains("recommended: w4 pf2 cap- pin"));
        assert!(table.contains("predicted speedup"));
        let json = a.to_json();
        assert!(json.contains("\"pareto_frontier\""));
        assert!(json.contains("\"predicted_speedup\""));
    }
}
