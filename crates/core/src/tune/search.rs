//! The tuning search itself: grid sweep with dominance pruning, optional
//! hill-climbing refinement, Pareto frontier extraction, and the final
//! report (table + byte-deterministic JSON).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use serde_json::{Content, Value};

use crate::exec::{run_jobs, TrialCache};

use super::score::{Scorecard, TrialMeasurement};
use super::space::{SearchSpace, TrialConfig};

/// How the tuner walks the search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Exhaustive sweep of [`SearchSpace::grid`], with dominance pruning
    /// inside each worker slice: once adding workers produces a card
    /// that is no better on either throughput or mean \[T2\] wait than
    /// an earlier (smaller-worker) card of the same slice, the remaining
    /// larger worker counts of that slice are skipped — they can only
    /// cost more memory.
    Grid,
    /// Greedy hill climbing from the baseline configuration: evaluate
    /// all [`SearchSpace::neighbors`], move to the best strictly-better
    /// one, repeat up to `max_moves` times. Evaluates far fewer configs
    /// than the grid on large spaces; may stop at a local optimum.
    HillClimb {
        /// Maximum number of accepted moves before stopping.
        max_moves: usize,
    },
}

/// The tuner: a search space plus a strategy. Measurement is delegated
/// to an *oracle* closure so the engine stays independent of any
/// concrete workload — the oracle runs one deterministic simulation for
/// a candidate configuration and folds its metrics into a
/// [`TrialMeasurement`] (or an error string for a degraded run).
///
/// # Examples
///
/// ```
/// use lotus_core::tune::{SearchSpace, Strategy, TrialConfig, Tuner};
/// # use lotus_core::metrics::MetricsRegistry;
/// # use lotus_core::trace::analysis::OpClassTotals;
/// # use lotus_core::tune::TrialMeasurement;
/// # use lotus_sim::Span;
///
/// let tuner = Tuner {
///     space: SearchSpace { workers: vec![1, 2], prefetch: vec![2], queue_caps: vec![None], pin_memory: vec![true] },
///     strategy: Strategy::Grid,
/// };
/// let baseline = TrialConfig { num_workers: 1, prefetch_factor: 2, data_queue_cap: None, pin_memory: true };
/// // A toy oracle: doubling workers halves the epoch.
/// let report = tuner.run(baseline, |c| {
///     Ok(TrialMeasurement {
///         elapsed: Span::from_millis(100 / c.num_workers as u64),
///         batches: 8,
///         samples: 64,
///         snapshot: MetricsRegistry::new().snapshot(),
///         op_classes: OpClassTotals::default(),
///     })
/// })?;
/// assert_eq!(report.recommended.num_workers, 2);
/// assert!(report.predicted_speedup.unwrap() > 1.9);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tuner {
    /// Candidate knob values.
    pub space: SearchSpace,
    /// Search strategy.
    pub strategy: Strategy,
}

/// Outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// The baseline configuration's card (always evaluated first).
    pub baseline: Scorecard,
    /// Every evaluated configuration, in evaluation order. Contains the
    /// baseline too when the search space covers it.
    pub cards: Vec<Scorecard>,
    /// Configurations skipped by dominance pruning, in grid order.
    pub pruned: Vec<TrialConfig>,
    /// The Pareto frontier over (throughput max, footprint min), sorted
    /// by ascending footprint. Only successful cards participate.
    pub frontier: Vec<TrialConfig>,
    /// The recommended configuration: highest throughput, ties broken
    /// toward smaller footprint, then fewer workers.
    pub recommended: TrialConfig,
    /// Predicted epoch speedup of `recommended` over the baseline
    /// (baseline elapsed / recommended elapsed). `None` when the
    /// baseline itself failed.
    pub predicted_speedup: Option<f64>,
    /// Distinct configurations measured by running a live simulation
    /// during this search. With `--jobs N > 1` this can exceed the
    /// number of cards: the parallel warm-up speculatively measures
    /// configurations that the serial pruning replay then skips.
    pub trials_live: usize,
    /// Distinct configurations whose scorecard came from the on-disk
    /// trial cache instead of a live simulation. Zero when the search
    /// ran without a cache.
    pub trials_cached: usize,
}

/// The memoizing measurement layer under one search: resolves each
/// distinct configuration exactly once (cache hit, else live oracle
/// call), fans independent live measurements across [`run_jobs`]
/// threads, and keeps the *committed* report order strictly serial.
///
/// The split between [`measure`](Evaluator::measure) (speculative,
/// parallel, order-free) and [`commit`](Evaluator::commit) (the serial
/// walk that builds `order`) is what makes `--jobs N` output
/// byte-identical to `--jobs 1`: threads only ever fill the memo, and
/// every decision that shapes the report replays over memo hits in the
/// exact sequence the serial search would have used.
struct Evaluator<'a, F> {
    oracle: &'a F,
    cache: Option<&'a TrialCache>,
    jobs: usize,
    memo: BTreeMap<TrialConfig, Scorecard>,
    /// Configurations in report order — the serial walk's commit order,
    /// never the warm-up's completion order.
    order: Vec<TrialConfig>,
    /// Set view of `order`; with a warm-up, "already in the memo" no
    /// longer implies "already in the report".
    committed: BTreeSet<TrialConfig>,
    live: usize,
    cached: usize,
}

impl<F> Evaluator<'_, F>
where
    F: Fn(&TrialConfig) -> Result<TrialMeasurement, String> + Sync,
{
    /// Resolves every not-yet-memoized configuration in `configs`: cache
    /// hits load directly into the memo, the rest run live — fanned over
    /// `jobs` threads, results folded back in submission order.
    fn measure(&mut self, configs: &[TrialConfig]) {
        let mut todo: Vec<TrialConfig> = Vec::new();
        for &config in configs {
            if self.memo.contains_key(&config) || todo.contains(&config) {
                continue;
            }
            if let Some(card) = self.cache.and_then(|cache| cache.lookup(&config)) {
                self.memo.insert(config, card);
                self.cached += 1;
                continue;
            }
            todo.push(config);
        }
        if todo.is_empty() {
            return;
        }
        let oracle = self.oracle;
        let tasks: Vec<_> = todo
            .iter()
            .map(|&config| {
                move || match oracle(&config) {
                    Ok(m) => Scorecard::from_measurement(config, &m),
                    Err(e) => Scorecard::from_failure(config, e),
                }
            })
            .collect();
        let cards = run_jobs(self.jobs, tasks);
        self.live += cards.len();
        for card in cards {
            if let Some(cache) = self.cache {
                cache.store(&card.config, &card);
            }
            self.memo.insert(card.config, card);
        }
    }

    /// The serial walk's evaluation point: measures `config` if the
    /// warm-up did not already, and appends it to the report order on
    /// first commit.
    fn commit(&mut self, config: TrialConfig) -> Scorecard {
        if !self.memo.contains_key(&config) {
            self.measure(&[config]);
        }
        if self.committed.insert(config) {
            self.order.push(config);
        }
        self.memo[&config].clone()
    }
}

impl Tuner {
    /// Runs the search. `baseline` is measured first (it anchors the
    /// speedup prediction and seeds hill climbing); the oracle is called
    /// once per distinct configuration (results are memoized).
    ///
    /// An oracle error does **not** abort the search — the configuration
    /// is recorded as a failed (degraded) card and the sweep continues,
    /// which is what makes tuning under a fault plan total.
    ///
    /// # Errors
    ///
    /// Returns an error when the search space fails
    /// [`SearchSpace::validate`] or when no configuration (baseline
    /// included) completed successfully.
    pub fn run<F>(&self, baseline: TrialConfig, oracle: F) -> Result<TuneReport, String>
    where
        F: Fn(&TrialConfig) -> Result<TrialMeasurement, String> + Sync,
    {
        self.run_with(baseline, oracle, 1, None)
    }

    /// Runs the search with explicit execution options: `jobs` parallel
    /// measurement threads and an optional on-disk trial `cache`.
    ///
    /// Determinism: with `jobs > 1` the tuner first *speculatively*
    /// measures the whole candidate frontier in parallel (the full grid,
    /// or each hill-climbing neighborhood), then replays the unchanged
    /// serial walk over the memoized results. Every decision the serial
    /// search makes — evaluation order, dominance cuts, pruned list,
    /// climb path — is taken in the replay, so the report (and its JSON)
    /// is byte-identical to a `jobs = 1` run. The price is that grid
    /// speculation may measure configurations serial pruning would have
    /// skipped; those extra trials show up in
    /// [`TuneReport::trials_live`] and, with a cache, become warmth for
    /// the next sweep rather than waste.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with<F>(
        &self,
        baseline: TrialConfig,
        oracle: F,
        jobs: usize,
        cache: Option<&TrialCache>,
    ) -> Result<TuneReport, String>
    where
        F: Fn(&TrialConfig) -> Result<TrialMeasurement, String> + Sync,
    {
        self.space.validate()?;
        let mut eval = Evaluator {
            oracle: &oracle,
            cache,
            jobs: jobs.max(1),
            memo: BTreeMap::new(),
            order: Vec::new(),
            committed: BTreeSet::new(),
            live: 0,
            cached: 0,
        };

        if eval.jobs > 1 {
            if let Strategy::Grid = self.strategy {
                // Speculative warm-up: the whole grid (plus the baseline)
                // is independent, so measure it in one parallel wave.
                let mut frontier = vec![baseline];
                frontier.extend(self.space.grid());
                eval.measure(&frontier);
            }
        }

        let baseline_card = eval.commit(baseline);
        let mut pruned: Vec<TrialConfig> = Vec::new();

        match self.strategy {
            Strategy::Grid => {
                let slice_len = self.space.workers.len();
                let grid = self.space.grid();
                for slice in grid.chunks(slice_len) {
                    // Cards of this slice that completed, in worker order;
                    // pruning compares only within the slice so a bounded
                    // queue or disabled pinning is never judged against an
                    // unbounded sibling.
                    let mut slice_cards: Vec<Scorecard> = Vec::new();
                    let mut cut = false;
                    for &config in slice {
                        if cut {
                            pruned.push(config);
                            continue;
                        }
                        let card = eval.commit(config);
                        if card.is_ok() {
                            // Weak dominance: an earlier card with fewer
                            // workers that is at least as good on both
                            // axes means adding workers stopped paying —
                            // larger counts only cost memory.
                            if slice_cards.iter().any(|prev: &Scorecard| {
                                prev.throughput >= card.throughput
                                    && prev.mean_wait_ms <= card.mean_wait_ms
                            }) {
                                cut = true;
                            }
                            slice_cards.push(card);
                        }
                    }
                }
            }
            Strategy::HillClimb { max_moves } => {
                let mut at = baseline;
                let mut at_card = baseline_card.clone();
                for _ in 0..max_moves {
                    let neighbors = self.space.neighbors(at);
                    if eval.jobs > 1 {
                        // Per-round warm-up: a round's neighborhood is
                        // independent; which neighborhood comes next is
                        // decided by the serial replay below.
                        eval.measure(&neighbors);
                    }
                    let mut best: Option<Scorecard> = None;
                    for next in neighbors {
                        let card = eval.commit(next);
                        if !card.is_ok() {
                            continue;
                        }
                        if best.as_ref().is_none_or(|b| card.throughput > b.throughput) {
                            best = Some(card);
                        }
                    }
                    match best {
                        Some(card) if card.throughput > at_card.throughput => {
                            at = card.config;
                            at_card = card;
                        }
                        _ => break,
                    }
                }
            }
        }

        let Evaluator {
            memo,
            order,
            live: trials_live,
            cached: trials_cached,
            ..
        } = eval;
        let cards: Vec<Scorecard> = order.iter().map(|c| memo[c].clone()).collect();
        let mut ok_cards: Vec<&Scorecard> = cards.iter().filter(|c| c.is_ok()).collect();
        if ok_cards.is_empty() {
            return Err("no configuration completed successfully".into());
        }
        // Recommended: throughput desc, then footprint asc, workers asc,
        // config order as the final deterministic tie-break.
        ok_cards.sort_by(|a, b| {
            b.throughput
                .total_cmp(&a.throughput)
                .then(a.footprint_batches.total_cmp(&b.footprint_batches))
                .then(a.config.num_workers.cmp(&b.config.num_workers))
                .then(a.config.cmp(&b.config))
        });
        let recommended_card = ok_cards[0].clone();
        let predicted_speedup = if baseline_card.is_ok() {
            Some(baseline_card.elapsed.as_secs_f64() / recommended_card.elapsed.as_secs_f64())
        } else {
            None
        };

        // Pareto frontier on (throughput max, footprint min).
        let mut frontier: Vec<&Scorecard> = ok_cards
            .iter()
            .filter(|c| {
                !ok_cards.iter().any(|o| {
                    (o.throughput >= c.throughput && o.footprint_batches < c.footprint_batches)
                        || (o.throughput > c.throughput
                            && o.footprint_batches <= c.footprint_batches)
                })
            })
            .copied()
            .collect();
        frontier.sort_by(|a, b| {
            a.footprint_batches
                .total_cmp(&b.footprint_batches)
                .then(a.config.cmp(&b.config))
        });
        // Exact ties on both axes are one Pareto point; keep the first.
        frontier.dedup_by(|a, b| {
            a.throughput == b.throughput && a.footprint_batches == b.footprint_batches
        });

        Ok(TuneReport {
            baseline: baseline_card,
            frontier: frontier.iter().map(|c| c.config).collect(),
            recommended: recommended_card.config,
            predicted_speedup,
            cards,
            pruned,
            trials_live,
            trials_cached,
        })
    }
}

impl TuneReport {
    /// The scorecard of the recommended configuration.
    ///
    /// # Panics
    ///
    /// Never — the recommended config is always among the cards.
    #[must_use]
    pub fn recommended_card(&self) -> &Scorecard {
        self.cards
            .iter()
            .find(|c| c.config == self.recommended)
            .expect("recommended config was evaluated")
    }

    /// Renders the report as a fixed-width text table plus the verdict
    /// footer (what `lotus tune` prints without `--json`).
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>8} {:>9} {:>10} {:>7}  {:<20} flags",
            "config", "samples/s", "wait%", "t2 ms", "delay ms", "peak#", "verdict"
        );
        let _ = writeln!(out, "{}", "-".repeat(100));
        for card in &self.cards {
            let mut flags = Vec::new();
            if card.config == self.baseline.config {
                flags.push("baseline");
            }
            if card.config == self.recommended {
                flags.push("recommended");
            }
            if self.frontier.contains(&card.config) {
                flags.push("pareto");
            }
            if card.worker_deaths > 0 || card.faults_injected > 0 {
                flags.push("faults");
            }
            match &card.failed {
                Some(err) => {
                    let _ = writeln!(
                        out,
                        "{:<22} {:>12} {:>8} {:>9} {:>10} {:>7}  {:<20} {}",
                        card.config.label(),
                        "-",
                        "-",
                        "-",
                        "-",
                        "-",
                        format!("degraded: {err}"),
                        flags.join(",")
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{:<22} {:>12.1} {:>7.1}% {:>9.2} {:>10.2} {:>7.1}  {:<20} {}",
                        card.config.label(),
                        card.throughput,
                        card.wait_fraction * 100.0,
                        card.mean_wait_ms,
                        card.mean_queue_delay_ms,
                        card.footprint_batches,
                        card.verdict.map_or("-", |v| v.as_str()),
                        flags.join(",")
                    );
                }
            }
        }
        if !self.pruned.is_empty() {
            let labels: Vec<String> = self.pruned.iter().map(TrialConfig::label).collect();
            let _ = writeln!(out, "pruned (dominated): {}", labels.join(", "));
        }
        let rec = self.recommended_card();
        let _ = writeln!(out, "\nrecommended: {}", rec.config.label());
        match self.predicted_speedup {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "predicted speedup over baseline {}: {:.2}x",
                    self.baseline.config.label(),
                    s
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "baseline {} degraded; no speedup prediction",
                    self.baseline.config.label()
                );
            }
        }
        if let Some(v) = rec.verdict {
            let _ = writeln!(out, "bottleneck at recommended config: {}", v.as_str());
        }
        // Execution accounting only — deliberately absent from the JSON
        // export, whose bytes must not depend on jobs or cache warmth.
        let _ = writeln!(
            out,
            "trials: {} live, {} cached",
            self.trials_live, self.trials_cached
        );
        out
    }

    /// Serializes the report as pretty-printed JSON. Maps are emitted in
    /// insertion order and every field is derived from the deterministic
    /// simulation, so the same tuning run always produces byte-identical
    /// output — regardless of `--jobs` or cache warmth, which is why the
    /// live/cached trial counts appear in
    /// [`render_table`](Self::render_table) but not here.
    #[must_use]
    pub fn to_json(&self) -> String {
        let doc = Value(Content::Map(vec![
            ("baseline".to_string(), self.baseline.to_json_content()),
            (
                "cards".to_string(),
                Content::Seq(self.cards.iter().map(Scorecard::to_json_content).collect()),
            ),
            (
                "pruned".to_string(),
                Content::Seq(
                    self.pruned
                        .iter()
                        .map(TrialConfig::to_json_content)
                        .collect(),
                ),
            ),
            (
                "pareto_frontier".to_string(),
                Content::Seq(
                    self.frontier
                        .iter()
                        .map(TrialConfig::to_json_content)
                        .collect(),
                ),
            ),
            (
                "recommended".to_string(),
                self.recommended.to_json_content(),
            ),
            (
                "predicted_speedup".to_string(),
                match self.predicted_speedup {
                    Some(s) => Content::F64(s),
                    None => Content::Null,
                },
            ),
        ]));
        let mut text = serde_json::to_string_pretty(&doc).expect("tune report serializes");
        text.push('\n');
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{names, MetricsRegistry};
    use crate::trace::analysis::OpClassTotals;
    use lotus_sim::{Span, Time};

    fn space() -> SearchSpace {
        SearchSpace {
            workers: vec![1, 2, 4, 8],
            prefetch: vec![2],
            queue_caps: vec![None],
            pin_memory: vec![true],
        }
    }

    /// Synthetic workload: preprocessing takes 80 ms of worker time per
    /// batch, the consumer 10 ms; workers parallelize perfectly up to 4
    /// then saturate (the source serializes).
    fn toy_oracle(c: &TrialConfig) -> Result<TrialMeasurement, String> {
        let batches = 32u64;
        let per_batch_ms = 10.0 + 80.0 / (c.num_workers.min(4) as f64);
        let elapsed = Span::from_secs_f64(per_batch_ms * batches as f64 / 1e3);
        let registry = MetricsRegistry::new();
        let wait_ms = (per_batch_ms - 10.0).max(0.0);
        registry.inc_counter(names::MAIN_WAIT_NS, (wait_ms * batches as f64 * 1e6) as u64);
        registry.record_latency(names::T2_WAIT, Span::from_secs_f64(wait_ms / 1e3));
        registry.record_latency(names::QUEUE_DELAY, Span::from_micros(50));
        registry.set_gauge("queue_depth.data_queue", Time::ZERO, c.num_workers as f64);
        Ok(TrialMeasurement {
            elapsed,
            batches,
            samples: batches * 8,
            snapshot: registry.snapshot(),
            op_classes: OpClassTotals {
                storage: Span::ZERO,
                load: Span::from_millis(5),
                transform: Span::from_millis(75),
                collate: Span::from_millis(2),
            },
        })
    }

    fn baseline() -> TrialConfig {
        TrialConfig {
            num_workers: 1,
            prefetch_factor: 2,
            data_queue_cap: None,
            pin_memory: true,
        }
    }

    #[test]
    fn grid_prunes_saturated_worker_counts() {
        let tuner = Tuner {
            space: SearchSpace {
                workers: vec![1, 2, 4, 8, 16],
                ..space()
            },
            strategy: Strategy::Grid,
        };
        let report = tuner.run(baseline(), toy_oracle).unwrap();
        // Workers saturate at 4: the 8-worker card ties it on both axes,
        // which cuts the slice — 16 workers is never evaluated.
        assert_eq!(report.recommended.num_workers, 4);
        assert_eq!(report.pruned.len(), 1);
        assert_eq!(report.pruned[0].num_workers, 16);
        assert!(report.cards.iter().all(|c| c.config.num_workers != 16));
        let speedup = report.predicted_speedup.unwrap();
        assert!(speedup > 2.5, "90ms -> 30ms per batch: {speedup}");
        assert!(report.frontier.contains(&report.recommended));
        // The saturated 8-worker card ties the 4-worker card exactly on
        // throughput but costs more memory, so only one survives on the
        // frontier.
        assert!(!report.frontier.iter().any(|c| c.num_workers == 8));
    }

    #[test]
    fn hill_climb_reaches_the_same_optimum() {
        let tuner = Tuner {
            space: space(),
            strategy: Strategy::HillClimb { max_moves: 8 },
        };
        let report = tuner.run(baseline(), toy_oracle).unwrap();
        assert_eq!(report.recommended.num_workers, 4);
        // Hill climbing should evaluate fewer configs than grid + memoize.
        assert!(report.cards.len() <= 4);
    }

    #[test]
    fn failed_trials_degrade_without_aborting() {
        let tuner = Tuner {
            space: space(),
            strategy: Strategy::Grid,
        };
        let report = tuner
            .run(baseline(), |c| {
                if c.num_workers == 2 {
                    Err("worker 1 killed by fault plan".into())
                } else {
                    toy_oracle(c)
                }
            })
            .unwrap();
        let failed: Vec<_> = report.cards.iter().filter(|c| !c.is_ok()).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].config.num_workers, 2);
        assert_eq!(
            failed[0].failed.as_deref(),
            Some("worker 1 killed by fault plan")
        );
        // Failure must not prune the rest of the slice.
        assert!(report.cards.iter().any(|c| c.config.num_workers == 4));
        assert_eq!(report.recommended.num_workers, 4);
    }

    #[test]
    fn all_failures_is_an_error() {
        let tuner = Tuner {
            space: space(),
            strategy: Strategy::Grid,
        };
        let err = tuner.run(baseline(), |_| Err("dead".into())).unwrap_err();
        assert_eq!(err, "no configuration completed successfully");
    }

    #[test]
    fn report_renders_table_and_deterministic_json() {
        let tuner = Tuner {
            space: space(),
            strategy: Strategy::Grid,
        };
        let a = tuner.run(baseline(), toy_oracle).unwrap();
        let b = tuner.run(baseline(), toy_oracle).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "same run, same bytes");
        let table = a.render_table();
        assert!(table.contains("recommended: w4 pf2 cap- pin"));
        assert!(table.contains("predicted speedup"));
        assert!(table.contains("trials: 4 live, 0 cached"));
        let json = a.to_json();
        assert!(json.contains("\"pareto_frontier\""));
        assert!(json.contains("\"predicted_speedup\""));
        assert!(!json.contains("trials_live"), "counts stay out of JSON");
    }

    #[test]
    fn parallel_grid_matches_serial_byte_for_byte() {
        // The pruning space: serial evaluation skips the 16-worker
        // config, the parallel warm-up speculatively measures it — yet
        // the reports must not differ in any consumer-visible way.
        let tuner = Tuner {
            space: SearchSpace {
                workers: vec![1, 2, 4, 8, 16],
                ..space()
            },
            strategy: Strategy::Grid,
        };
        let serial = tuner.run(baseline(), toy_oracle).unwrap();
        let parallel = tuner.run_with(baseline(), toy_oracle, 4, None).unwrap();
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(serial.pruned, parallel.pruned);
        assert_eq!(serial.recommended, parallel.recommended);
        assert!(
            parallel.trials_live > serial.trials_live,
            "speculation measured the pruned config: {} vs {}",
            parallel.trials_live,
            serial.trials_live
        );
    }

    #[test]
    fn parallel_hill_climb_matches_serial_byte_for_byte() {
        let tuner = Tuner {
            space: space(),
            strategy: Strategy::HillClimb { max_moves: 8 },
        };
        let serial = tuner.run(baseline(), toy_oracle).unwrap();
        let parallel = tuner.run_with(baseline(), toy_oracle, 4, None).unwrap();
        assert_eq!(serial.to_json(), parallel.to_json());
        // A round's neighborhood is exactly what the serial walk visits,
        // so hill climbing speculates nothing extra.
        assert_eq!(serial.trials_live, parallel.trials_live);
    }

    #[test]
    fn cache_warm_rerun_executes_zero_live_trials() {
        let root =
            std::env::temp_dir().join(format!("lotus-search-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = TrialCache::open(&root, "toy-oracle seed=0").unwrap();
        let tuner = Tuner {
            space: space(),
            strategy: Strategy::Grid,
        };
        let cold = tuner
            .run_with(baseline(), toy_oracle, 2, Some(&cache))
            .unwrap();
        assert!(cold.trials_live > 0);
        assert_eq!(cold.trials_cached, 0);
        let warm = tuner
            .run_with(baseline(), toy_oracle, 2, Some(&cache))
            .unwrap();
        assert_eq!(warm.trials_live, 0, "every trial came from the cache");
        assert_eq!(warm.trials_cached, cold.trials_live);
        assert_eq!(cold.to_json(), warm.to_json(), "warmth never shows in JSON");
        let _ = std::fs::remove_dir_all(&root);
    }
}
