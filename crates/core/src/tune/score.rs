//! Scoring one tuning trial: folding a run's metrics snapshot into a
//! scorecard with throughput, wait share, memory footprint, and a
//! T1/T2/T3-based bottleneck verdict.

use lotus_sim::Span;
use serde_json::{Content, Value};

use crate::metrics::names;
use crate::metrics::MetricsSnapshot;
use crate::trace::analysis::OpClassTotals;

use super::space::TrialConfig;

/// Where one configuration's time goes, in the vocabulary of the paper's
/// T1/T2/T3 measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneVerdict {
    /// The main process waits on batches (high \[T2\] share) and the
    /// transform chain dominates worker time — more workers or cheaper
    /// transforms pay.
    PreprocessingBound,
    /// The main process waits and the `Loader` source fetch (I/O +
    /// decode) dominates — faster storage or more concurrent fetches
    /// pay; extra transform workers will idle on I/O.
    FetchBound,
    /// The main process waits and traced \[T0\] storage reads dominate —
    /// the storage hierarchy itself (cold cache, remote object store,
    /// tiny-file seeks) is the constraint; warm the cache, pack records,
    /// or move the dataset closer.
    StorageBound,
    /// The main process waits and `C(n)` collation dominates — the
    /// serial tail of each batch is the constraint.
    CollateBound,
    /// Batches queue up faster than the consumer drains them — the GPU
    /// step is the constraint and loader tuning cannot help.
    GpuBound,
    /// Neither side clearly dominates.
    Balanced,
}

impl TuneVerdict {
    /// Stable lowercase-kebab name (used in tables and JSON).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TuneVerdict::PreprocessingBound => "preprocessing-bound",
            TuneVerdict::FetchBound => "fetch-bound",
            TuneVerdict::StorageBound => "storage-bound",
            TuneVerdict::CollateBound => "collate-bound",
            TuneVerdict::GpuBound => "gpu-bound",
            TuneVerdict::Balanced => "balanced",
        }
    }

    /// The inverse of [`as_str`](Self::as_str).
    #[must_use]
    pub fn parse(name: &str) -> Option<TuneVerdict> {
        match name {
            "preprocessing-bound" => Some(TuneVerdict::PreprocessingBound),
            "fetch-bound" => Some(TuneVerdict::FetchBound),
            "storage-bound" => Some(TuneVerdict::StorageBound),
            "collate-bound" => Some(TuneVerdict::CollateBound),
            "gpu-bound" => Some(TuneVerdict::GpuBound),
            "balanced" => Some(TuneVerdict::Balanced),
            _ => None,
        }
    }
}

/// Main-process wait share of elapsed time above which a configuration
/// counts as input-bound (the consumer is starving).
pub const WAIT_BOUND_THRESHOLD: f64 = 0.15;

/// Everything one trial run produces: the job totals, the folded metrics
/// registry, and the per-op-class elapsed totals from the trace.
#[derive(Debug, Clone)]
pub struct TrialMeasurement {
    /// End-to-end elapsed virtual time.
    pub elapsed: Span,
    /// Batches consumed.
    pub batches: u64,
    /// Samples consumed.
    pub samples: u64,
    /// Snapshot of the run's [`crate::metrics::MetricsRegistry`].
    pub snapshot: MetricsSnapshot,
    /// Per-class (load / transform / collate) elapsed op totals.
    pub op_classes: OpClassTotals,
}

/// The folded result of one trial: a flat record the search, the Pareto
/// frontier, the table renderer, and the JSON exporter all read.
///
/// A failed trial (fault-degraded or invalid) keeps its configuration and
/// the error in [`failed`](Scorecard::failed); its numeric fields are
/// zero and its verdict is `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct Scorecard {
    /// The configuration this card scores.
    pub config: TrialConfig,
    /// Samples consumed per virtual second.
    pub throughput: f64,
    /// End-to-end elapsed virtual time.
    pub elapsed: Span,
    /// Samples consumed.
    pub samples: u64,
    /// Batches consumed.
    pub batches: u64,
    /// Fraction of elapsed time the main process spent waiting for
    /// batches (\[T2\] total / elapsed).
    pub wait_fraction: f64,
    /// Mean per-batch main-process wait, milliseconds.
    pub mean_wait_ms: f64,
    /// Mean shared-queue residency per batch, milliseconds.
    pub mean_queue_delay_ms: f64,
    /// Peak resident batches: data-queue depth + pinned out-of-order
    /// cache + one in-progress batch per worker.
    pub footprint_batches: f64,
    /// Bottleneck classification, `None` for failed trials.
    pub verdict: Option<TuneVerdict>,
    /// Sample errors injected by the fault plan during the run.
    pub faults_injected: u64,
    /// Workers that died during the run.
    pub worker_deaths: u64,
    /// Why the trial failed, if it did.
    pub failed: Option<String>,
}

impl Scorecard {
    /// Folds a completed trial run into a scorecard.
    #[must_use]
    pub fn from_measurement(config: TrialConfig, m: &TrialMeasurement) -> Scorecard {
        let elapsed_s = m.elapsed.as_secs_f64();
        let throughput = if elapsed_s > 0.0 {
            m.samples as f64 / elapsed_s
        } else {
            0.0
        };
        let wait_ns = m
            .snapshot
            .counters
            .get(names::MAIN_WAIT_NS)
            .copied()
            .unwrap_or(0);
        let wait_fraction = if m.elapsed.as_nanos() > 0 {
            wait_ns as f64 / m.elapsed.as_nanos() as f64
        } else {
            0.0
        };
        let mean_ns = |name: &str| m.snapshot.histograms.get(name).map_or(0.0, |h| h.mean_ns);
        let mean_wait_ms = mean_ns(names::T2_WAIT) / 1e6;
        let mean_queue_delay_ms = mean_ns(names::QUEUE_DELAY) / 1e6;
        let peak = |name: &str| m.snapshot.gauges.get(name).map_or(0.0, |g| g.max());
        let footprint_batches = peak(&format!("{}data_queue", names::QUEUE_DEPTH_PREFIX))
            + peak(names::PINNED_CACHE)
            + config.num_workers as f64;
        let verdict = classify(
            wait_fraction,
            mean_wait_ms,
            mean_queue_delay_ms,
            &m.op_classes,
        );
        Scorecard {
            config,
            throughput,
            elapsed: m.elapsed,
            samples: m.samples,
            batches: m.batches,
            wait_fraction,
            mean_wait_ms,
            mean_queue_delay_ms,
            footprint_batches,
            verdict: Some(verdict),
            faults_injected: m
                .snapshot
                .counters
                .get(names::FAULTS_INJECTED)
                .copied()
                .unwrap_or(0),
            worker_deaths: m
                .snapshot
                .counters
                .get(names::WORKER_DEATHS)
                .copied()
                .unwrap_or(0),
            failed: None,
        }
    }

    /// Card for a trial that could not complete (fault-degraded,
    /// deadlocked, or rejected by validation).
    #[must_use]
    pub fn from_failure(config: TrialConfig, error: String) -> Scorecard {
        Scorecard {
            config,
            throughput: 0.0,
            elapsed: Span::ZERO,
            samples: 0,
            batches: 0,
            wait_fraction: 0.0,
            mean_wait_ms: 0.0,
            mean_queue_delay_ms: 0.0,
            footprint_batches: 0.0,
            verdict: None,
            faults_injected: 0,
            worker_deaths: 0,
            failed: Some(error),
        }
    }

    /// True when the trial completed.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.failed.is_none()
    }

    /// The JSON object for this card: the report exporter's per-card
    /// shape, also the on-disk payload of the trial cache. Field order is
    /// fixed so the same card always serializes to the same bytes.
    #[must_use]
    pub fn to_json_content(&self) -> Content {
        Content::Map(vec![
            ("config".to_string(), self.config.to_json_content()),
            ("label".to_string(), Content::Str(self.config.label())),
            (
                "throughput_samples_per_s".to_string(),
                Content::F64(self.throughput),
            ),
            (
                "elapsed_ns".to_string(),
                Content::U64(self.elapsed.as_nanos()),
            ),
            ("samples".to_string(), Content::U64(self.samples)),
            ("batches".to_string(), Content::U64(self.batches)),
            (
                "wait_fraction".to_string(),
                Content::F64(self.wait_fraction),
            ),
            ("mean_wait_ms".to_string(), Content::F64(self.mean_wait_ms)),
            (
                "mean_queue_delay_ms".to_string(),
                Content::F64(self.mean_queue_delay_ms),
            ),
            (
                "footprint_batches".to_string(),
                Content::F64(self.footprint_batches),
            ),
            (
                "verdict".to_string(),
                match self.verdict {
                    Some(v) => Content::Str(v.as_str().to_string()),
                    None => Content::Null,
                },
            ),
            (
                "faults_injected".to_string(),
                Content::U64(self.faults_injected),
            ),
            (
                "worker_deaths".to_string(),
                Content::U64(self.worker_deaths),
            ),
            (
                "failed".to_string(),
                match &self.failed {
                    Some(e) => Content::Str(e.clone()),
                    None => Content::Null,
                },
            ),
        ])
    }

    /// Parses a card previously produced by
    /// [`to_json_content`](Self::to_json_content). The round trip is
    /// lossless: `u64` fields are exact and `f64` fields are written in
    /// shortest-round-trip form, which is what lets a cache-warm rerun
    /// reproduce byte-identical reports.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json_value(value: &Value) -> Result<Scorecard, String> {
        let float = |field: &str| -> Result<f64, String> {
            value[field]
                .as_f64()
                .ok_or_else(|| format!("scorecard field '{field}' missing or not a number"))
        };
        let uint = |field: &str| -> Result<u64, String> {
            value[field]
                .as_u64()
                .ok_or_else(|| format!("scorecard field '{field}' missing or not an integer"))
        };
        let verdict = match &value["verdict"].0 {
            Content::Null => None,
            Content::Str(name) => {
                Some(TuneVerdict::parse(name).ok_or_else(|| format!("unknown verdict '{name}'"))?)
            }
            _ => return Err("scorecard field 'verdict' must be a string or null".into()),
        };
        let failed = match &value["failed"].0 {
            Content::Null => None,
            Content::Str(error) => Some(error.clone()),
            _ => return Err("scorecard field 'failed' must be a string or null".into()),
        };
        Ok(Scorecard {
            config: TrialConfig::from_json_value(&value["config"])?,
            throughput: float("throughput_samples_per_s")?,
            elapsed: Span::from_nanos(uint("elapsed_ns")?),
            samples: uint("samples")?,
            batches: uint("batches")?,
            wait_fraction: float("wait_fraction")?,
            mean_wait_ms: float("mean_wait_ms")?,
            mean_queue_delay_ms: float("mean_queue_delay_ms")?,
            footprint_batches: float("footprint_batches")?,
            verdict,
            faults_injected: uint("faults_injected")?,
            worker_deaths: uint("worker_deaths")?,
            failed,
        })
    }

    /// True when `other` is at least as good on both throughput (higher
    /// is better) and mean \[T2\] wait (lower is better), and strictly
    /// better on at least one — the pruning dominance test. Failed cards
    /// never dominate and are never counted as dominated.
    #[must_use]
    pub fn dominated_by(&self, other: &Scorecard) -> bool {
        if !self.is_ok() || !other.is_ok() {
            return false;
        }
        let no_worse =
            other.throughput >= self.throughput && other.mean_wait_ms <= self.mean_wait_ms;
        let strictly_better =
            other.throughput > self.throughput || other.mean_wait_ms < self.mean_wait_ms;
        no_worse && strictly_better
    }
}

/// The verdict rule: a high \[T2\] share makes the run input-bound, and
/// the dominant op class names the culprit (`StorageRead` → storage,
/// `Loader` → fetch, `C(n)` → collate, otherwise the transform chain).
/// With the consumer rarely waiting, batches piling up in the shared
/// queue (queue delay ≫ wait, the inverse of the trace-insights rule)
/// indicate the GPU step is the constraint; otherwise the pipeline is
/// balanced.
fn classify(
    wait_fraction: f64,
    mean_wait_ms: f64,
    mean_queue_delay_ms: f64,
    op_classes: &OpClassTotals,
) -> TuneVerdict {
    if wait_fraction >= WAIT_BOUND_THRESHOLD {
        return match op_classes.dominant() {
            Some(("storage", _)) => TuneVerdict::StorageBound,
            Some(("load", _)) => TuneVerdict::FetchBound,
            Some(("collate", _)) => TuneVerdict::CollateBound,
            _ => TuneVerdict::PreprocessingBound,
        };
    }
    if mean_queue_delay_ms > 3.0 * mean_wait_ms && mean_queue_delay_ms > 0.0 {
        TuneVerdict::GpuBound
    } else {
        TuneVerdict::Balanced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramSnapshot, MetricsRegistry};
    use lotus_sim::Time;

    fn config() -> TrialConfig {
        TrialConfig {
            num_workers: 2,
            prefetch_factor: 2,
            data_queue_cap: None,
            pin_memory: true,
        }
    }

    fn histogram(mean_ns: f64) -> HistogramSnapshot {
        HistogramSnapshot {
            count: 1,
            sum: Span::from_nanos(mean_ns as u64),
            mean_ns,
            p50_ns: mean_ns,
            p90_ns: mean_ns,
            p99_ns: mean_ns,
        }
    }

    fn measurement(wait_ns: u64, delay_mean_ns: f64, wait_mean_ns: f64) -> TrialMeasurement {
        let registry = MetricsRegistry::new();
        registry.inc_counter(names::MAIN_WAIT_NS, wait_ns);
        registry.set_gauge("queue_depth.data_queue", Time::ZERO, 3.0);
        registry.set_gauge(names::PINNED_CACHE, Time::ZERO, 1.0);
        let mut snapshot = registry.snapshot();
        snapshot
            .histograms
            .insert(names::T2_WAIT.to_string(), histogram(wait_mean_ns));
        snapshot
            .histograms
            .insert(names::QUEUE_DELAY.to_string(), histogram(delay_mean_ns));
        TrialMeasurement {
            elapsed: Span::from_secs_f64(1.0),
            batches: 10,
            samples: 80,
            snapshot,
            op_classes: OpClassTotals {
                storage: Span::ZERO,
                load: Span::from_millis(10),
                transform: Span::from_millis(100),
                collate: Span::from_millis(5),
            },
        }
    }

    #[test]
    fn scorecard_folds_throughput_footprint_and_verdict() {
        // 40% of the second spent waiting → input-bound; transforms
        // dominate → preprocessing-bound.
        let m = measurement(400_000_000, 1_000.0, 40_000_000.0);
        let card = Scorecard::from_measurement(config(), &m);
        assert!((card.throughput - 80.0).abs() < 1e-9);
        assert!((card.wait_fraction - 0.4).abs() < 1e-9);
        // 3 (queue) + 1 (pinned cache) + 2 (workers)
        assert!((card.footprint_batches - 6.0).abs() < 1e-9);
        assert_eq!(card.verdict, Some(TuneVerdict::PreprocessingBound));
        assert!(card.is_ok());
    }

    #[test]
    fn loader_dominated_input_bound_runs_are_fetch_bound() {
        let mut m = measurement(400_000_000, 1_000.0, 40_000_000.0);
        m.op_classes = OpClassTotals {
            storage: Span::ZERO,
            load: Span::from_millis(500),
            transform: Span::from_millis(50),
            collate: Span::from_millis(5),
        };
        let card = Scorecard::from_measurement(config(), &m);
        assert_eq!(card.verdict, Some(TuneVerdict::FetchBound));
    }

    #[test]
    fn storage_dominated_input_bound_runs_are_storage_bound() {
        let mut m = measurement(400_000_000, 1_000.0, 40_000_000.0);
        m.op_classes = OpClassTotals {
            storage: Span::from_millis(600),
            load: Span::from_millis(80),
            transform: Span::from_millis(50),
            collate: Span::from_millis(5),
        };
        let card = Scorecard::from_measurement(config(), &m);
        assert_eq!(card.verdict, Some(TuneVerdict::StorageBound));
    }

    #[test]
    fn queued_up_batches_with_idle_consumer_mean_gpu_bound() {
        // Consumer almost never waits, batches sit 100x longer in the
        // queue than the consumer waits for them.
        let m = measurement(1_000_000, 10_000_000.0, 100_000.0);
        let card = Scorecard::from_measurement(config(), &m);
        assert_eq!(card.verdict, Some(TuneVerdict::GpuBound));
    }

    #[test]
    fn scorecard_json_round_trips_losslessly() {
        let ok = Scorecard::from_measurement(config(), &measurement(400_000_000, 1_000.0, 4e7));
        let failed = Scorecard::from_failure(config(), "worker 1 killed".into());
        for card in [ok, failed] {
            let text = serde_json::to_string_pretty(&Value(card.to_json_content())).unwrap();
            let parsed = Scorecard::from_json_value(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(parsed, card, "round trip must be exact");
            // Byte-exact re-serialization is what the trial cache needs.
            let retext = serde_json::to_string_pretty(&Value(parsed.to_json_content())).unwrap();
            assert_eq!(retext, text);
        }
        assert!(Scorecard::from_json_value(&Value::null()).is_err());
    }

    #[test]
    fn verdict_names_round_trip() {
        for verdict in [
            TuneVerdict::PreprocessingBound,
            TuneVerdict::FetchBound,
            TuneVerdict::StorageBound,
            TuneVerdict::CollateBound,
            TuneVerdict::GpuBound,
            TuneVerdict::Balanced,
        ] {
            assert_eq!(TuneVerdict::parse(verdict.as_str()), Some(verdict));
        }
        assert_eq!(TuneVerdict::parse("nonsense"), None);
    }

    #[test]
    fn dominance_needs_both_axes() {
        let base = Scorecard::from_measurement(config(), &measurement(100_000_000, 1.0, 5e6));
        let mut better = base.clone();
        better.throughput += 10.0;
        better.mean_wait_ms -= 1.0;
        assert!(base.dominated_by(&better));
        assert!(!better.dominated_by(&base));
        // Faster but waits longer → not dominated.
        let mut tradeoff = base.clone();
        tradeoff.throughput += 10.0;
        tradeoff.mean_wait_ms += 1.0;
        assert!(!base.dominated_by(&tradeoff));
        // Failed cards neither dominate nor get pruned.
        let failed = Scorecard::from_failure(config(), "worker killed".into());
        assert!(!failed.dominated_by(&better));
        assert!(!base.dominated_by(&failed));
        assert!(!failed.is_ok());
    }
}
