//! **lotus audit** — happens-before analysis of the native backend's
//! synchronization-event stream.
//!
//! The native backend (PR 6) runs the real DataLoader protocol on
//! `std::thread` with homegrown mutex+condvar queues — a layer the
//! simulated-protocol model checker cannot see. When an
//! [`AuditFeed`](lotus_dataflow::AuditFeed) is attached, every lock
//! transition, condvar wait/notify, committed send/receive, death
//! marking and redispatch is recorded as a
//! [`SyncEvent`](lotus_dataflow::SyncEvent); [`analyze`] rebuilds the
//! run's happens-before partial order from those events with vector
//! clocks ([`vc`]) and judges it against the native protocol's
//! synchronization contract:
//!
//! * **lock discipline** — acquires/releases pair up per thread, and
//!   commits happen inside their object's critical section;
//! * **wake discipline** — every committed send/receive is followed by
//!   its condvar notify (a missing `notify_one` is the classic lost
//!   wakeup that hangs training "for no reason");
//! * **lost-wakeup re-check** — a condvar wait that returns with its
//!   predicate false must wait again, never commit ("`while`, not
//!   `if`");
//! * **gated commits** — sends on protected queues (the data queue)
//!   happen while holding their guard lock (the liveness lock), the
//!   atomicity redispatch safety rests on;
//! * **produce ⊑ consume** — every batch's producing commit
//!   happens-before its consuming commit, exactly once each;
//! * **death ⊑ redispatch** — an orphan is redispatched only after its
//!   owner's death was observed;
//! * **gauge total order** — concurrent samplers of one gauge series
//!   are serialized (queue-depth gauges sample inside the queue's
//!   critical section);
//! * **lock-order acyclicity** — the "held while acquiring" graph has
//!   no cycle (deadlock potential).
//!
//! [`minimize_events`] shrinks a flagged stream to a small
//! counterexample window by greedy chunk deletion, re-running the
//! analysis to confirm the finding survives — the same
//! counterexample-minimization UX as `lotus check`. The [`model`]
//! submodule ports the `NativeQueue` state machine into the bounded DFS
//! explorer so exhaustive small-interleaving checks run in `cargo
//! test`.

pub mod model;
pub mod vc;

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use lotus_dataflow::{CvKind, SyncEvent, SyncOp};

use vc::VectorClock;

/// The synchronization contract the analyzer enforces beyond the
/// object-independent rules.
#[derive(Debug, Clone, Default)]
pub struct AuditSpec {
    /// `(queue, guard)` pairs: every `SendCommit` on `queue` must be
    /// performed while holding `guard`'s lock.
    pub gated_sends: Vec<(String, String)>,
}

impl AuditSpec {
    /// The native backend's contract: envelope pushes onto the data
    /// queue are atomic with the worker's liveness check.
    #[must_use]
    pub fn native_backend() -> AuditSpec {
        AuditSpec {
            gated_sends: vec![("data_queue".to_string(), "liveness".to_string())],
        }
    }
}

/// One flagged defect in the synchronization-event stream.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditFinding {
    /// A lock transition that does not pair up (acquire of a held lock,
    /// release of a free one, or a commit outside any critical section).
    UnpairedLock {
        /// Recording thread.
        tid: u32,
        /// The object.
        obj: String,
        /// Sequence number of the offending event.
        seq: u64,
        /// What exactly failed to pair.
        detail: String,
    },
    /// A thread committed sends (or receives) on an object but signalled
    /// the corresponding condvar fewer times — a lost wakeup.
    MissedWake {
        /// Recording thread.
        tid: u32,
        /// The queue.
        obj: String,
        /// The under-signalled condvar (`not_empty` for sends,
        /// `not_full` for receives).
        cv: &'static str,
        /// Commits by this thread on this object.
        commits: usize,
        /// Matching notifies by this thread.
        notifies: usize,
    },
    /// A send was committed on a gated queue without holding its guard
    /// lock — the commit is no longer atomic with the guarded check.
    UngatedCommit {
        /// Recording thread.
        tid: u32,
        /// The gated queue.
        obj: String,
        /// The guard lock the spec requires.
        guard: String,
        /// The committed batch, when identifiable.
        batch: Option<u64>,
        /// Sequence number of the commit.
        seq: u64,
    },
    /// A condvar wait returned with its predicate false and the thread
    /// committed anyway instead of waiting again (`if` where `while`
    /// belongs).
    WaitWithoutRecheck {
        /// Recording thread.
        tid: u32,
        /// The object.
        obj: String,
        /// The condvar that was waited on.
        cv: &'static str,
        /// Sequence number of the offending commit.
        seq: u64,
    },
    /// A batch's consuming commit is not ordered after its producing
    /// commit — producer and consumer race on the payload.
    UnorderedProduceConsume {
        /// The queue.
        obj: String,
        /// The racing batch.
        batch: u64,
        /// Sequence number of the produce.
        send_seq: u64,
        /// Sequence number of the consume.
        recv_seq: u64,
    },
    /// One batch was committed onto one queue twice — double delivery.
    DuplicateProduce {
        /// The queue.
        obj: String,
        /// The twice-sent batch.
        batch: u64,
        /// Sequence number of the first send.
        first_seq: u64,
        /// Sequence number of the second send.
        second_seq: u64,
    },
    /// A batch was received from a queue it was never committed into.
    PhantomConsume {
        /// The queue.
        obj: String,
        /// The phantom batch.
        batch: u64,
        /// Sequence number of the receive.
        seq: u64,
    },
    /// An orphan was redispatched with no observed death of its owner
    /// ordered before the redispatch.
    RedispatchBeforeDeath {
        /// The redispatched batch.
        batch: u64,
        /// The claimed-dead owner.
        from: usize,
        /// Sequence number of the redispatch.
        seq: u64,
    },
    /// Two samples of one gauge series are concurrent under the
    /// happens-before order — the series' writes are not totally
    /// ordered and the trace's gauge track is meaningless.
    UnorderedGauges {
        /// The gauge series.
        gauge: String,
        /// Earlier (by sequence) sample.
        first_seq: u64,
        /// Later sample, concurrent with the earlier one.
        second_seq: u64,
        /// Thread of the earlier sample.
        first_tid: u32,
        /// Thread of the later sample.
        second_tid: u32,
    },
    /// The lock-acquisition-order graph has a cycle — deadlock
    /// potential between the listed locks.
    LockCycle {
        /// The locks along the cycle, first repeated at the end.
        cycle: Vec<String>,
    },
}

impl AuditFinding {
    /// Stable kebab-case rule name (summary tables, JSON, CI greps).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            AuditFinding::UnpairedLock { .. } => "unpaired-lock",
            AuditFinding::MissedWake { .. } => "missed-wake",
            AuditFinding::UngatedCommit { .. } => "ungated-commit",
            AuditFinding::WaitWithoutRecheck { .. } => "wait-without-recheck",
            AuditFinding::UnorderedProduceConsume { .. } => "unordered-produce-consume",
            AuditFinding::DuplicateProduce { .. } => "duplicate-produce",
            AuditFinding::PhantomConsume { .. } => "phantom-consume",
            AuditFinding::RedispatchBeforeDeath { .. } => "redispatch-before-death",
            AuditFinding::UnorderedGauges { .. } => "unordered-gauges",
            AuditFinding::LockCycle { .. } => "lock-cycle",
        }
    }
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditFinding::UnpairedLock {
                tid,
                obj,
                seq,
                detail,
            } => write!(f, "unpaired lock on {obj} by thread {tid} at seq {seq}: {detail}"),
            AuditFinding::MissedWake {
                tid,
                obj,
                cv,
                commits,
                notifies,
            } => write!(
                f,
                "missed wake on {obj}: thread {tid} committed {commits} but signalled {cv} only {notifies} time(s)"
            ),
            AuditFinding::UngatedCommit {
                tid,
                obj,
                guard,
                batch,
                seq,
            } => write!(
                f,
                "ungated commit on {obj}: thread {tid} sent batch {batch:?} at seq {seq} without holding {guard}"
            ),
            AuditFinding::WaitWithoutRecheck { tid, obj, cv, seq } => write!(
                f,
                "wait without re-check on {obj}: thread {tid} committed at seq {seq} after an unsatisfied {cv} wait"
            ),
            AuditFinding::UnorderedProduceConsume {
                obj,
                batch,
                send_seq,
                recv_seq,
            } => write!(
                f,
                "produce/consume race on {obj}: batch {batch} sent at seq {send_seq} does not happen-before its receive at seq {recv_seq}"
            ),
            AuditFinding::DuplicateProduce {
                obj,
                batch,
                first_seq,
                second_seq,
            } => write!(
                f,
                "duplicate produce on {obj}: batch {batch} committed at seq {first_seq} and again at seq {second_seq}"
            ),
            AuditFinding::PhantomConsume { obj, batch, seq } => write!(
                f,
                "phantom consume on {obj}: batch {batch} received at seq {seq} but never sent"
            ),
            AuditFinding::RedispatchBeforeDeath { batch, from, seq } => write!(
                f,
                "redispatch before death: batch {batch} re-sent from worker {from} at seq {seq} with no observed death ordered before it"
            ),
            AuditFinding::UnorderedGauges {
                gauge,
                first_seq,
                second_seq,
                first_tid,
                second_tid,
            } => write!(
                f,
                "unordered gauge writes on {gauge}: seq {first_seq} (thread {first_tid}) and seq {second_seq} (thread {second_tid}) are concurrent"
            ),
            AuditFinding::LockCycle { cycle } => {
                write!(f, "lock-order cycle (deadlock potential): {}", cycle.join(" -> "))
            }
        }
    }
}

/// Shape of the analyzed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuditStats {
    /// Events analyzed.
    pub events: usize,
    /// Distinct recording threads.
    pub threads: usize,
    /// Distinct synchronization objects (locks and queues).
    pub objects: usize,
    /// Distinct batches seen in send/receive commits.
    pub batches: usize,
}

/// The auditor's verdict over one event stream.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Every flagged defect, in stream order (cycles last).
    pub findings: Vec<AuditFinding>,
    /// Shape of the analyzed stream.
    pub stats: AuditStats,
}

impl AuditReport {
    /// True when nothing was flagged.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

#[derive(Default)]
struct PairCounts {
    sends: usize,
    recvs: usize,
    notify_not_empty: usize,
    notify_not_full: usize,
}

struct ThreadState {
    clock: VectorClock,
    held: BTreeSet<String>,
    /// Set after a `WaitReturn { satisfied: false }`: `(obj, cv)` the
    /// thread must not commit on before waiting or unlocking again.
    unsatisfied: Option<(String, CvKind)>,
}

fn cv_name(cv: CvKind) -> &'static str {
    match cv {
        CvKind::NotEmpty => "not_empty",
        CvKind::NotFull => "not_full",
    }
}

/// Analyzes a synchronization-event stream (sorted by `seq`, as
/// [`AuditFeed::drain`](lotus_dataflow::AuditFeed::drain) returns it)
/// against `spec`. Returns every finding; an empty report certifies the
/// recorded run obeyed the native protocol's synchronization contract.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn analyze(events: &[SyncEvent], spec: &AuditSpec) -> AuditReport {
    let mut findings = Vec::new();

    // Dense thread indexing for the vector clocks.
    let tids: BTreeSet<u32> = events.iter().map(|e| e.tid).collect();
    let index_of: BTreeMap<u32, usize> = tids.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let threads = tids.len();
    let mut state: BTreeMap<u32, ThreadState> = tids
        .iter()
        .map(|&t| {
            (
                t,
                ThreadState {
                    clock: VectorClock::new(threads),
                    held: BTreeSet::new(),
                    unsatisfied: None,
                },
            )
        })
        .collect();

    // The most recent release of each lock object, for the join at the
    // next acquire: because a mutex serializes its critical sections,
    // joining with the latest release transitively orders a section
    // after every earlier one.
    let mut last_release: HashMap<String, VectorClock> = HashMap::new();
    let mut counts: HashMap<(u32, String), PairCounts> = HashMap::new();
    let mut sends: HashMap<(String, u64), (u64, u32, VectorClock)> = HashMap::new();
    let mut deaths: HashMap<usize, VectorClock> = HashMap::new();
    let mut last_gauge: HashMap<String, (u64, u32, VectorClock)> = HashMap::new();
    // held-while-acquiring edges, with one witness acquire each.
    let mut lock_edges: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut lock_objs: BTreeSet<String> = BTreeSet::new();
    let mut batches: BTreeSet<u64> = BTreeSet::new();

    for event in events {
        let Some(&ti) = index_of.get(&event.tid) else {
            continue;
        };
        let Some(ts) = state.get_mut(&event.tid) else {
            continue;
        };
        ts.clock.tick(ti);
        let obj = event.obj.as_str();

        // Lost-wakeup discipline: after an unsatisfied wait return, the
        // next action on that object must not be a commit.
        if let Some((pending_obj, cv)) = ts.unsatisfied.clone() {
            if pending_obj == obj {
                if matches!(
                    event.op,
                    SyncOp::SendCommit { .. } | SyncOp::RecvCommit { .. }
                ) {
                    findings.push(AuditFinding::WaitWithoutRecheck {
                        tid: event.tid,
                        obj: obj.to_string(),
                        cv: cv_name(cv),
                        seq: event.seq,
                    });
                }
                ts.unsatisfied = None;
            }
        }

        match &event.op {
            SyncOp::LockAcquire | SyncOp::WaitReturn { .. } => {
                lock_objs.insert(obj.to_string());
                if let SyncOp::LockAcquire = event.op {
                    if ts.held.contains(obj) {
                        findings.push(AuditFinding::UnpairedLock {
                            tid: event.tid,
                            obj: obj.to_string(),
                            seq: event.seq,
                            detail: "acquire of a lock this thread already holds".to_string(),
                        });
                    }
                }
                for held in &ts.held {
                    if held != obj {
                        lock_edges
                            .entry((held.clone(), obj.to_string()))
                            .or_insert(event.seq);
                    }
                }
                if let Some(rel) = last_release.get(obj) {
                    ts.clock.join(rel);
                }
                ts.held.insert(obj.to_string());
                if let SyncOp::WaitReturn { cv, satisfied } = event.op {
                    if !satisfied {
                        ts.unsatisfied = Some((obj.to_string(), cv));
                    }
                }
            }
            SyncOp::LockRelease | SyncOp::WaitStart { .. } => {
                if !ts.held.remove(obj) {
                    findings.push(AuditFinding::UnpairedLock {
                        tid: event.tid,
                        obj: obj.to_string(),
                        seq: event.seq,
                        detail: "release of a lock this thread does not hold".to_string(),
                    });
                }
                last_release.insert(obj.to_string(), ts.clock.clone());
                if matches!(event.op, SyncOp::LockRelease) {
                    ts.unsatisfied = None;
                }
            }
            SyncOp::Notify { cv } => {
                let entry = counts.entry((event.tid, obj.to_string())).or_default();
                match cv {
                    CvKind::NotEmpty => entry.notify_not_empty += 1,
                    CvKind::NotFull => entry.notify_not_full += 1,
                }
            }
            SyncOp::SendCommit { batch } => {
                if !ts.held.contains(obj) {
                    findings.push(AuditFinding::UnpairedLock {
                        tid: event.tid,
                        obj: obj.to_string(),
                        seq: event.seq,
                        detail: "send committed outside the object's critical section".to_string(),
                    });
                }
                for (queue, guard) in &spec.gated_sends {
                    if queue == obj && !ts.held.contains(guard) {
                        findings.push(AuditFinding::UngatedCommit {
                            tid: event.tid,
                            obj: obj.to_string(),
                            guard: guard.clone(),
                            batch: *batch,
                            seq: event.seq,
                        });
                    }
                }
                counts
                    .entry((event.tid, obj.to_string()))
                    .or_default()
                    .sends += 1;
                if let Some(id) = batch {
                    batches.insert(*id);
                    if let Some((first_seq, _, _)) = sends.get(&(obj.to_string(), *id)) {
                        findings.push(AuditFinding::DuplicateProduce {
                            obj: obj.to_string(),
                            batch: *id,
                            first_seq: *first_seq,
                            second_seq: event.seq,
                        });
                    } else {
                        sends.insert(
                            (obj.to_string(), *id),
                            (event.seq, event.tid, ts.clock.clone()),
                        );
                    }
                }
            }
            SyncOp::RecvCommit { batch } => {
                if !ts.held.contains(obj) {
                    findings.push(AuditFinding::UnpairedLock {
                        tid: event.tid,
                        obj: obj.to_string(),
                        seq: event.seq,
                        detail: "receive committed outside the object's critical section"
                            .to_string(),
                    });
                }
                counts
                    .entry((event.tid, obj.to_string()))
                    .or_default()
                    .recvs += 1;
                if let Some(id) = batch {
                    batches.insert(*id);
                    match sends.get(&(obj.to_string(), *id)) {
                        None => findings.push(AuditFinding::PhantomConsume {
                            obj: obj.to_string(),
                            batch: *id,
                            seq: event.seq,
                        }),
                        Some((send_seq, send_tid, send_clock)) => {
                            if *send_tid != event.tid && !send_clock.leq(&ts.clock) {
                                findings.push(AuditFinding::UnorderedProduceConsume {
                                    obj: obj.to_string(),
                                    batch: *id,
                                    send_seq: *send_seq,
                                    recv_seq: event.seq,
                                });
                            }
                        }
                    }
                }
            }
            SyncOp::Close => {
                if !ts.held.contains(obj) {
                    findings.push(AuditFinding::UnpairedLock {
                        tid: event.tid,
                        obj: obj.to_string(),
                        seq: event.seq,
                        detail: "close outside the object's critical section".to_string(),
                    });
                }
            }
            SyncOp::MarkDead { worker } => {
                if !ts.held.contains(obj) {
                    findings.push(AuditFinding::UnpairedLock {
                        tid: event.tid,
                        obj: obj.to_string(),
                        seq: event.seq,
                        detail: "death marked outside the liveness critical section".to_string(),
                    });
                }
                deaths.insert(*worker, ts.clock.clone());
            }
            SyncOp::Redispatch { batch, from } => {
                let ordered = deaths.get(from).is_some_and(|death| death.leq(&ts.clock));
                if !ordered {
                    findings.push(AuditFinding::RedispatchBeforeDeath {
                        batch: *batch,
                        from: *from,
                        seq: event.seq,
                    });
                }
            }
            SyncOp::Gauge { .. } => {
                if let Some((prev_seq, prev_tid, prev_clock)) = last_gauge.get(obj) {
                    if *prev_tid != event.tid && !prev_clock.leq(&ts.clock) {
                        findings.push(AuditFinding::UnorderedGauges {
                            gauge: obj.to_string(),
                            first_seq: *prev_seq,
                            second_seq: event.seq,
                            first_tid: *prev_tid,
                            second_tid: event.tid,
                        });
                    }
                }
                last_gauge.insert(obj.to_string(), (event.seq, event.tid, ts.clock.clone()));
            }
        }
    }

    // Wake discipline: per (thread, object), every committed send must
    // have signalled `not_empty` and every receive `not_full`. Extra
    // notifies (close's broadcast) are fine; missing ones are lost
    // wakeups.
    for ((tid, obj), c) in &counts {
        if c.sends > c.notify_not_empty {
            findings.push(AuditFinding::MissedWake {
                tid: *tid,
                obj: obj.clone(),
                cv: "not_empty",
                commits: c.sends,
                notifies: c.notify_not_empty,
            });
        }
        if c.recvs > c.notify_not_full {
            findings.push(AuditFinding::MissedWake {
                tid: *tid,
                obj: obj.clone(),
                cv: "not_full",
                commits: c.recvs,
                notifies: c.notify_not_full,
            });
        }
    }

    // Lock-order graph: a cycle means two threads can each hold one
    // lock of the cycle while waiting for the next — deadlock
    // potential even if this run got lucky.
    if let Some(cycle) = find_cycle(&lock_edges) {
        findings.push(AuditFinding::LockCycle { cycle });
    }

    let objects: BTreeSet<&str> = events
        .iter()
        .filter(|e| !matches!(e.op, SyncOp::Gauge { .. } | SyncOp::Redispatch { .. }))
        .map(|e| e.obj.as_str())
        .collect();
    AuditReport {
        findings,
        stats: AuditStats {
            events: events.len(),
            threads,
            objects: objects.len(),
            batches: batches.len(),
        },
    }
}

/// Finds one cycle in the lock-order graph, as the list of locks along
/// it (first lock repeated at the end), or `None` when acyclic.
fn find_cycle(edges: &BTreeMap<(String, String), u64>) -> Option<Vec<String>> {
    let mut adjacency: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adjacency
            .entry(from.as_str())
            .or_default()
            .push(to.as_str());
    }
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &start in adjacency.keys() {
        if done.contains(start) {
            continue;
        }
        // Iterative DFS with an explicit path stack for cycle recovery.
        let mut path: Vec<&str> = Vec::new();
        let mut frontier: Vec<(usize, &str)> = vec![(0, start)];
        while let Some((depth, node)) = frontier.pop() {
            path.truncate(depth);
            if let Some(pos) = path.iter().position(|&p| p == node) {
                let mut cycle: Vec<String> = path[pos..].iter().map(ToString::to_string).collect();
                cycle.push(node.to_string());
                return Some(cycle);
            }
            if done.contains(node) {
                continue;
            }
            path.push(node);
            if path.len() > edges.len() + 1 {
                continue;
            }
            let next: Vec<&str> = adjacency.get(node).cloned().unwrap_or_default();
            if next.is_empty() {
                done.insert(node);
                continue;
            }
            for n in next {
                frontier.push((depth + 1, n));
            }
        }
        done.insert(start);
    }
    None
}

/// Greedily shrinks a flagged event stream to a small window that still
/// produces a finding of `kind` — the auditor's counterexample
/// minimization. Deletes progressively smaller chunks, keeping each
/// deletion only when a re-analysis confirms the finding survives;
/// `budget` bounds the number of re-analyses.
#[must_use]
pub fn minimize_events(
    events: &[SyncEvent],
    spec: &AuditSpec,
    kind: &str,
    budget: usize,
) -> Vec<SyncEvent> {
    let still_fails = |candidate: &[SyncEvent]| {
        analyze(candidate, spec)
            .findings
            .iter()
            .any(|f| f.kind() == kind)
    };
    if !still_fails(events) {
        return events.to_vec();
    }
    let mut current = events.to_vec();
    let mut spent = 0usize;
    let mut chunk = current.len().div_ceil(2).max(1);
    while chunk >= 1 && spent < budget {
        let mut shrunk = false;
        let mut start = 0;
        while start < current.len() && spent < budget {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            spent += 1;
            if !candidate.is_empty() && still_fails(&candidate) {
                current = candidate;
                shrunk = true;
                // Re-try the same window position against the shrunk
                // stream.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !shrunk {
            break;
        }
        chunk = if chunk == 1 { 1 } else { chunk / 2 };
        if chunk == 1 && shrunk {
            // One more unit-granularity pass after a successful round.
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_dataflow::SyncOp as Op;

    /// Builder for synthetic streams: seq is the index.
    fn stream(events: Vec<(u32, &str, Op)>) -> Vec<SyncEvent> {
        events
            .into_iter()
            .enumerate()
            .map(|(seq, (tid, obj, op))| SyncEvent {
                seq: seq as u64,
                tid,
                obj: obj.to_string(),
                op,
            })
            .collect()
    }

    fn kinds(report: &AuditReport) -> Vec<&'static str> {
        report.findings.iter().map(AuditFinding::kind).collect()
    }

    /// A clean handoff: worker 1 sends under the guard, main receives,
    /// everything notified and ordered through the queue mutex.
    fn clean_handoff() -> Vec<SyncEvent> {
        stream(vec![
            (1, "liveness", Op::LockAcquire),
            (1, "q", Op::LockAcquire),
            (1, "q", Op::SendCommit { batch: Some(7) }),
            (1, "q", Op::LockRelease),
            (1, "liveness", Op::LockRelease),
            (
                1,
                "q",
                Op::Notify {
                    cv: CvKind::NotEmpty,
                },
            ),
            (0, "q", Op::LockAcquire),
            (0, "q", Op::RecvCommit { batch: Some(7) }),
            (0, "q", Op::LockRelease),
            (
                0,
                "q",
                Op::Notify {
                    cv: CvKind::NotFull,
                },
            ),
        ])
    }

    fn gated_spec() -> AuditSpec {
        AuditSpec {
            gated_sends: vec![("q".to_string(), "liveness".to_string())],
        }
    }

    #[test]
    fn clean_stream_passes() {
        let report = analyze(&clean_handoff(), &gated_spec());
        assert!(report.clean(), "unexpected findings: {:?}", report.findings);
        assert_eq!(report.stats.threads, 2);
        assert_eq!(report.stats.batches, 1);
    }

    #[test]
    fn missed_wake_is_flagged() {
        let mut events = clean_handoff();
        // Drop the producer's notify.
        events.retain(|e| {
            !(e.tid == 1
                && matches!(
                    e.op,
                    Op::Notify {
                        cv: CvKind::NotEmpty
                    }
                ))
        });
        let report = analyze(&events, &gated_spec());
        assert!(
            kinds(&report).contains(&"missed-wake"),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn ungated_commit_is_flagged() {
        let events = stream(vec![
            // The liveness check happened, but the lock was dropped
            // before the push.
            (1, "liveness", Op::LockAcquire),
            (1, "liveness", Op::LockRelease),
            (1, "q", Op::LockAcquire),
            (1, "q", Op::SendCommit { batch: Some(3) }),
            (1, "q", Op::LockRelease),
            (
                1,
                "q",
                Op::Notify {
                    cv: CvKind::NotEmpty,
                },
            ),
        ]);
        let report = analyze(&events, &gated_spec());
        assert!(
            kinds(&report).contains(&"ungated-commit"),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn wait_without_recheck_is_flagged() {
        let events = stream(vec![
            (0, "q", Op::LockAcquire),
            (
                0,
                "q",
                Op::WaitStart {
                    cv: CvKind::NotEmpty,
                },
            ),
            (
                0,
                "q",
                Op::WaitReturn {
                    cv: CvKind::NotEmpty,
                    satisfied: false,
                },
            ),
            // Committing anyway: "if" where "while" belongs.
            (0, "q", Op::RecvCommit { batch: None }),
            (0, "q", Op::LockRelease),
            (
                0,
                "q",
                Op::Notify {
                    cv: CvKind::NotFull,
                },
            ),
        ]);
        let report = analyze(&events, &AuditSpec::default());
        assert!(
            kinds(&report).contains(&"wait-without-recheck"),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn satisfied_wait_then_commit_is_clean() {
        let events = stream(vec![
            (0, "q", Op::LockAcquire),
            (
                0,
                "q",
                Op::WaitStart {
                    cv: CvKind::NotEmpty,
                },
            ),
            (
                0,
                "q",
                Op::WaitReturn {
                    cv: CvKind::NotEmpty,
                    satisfied: true,
                },
            ),
            (0, "q", Op::RecvCommit { batch: None }),
            (0, "q", Op::LockRelease),
            (
                0,
                "q",
                Op::Notify {
                    cv: CvKind::NotFull,
                },
            ),
        ]);
        assert!(analyze(&events, &AuditSpec::default()).clean());
    }

    #[test]
    fn unordered_produce_consume_is_flagged() {
        // A handoff ordered through the queue mutex is clean: the
        // consumer's acquire joins the producer's release.
        let ordered = stream(vec![
            (1, "a", Op::LockAcquire),
            (1, "a", Op::SendCommit { batch: Some(4) }),
            (1, "a", Op::LockRelease),
            (
                1,
                "a",
                Op::Notify {
                    cv: CvKind::NotEmpty,
                },
            ),
            (0, "a", Op::LockAcquire),
            (0, "a", Op::RecvCommit { batch: Some(4) }),
            (0, "a", Op::LockRelease),
            (
                0,
                "a",
                Op::Notify {
                    cv: CvKind::NotFull,
                },
            ),
        ]);
        let report = analyze(&ordered, &AuditSpec::default());
        assert!(report.clean(), "{:?}", report.findings);

        // A genuinely racing pair: the consumer already holds "a" (its
        // clock never joins the producer's release of "a2" before the
        // receive), so send and receive are concurrent — the payload
        // handoff is unsynchronized.
        let racing = stream(vec![
            (0, "a", Op::LockAcquire),
            (1, "a2", Op::LockAcquire),
            (1, "a2", Op::SendCommit { batch: Some(4) }),
            (0, "a2", Op::LockAcquire),
            (0, "a2", Op::RecvCommit { batch: Some(4) }),
            (0, "a2", Op::LockRelease),
            (0, "a", Op::LockRelease),
            (1, "a2", Op::LockRelease),
        ]);
        let report = analyze(&racing, &AuditSpec::default());
        assert!(
            kinds(&report).contains(&"unordered-produce-consume"),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn duplicate_produce_and_phantom_consume_are_flagged() {
        let events = stream(vec![
            (1, "q", Op::LockAcquire),
            (1, "q", Op::SendCommit { batch: Some(2) }),
            (1, "q", Op::SendCommit { batch: Some(2) }),
            (1, "q", Op::RecvCommit { batch: Some(5) }),
            (1, "q", Op::LockRelease),
            (
                1,
                "q",
                Op::Notify {
                    cv: CvKind::NotEmpty,
                },
            ),
            (
                1,
                "q",
                Op::Notify {
                    cv: CvKind::NotEmpty,
                },
            ),
            (
                1,
                "q",
                Op::Notify {
                    cv: CvKind::NotFull,
                },
            ),
        ]);
        let report = analyze(&events, &AuditSpec::default());
        let ks = kinds(&report);
        assert!(ks.contains(&"duplicate-produce"), "{:?}", report.findings);
        assert!(ks.contains(&"phantom-consume"), "{:?}", report.findings);
    }

    #[test]
    fn redispatch_requires_an_ordered_death() {
        let orphaned = stream(vec![
            (0, "liveness", Op::LockAcquire),
            (0, "liveness", Op::MarkDead { worker: 1 }),
            (0, "liveness", Op::LockRelease),
            (0, "dispatcher", Op::Redispatch { batch: 3, from: 1 }),
        ]);
        assert!(analyze(&orphaned, &AuditSpec::default()).clean());

        let premature = stream(vec![(
            0,
            "dispatcher",
            Op::Redispatch { batch: 3, from: 1 },
        )]);
        let report = analyze(&premature, &AuditSpec::default());
        assert!(
            kinds(&report).contains(&"redispatch-before-death"),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn concurrent_gauge_writes_are_flagged() {
        let events = stream(vec![
            (0, "depth", Op::Gauge { value: 1.0 }),
            (1, "depth", Op::Gauge { value: 2.0 }),
        ]);
        let report = analyze(&events, &AuditSpec::default());
        assert!(
            kinds(&report).contains(&"unordered-gauges"),
            "{:?}",
            report.findings
        );

        // The same two writes sampled inside a shared critical section
        // are ordered and clean.
        let serialized = stream(vec![
            (0, "q", Op::LockAcquire),
            (0, "depth", Op::Gauge { value: 1.0 }),
            (0, "q", Op::LockRelease),
            (1, "q", Op::LockAcquire),
            (1, "depth", Op::Gauge { value: 2.0 }),
            (1, "q", Op::LockRelease),
        ]);
        assert!(analyze(&serialized, &AuditSpec::default()).clean());
    }

    #[test]
    fn lock_order_cycle_is_flagged() {
        let events = stream(vec![
            (0, "x", Op::LockAcquire),
            (0, "y", Op::LockAcquire),
            (0, "y", Op::LockRelease),
            (0, "x", Op::LockRelease),
            (1, "y", Op::LockAcquire),
            (1, "x", Op::LockAcquire),
            (1, "x", Op::LockRelease),
            (1, "y", Op::LockRelease),
        ]);
        let report = analyze(&events, &AuditSpec::default());
        let cycle = report
            .findings
            .iter()
            .find(|f| f.kind() == "lock-cycle")
            .unwrap_or_else(|| panic!("no cycle in {:?}", report.findings));
        if let AuditFinding::LockCycle { cycle } = cycle {
            assert!(cycle.len() >= 3, "degenerate cycle {cycle:?}");
        }
    }

    #[test]
    fn unpaired_locks_are_flagged() {
        let double_acquire = stream(vec![(0, "x", Op::LockAcquire), (0, "x", Op::LockAcquire)]);
        assert!(kinds(&analyze(&double_acquire, &AuditSpec::default())).contains(&"unpaired-lock"));

        let free_release = stream(vec![(0, "x", Op::LockRelease)]);
        assert!(kinds(&analyze(&free_release, &AuditSpec::default())).contains(&"unpaired-lock"));

        let naked_commit = stream(vec![(0, "x", Op::SendCommit { batch: None })]);
        assert!(kinds(&analyze(&naked_commit, &AuditSpec::default())).contains(&"unpaired-lock"));
    }

    #[test]
    fn minimization_shrinks_to_the_offending_window() {
        // A long clean prefix followed by one ungated commit.
        let mut raw: Vec<(u32, &str, Op)> = Vec::new();
        for _ in 0..20 {
            raw.extend(vec![
                (1, "liveness", Op::LockAcquire),
                (1, "q", Op::LockAcquire),
                (1, "q", Op::SendCommit { batch: None }),
                (1, "q", Op::LockRelease),
                (1, "liveness", Op::LockRelease),
                (
                    1,
                    "q",
                    Op::Notify {
                        cv: CvKind::NotEmpty,
                    },
                ),
            ]);
        }
        raw.extend(vec![
            (1, "q", Op::LockAcquire),
            (1, "q", Op::SendCommit { batch: Some(99) }),
            (1, "q", Op::LockRelease),
            (
                1,
                "q",
                Op::Notify {
                    cv: CvKind::NotEmpty,
                },
            ),
        ]);
        let events = stream(raw);
        let spec = gated_spec();
        let total = events.len();
        let minimized = minimize_events(&events, &spec, "ungated-commit", 512);
        assert!(
            minimized.len() < total / 4,
            "minimization barely shrank: {} of {total}",
            minimized.len()
        );
        assert!(analyze(&minimized, &spec)
            .findings
            .iter()
            .any(|f| f.kind() == "ungated-commit"));
    }
}
