//! Vector clocks over a fixed thread universe.
//!
//! The auditor assigns each recording thread one component; an event's
//! clock is the recording thread's clock at that moment. Event `a`
//! happens-before event `b` exactly when `a`'s clock is [`leq`]
//! (VectorClock::leq) `b`'s — the partial order is rebuilt from the
//! mutex release→acquire chains of the event stream (see the parent
//! module).

/// A vector clock: one logical counter per participating thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock {
    ticks: Vec<u64>,
}

impl VectorClock {
    /// The zero clock over `threads` components.
    #[must_use]
    pub fn new(threads: usize) -> VectorClock {
        VectorClock {
            ticks: vec![0; threads],
        }
    }

    /// Advances `thread`'s own component by one.
    pub fn tick(&mut self, thread: usize) {
        self.ticks[thread] += 1;
    }

    /// Component-wise maximum with `other` (the join at an acquire).
    pub fn join(&mut self, other: &VectorClock) {
        for (mine, theirs) in self.ticks.iter_mut().zip(&other.ticks) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// True when `self` is component-wise ≤ `other`: the event stamped
    /// `self` happens-before (or equals) the event stamped `other`.
    #[must_use]
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.ticks
            .iter()
            .zip(&other.ticks)
            .all(|(mine, theirs)| mine <= theirs)
    }

    /// True when neither clock is ≤ the other: the two events are
    /// concurrent (racing) under the recorded happens-before order.
    #[must_use]
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_and_compare() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        a.tick(0); // a = [1,0]
        b.tick(1); // b = [0,1]
        assert!(a.concurrent_with(&b));
        b.join(&a); // b = [1,1]
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        let mut c = b.clone();
        c.tick(1);
        assert!(b.leq(&c));
        assert!(a.leq(&c));
    }
}
