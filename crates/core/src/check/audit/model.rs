//! Bounded exhaustive interleaving checks of the native queue protocol.
//!
//! The live auditor ([`super::analyze`]) judges the one interleaving a
//! real run happened to take. This module ports the `NativeQueue` +
//! gated-push state machine into the [`explore`](super::super::explore)
//! DFS so *every* small interleaving is judged in `cargo test`: a model
//! of the native backend's synchronization skeleton — worker threads
//! pushing batches through a bounded mutex+condvar queue under the
//! liveness guard, the main thread draining it with a
//! liveness-then-queue recheck — executes atomic critical sections as
//! single scheduler steps, emits the same
//! [`SyncEvent`](lotus_dataflow::SyncEvent) vocabulary the real backend
//! records, and feeds each terminated interleaving to the analyzer.
//! Deadlocks (every actor parked on a condvar nobody will signal) are
//! detected directly from the model state.
//!
//! [`ModelBug`] seeds the same defects as the backend's
//! `AuditMutation`s, plus the classic `if`-instead-of-`while` consumer;
//! the tests assert the explorer catches every one of them and passes
//! the clean model — the auditor's own regression harness.

use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

use lotus_dataflow::{CvKind, SyncEvent, SyncOp};
use lotus_sim::{DecisionRecord, Time};

use super::super::explorer::{explore, ExploreBounds, ExploreReport, ScheduledRun};
use super::super::invariants::Violation;
use super::{analyze, AuditSpec};

/// Queue object name — matches the native backend so
/// [`AuditSpec::native_backend`] applies unchanged.
const QUEUE: &str = "data_queue";
/// Liveness guard object name.
const LIVENESS: &str = "liveness";

/// A defect seeded into the model, mirroring the backend's
/// `AuditMutation`s (plus the consumer-side wait bug the backend cannot
/// host because its real loop is correct).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelBug {
    /// Faithful protocol.
    #[default]
    None,
    /// Producers push without signalling `not_empty` — lost wakeup.
    SkipNotify,
    /// Producers release the liveness guard before pushing — the
    /// liveness check and the commit are no longer atomic.
    ReleaseRecheck,
    /// Producers acquire queue-then-liveness while the main thread
    /// acquires liveness-then-queue — deadlock-prone lock order.
    LockOrder,
    /// The consumer treats a condvar wake as permission instead of
    /// re-checking the predicate (`if` where `while` belongs).
    IfInsteadOfWhile,
}

impl ModelBug {
    /// Every seeded defect.
    pub const ALL: [ModelBug; 4] = [
        ModelBug::SkipNotify,
        ModelBug::ReleaseRecheck,
        ModelBug::LockOrder,
        ModelBug::IfInsteadOfWhile,
    ];

    /// Stable kebab-case name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ModelBug::None => "none",
            ModelBug::SkipNotify => "skip-notify",
            ModelBug::ReleaseRecheck => "release-recheck",
            ModelBug::LockOrder => "lock-order",
            ModelBug::IfInsteadOfWhile => "if-instead-of-while",
        }
    }

    /// Parses a kebab-case name.
    #[must_use]
    pub fn parse(name: &str) -> Option<ModelBug> {
        match name {
            "none" => Some(ModelBug::None),
            "skip-notify" => Some(ModelBug::SkipNotify),
            "release-recheck" => Some(ModelBug::ReleaseRecheck),
            "lock-order" => Some(ModelBug::LockOrder),
            "if-instead-of-while" => Some(ModelBug::IfInsteadOfWhile),
            _ => None,
        }
    }
}

/// Shape of the modelled pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Producer (worker) threads.
    pub workers: usize,
    /// Batches each producer pushes.
    pub batches_per_worker: usize,
    /// Data-queue capacity.
    pub queue_cap: usize,
    /// Seeded defect.
    pub bug: ModelBug,
}

impl Default for ModelConfig {
    fn default() -> ModelConfig {
        ModelConfig {
            workers: 2,
            batches_per_worker: 2,
            queue_cap: 1,
            bug: ModelBug::None,
        }
    }
}

/// Program counter of one model actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Pc {
    /// Main: the one-off liveness→queue recheck before consuming.
    Recheck,
    /// Main: the receive loop.
    Recv,
    /// Worker: pushing batch `i` of its assignment.
    Push(usize),
    /// Worker: finished pushing; counts itself done (last one closes).
    Finish,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Actor {
    pc: Pc,
    /// The condvar this actor is parked on, when blocked.
    waiting: Option<CvKind>,
    /// Set by a notify while parked; the next step is the wake-up.
    woken: bool,
}

/// The whole model state: one main actor, `workers` producers, and the
/// shared queue.
struct Model {
    cfg: ModelConfig,
    actors: Vec<Actor>,
    queue: VecDeque<u64>,
    closed: bool,
    done_workers: usize,
    received: usize,
    events: Vec<SyncEvent>,
    seq: u64,
    /// Rolling FNV over the emitted events. Folded into the state hash
    /// so the explorer only prunes states with identical histories —
    /// the verdict is computed from the whole event stream, so a purely
    /// structural hash could prune a history whose stream differs.
    fingerprint: u64,
}

const MAIN: usize = 0;

impl Model {
    fn new(cfg: ModelConfig) -> Model {
        let mut actors = vec![Actor {
            pc: Pc::Recheck,
            waiting: None,
            woken: false,
        }];
        actors.extend((0..cfg.workers).map(|_| Actor {
            pc: Pc::Push(0),
            waiting: None,
            woken: false,
        }));
        Model {
            cfg,
            actors,
            queue: VecDeque::new(),
            closed: false,
            done_workers: 0,
            received: 0,
            events: Vec::new(),
            seq: 0,
            fingerprint: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn tid(actor: usize) -> u32 {
        if actor == MAIN {
            0
        } else {
            100 + actor as u32
        }
    }

    fn emit(&mut self, actor: usize, obj: &str, op: SyncOp) {
        let mut h = DefaultHasher::new();
        Model::tid(actor).hash(&mut h);
        obj.hash(&mut h);
        format!("{op:?}").hash(&mut h);
        self.fingerprint = (self.fingerprint ^ h.finish()).wrapping_mul(0x0000_0100_0000_01b3);
        self.events.push(SyncEvent {
            seq: self.seq,
            tid: Model::tid(actor),
            obj: obj.to_string(),
            op,
        });
        self.seq += 1;
    }

    fn enabled(&self) -> Vec<usize> {
        (0..self.actors.len())
            .filter(|&i| {
                let a = self.actors[i];
                a.pc != Pc::Done && (a.waiting.is_none() || a.woken)
            })
            .collect()
    }

    fn complete(&self) -> bool {
        self.actors.iter().all(|a| a.pc == Pc::Done)
    }

    fn state_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.actors.hash(&mut h);
        self.queue.hash(&mut h);
        self.closed.hash(&mut h);
        self.done_workers.hash(&mut h);
        self.received.hash(&mut h);
        self.fingerprint.hash(&mut h);
        h.finish()
    }

    fn wake(&mut self, cv: CvKind) {
        for a in &mut self.actors {
            if a.waiting == Some(cv) {
                a.woken = true;
            }
        }
    }

    /// Batch id pushed by `worker` (1-based actor index) at slot `i`.
    fn batch_id(&self, worker: usize, i: usize) -> u64 {
        ((worker - 1) * self.cfg.batches_per_worker + i) as u64
    }

    /// One atomic step of `actor`. Critical sections are whole steps, so
    /// lock acquisition never blocks inside the model — only condvar
    /// waits park an actor.
    fn step(&mut self, actor: usize) {
        let a = self.actors[actor];
        if let (Some(cv), true) = (a.waiting, a.woken) {
            self.step_wake(actor, cv);
            return;
        }
        match a.pc {
            Pc::Recheck => {
                // Main's liveness recheck: pops under liveness-then-queue,
                // the clean graph's one lock-order edge.
                self.emit(actor, LIVENESS, SyncOp::LockAcquire);
                self.emit(actor, QUEUE, SyncOp::LockAcquire);
                self.emit(actor, QUEUE, SyncOp::LockRelease);
                self.emit(actor, LIVENESS, SyncOp::LockRelease);
                self.actors[actor].pc = Pc::Recv;
            }
            Pc::Recv => self.step_recv(actor),
            Pc::Push(i) => self.step_push(actor, i),
            Pc::Finish => {
                self.done_workers += 1;
                if self.done_workers == self.cfg.workers {
                    self.emit(actor, QUEUE, SyncOp::LockAcquire);
                    self.closed = true;
                    self.emit(actor, QUEUE, SyncOp::Close);
                    self.emit(actor, QUEUE, SyncOp::LockRelease);
                    self.emit(
                        actor,
                        QUEUE,
                        SyncOp::Notify {
                            cv: CvKind::NotEmpty,
                        },
                    );
                    self.emit(
                        actor,
                        QUEUE,
                        SyncOp::Notify {
                            cv: CvKind::NotFull,
                        },
                    );
                    self.wake(CvKind::NotEmpty);
                    self.wake(CvKind::NotFull);
                }
                self.actors[actor].pc = Pc::Done;
            }
            Pc::Done => {}
        }
    }

    fn step_recv(&mut self, actor: usize) {
        self.emit(actor, QUEUE, SyncOp::LockAcquire);
        if let Some(batch) = self.queue.pop_front() {
            self.received += 1;
            self.emit(actor, QUEUE, SyncOp::RecvCommit { batch: Some(batch) });
            self.emit(actor, QUEUE, SyncOp::LockRelease);
            self.emit(
                actor,
                QUEUE,
                SyncOp::Notify {
                    cv: CvKind::NotFull,
                },
            );
            self.wake(CvKind::NotFull);
        } else if self.closed {
            self.emit(actor, QUEUE, SyncOp::LockRelease);
            self.actors[actor].pc = Pc::Done;
        } else {
            self.emit(
                actor,
                QUEUE,
                SyncOp::WaitStart {
                    cv: CvKind::NotEmpty,
                },
            );
            self.actors[actor].waiting = Some(CvKind::NotEmpty);
            self.actors[actor].woken = false;
        }
    }

    fn step_push(&mut self, actor: usize, i: usize) {
        let batch = self.batch_id(actor, i);
        let full = self.queue.len() >= self.cfg.queue_cap;
        match self.cfg.bug {
            ModelBug::ReleaseRecheck => {
                // The liveness check happens... and then the guard is
                // dropped before the push.
                self.emit(actor, LIVENESS, SyncOp::LockAcquire);
                self.emit(actor, LIVENESS, SyncOp::LockRelease);
                self.emit(actor, QUEUE, SyncOp::LockAcquire);
                if full {
                    self.park_not_full(actor);
                    return;
                }
                self.commit_push(actor, i, batch);
            }
            ModelBug::LockOrder => {
                // Reversed nesting: queue first, then the guard.
                self.emit(actor, QUEUE, SyncOp::LockAcquire);
                self.emit(actor, LIVENESS, SyncOp::LockAcquire);
                self.emit(actor, LIVENESS, SyncOp::LockRelease);
                if full {
                    self.park_not_full(actor);
                    return;
                }
                self.commit_push(actor, i, batch);
            }
            _ => {
                self.emit(actor, LIVENESS, SyncOp::LockAcquire);
                self.emit(actor, QUEUE, SyncOp::LockAcquire);
                if full {
                    self.emit(actor, QUEUE, SyncOp::LockRelease);
                    self.emit(actor, LIVENESS, SyncOp::LockRelease);
                    self.emit(actor, QUEUE, SyncOp::LockAcquire);
                    self.park_not_full(actor);
                    return;
                }
                self.queue.push_back(batch);
                self.emit(actor, QUEUE, SyncOp::SendCommit { batch: Some(batch) });
                self.emit(actor, QUEUE, SyncOp::LockRelease);
                self.emit(actor, LIVENESS, SyncOp::LockRelease);
                self.notify_not_empty(actor);
                self.advance_push(actor, i);
            }
        }
    }

    /// Shared tail of the buggy (guard already released / reversed) push
    /// paths: commit while holding only the queue lock.
    fn commit_push(&mut self, actor: usize, i: usize, batch: u64) {
        self.queue.push_back(batch);
        self.emit(actor, QUEUE, SyncOp::SendCommit { batch: Some(batch) });
        self.emit(actor, QUEUE, SyncOp::LockRelease);
        self.notify_not_empty(actor);
        self.advance_push(actor, i);
    }

    fn notify_not_empty(&mut self, actor: usize) {
        if self.cfg.bug == ModelBug::SkipNotify {
            return;
        }
        self.emit(
            actor,
            QUEUE,
            SyncOp::Notify {
                cv: CvKind::NotEmpty,
            },
        );
        self.wake(CvKind::NotEmpty);
    }

    fn advance_push(&mut self, actor: usize, i: usize) {
        self.actors[actor].pc = if i + 1 < self.cfg.batches_per_worker {
            Pc::Push(i + 1)
        } else {
            Pc::Finish
        };
    }

    /// Parks the actor on `not_full`; the queue lock is held at entry and
    /// released by the wait.
    fn park_not_full(&mut self, actor: usize) {
        self.emit(
            actor,
            QUEUE,
            SyncOp::WaitStart {
                cv: CvKind::NotFull,
            },
        );
        self.actors[actor].waiting = Some(CvKind::NotFull);
        self.actors[actor].woken = false;
    }

    /// A parked actor's wake-up: re-acquire (implicit in the wait),
    /// re-check the predicate, and proceed or re-park.
    fn step_wake(&mut self, actor: usize, cv: CvKind) {
        self.actors[actor].waiting = None;
        self.actors[actor].woken = false;
        match cv {
            CvKind::NotEmpty => {
                let satisfied = !self.queue.is_empty();
                self.emit(actor, QUEUE, SyncOp::WaitReturn { cv, satisfied });
                if satisfied {
                    let batch = self.queue.pop_front();
                    self.received += 1;
                    self.emit(actor, QUEUE, SyncOp::RecvCommit { batch });
                    self.emit(actor, QUEUE, SyncOp::LockRelease);
                    self.emit(
                        actor,
                        QUEUE,
                        SyncOp::Notify {
                            cv: CvKind::NotFull,
                        },
                    );
                    self.wake(CvKind::NotFull);
                } else if self.cfg.bug == ModelBug::IfInsteadOfWhile {
                    // The wake is taken as permission: commit against an
                    // empty queue.
                    self.received += 1;
                    self.emit(actor, QUEUE, SyncOp::RecvCommit { batch: None });
                    self.emit(actor, QUEUE, SyncOp::LockRelease);
                    self.emit(
                        actor,
                        QUEUE,
                        SyncOp::Notify {
                            cv: CvKind::NotFull,
                        },
                    );
                    self.wake(CvKind::NotFull);
                } else if self.closed {
                    self.emit(actor, QUEUE, SyncOp::LockRelease);
                    self.actors[actor].pc = Pc::Done;
                } else {
                    self.emit(actor, QUEUE, SyncOp::WaitStart { cv });
                    self.actors[actor].waiting = Some(cv);
                }
            }
            CvKind::NotFull => {
                let satisfied = self.queue.len() < self.cfg.queue_cap;
                self.emit(actor, QUEUE, SyncOp::WaitReturn { cv, satisfied });
                if satisfied {
                    // Release and loop back to the gated push attempt,
                    // like the real worker's retry loop.
                    self.emit(actor, QUEUE, SyncOp::LockRelease);
                } else {
                    self.emit(actor, QUEUE, SyncOp::WaitStart { cv });
                    self.actors[actor].waiting = Some(cv);
                }
            }
        }
    }
}

/// Executes the model under one schedule prefix and judges the run: the
/// analyzer's findings over the emitted event stream, plus direct
/// deadlock detection, become [`Violation::SyncAudit`]s for the
/// explorer. Deterministic: equal prefixes produce equal runs, so a
/// counterexample schedule replays exactly.
#[must_use]
pub fn run_model(cfg: &ModelConfig, prefix: &[usize]) -> ScheduledRun {
    let (run, _) = run_model_traced(cfg, prefix);
    run
}

/// [`run_model`] plus the raw event stream, for `--replay` displays.
#[must_use]
pub fn run_model_traced(cfg: &ModelConfig, prefix: &[usize]) -> (ScheduledRun, Vec<SyncEvent>) {
    let mut model = Model::new(*cfg);
    let mut decisions = Vec::new();
    let mut step: u64 = 0;
    // Generous bound: the model's programs are finite, so this only
    // guards against a modelling mistake.
    let step_limit = 10_000u64;

    loop {
        let enabled = model.enabled();
        if enabled.is_empty() || step >= step_limit {
            break;
        }
        let actor = if enabled.len() == 1 {
            enabled[0]
        } else {
            let choice = prefix.get(decisions.len()).copied().unwrap_or(0) % enabled.len();
            decisions.push(DecisionRecord {
                branches: enabled.len(),
                taken: choice,
                state_hash: model.state_hash(),
                step,
                now: Time::ZERO,
            });
            enabled[choice]
        };
        model.step(actor);
        step += 1;
    }

    let mut violations = Vec::new();
    if !model.complete() {
        let stuck: Vec<String> = model
            .actors
            .iter()
            .enumerate()
            .filter(|(_, a)| a.pc != Pc::Done)
            .map(|(i, a)| {
                let who = if i == MAIN {
                    "main".to_string()
                } else {
                    format!("worker {}", i - 1)
                };
                match a.waiting {
                    Some(CvKind::NotEmpty) => format!("{who} parked on not_empty"),
                    Some(CvKind::NotFull) => format!("{who} parked on not_full"),
                    None => format!("{who} runnable"),
                }
            })
            .collect();
        violations.push(Violation::SyncAudit {
            finding: format!("deadlock: {}", stuck.join(", ")),
        });
    }
    for finding in analyze(&model.events, &AuditSpec::native_backend()).findings {
        violations.push(Violation::SyncAudit {
            finding: finding.to_string(),
        });
    }
    (
        ScheduledRun {
            decisions,
            violations,
        },
        model.events,
    )
}

/// Explores every bounded interleaving of the modelled native protocol.
#[must_use]
pub fn explore_native_model(cfg: &ModelConfig, bounds: &ExploreBounds) -> ExploreReport {
    explore(bounds, |prefix| run_model(cfg, prefix))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> ExploreBounds {
        ExploreBounds {
            max_schedules: 2_000,
            max_depth: 96,
            max_branch: 4,
            ..ExploreBounds::default()
        }
    }

    fn cx_mentions(report: &ExploreReport, needle: &str) -> bool {
        report
            .counterexample
            .as_ref()
            .is_some_and(|cx| cx.violations.iter().any(|v| v.to_string().contains(needle)))
    }

    #[test]
    fn clean_model_explores_clean() {
        let report = explore_native_model(&ModelConfig::default(), &bounds());
        assert!(
            report.clean(),
            "clean protocol flagged: {:?}",
            report.counterexample
        );
        assert!(report.stats.schedules_run > 1, "no interleavings explored");
    }

    #[test]
    fn skip_notify_deadlocks_and_is_caught() {
        let cfg = ModelConfig {
            bug: ModelBug::SkipNotify,
            ..ModelConfig::default()
        };
        let report = explore_native_model(&cfg, &bounds());
        assert!(
            cx_mentions(&report, "deadlock") || cx_mentions(&report, "missed wake"),
            "skip-notify escaped: {:?}",
            report.counterexample
        );
    }

    #[test]
    fn release_recheck_is_caught_as_ungated_commit() {
        let cfg = ModelConfig {
            bug: ModelBug::ReleaseRecheck,
            ..ModelConfig::default()
        };
        let report = explore_native_model(&cfg, &bounds());
        assert!(
            cx_mentions(&report, "ungated commit"),
            "release-recheck escaped: {:?}",
            report.counterexample
        );
    }

    #[test]
    fn lock_order_inversion_is_caught_as_cycle() {
        let cfg = ModelConfig {
            bug: ModelBug::LockOrder,
            ..ModelConfig::default()
        };
        let report = explore_native_model(&cfg, &bounds());
        assert!(
            cx_mentions(&report, "lock-order cycle"),
            "lock-order escaped: {:?}",
            report.counterexample
        );
    }

    #[test]
    fn if_instead_of_while_is_caught() {
        let cfg = ModelConfig {
            bug: ModelBug::IfInsteadOfWhile,
            ..ModelConfig::default()
        };
        let report = explore_native_model(&cfg, &bounds());
        assert!(
            cx_mentions(&report, "wait without re-check"),
            "if-instead-of-while escaped: {:?}",
            report.counterexample
        );
    }

    #[test]
    fn counterexample_schedules_replay_deterministically() {
        let cfg = ModelConfig {
            bug: ModelBug::SkipNotify,
            ..ModelConfig::default()
        };
        let report = explore_native_model(&cfg, &bounds());
        let cx = report.counterexample.expect("skip-notify must be caught");
        let a = run_model(&cfg, &cx.schedule);
        let b = run_model(&cfg, &cx.schedule);
        assert!(!a.violations.is_empty());
        assert_eq!(
            a.violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>(),
            b.violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        );
    }
}
