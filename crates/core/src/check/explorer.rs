//! Bounded stateless model checking over schedule prefixes.
//!
//! The explorer is *stateless* in the Shuttle/CHESS sense: it never forks
//! the simulator. Each exploration step re-runs the whole deterministic
//! simulation under a [`GuidedController`](lotus_sim::GuidedController)
//! that follows a *schedule prefix* — a vector of choice indices consumed
//! at successive decision points (ready-event ties) — and then picks the
//! first choice for the free suffix. The run hands back the full decision
//! log, from which the DFS expands every untried alternative within its
//! depth and branch bounds.
//!
//! Soundness of pruning: a decision point whose structural state hash was
//! already expanded leads to a subtree the DFS has (or will have) covered
//! from the earlier occurrence, so skipping it cannot hide a violation
//! *within the explored bounds*. The bounds themselves make the check
//! bounded, not exhaustive — truncation counts are reported so a clean
//! verdict can be read at its actual strength.

use std::collections::HashSet;

use lotus_sim::DecisionRecord;

use super::invariants::Violation;

/// Exploration limits. Defaults are sized for the small configurations
/// `lotus check` drives (1–3 workers, a few dozen samples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreBounds {
    /// Maximum schedules (full simulation runs) to execute, excluding
    /// minimization re-runs.
    pub max_schedules: usize,
    /// Maximum decision depth to branch at; deeper decision points run
    /// under the default (first-choice) policy.
    pub max_depth: usize,
    /// Maximum alternatives tried per decision point (branching factor).
    pub max_branch: usize,
    /// Kernel dispatch budget per run; exceeding it classifies the run as
    /// livelocked.
    pub max_steps: u64,
    /// Re-runs the minimizer may spend shrinking a counterexample.
    pub minimization_budget: usize,
}

impl Default for ExploreBounds {
    fn default() -> ExploreBounds {
        ExploreBounds {
            max_schedules: 256,
            max_depth: 64,
            max_branch: 4,
            max_steps: 200_000,
            minimization_budget: 48,
        }
    }
}

/// What one guided simulation run reported back to the explorer.
#[derive(Debug, Clone)]
pub struct ScheduledRun {
    /// The controller's decision log (every tie it resolved).
    pub decisions: Vec<DecisionRecord>,
    /// Invariant violations found by [`super::invariants::verify`].
    pub violations: Vec<Violation>,
}

/// Aggregate statistics of one exploration, reported in the `lotus check`
/// summary table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Schedules executed by the DFS (excludes minimization re-runs).
    pub schedules_run: usize,
    /// Decision points encountered across all runs.
    pub decision_points: usize,
    /// Distinct structural state hashes expanded.
    pub states_seen: usize,
    /// Decision points skipped because their state hash was already
    /// expanded.
    pub states_pruned: usize,
    /// Deepest decision index reached by any run.
    pub max_depth_reached: usize,
    /// Decision points left unexpanded by the depth bound.
    pub depth_truncations: usize,
    /// Alternatives left untried by the branch bound.
    pub branch_truncations: usize,
    /// True when the schedule budget ran out with frontier work pending.
    pub budget_exhausted: bool,
    /// Re-runs spent minimizing the counterexample.
    pub minimization_runs: usize,
}

/// A violating schedule, shrunk and ready to replay.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The minimized schedule prefix: choice index per decision point.
    /// Replaying it through `GuidedController::new(schedule, max_steps)`
    /// reproduces the violation deterministically.
    pub schedule: Vec<usize>,
    /// Violations the minimized schedule still triggers.
    pub violations: Vec<Violation>,
    /// Decision points the violating run passed through.
    pub decisions: usize,
}

/// Outcome of [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Exploration statistics.
    pub stats: ExploreStats,
    /// The first violation found, minimized — `None` when every explored
    /// schedule upheld the invariants.
    pub counterexample: Option<Counterexample>,
}

impl ExploreReport {
    /// True when no explored schedule violated the catalog.
    pub fn clean(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Depth-first exploration of the schedule tree. `run` executes one
/// guided simulation under the given schedule prefix and reports its
/// decision log plus any invariant violations; `explore` drives it until
/// a violation is found (then minimized into a [`Counterexample`]) or the
/// bounded frontier is exhausted.
pub fn explore<F>(bounds: &ExploreBounds, mut run: F) -> ExploreReport
where
    F: FnMut(&[usize]) -> ScheduledRun,
{
    let mut stats = ExploreStats::default();
    let mut expanded: HashSet<u64> = HashSet::new();
    // DFS stack of schedule prefixes still to run.
    let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];

    while let Some(prefix) = frontier.pop() {
        if stats.schedules_run >= bounds.max_schedules {
            stats.budget_exhausted = true;
            frontier.clear();
            break;
        }
        stats.schedules_run += 1;
        let outcome = run(&prefix);
        stats.decision_points += outcome.decisions.len();
        stats.max_depth_reached = stats.max_depth_reached.max(outcome.decisions.len());

        if !outcome.violations.is_empty() {
            let (schedule, violations) =
                minimize(&prefix, outcome.violations, &mut run, bounds, &mut stats);
            return ExploreReport {
                stats,
                counterexample: Some(Counterexample {
                    decisions: outcome.decisions.len(),
                    schedule,
                    violations,
                }),
            };
        }

        // Branch on every decision point in the free suffix (decided by
        // the default policy, i.e. beyond this prefix).
        for (i, decision) in outcome.decisions.iter().enumerate().skip(prefix.len()) {
            if decision.branches < 2 {
                continue;
            }
            if i >= bounds.max_depth {
                stats.depth_truncations += 1;
                continue;
            }
            if !expanded.insert(decision.state_hash) {
                stats.states_pruned += 1;
                continue;
            }
            stats.states_seen += 1;
            let tried = decision.branches.min(bounds.max_branch);
            stats.branch_truncations += decision.branches - tried;
            // The run already took choice 0 here; queue the alternatives.
            for alt in (1..tried).rev() {
                let mut next = Vec::with_capacity(i + 1);
                next.extend_from_slice(&prefix);
                next.extend(outcome.decisions[prefix.len()..i].iter().map(|d| d.taken));
                next.push(alt);
                frontier.push(next);
            }
        }
    }

    ExploreReport {
        stats,
        counterexample: None,
    }
}

/// Greedy counterexample shrinking: first try truncating the schedule
/// (shortest prefix first — trailing entries equal to the default policy
/// are free to drop), then try zeroing individual non-default choices,
/// repeating until a fixpoint or the budget runs out. Every accepted
/// candidate is re-verified by an actual run, so the result is always a
/// genuine violating schedule.
fn minimize<F>(
    schedule: &[usize],
    violations: Vec<Violation>,
    run: &mut F,
    bounds: &ExploreBounds,
    stats: &mut ExploreStats,
) -> (Vec<usize>, Vec<Violation>)
where
    F: FnMut(&[usize]) -> ScheduledRun,
{
    let mut best: Vec<usize> = schedule.to_vec();
    let mut best_violations = violations;
    // Trailing zeros replay identically to a truncated schedule: the
    // controller's free-suffix policy is choice 0.
    while best.last() == Some(&0) {
        best.pop();
    }
    let mut budget = bounds.minimization_budget;

    loop {
        let mut improved = false;

        for k in 0..best.len() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            stats.minimization_runs += 1;
            let candidate = &best[..k];
            let outcome = run(candidate);
            if !outcome.violations.is_empty() {
                best = candidate.to_vec();
                best_violations = outcome.violations;
                improved = true;
                break;
            }
        }

        for i in (0..best.len()).rev() {
            if budget == 0 || best[i] == 0 {
                continue;
            }
            budget -= 1;
            stats.minimization_runs += 1;
            let mut candidate = best.clone();
            candidate[i] = 0;
            while candidate.last() == Some(&0) {
                candidate.pop();
            }
            let outcome = run(&candidate);
            if !outcome.violations.is_empty() {
                best = candidate;
                best_violations = outcome.violations;
                improved = true;
                break;
            }
        }

        if !improved || budget == 0 {
            break;
        }
    }

    (best, best_violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic schedule tree: every run passes `depth` binary decision
    /// points; the run violates iff its effective choices match `bug`.
    fn tree_runner(depth: usize, bug: Vec<usize>) -> impl FnMut(&[usize]) -> ScheduledRun {
        move |prefix: &[usize]| {
            let choices: Vec<usize> = (0..depth)
                .map(|i| prefix.get(i).copied().unwrap_or(0).min(1))
                .collect();
            let decisions = choices
                .iter()
                .enumerate()
                .map(|(i, &taken)| DecisionRecord {
                    branches: 2,
                    taken,
                    state_hash: {
                        // Path-dependent hash: distinct histories stay
                        // distinct, so pruning never hides the bug.
                        let mut h = 0xcbf2_9ce4_8422_2325u64;
                        for &c in &choices[..=i] {
                            h = (h ^ c as u64).wrapping_mul(0x0000_0100_0000_01b3);
                        }
                        h
                    },
                    step: i as u64,
                    now: lotus_sim::Time::ZERO,
                })
                .collect();
            let violations = if choices == bug {
                vec![Violation::DoubleDelivery { batch_id: 7 }]
            } else {
                vec![]
            };
            ScheduledRun {
                decisions,
                violations,
            }
        }
    }

    #[test]
    fn explorer_finds_a_buried_interleaving_bug() {
        let report = explore(&ExploreBounds::default(), tree_runner(4, vec![0, 1, 1, 0]));
        let cx = report.counterexample.expect("bug must be found");
        assert_eq!(
            cx.violations,
            vec![Violation::DoubleDelivery { batch_id: 7 }]
        );
        // Minimization drops the trailing default choice.
        assert_eq!(cx.schedule, vec![0, 1, 1]);
        assert!(report.stats.schedules_run > 1);
        assert!(report.stats.minimization_runs > 0);
    }

    #[test]
    fn clean_tree_is_fully_explored_without_counterexample() {
        let report = explore(&ExploreBounds::default(), tree_runner(3, vec![9, 9, 9]));
        assert!(report.clean());
        // 2^3 leaves but shared-prefix runs collapse: every state expanded
        // exactly once, nothing pruned (hashes are path-distinct).
        assert_eq!(report.stats.states_pruned, 0);
        assert!(report.stats.schedules_run >= 8);
        assert!(!report.stats.budget_exhausted);
    }

    #[test]
    fn schedule_budget_truncates_and_is_reported() {
        let bounds = ExploreBounds {
            max_schedules: 3,
            ..ExploreBounds::default()
        };
        let report = explore(&bounds, tree_runner(6, vec![1; 6]));
        assert!(report.stats.budget_exhausted);
        assert_eq!(report.stats.schedules_run, 3);
    }

    #[test]
    fn state_hash_pruning_collapses_converging_histories() {
        // All decision points share one hash: after the first expansion
        // every later point is pruned.
        let runner = |prefix: &[usize]| ScheduledRun {
            decisions: (0..3)
                .map(|i| DecisionRecord {
                    branches: 2,
                    taken: prefix.get(i).copied().unwrap_or(0),
                    state_hash: 42,
                    step: i as u64,
                    now: lotus_sim::Time::ZERO,
                })
                .collect(),
            violations: vec![],
        };
        let report = explore(&ExploreBounds::default(), runner);
        assert!(report.clean());
        assert_eq!(report.stats.states_seen, 1);
        assert!(report.stats.states_pruned > 0);
    }

    #[test]
    fn minimization_zeroes_spurious_choices() {
        // Bug fires whenever the second decision takes choice 1; other
        // entries are noise the minimizer should strip.
        let runner = |prefix: &[usize]| {
            let choices: Vec<usize> = (0..4)
                .map(|i| prefix.get(i).copied().unwrap_or(0).min(1))
                .collect();
            ScheduledRun {
                decisions: choices
                    .iter()
                    .enumerate()
                    .map(|(i, &taken)| DecisionRecord {
                        branches: 2,
                        taken,
                        state_hash: (i as u64) << 8 | choices[..=i].iter().sum::<usize>() as u64,
                        step: i as u64,
                        now: lotus_sim::Time::ZERO,
                    })
                    .collect(),
                violations: if choices[1] == 1 {
                    vec![Violation::PhantomDelivery { batch_id: 1 }]
                } else {
                    vec![]
                },
            }
        };
        let report = explore(&ExploreBounds::default(), runner);
        let cx = report.counterexample.expect("found");
        assert_eq!(cx.schedule, vec![0, 1], "noise choices stripped: {cx:?}");
    }
}
