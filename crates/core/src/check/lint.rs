//! The trace invariant linter: structural checks over recorded (or
//! imported) [`TraceRecord`] streams, applicable both to freshly captured
//! `LotusTrace` logs and to Chrome-trace exports read back from disk
//! (`lotus check --trace`).
//!
//! Rules:
//!
//! * **balanced-spans** — per batch id, at most one `BatchWait` and one
//!   `BatchConsumed`; a consume requires a wait, a wait requires a fetch;
//!   a second `BatchPreprocessed` is legal only for a batch with a
//!   `BatchRedispatched` mark.
//! * **track-monotonicity** — within each (pid, span-kind) track, record
//!   starts never go backwards.
//! * **accounting-identity** — `preprocessed.end ≤ wait.end ≤
//!   consumed.start` per batch (the \[T1\]/\[T2\] ordering), and each
//!   wait's `queue_delay` equals exactly the gap between the fetch end
//!   and the delivery point (cache-served waits measure to their start,
//!   queue-served waits to their end).
//! * **span-overlap** — spans on one OS thread (pid) must nest or be
//!   disjoint; a partial overlap means two execution scopes were open
//!   at once on a single thread, which cannot happen in a faithful
//!   native track.
//! * **orphan-instant** — `BatchRedispatched` requires an earlier
//!   `WorkerDied`.
//! * **storage-containment** — each `StorageRead` span lies inside a
//!   `BatchPreprocessed` span of the same (pid, batch), when that fetch
//!   is present (a worker that died mid-fetch leaves reads with no
//!   enclosing span; those are tolerated).
//! * **report** (when [`ReportFacts`] are supplied) — consumed-batch
//!   count matches the job report and no record extends past the reported
//!   elapsed time; with a report the trace is also required to be
//!   *complete*: every delivered batch is consumed.
//! * **gauge-bounds** ([`lint_gauges`]) — queue-depth series stay within
//!   `[0, cap]`, the pinned cache and in-flight inventory within
//!   `prefetch_factor × num_workers`.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use serde_json::Value;

use crate::metrics::MetricsSnapshot;
use crate::trace::chrome::from_chrome_trace;
use crate::trace::{SpanKind, TraceRecord};
use lotus_sim::Span;

/// Typed error for loading and parsing trace files — the linter never
/// panics on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The file could not be read.
    Io {
        /// Offending path.
        path: String,
        /// OS error description.
        message: String,
    },
    /// The file looked like JSON but the document is malformed.
    Json {
        /// Offending path.
        path: String,
        /// Parser error description.
        message: String,
    },
    /// A structurally valid document or log contained a malformed record.
    Malformed {
        /// Offending path.
        path: String,
        /// 1-based line number for log files, 0 for JSON documents.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Io { path, message } => write!(f, "cannot read {path}: {message}"),
            CheckError::Json { path, message } => {
                write!(f, "{path}: malformed JSON document: {message}")
            }
            CheckError::Malformed {
                path,
                line: 0,
                message,
            } => write!(f, "{path}: malformed trace event: {message}"),
            CheckError::Malformed {
                path,
                line,
                message,
            } => write!(f, "{path}:{line}: malformed log line: {message}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Which linter rule a finding belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintRule {
    /// Begin/end pairing per batch (wait/consume balance, fetch coverage).
    BalancedSpans,
    /// Per-(pid, kind) start monotonicity.
    TrackMonotonicity,
    /// T1/T2 ordering and queue-delay arithmetic.
    AccountingIdentity,
    /// Same-thread spans that partially overlap instead of nesting.
    SpanOverlap,
    /// Instants that require a preceding cause (redispatch after death).
    OrphanInstant,
    /// Storage reads outside their issuing fetch span.
    StorageContainment,
    /// Trace-vs-JobReport agreement.
    Report,
    /// Gauge series out of their configured bounds.
    GaugeBounds,
}

impl fmt::Display for LintRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LintRule::BalancedSpans => "balanced-spans",
            LintRule::TrackMonotonicity => "track-monotonicity",
            LintRule::AccountingIdentity => "accounting-identity",
            LintRule::SpanOverlap => "span-overlap",
            LintRule::OrphanInstant => "orphan-instant",
            LintRule::StorageContainment => "storage-containment",
            LintRule::Report => "report",
            LintRule::GaugeBounds => "gauge-bounds",
        })
    }
}

/// One linter finding.
#[derive(Debug, Clone, PartialEq)]
pub struct LintFinding {
    /// The violated rule.
    pub rule: LintRule,
    /// The batch the finding concerns, when it concerns one.
    pub batch_id: Option<u64>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.batch_id {
            Some(id) => write!(f, "[{}] batch {id}: {}", self.rule, self.message),
            None => write!(f, "[{}] {}", self.rule, self.message),
        }
    }
}

/// Facts from a [`JobReport`](lotus_dataflow::JobReport) the trace must
/// agree with. Supplying these also asserts the trace is a *complete*
/// epoch (every wait has its consume).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportFacts {
    /// End-to-end elapsed virtual time.
    pub elapsed: Span,
    /// Batches the report claims were consumed.
    pub batches: u64,
}

fn track(kind: &SpanKind) -> &'static str {
    match kind {
        SpanKind::StorageRead(_) => "storage",
        SpanKind::Op(_) => "op",
        SpanKind::BatchPreprocessed => "preprocessed",
        SpanKind::BatchWait => "wait",
        SpanKind::BatchConsumed => "consumed",
        SpanKind::FaultInjected(_) => "fault",
        SpanKind::WorkerDied => "died",
        SpanKind::BatchRedispatched => "redispatched",
        SpanKind::BatchStolen => "stolen",
        SpanKind::LaneAssigned(_) => "lane",
        SpanKind::PrefetchResized => "prefetch",
    }
}

/// Lints a record stream. Findings come back in rule order; an empty
/// vector means the trace is internally consistent.
pub fn lint_records(records: &[TraceRecord], report: Option<&ReportFacts>) -> Vec<LintFinding> {
    let mut findings = Vec::new();

    #[derive(Default)]
    struct Batch {
        preprocessed: Vec<(u64, u64)>, // (start ns, end ns) per fetch
        waits: u32,
        consumes: u32,
        redispatched: bool,
    }
    let mut batches: BTreeMap<u64, Batch> = BTreeMap::new();
    let mut died_before = false;

    for r in records {
        match r.kind {
            SpanKind::BatchPreprocessed => batches
                .entry(r.batch_id)
                .or_default()
                .preprocessed
                .push((r.start.as_nanos(), r.end().as_nanos())),
            SpanKind::BatchWait => batches.entry(r.batch_id).or_default().waits += 1,
            SpanKind::BatchConsumed => batches.entry(r.batch_id).or_default().consumes += 1,
            SpanKind::BatchRedispatched => {
                batches.entry(r.batch_id).or_default().redispatched = true;
                if !died_before {
                    findings.push(LintFinding {
                        rule: LintRule::OrphanInstant,
                        batch_id: Some(r.batch_id),
                        message: "BatchRedispatched with no preceding WorkerDied".into(),
                    });
                }
            }
            SpanKind::WorkerDied => died_before = true,
            // Scheduling-policy instants annotate a dispatch; they don't
            // participate in span pairing.
            SpanKind::Op(_)
            | SpanKind::FaultInjected(_)
            | SpanKind::StorageRead(_)
            | SpanKind::BatchStolen
            | SpanKind::LaneAssigned(_)
            | SpanKind::PrefetchResized => {}
        }
    }

    for (&id, b) in &batches {
        let fetches = b.preprocessed.len();
        if b.waits > 1 {
            findings.push(LintFinding {
                rule: LintRule::BalancedSpans,
                batch_id: Some(id),
                message: format!("{} BatchWait spans (at most one delivery)", b.waits),
            });
        }
        if b.consumes > 1 {
            findings.push(LintFinding {
                rule: LintRule::BalancedSpans,
                batch_id: Some(id),
                message: format!("{} BatchConsumed spans (at most one consume)", b.consumes),
            });
        }
        if b.consumes > 0 && b.waits == 0 {
            findings.push(LintFinding {
                rule: LintRule::BalancedSpans,
                batch_id: Some(id),
                message: "consumed without a BatchWait delivery".into(),
            });
        }
        if b.waits > 0 && fetches == 0 {
            findings.push(LintFinding {
                rule: LintRule::BalancedSpans,
                batch_id: Some(id),
                message: "delivered without a BatchPreprocessed fetch".into(),
            });
        }
        if fetches > 1 && !b.redispatched {
            findings.push(LintFinding {
                rule: LintRule::BalancedSpans,
                batch_id: Some(id),
                message: format!("{fetches} fetches without a BatchRedispatched mark"),
            });
        }
        if report.is_some() && b.waits > 0 && b.consumes == 0 {
            findings.push(LintFinding {
                rule: LintRule::BalancedSpans,
                batch_id: Some(id),
                message: "delivered but never consumed in a complete epoch".into(),
            });
        }
    }

    // Track monotonicity: starts never regress within a (pid, kind) track.
    let mut cursors: BTreeMap<(u32, &'static str), u64> = BTreeMap::new();
    for r in records {
        let key = (r.pid, track(&r.kind));
        let start = r.start.as_nanos();
        if let Some(&prev) = cursors.get(&key) {
            if start < prev {
                findings.push(LintFinding {
                    rule: LintRule::TrackMonotonicity,
                    batch_id: Some(r.batch_id),
                    message: format!(
                        "{} track on pid {} goes backwards: {prev}ns then {start}ns",
                        key.1, r.pid
                    ),
                });
            }
        }
        cursors.insert(key, start);
    }

    // Same-thread span overlap: one OS thread executes one scope at a
    // time, so its spans form a forest — every pair either nests or is
    // disjoint. A stack sweep over start-sorted spans finds partial
    // overlaps in O(n log n); touching endpoints (end == next start)
    // count as disjoint.
    let mut by_pid: BTreeMap<u32, Vec<&TraceRecord>> = BTreeMap::new();
    for r in records {
        by_pid.entry(r.pid).or_default().push(r);
    }
    for (pid, mut spans) in by_pid {
        // Start ascending; on ties the longer (enclosing) span first.
        spans.sort_by_key(|r| (r.start.as_nanos(), std::cmp::Reverse(r.end().as_nanos())));
        let mut open: Vec<&TraceRecord> = Vec::new();
        for r in spans {
            let (s, e) = (r.start.as_nanos(), r.end().as_nanos());
            while open.last().is_some_and(|t| t.end().as_nanos() <= s) {
                open.pop();
            }
            if let Some(t) = open.last() {
                let te = t.end().as_nanos();
                if te < e {
                    findings.push(LintFinding {
                        rule: LintRule::SpanOverlap,
                        batch_id: Some(r.batch_id),
                        message: format!(
                            "{} span [{s}ns, {e}ns] straddles the {} span ending at {te}ns on pid {pid}",
                            track(&r.kind),
                            track(&t.kind)
                        ),
                    });
                    // Keep the enclosing frame; skipping the straddler
                    // avoids a cascade of findings against it.
                    continue;
                }
            }
            open.push(r);
        }
    }

    // Accounting identities: fetch-before-deliver-before-consume ordering
    // and exact queue-delay arithmetic.
    for r in records {
        if r.kind != SpanKind::BatchWait {
            continue;
        }
        let Some(b) = batches.get(&r.batch_id) else {
            continue;
        };
        // On a redispatched batch the surviving (latest) fetch produced
        // the delivered payload.
        let Some(&(_, fetch_end)) = b.preprocessed.iter().max_by_key(|&&(_, end)| end) else {
            continue; // already a balanced-spans finding
        };
        let delivery_point = if r.out_of_order {
            // Cache-served: the 1 µs wait is a marker; residency ran
            // until the wait began.
            r.start.as_nanos()
        } else {
            r.end().as_nanos()
        };
        if delivery_point < fetch_end {
            findings.push(LintFinding {
                rule: LintRule::AccountingIdentity,
                batch_id: Some(r.batch_id),
                message: format!(
                    "delivered at {delivery_point}ns before its fetch ended at {fetch_end}ns"
                ),
            });
            continue;
        }
        let expected = delivery_point - fetch_end;
        let recorded = r.queue_delay.as_nanos();
        if recorded != expected {
            findings.push(LintFinding {
                rule: LintRule::AccountingIdentity,
                batch_id: Some(r.batch_id),
                message: format!(
                    "queue_delay {recorded}ns != delivery({delivery_point}ns) - fetch_end({fetch_end}ns) = {expected}ns"
                ),
            });
        }
    }
    for r in records {
        if r.kind != SpanKind::BatchConsumed {
            continue;
        }
        if let Some(b) = batches.get(&r.batch_id) {
            for &(_, fetch_end) in &b.preprocessed {
                if fetch_end > r.start.as_nanos() {
                    findings.push(LintFinding {
                        rule: LintRule::AccountingIdentity,
                        batch_id: Some(r.batch_id),
                        message: format!(
                            "consumed at {}ns before a fetch ended at {fetch_end}ns",
                            r.start.as_nanos()
                        ),
                    });
                }
            }
        }
    }

    // Storage containment: a read lies inside the fetch that issued it —
    // the same (pid, batch) BatchPreprocessed span — when such a fetch is
    // present. Reads whose fetch never completed (the worker died mid-
    // batch) have no enclosing span and are tolerated.
    let mut fetch_spans: BTreeMap<(u32, u64), Vec<(u64, u64)>> = BTreeMap::new();
    for r in records {
        if r.kind == SpanKind::BatchPreprocessed {
            fetch_spans
                .entry((r.pid, r.batch_id))
                .or_default()
                .push((r.start.as_nanos(), r.end().as_nanos()));
        }
    }
    for r in records {
        let SpanKind::StorageRead(ref tier) = r.kind else {
            continue;
        };
        let Some(spans) = fetch_spans.get(&(r.pid, r.batch_id)) else {
            continue;
        };
        let (s, e) = (r.start.as_nanos(), r.end().as_nanos());
        if !spans.iter().any(|&(fs, fe)| s >= fs && e <= fe) {
            findings.push(LintFinding {
                rule: LintRule::StorageContainment,
                batch_id: Some(r.batch_id),
                message: format!(
                    "{tier} read [{s}ns, {e}ns] on pid {} escapes its BatchPreprocessed span",
                    r.pid
                ),
            });
        }
    }

    if let Some(facts) = report {
        let consumed = records
            .iter()
            .filter(|r| r.kind == SpanKind::BatchConsumed)
            .count() as u64;
        if consumed != facts.batches {
            findings.push(LintFinding {
                rule: LintRule::Report,
                batch_id: None,
                message: format!(
                    "report claims {} consumed batches, trace shows {consumed}",
                    facts.batches
                ),
            });
        }
        let horizon = facts.elapsed.as_nanos();
        for r in records {
            if r.end().as_nanos() > horizon {
                findings.push(LintFinding {
                    rule: LintRule::Report,
                    batch_id: Some(r.batch_id),
                    message: format!(
                        "{} span ends at {}ns, past the reported elapsed {horizon}ns",
                        track(&r.kind),
                        r.end().as_nanos()
                    ),
                });
            }
        }
    }

    findings
}

/// Bounds the gauge linter holds series to, derived from the loader
/// configuration under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeLimits {
    /// `data_queue_cap`, when bounded.
    pub data_queue_cap: Option<usize>,
    /// `prefetch_factor * num_workers`.
    pub in_flight_bound: usize,
}

/// Lints the gauge series of a metrics snapshot against loader bounds:
/// depths stay within `[0, cap]`, the pinned cache and in-flight
/// inventory within the prefetch bound.
pub fn lint_gauges(snapshot: &MetricsSnapshot, limits: &GaugeLimits) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    let mut check = |name: &str, hi: Option<f64>| {
        let Some(series) = snapshot.gauges.get(name) else {
            return;
        };
        for &(at, value) in series.samples() {
            if value < 0.0 {
                findings.push(LintFinding {
                    rule: LintRule::GaugeBounds,
                    batch_id: None,
                    message: format!("{name} = {value} at {at} (negative depth)"),
                });
            } else if hi.is_some_and(|hi| value > hi) {
                findings.push(LintFinding {
                    rule: LintRule::GaugeBounds,
                    batch_id: None,
                    message: format!(
                        "{name} = {value} at {at} exceeds bound {}",
                        hi.unwrap_or_default()
                    ),
                });
            }
        }
    };
    check(
        "queue_depth.data_queue",
        limits.data_queue_cap.map(|c| c as f64),
    );
    check("pinned_cache_batches", Some(limits.in_flight_bound as f64));
    check("in_flight_batches", Some(limits.in_flight_bound as f64));
    for name in snapshot.gauges.keys() {
        if name.starts_with("queue_depth.index_queue_") {
            check(name, None);
        }
    }
    findings
}

/// Loads trace records from `path`, accepting either a Chrome-trace JSON
/// document (as written by `lotus run --chrome-trace` and the fig2
/// benches) or a LotusTrace log (one CSV record per line).
///
/// # Errors
///
/// Returns a typed [`CheckError`] — never panics — on unreadable files,
/// malformed JSON, or malformed records.
pub fn load_trace(path: &Path) -> Result<Vec<TraceRecord>, CheckError> {
    let shown = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|e| CheckError::Io {
        path: shown.clone(),
        message: e.to_string(),
    })?;
    if text.trim_start().starts_with('{') {
        let doc: Value = serde_json::from_str(&text).map_err(|e| CheckError::Json {
            path: shown.clone(),
            message: e.to_string(),
        })?;
        return from_chrome_trace(&doc).map_err(|message| CheckError::Malformed {
            path: shown,
            line: 0,
            message,
        });
    }
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record =
            TraceRecord::parse_log_line(line).map_err(|message| CheckError::Malformed {
                path: shown.clone(),
                line: i + 1,
                message,
            })?;
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_sim::Time;

    fn span(kind: SpanKind, pid: u32, batch_id: u64, start: u64, dur: u64) -> TraceRecord {
        TraceRecord {
            kind,
            pid,
            batch_id,
            start: Time::from_nanos(start),
            duration: Span::from_nanos(dur),
            out_of_order: false,
            queue_delay: Span::ZERO,
        }
    }

    fn healthy() -> Vec<TraceRecord> {
        let mut wait = span(SpanKind::BatchWait, 4242, 0, 900, 100);
        wait.queue_delay = Span::from_nanos(0); // end 1000 == fetch end
        vec![
            span(SpanKind::BatchPreprocessed, 4243, 0, 0, 1000),
            wait,
            span(SpanKind::BatchConsumed, 4242, 0, 1000, 50),
        ]
    }

    #[test]
    fn healthy_trace_is_clean() {
        let f = lint_records(&healthy(), None);
        assert!(f.is_empty(), "unexpected findings: {f:?}");
        let f = lint_records(
            &healthy(),
            Some(&ReportFacts {
                elapsed: Span::from_nanos(1050),
                batches: 1,
            }),
        );
        assert!(f.is_empty(), "unexpected findings with report: {f:?}");
    }

    #[test]
    fn double_wait_and_missing_fetch_are_flagged() {
        let records = vec![
            span(SpanKind::BatchWait, 4242, 3, 0, 10),
            span(SpanKind::BatchWait, 4242, 3, 20, 10),
        ];
        let f = lint_records(&records, None);
        assert!(f
            .iter()
            .any(|x| x.rule == LintRule::BalancedSpans && x.message.contains("2 BatchWait")));
        assert!(f.iter().any(|x| x.rule == LintRule::BalancedSpans
            && x.message.contains("without a BatchPreprocessed")));
    }

    #[test]
    fn backwards_track_is_flagged() {
        let records = vec![
            span(SpanKind::BatchPreprocessed, 4243, 0, 1000, 10),
            span(SpanKind::BatchPreprocessed, 4243, 1, 500, 10),
        ];
        let f = lint_records(&records, None);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, LintRule::TrackMonotonicity);
    }

    #[test]
    fn wrong_queue_delay_breaks_the_identity() {
        let mut records = healthy();
        records[1].queue_delay = Span::from_nanos(7);
        let f = lint_records(&records, None);
        assert!(f.iter().any(
            |x| x.rule == LintRule::AccountingIdentity && x.message.contains("queue_delay 7ns")
        ));
    }

    #[test]
    fn cached_wait_measures_residency_to_its_start() {
        let mut records = healthy();
        records[1].out_of_order = true;
        records[1].start = Time::from_nanos(1500);
        records[1].duration = Span::from_nanos(1000); // 1 µs marker
        records[1].queue_delay = Span::from_nanos(500);
        records[2] = span(SpanKind::BatchConsumed, 4242, 0, 2500, 50);
        let f = lint_records(&records, None);
        assert!(f.is_empty(), "unexpected findings: {f:?}");
    }

    #[test]
    fn same_thread_spans_must_nest_or_stay_disjoint() {
        // Nested (an op inside its fetch) and back-to-back spans are the
        // legal shapes.
        let nested = vec![
            span(SpanKind::BatchPreprocessed, 4243, 0, 0, 1000),
            span(SpanKind::Op("decode".into()), 4243, 0, 100, 300),
            span(SpanKind::Op("resize".into()), 4243, 0, 400, 200),
            span(SpanKind::BatchPreprocessed, 4243, 1, 1000, 500),
        ];
        assert!(
            !lint_records(&nested, None)
                .iter()
                .any(|x| x.rule == LintRule::SpanOverlap),
            "nested and touching spans must lint clean"
        );

        // A span that starts inside another but ends after it straddles
        // the frame boundary — impossible on a single thread.
        let straddling = vec![
            span(SpanKind::BatchPreprocessed, 4243, 0, 0, 1000),
            span(SpanKind::Op("decode".into()), 4243, 0, 600, 900),
        ];
        let f = lint_records(&straddling, None);
        assert!(
            f.iter().any(|x| x.rule == LintRule::SpanOverlap
                && x.message.contains("op span [600ns, 1500ns]")),
            "straddling span escaped: {f:?}"
        );

        // The same pair on two different pids is concurrency, not
        // overlap.
        let cross_thread = vec![
            span(SpanKind::BatchPreprocessed, 4243, 0, 0, 1000),
            span(SpanKind::BatchPreprocessed, 4244, 1, 600, 900),
        ];
        assert!(!lint_records(&cross_thread, None)
            .iter()
            .any(|x| x.rule == LintRule::SpanOverlap));
    }

    #[test]
    fn redispatch_without_death_is_an_orphan_instant() {
        let records = vec![span(SpanKind::BatchRedispatched, 4243, 5, 0, 0)];
        let f = lint_records(&records, None);
        assert!(f.iter().any(|x| x.rule == LintRule::OrphanInstant));
        let with_death = vec![
            span(SpanKind::WorkerDied, 4243, 0, 0, 0),
            span(SpanKind::BatchRedispatched, 4243, 5, 10, 0),
        ];
        assert!(!lint_records(&with_death, None)
            .iter()
            .any(|x| x.rule == LintRule::OrphanInstant));
    }

    #[test]
    fn storage_reads_must_nest_inside_their_fetch() {
        let mut records = healthy();
        // Contained read: inside worker 4243's [0, 1000] fetch of batch 0.
        records.push(span(
            SpanKind::StorageRead("object-store".into()),
            4243,
            0,
            100,
            300,
        ));
        assert!(
            lint_records(&records, None).is_empty(),
            "contained read must lint clean"
        );

        // Escaping read: extends past the fetch end.
        records.push(span(
            SpanKind::StorageRead("local-disk".into()),
            4243,
            0,
            900,
            400,
        ));
        let f = lint_records(&records, None);
        assert!(f
            .iter()
            .any(|x| x.rule == LintRule::StorageContainment && x.message.contains("local-disk")));

        // A read with no fetch by its (pid, batch) is tolerated — the
        // worker may have died mid-batch.
        let orphan = vec![span(
            SpanKind::StorageRead("object-store".into()),
            4250,
            9,
            0,
            100,
        )];
        assert!(!lint_records(&orphan, None)
            .iter()
            .any(|x| x.rule == LintRule::StorageContainment));
    }

    #[test]
    fn report_disagreement_is_flagged() {
        let f = lint_records(
            &healthy(),
            Some(&ReportFacts {
                elapsed: Span::from_nanos(900),
                batches: 2,
            }),
        );
        assert!(f
            .iter()
            .any(|x| x.rule == LintRule::Report && x.message.contains("report claims 2")));
        assert!(
            f.iter()
                .any(|x| x.rule == LintRule::Report
                    && x.message.contains("past the reported elapsed"))
        );
    }

    #[test]
    fn load_trace_returns_typed_errors_not_panics() {
        let dir = std::env::temp_dir().join("lotus-check-lint-test");
        std::fs::create_dir_all(&dir).unwrap();

        let missing = load_trace(&dir.join("nope.json"));
        assert!(matches!(missing, Err(CheckError::Io { .. })));

        let bad_json = dir.join("bad.json");
        std::fs::write(&bad_json, "{ not json").unwrap();
        assert!(matches!(
            load_trace(&bad_json),
            Err(CheckError::Json { .. })
        ));

        let bad_line = dir.join("bad.log");
        std::fs::write(&bad_line, "SBatchWait_0,4242,0,10,0,0\nnot,a,record\n").unwrap();
        match load_trace(&bad_line) {
            Err(CheckError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected a malformed-line error, got {other:?}"),
        }

        let good = dir.join("good.log");
        std::fs::write(&good, "SBatchWait_0,4242,0,10,0,0\n\n").unwrap();
        assert_eq!(load_trace(&good).unwrap().len(), 1);
    }
}
