//! The safety-invariant catalog: a state machine replaying an observed
//! [`LoaderEvent`] sequence against the DataLoader protocol's safety
//! contract.
//!
//! The catalog (documented in `DESIGN.md`) checks, per run:
//!
//! * **Sample conservation** — every sample index is dispatched in exactly
//!   one fresh batch, every batch is delivered and consumed exactly once,
//!   and on a completed run the consumed set is exactly `0..expected`.
//! * **Dispatch discipline** — no dispatch to an observed-dead worker, no
//!   second dispatch of a batch still owned by a live worker, no dispatch
//!   after delivery, redispatch only after an observed worker death.
//! * **Bounded buffers** — the shared data queue never exceeds its cap,
//!   the out-of-order pinned cache and the in-flight inventory stay within
//!   `prefetch_factor × num_workers`.
//! * **Progress** — a run that deadlocks or exhausts its step budget with
//!   undelivered batches is flagged as stalled.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use super::observer::LoaderEvent;

/// Static facts about the configuration under check, against which the
/// invariants are judged.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolSpec {
    /// Configured worker count.
    pub num_workers: usize,
    /// Configured prefetch factor (in-flight bound is
    /// `prefetch_factor * num_workers`).
    pub prefetch_factor: usize,
    /// Data-queue capacity, when bounded.
    pub data_queue_cap: Option<usize>,
    /// Batches the sampler yields per epoch.
    pub expected_batches: u64,
    /// Samples the sampler yields per epoch.
    pub expected_samples: u64,
}

impl ProtocolSpec {
    /// The reorder-buffer / in-flight bound, `prefetch_factor * num_workers`.
    pub fn in_flight_bound(&self) -> usize {
        self.prefetch_factor * self.num_workers
    }
}

/// How the run under check terminated. Completed runs get the full
/// conservation accounting; expected-failure endings (a shipped sample
/// error, every worker killed) get safety-prefix checks only; deadlock and
/// step-limit endings are progress violations when work was pending.
#[derive(Debug, Clone, PartialEq)]
pub enum RunEnding {
    /// The epoch finished with a [`JobReport`](lotus_dataflow::JobReport).
    Completed {
        /// Batches the report claims were consumed.
        batches: u64,
        /// Samples the report claims were consumed.
        samples: u64,
    },
    /// A worker shipped a sample error and main re-raised it (expected
    /// shutdown under an error-injecting fault plan).
    SampleError,
    /// Every worker died with work outstanding (expected shutdown under a
    /// kill-all fault plan).
    AllWorkersDied,
    /// The kernel reported deadlock.
    Deadlock(String),
    /// The schedule controller's step budget ran out (livelock).
    StepLimit,
    /// A simulated process panicked.
    Panic(String),
}

impl RunEnding {
    fn describe(&self) -> String {
        match self {
            RunEnding::Completed { .. } => "completed".into(),
            RunEnding::SampleError => "sample error".into(),
            RunEnding::AllWorkersDied => "all workers died".into(),
            RunEnding::Deadlock(d) => format!("deadlock: {d}"),
            RunEnding::StepLimit => "step limit (livelock)".into(),
            RunEnding::Panic(m) => format!("panic: {m}"),
        }
    }
}

/// One violated invariant, with enough context to read the counterexample.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A batch was dispatched while a live worker still owned it.
    DoubleDispatch {
        /// The twice-dispatched batch.
        batch_id: u64,
        /// Pid of the live owner at the second dispatch.
        owner_pid: u32,
    },
    /// A batch was dispatched to a worker already observed dead.
    DispatchToDeadWorker {
        /// The dispatched batch.
        batch_id: u64,
        /// Pid of the dead recipient.
        worker_pid: u32,
    },
    /// A batch was dispatched again after it had already been delivered.
    DispatchAfterDelivery {
        /// The re-dispatched batch.
        batch_id: u64,
    },
    /// A sample index appeared in two distinct fresh batches.
    IndexReused {
        /// The reused sample index.
        index: u64,
        /// Batch that first carried it.
        first_batch: u64,
        /// Batch that carried it again.
        second_batch: u64,
    },
    /// A batch was delivered to the main loop twice.
    DoubleDelivery {
        /// The twice-delivered batch.
        batch_id: u64,
    },
    /// A batch was delivered without ever being dispatched.
    PhantomDelivery {
        /// The never-dispatched batch.
        batch_id: u64,
    },
    /// A batch was consumed more than once.
    DuplicateConsume {
        /// The twice-consumed batch.
        batch_id: u64,
    },
    /// A batch was fetched more times than it was dispatched.
    ExtraFetch {
        /// The over-fetched batch.
        batch_id: u64,
        /// Observed fetch count.
        fetches: u32,
        /// Observed dispatch count.
        dispatches: u32,
    },
    /// A batch was redispatched although its owner was never observed dead.
    RedispatchBeforeDeath {
        /// The prematurely redispatched batch.
        batch_id: u64,
        /// The still-live claimed-dead owner.
        from_pid: u32,
    },
    /// The shared data queue exceeded its configured capacity.
    QueueCapExceeded {
        /// Configured cap.
        cap: usize,
        /// Observed depth.
        depth: f64,
    },
    /// The out-of-order pinned cache exceeded
    /// `prefetch_factor * num_workers`.
    ReorderBufferOverflow {
        /// The bound.
        bound: usize,
        /// Observed depth.
        depth: f64,
    },
    /// The dispatched-but-unreturned inventory exceeded
    /// `prefetch_factor * num_workers`.
    InFlightOverflow {
        /// The bound.
        bound: usize,
        /// Observed inventory.
        depth: f64,
    },
    /// A gauge went negative (queue depths can never be below zero).
    NegativeGauge {
        /// Gauge name.
        name: String,
        /// Observed value.
        value: f64,
    },
    /// The run completed but some expected batches were never consumed.
    LostBatches {
        /// Batch ids never consumed.
        missing: Vec<u64>,
    },
    /// The run completed but fresh dispatches did not cover the epoch's
    /// samples exactly once.
    SampleLoss {
        /// Samples the sampler should have dispatched.
        expected: u64,
        /// Distinct samples actually dispatched.
        dispatched: u64,
    },
    /// The run stopped (deadlock or step limit) with undelivered work.
    Stalled {
        /// Batches delivered before the stall.
        delivered: u64,
        /// Batches the epoch owed.
        expected: u64,
        /// The ending that revealed the stall.
        ending: String,
    },
    /// A simulated process panicked.
    ProcessPanicked {
        /// The panic payload.
        message: String,
    },
    /// The job report disagrees with the observed event stream.
    ReportMismatch {
        /// What disagreed.
        detail: String,
    },
    /// A steal handed a batch to a worker already observed dead.
    StealToDeadWorker {
        /// The stolen batch.
        batch_id: u64,
        /// Pid of the dead recipient.
        to_pid: u32,
    },
    /// A steal's source and destination were the same worker.
    SelfSteal {
        /// The "stolen" batch.
        batch_id: u64,
        /// The worker that stole from itself.
        pid: u32,
    },
    /// An adaptive policy resized the prefetch window outside
    /// `[1, prefetch_factor]`.
    PrefetchOutOfRange {
        /// The out-of-range target.
        target: usize,
        /// The configured prefetch factor (upper bound).
        bound: usize,
    },
    /// A batch starved: a later batch in the same worker's FIFO index
    /// queue was preprocessed before it ("no sample starves" progress
    /// discipline — within one worker, batches complete in queue order).
    BatchStarved {
        /// The overtaken (starved) batch at the queue's front.
        batch_id: u64,
        /// The later batch that completed first.
        overtaken_by: u64,
        /// Pid of the worker whose queue order was violated.
        worker_pid: u32,
    },
    /// The happens-before auditor flagged the run's synchronization-event
    /// stream (`lotus audit`; see `check::audit`).
    SyncAudit {
        /// The rendered [`AuditFinding`](crate::check::audit::AuditFinding).
        finding: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DoubleDispatch { batch_id, owner_pid } => write!(
                f,
                "double dispatch: batch {batch_id} re-sent while live worker {owner_pid} still owns it"
            ),
            Violation::DispatchToDeadWorker { batch_id, worker_pid } => write!(
                f,
                "dispatch to dead worker: batch {batch_id} sent to worker {worker_pid} after its death was observed"
            ),
            Violation::DispatchAfterDelivery { batch_id } => write!(
                f,
                "dispatch after delivery: batch {batch_id} re-sent after main already received it"
            ),
            Violation::IndexReused { index, first_batch, second_batch } => write!(
                f,
                "sample conservation: index {index} dispatched in fresh batches {first_batch} and {second_batch}"
            ),
            Violation::DoubleDelivery { batch_id } => {
                write!(f, "double delivery: batch {batch_id} handed to the main loop twice")
            }
            Violation::PhantomDelivery { batch_id } => {
                write!(f, "phantom delivery: batch {batch_id} delivered but never dispatched")
            }
            Violation::DuplicateConsume { batch_id } => {
                write!(f, "duplicate consume: batch {batch_id} consumed more than once")
            }
            Violation::ExtraFetch { batch_id, fetches, dispatches } => write!(
                f,
                "extra fetch: batch {batch_id} preprocessed {fetches}x but dispatched only {dispatches}x"
            ),
            Violation::RedispatchBeforeDeath { batch_id, from_pid } => write!(
                f,
                "premature redispatch: batch {batch_id} re-sent from worker {from_pid} before any observed death"
            ),
            Violation::QueueCapExceeded { cap, depth } => {
                write!(f, "data queue over cap: depth {depth} > cap {cap}")
            }
            Violation::ReorderBufferOverflow { bound, depth } => write!(
                f,
                "reorder buffer overflow: pinned cache {depth} > prefetch_factor*num_workers = {bound}"
            ),
            Violation::InFlightOverflow { bound, depth } => write!(
                f,
                "in-flight overflow: {depth} dispatched-unreturned batches > prefetch_factor*num_workers = {bound}"
            ),
            Violation::NegativeGauge { name, value } => {
                write!(f, "negative gauge: {name} = {value}")
            }
            Violation::LostBatches { missing } => write!(
                f,
                "lost batches: run completed but {} batch(es) never consumed: {missing:?}",
                missing.len()
            ),
            Violation::SampleLoss { expected, dispatched } => write!(
                f,
                "sample loss: {dispatched} distinct samples dispatched, epoch owes {expected}"
            ),
            Violation::Stalled { delivered, expected, ending } => write!(
                f,
                "no progress: stopped ({ending}) with {delivered}/{expected} batches delivered"
            ),
            Violation::ProcessPanicked { message } => {
                write!(f, "process panicked: {message}")
            }
            Violation::ReportMismatch { detail } => {
                write!(f, "report mismatch: {detail}")
            }
            Violation::StealToDeadWorker { batch_id, to_pid } => write!(
                f,
                "steal to dead worker: batch {batch_id} stolen onto worker {to_pid} after its death was observed"
            ),
            Violation::SelfSteal { batch_id, pid } => write!(
                f,
                "self steal: batch {batch_id} 'stolen' from worker {pid} to itself"
            ),
            Violation::PrefetchOutOfRange { target, bound } => write!(
                f,
                "prefetch resize out of range: target {target} outside [1, {bound}]"
            ),
            Violation::BatchStarved { batch_id, overtaken_by, worker_pid } => write!(
                f,
                "batch starved: batch {batch_id} at the front of worker {worker_pid}'s queue was overtaken by batch {overtaken_by}"
            ),
            Violation::SyncAudit { finding } => {
                write!(f, "sync audit: {finding}")
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum BatchState {
    InFlight(u32),
    Returned,
}

/// Replays `events` against the invariant catalog and returns every
/// violation found, in discovery order. An empty vector means the run
/// upheld the protocol contract.
pub fn verify(spec: &ProtocolSpec, events: &[LoaderEvent], ending: &RunEnding) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut state: HashMap<u64, BatchState> = HashMap::new();
    let mut dead: BTreeSet<u32> = BTreeSet::new();
    let mut index_owner: HashMap<u64, u64> = HashMap::new();
    let mut dispatches: HashMap<u64, u32> = HashMap::new();
    let mut fetches: HashMap<u64, u32> = HashMap::new();
    let mut consumed: BTreeMap<u64, u32> = BTreeMap::new();
    let mut delivered: BTreeSet<u64> = BTreeSet::new();
    // Per-worker dispatch FIFO for the "no sample starves" discipline:
    // within one worker's index queue, batches finish in dispatch order.
    let mut pending: HashMap<u32, std::collections::VecDeque<u64>> = HashMap::new();
    let in_flight_bound = spec.in_flight_bound();

    for event in events {
        match event {
            LoaderEvent::Dispatched {
                batch_id,
                worker_pid,
                indices,
                redispatch,
                ..
            } => {
                if dead.contains(worker_pid) {
                    violations.push(Violation::DispatchToDeadWorker {
                        batch_id: *batch_id,
                        worker_pid: *worker_pid,
                    });
                }
                match state.get(batch_id) {
                    // A second dispatch is legitimate only as a
                    // redispatch of a dead owner's orphan.
                    Some(BatchState::InFlight(owner)) if !redispatch || !dead.contains(owner) => {
                        violations.push(Violation::DoubleDispatch {
                            batch_id: *batch_id,
                            owner_pid: *owner,
                        });
                    }
                    Some(BatchState::InFlight(_)) => {}
                    Some(BatchState::Returned) => {
                        violations.push(Violation::DispatchAfterDelivery {
                            batch_id: *batch_id,
                        });
                    }
                    None => {}
                }
                state.insert(*batch_id, BatchState::InFlight(*worker_pid));
                *dispatches.entry(*batch_id).or_insert(0) += 1;
                // A redispatched orphan leaves its old FIFO position;
                // either way the batch joins its new owner's queue tail.
                if *redispatch {
                    for queue in pending.values_mut() {
                        queue.retain(|&id| id != *batch_id);
                    }
                }
                pending.entry(*worker_pid).or_default().push_back(*batch_id);
                if !redispatch {
                    for &idx in indices {
                        if let Some(prev) = index_owner.insert(idx, *batch_id) {
                            if prev != *batch_id {
                                violations.push(Violation::IndexReused {
                                    index: idx,
                                    first_batch: prev,
                                    second_batch: *batch_id,
                                });
                            }
                        }
                    }
                }
            }
            LoaderEvent::Preprocessed {
                batch_id,
                worker_pid,
                ..
            } => {
                let f = fetches.entry(*batch_id).or_insert(0);
                *f += 1;
                let d = dispatches.get(batch_id).copied().unwrap_or(0);
                if *f > d {
                    violations.push(Violation::ExtraFetch {
                        batch_id: *batch_id,
                        fetches: *f,
                        dispatches: d,
                    });
                }
                // "No sample starves": a worker drains its index queue in
                // FIFO order, so a completed batch must have been the
                // front of its worker's pending list.
                if let Some(queue) = pending.get_mut(worker_pid) {
                    if let Some(pos) = queue.iter().position(|&id| id == *batch_id) {
                        if pos != 0 {
                            violations.push(Violation::BatchStarved {
                                batch_id: queue[0],
                                overtaken_by: *batch_id,
                                worker_pid: *worker_pid,
                            });
                        }
                        queue.remove(pos);
                    }
                }
            }
            LoaderEvent::Delivered { batch_id, .. } => {
                match state.get(batch_id) {
                    Some(BatchState::InFlight(_)) => {
                        state.insert(*batch_id, BatchState::Returned);
                    }
                    Some(BatchState::Returned) => {
                        violations.push(Violation::DoubleDelivery {
                            batch_id: *batch_id,
                        });
                    }
                    None => {
                        violations.push(Violation::PhantomDelivery {
                            batch_id: *batch_id,
                        });
                    }
                }
                delivered.insert(*batch_id);
            }
            LoaderEvent::Consumed { batch_id, .. } => {
                let c = consumed.entry(*batch_id).or_insert(0);
                *c += 1;
                if *c == 2 {
                    violations.push(Violation::DuplicateConsume {
                        batch_id: *batch_id,
                    });
                }
            }
            LoaderEvent::WorkerDied { worker_pid, .. } => {
                dead.insert(*worker_pid);
                // Its undone work becomes orphans; FIFO expectations on
                // the dead queue are void.
                pending.remove(worker_pid);
            }
            LoaderEvent::Redispatched {
                batch_id, from_pid, ..
            } => {
                if !dead.contains(from_pid) {
                    violations.push(Violation::RedispatchBeforeDeath {
                        batch_id: *batch_id,
                        from_pid: *from_pid,
                    });
                }
            }
            LoaderEvent::Gauge { name, value, .. } => {
                if *value < 0.0 {
                    violations.push(Violation::NegativeGauge {
                        name: name.clone(),
                        value: *value,
                    });
                }
                if name == "queue_depth.data_queue" {
                    if let Some(cap) = spec.data_queue_cap {
                        if *value > cap as f64 {
                            violations.push(Violation::QueueCapExceeded { cap, depth: *value });
                        }
                    }
                } else if name == "pinned_cache_batches" && *value > in_flight_bound as f64 {
                    violations.push(Violation::ReorderBufferOverflow {
                        bound: in_flight_bound,
                        depth: *value,
                    });
                } else if name == "in_flight_batches" && *value > in_flight_bound as f64 {
                    violations.push(Violation::InFlightOverflow {
                        bound: in_flight_bound,
                        depth: *value,
                    });
                }
            }
            LoaderEvent::Stolen {
                batch_id,
                from_pid,
                to_pid,
                ..
            } => {
                if dead.contains(to_pid) {
                    violations.push(Violation::StealToDeadWorker {
                        batch_id: *batch_id,
                        to_pid: *to_pid,
                    });
                }
                if from_pid == to_pid {
                    violations.push(Violation::SelfSteal {
                        batch_id: *batch_id,
                        pid: *to_pid,
                    });
                }
            }
            LoaderEvent::PrefetchResized { target, .. } => {
                if *target == 0 || *target > spec.prefetch_factor {
                    violations.push(Violation::PrefetchOutOfRange {
                        target: *target,
                        bound: spec.prefetch_factor,
                    });
                }
            }
            LoaderEvent::LaneAssigned { .. } | LoaderEvent::FaultInjected { .. } => {}
        }
    }

    match ending {
        RunEnding::Completed { batches, samples } => {
            let missing: Vec<u64> = (0..spec.expected_batches)
                .filter(|id| !consumed.contains_key(id))
                .collect();
            if !missing.is_empty() {
                violations.push(Violation::LostBatches { missing });
            }
            let dispatched_samples = index_owner.len() as u64;
            if dispatched_samples != spec.expected_samples {
                violations.push(Violation::SampleLoss {
                    expected: spec.expected_samples,
                    dispatched: dispatched_samples,
                });
            }
            let total_consumed: u64 = consumed.values().map(|&c| u64::from(c)).sum();
            if *batches != total_consumed {
                violations.push(Violation::ReportMismatch {
                    detail: format!(
                        "report claims {batches} batches, trace shows {total_consumed} consumes"
                    ),
                });
            }
            if *samples != spec.expected_samples {
                violations.push(Violation::ReportMismatch {
                    detail: format!(
                        "report claims {samples} samples, epoch owes {}",
                        spec.expected_samples
                    ),
                });
            }
        }
        RunEnding::Deadlock(_) | RunEnding::StepLimit => {
            violations.push(Violation::Stalled {
                delivered: delivered.len() as u64,
                expected: spec.expected_batches,
                ending: ending.describe(),
            });
        }
        RunEnding::Panic(message) => {
            violations.push(Violation::ProcessPanicked {
                message: message.clone(),
            });
        }
        // Expected shutdowns: the safety prefix above is all we can demand.
        RunEnding::SampleError | RunEnding::AllWorkersDied => {}
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_sim::Time;

    fn spec() -> ProtocolSpec {
        ProtocolSpec {
            num_workers: 2,
            prefetch_factor: 2,
            data_queue_cap: Some(4),
            expected_batches: 2,
            expected_samples: 4,
        }
    }

    fn dispatch(batch_id: u64, worker_pid: u32, indices: &[u64], redispatch: bool) -> LoaderEvent {
        LoaderEvent::Dispatched {
            batch_id,
            worker_pid,
            indices: indices.to_vec(),
            redispatch,
            at: Time::ZERO,
        }
    }

    fn full_clean_run() -> Vec<LoaderEvent> {
        vec![
            dispatch(0, 4243, &[0, 1], false),
            dispatch(1, 4244, &[2, 3], false),
            LoaderEvent::Preprocessed {
                batch_id: 0,
                worker_pid: 4243,
                end: Time::ZERO,
            },
            LoaderEvent::Delivered {
                batch_id: 0,
                out_of_order: false,
                at: Time::ZERO,
            },
            LoaderEvent::Consumed {
                batch_id: 0,
                len: 2,
                at: Time::ZERO,
            },
            LoaderEvent::Preprocessed {
                batch_id: 1,
                worker_pid: 4244,
                end: Time::ZERO,
            },
            LoaderEvent::Delivered {
                batch_id: 1,
                out_of_order: false,
                at: Time::ZERO,
            },
            LoaderEvent::Consumed {
                batch_id: 1,
                len: 2,
                at: Time::ZERO,
            },
        ]
    }

    #[test]
    fn clean_run_upholds_every_invariant() {
        let v = verify(
            &spec(),
            &full_clean_run(),
            &RunEnding::Completed {
                batches: 2,
                samples: 4,
            },
        );
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn redispatch_without_death_is_flagged() {
        let events = vec![
            dispatch(0, 4243, &[0, 1], false),
            LoaderEvent::Redispatched {
                batch_id: 0,
                from_pid: 4243,
                to_pid: 4244,
                at: Time::ZERO,
            },
        ];
        let v = verify(&spec(), &events, &RunEnding::SampleError);
        assert_eq!(
            v,
            vec![Violation::RedispatchBeforeDeath {
                batch_id: 0,
                from_pid: 4243
            }]
        );
    }

    #[test]
    fn dispatch_while_live_owner_holds_the_batch_is_flagged() {
        let events = vec![
            dispatch(0, 4243, &[0, 1], false),
            dispatch(0, 4244, &[0, 1], true),
        ];
        let v = verify(&spec(), &events, &RunEnding::SampleError);
        assert!(v.contains(&Violation::DoubleDispatch {
            batch_id: 0,
            owner_pid: 4243
        }));
    }

    #[test]
    fn redispatch_after_observed_death_is_legitimate() {
        let events = vec![
            dispatch(0, 4243, &[0, 1], false),
            LoaderEvent::WorkerDied {
                worker_pid: 4243,
                at: Time::ZERO,
            },
            dispatch(0, 4244, &[0, 1], true),
            LoaderEvent::Redispatched {
                batch_id: 0,
                from_pid: 4243,
                to_pid: 4244,
                at: Time::ZERO,
            },
        ];
        let v = verify(&spec(), &events, &RunEnding::SampleError);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn lost_batch_surfaces_on_a_stalled_ending() {
        let events = vec![dispatch(0, 4243, &[0, 1], false)];
        let v = verify(&spec(), &events, &RunEnding::StepLimit);
        assert_eq!(
            v,
            vec![Violation::Stalled {
                delivered: 0,
                expected: 2,
                ending: "step limit (livelock)".into()
            }]
        );
    }

    #[test]
    fn index_reuse_and_queue_cap_are_flagged() {
        let events = vec![
            dispatch(0, 4243, &[0, 1], false),
            dispatch(1, 4244, &[1, 2], false),
            LoaderEvent::Gauge {
                name: "queue_depth.data_queue".into(),
                value: 5.0,
                at: Time::ZERO,
            },
        ];
        let v = verify(&spec(), &events, &RunEnding::SampleError);
        assert!(v.contains(&Violation::IndexReused {
            index: 1,
            first_batch: 0,
            second_batch: 1
        }));
        assert!(v.contains(&Violation::QueueCapExceeded { cap: 4, depth: 5.0 }));
    }

    #[test]
    fn steal_to_dead_worker_and_self_steal_are_flagged() {
        let events = vec![
            LoaderEvent::WorkerDied {
                worker_pid: 4244,
                at: Time::ZERO,
            },
            LoaderEvent::Stolen {
                batch_id: 0,
                from_pid: 4243,
                to_pid: 4244,
                at: Time::ZERO,
            },
            LoaderEvent::Stolen {
                batch_id: 1,
                from_pid: 4243,
                to_pid: 4243,
                at: Time::ZERO,
            },
        ];
        let v = verify(&spec(), &events, &RunEnding::SampleError);
        assert!(v.contains(&Violation::StealToDeadWorker {
            batch_id: 0,
            to_pid: 4244
        }));
        assert!(v.contains(&Violation::SelfSteal {
            batch_id: 1,
            pid: 4243
        }));
    }

    #[test]
    fn prefetch_resize_outside_bounds_is_flagged() {
        let events = vec![
            LoaderEvent::PrefetchResized {
                target: 1,
                at: Time::ZERO,
            },
            LoaderEvent::PrefetchResized {
                target: 0,
                at: Time::ZERO,
            },
            LoaderEvent::PrefetchResized {
                target: 3,
                at: Time::ZERO,
            },
        ];
        let v = verify(&spec(), &events, &RunEnding::SampleError);
        assert_eq!(
            v,
            vec![
                Violation::PrefetchOutOfRange {
                    target: 0,
                    bound: 2
                },
                Violation::PrefetchOutOfRange {
                    target: 3,
                    bound: 2
                },
            ]
        );
    }

    #[test]
    fn out_of_order_completion_within_one_worker_starves_the_front_batch() {
        let events = vec![
            dispatch(0, 4243, &[0, 1], false),
            dispatch(1, 4243, &[2, 3], false),
            LoaderEvent::Preprocessed {
                batch_id: 1,
                worker_pid: 4243,
                end: Time::ZERO,
            },
        ];
        let v = verify(&spec(), &events, &RunEnding::SampleError);
        assert!(v.contains(&Violation::BatchStarved {
            batch_id: 0,
            overtaken_by: 1,
            worker_pid: 4243
        }));
    }

    #[test]
    fn redispatch_resets_the_fifo_position_without_starvation() {
        // Batch 0 goes to worker 4243, which dies; 0 is redispatched
        // behind 1 on worker 4244. Completing 1 before 0 is then legal.
        let events = vec![
            dispatch(0, 4243, &[0, 1], false),
            dispatch(1, 4244, &[2, 3], false),
            LoaderEvent::WorkerDied {
                worker_pid: 4243,
                at: Time::ZERO,
            },
            dispatch(0, 4244, &[0, 1], true),
            LoaderEvent::Preprocessed {
                batch_id: 1,
                worker_pid: 4244,
                end: Time::ZERO,
            },
            LoaderEvent::Preprocessed {
                batch_id: 0,
                worker_pid: 4244,
                end: Time::ZERO,
            },
        ];
        let v = verify(&spec(), &events, &RunEnding::SampleError);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn completed_run_with_unconsumed_batch_is_lost() {
        let mut events = full_clean_run();
        events.retain(|e| !matches!(e, LoaderEvent::Consumed { batch_id: 1, .. }));
        let v = verify(
            &spec(),
            &events,
            &RunEnding::Completed {
                batches: 1,
                samples: 4,
            },
        );
        assert!(v.contains(&Violation::LostBatches { missing: vec![1] }));
    }
}
