//! The recording observer: a zero-overhead [`Tracer`] that captures every
//! protocol event the DataLoader emits, in emission order, for the
//! invariant catalog ([`super::invariants`]) to judge.

use std::sync::Mutex;

use lotus_dataflow::Tracer;
use lotus_sim::{Span, Time};

/// One observed protocol event. The variants mirror the [`Tracer`] hooks
/// one-to-one; together they are the complete observable behaviour of a
/// loader run as far as the safety invariants are concerned.
#[derive(Debug, Clone, PartialEq)]
pub enum LoaderEvent {
    /// Main handed an index batch to a worker's index queue.
    Dispatched {
        /// Batch identifier.
        batch_id: u64,
        /// OS pid of the receiving worker.
        worker_pid: u32,
        /// Sample indices in the batch.
        indices: Vec<u64>,
        /// True when this was a dead worker's orphan being re-sent.
        redispatch: bool,
        /// Virtual time of the push.
        at: Time,
    },
    /// A worker finished fetching (preprocessing) a batch \[T1\].
    Preprocessed {
        /// Batch identifier.
        batch_id: u64,
        /// OS pid of the fetching worker.
        worker_pid: u32,
        /// Virtual time the fetch completed (push to the data queue).
        end: Time,
    },
    /// Main received a batch from the data queue or pinned cache \[T2\].
    Delivered {
        /// Batch identifier.
        batch_id: u64,
        /// True when served from the out-of-order pinned cache.
        out_of_order: bool,
        /// Virtual time the wait ended.
        at: Time,
    },
    /// Main consumed a batch (H2D + GPU step issued).
    Consumed {
        /// Batch identifier.
        batch_id: u64,
        /// Samples in the batch.
        len: usize,
        /// Virtual time consumption started.
        at: Time,
    },
    /// A fault plan injected a sample error on a worker.
    FaultInjected {
        /// Batch being fetched when the fault fired.
        batch_id: u64,
        /// Failing operator name.
        op: String,
    },
    /// Main observed a worker death (liveness probe failed).
    WorkerDied {
        /// OS pid of the dead worker.
        worker_pid: u32,
        /// Virtual time of the observation.
        at: Time,
    },
    /// Main re-sent a dead worker's in-flight batch to a survivor.
    Redispatched {
        /// Batch identifier.
        batch_id: u64,
        /// OS pid of the dead original owner.
        from_pid: u32,
        /// OS pid of the surviving recipient.
        to_pid: u32,
        /// Virtual time of the re-send.
        at: Time,
    },
    /// A scheduling policy overrode the round-robin target and handed a
    /// batch to a different worker's queue (work stealing).
    Stolen {
        /// Batch identifier.
        batch_id: u64,
        /// OS pid of the worker the batch was taken from.
        from_pid: u32,
        /// OS pid of the worker that received it instead.
        to_pid: u32,
        /// Virtual time of the steal.
        at: Time,
    },
    /// A lane-aware policy classified a batch into a fast/slow lane.
    LaneAssigned {
        /// Batch identifier.
        batch_id: u64,
        /// Lane name (`"fast"` or `"slow"`).
        lane: String,
        /// OS pid of the worker that received it.
        to_pid: u32,
        /// Virtual time of the assignment.
        at: Time,
    },
    /// An adaptive policy resized the per-worker prefetch window.
    PrefetchResized {
        /// New per-worker prefetch target.
        target: usize,
        /// Virtual time of the resize.
        at: Time,
    },
    /// A named scalar was sampled (queue depths, in-flight inventory…).
    Gauge {
        /// Gauge name, e.g. `queue_depth.data_queue`.
        name: String,
        /// Sampled value.
        value: f64,
        /// Virtual time of the sample.
        at: Time,
    },
}

impl LoaderEvent {
    /// The batch this event concerns, when it concerns one.
    pub fn batch_id(&self) -> Option<u64> {
        match self {
            LoaderEvent::Dispatched { batch_id, .. }
            | LoaderEvent::Preprocessed { batch_id, .. }
            | LoaderEvent::Delivered { batch_id, .. }
            | LoaderEvent::Consumed { batch_id, .. }
            | LoaderEvent::FaultInjected { batch_id, .. }
            | LoaderEvent::Redispatched { batch_id, .. }
            | LoaderEvent::Stolen { batch_id, .. }
            | LoaderEvent::LaneAssigned { batch_id, .. } => Some(*batch_id),
            LoaderEvent::WorkerDied { .. }
            | LoaderEvent::Gauge { .. }
            | LoaderEvent::PrefetchResized { .. } => None,
        }
    }
}

/// A [`Tracer`] that appends every hook invocation to an in-memory event
/// log and charges zero overhead, so observation never perturbs the
/// schedule under test.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    events: Mutex<Vec<LoaderEvent>>,
}

impl RecordingObserver {
    /// A fresh, empty observer.
    pub fn new() -> RecordingObserver {
        RecordingObserver::default()
    }

    /// The captured events, in emission order.
    pub fn events(&self) -> Vec<LoaderEvent> {
        self.events.lock().expect("observer poisoned").clone()
    }

    fn push(&self, event: LoaderEvent) {
        self.events.lock().expect("observer poisoned").push(event);
    }
}

impl Tracer for RecordingObserver {
    fn on_batch_preprocessed(&self, pid: u32, batch_id: u64, start: Time, dur: Span) -> Span {
        self.push(LoaderEvent::Preprocessed {
            batch_id,
            worker_pid: pid,
            end: start + dur,
        });
        Span::ZERO
    }

    fn on_batch_dispatched(
        &self,
        batch_id: u64,
        to_pid: u32,
        indices: &[u64],
        redispatch: bool,
        at: Time,
    ) -> Span {
        self.push(LoaderEvent::Dispatched {
            batch_id,
            worker_pid: to_pid,
            indices: indices.to_vec(),
            redispatch,
            at,
        });
        Span::ZERO
    }

    fn on_batch_wait(
        &self,
        _pid: u32,
        batch_id: u64,
        start: Time,
        dur: Span,
        out_of_order: bool,
        _queue_delay: Span,
    ) -> Span {
        self.push(LoaderEvent::Delivered {
            batch_id,
            out_of_order,
            at: start + dur,
        });
        Span::ZERO
    }

    fn on_batch_consumed(
        &self,
        _pid: u32,
        batch_id: u64,
        start: Time,
        _dur: Span,
        len: usize,
    ) -> Span {
        self.push(LoaderEvent::Consumed {
            batch_id,
            len,
            at: start,
        });
        Span::ZERO
    }

    fn on_fault_injected(&self, _pid: u32, batch_id: u64, op: &str, _at: Time) -> Span {
        self.push(LoaderEvent::FaultInjected {
            batch_id,
            op: op.to_string(),
        });
        Span::ZERO
    }

    fn on_worker_died(&self, pid: u32, at: Time) -> Span {
        self.push(LoaderEvent::WorkerDied {
            worker_pid: pid,
            at,
        });
        Span::ZERO
    }

    fn on_batch_redispatched(&self, batch_id: u64, from_pid: u32, to_pid: u32, at: Time) -> Span {
        self.push(LoaderEvent::Redispatched {
            batch_id,
            from_pid,
            to_pid,
            at,
        });
        Span::ZERO
    }

    fn on_batch_stolen(&self, batch_id: u64, from_pid: u32, to_pid: u32, at: Time) -> Span {
        self.push(LoaderEvent::Stolen {
            batch_id,
            from_pid,
            to_pid,
            at,
        });
        Span::ZERO
    }

    fn on_lane_assigned(&self, batch_id: u64, lane: &str, to_pid: u32, at: Time) -> Span {
        self.push(LoaderEvent::LaneAssigned {
            batch_id,
            lane: lane.to_string(),
            to_pid,
            at,
        });
        Span::ZERO
    }

    fn on_prefetch_resized(&self, target: usize, at: Time) -> Span {
        self.push(LoaderEvent::PrefetchResized { target, at });
        Span::ZERO
    }

    fn on_gauge(&self, name: &str, value: f64, at: Time) -> Span {
        self.push(LoaderEvent::Gauge {
            name: name.to_string(),
            value,
            at,
        });
        Span::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_captures_hooks_in_order_and_charges_nothing() {
        let obs = RecordingObserver::new();
        assert!(obs
            .on_batch_dispatched(0, 4243, &[0, 1, 2], false, Time::ZERO)
            .is_zero());
        assert!(obs
            .on_batch_preprocessed(4243, 0, Time::ZERO, Span::from_micros(5))
            .is_zero());
        assert!(obs
            .on_batch_wait(
                4242,
                0,
                Time::ZERO + Span::from_micros(5),
                Span::from_micros(1),
                false,
                Span::from_micros(1),
            )
            .is_zero());
        let events = obs.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0],
            LoaderEvent::Dispatched {
                batch_id: 0,
                worker_pid: 4243,
                indices: vec![0, 1, 2],
                redispatch: false,
                at: Time::ZERO,
            }
        );
        assert_eq!(events[1].batch_id(), Some(0));
        assert_eq!(
            events[2],
            LoaderEvent::Delivered {
                batch_id: 0,
                out_of_order: false,
                at: Time::ZERO + Span::from_micros(6),
            }
        );
    }
}
