//! **lotus check** — protocol model checking and trace linting.
//!
//! Two complementary static/dynamic analyses over the DataLoader model:
//!
//! 1. A **bounded protocol model checker**: the simulator exposes its
//!    nondeterministic choices (ready-event ties — worker completion
//!    order, fault firing points) through
//!    [`ScheduleController`](lotus_sim::ScheduleController); the
//!    [`explorer`] drives small pipeline configurations through distinct
//!    interleavings by DFS over schedule prefixes, deduplicating on the
//!    kernel's structural state hash, and judges every run against the
//!    safety-invariant catalog in [`invariants`]. A violation yields a
//!    minimized, deterministically replayable counterexample schedule.
//! 2. A **trace linter** ([`lint`]): structural invariants over recorded
//!    or imported LotusTrace streams — balanced span pairs, per-track
//!    monotonicity, \[T1\]/\[T2\] accounting identities, orphan instants,
//!    gauge bounds — with typed errors on malformed input.
//!
//! The invariant catalog and the exploration bounds are documented in
//! `DESIGN.md`; the `lotus check` CLI in the repository `README.md`.

pub mod audit;
pub mod explorer;
pub mod invariants;
pub mod lint;
pub mod observer;

pub use audit::{
    analyze, minimize_events, model::explore_native_model, model::run_model,
    model::run_model_traced, model::ModelBug, model::ModelConfig, AuditFinding, AuditReport,
    AuditSpec, AuditStats,
};
pub use explorer::{
    explore, Counterexample, ExploreBounds, ExploreReport, ExploreStats, ScheduledRun,
};
pub use invariants::{verify, ProtocolSpec, RunEnding, Violation};
pub use lint::{
    lint_gauges, lint_records, load_trace, CheckError, GaugeLimits, LintFinding, LintRule,
    ReportFacts,
};
pub use observer::{LoaderEvent, RecordingObserver};
