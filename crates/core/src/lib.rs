//! # lotus-core — LotusTrace + LotusMap
//!
//! The Lotus paper's contribution, reproduced over the simulated
//! substrates:
//!
//! * [`trace`] — **LotusTrace**: lightweight instrumented tracing of the
//!   PyTorch DataLoader data flow. Captures per-batch preprocessing time
//!   (\[T1\]), main-process wait time (\[T2\], with the 1 µs out-of-order
//!   marker) and per-operation elapsed time (\[T3\]); provides the analysis
//!   behind Tables II and Figures 4–5 and Chrome-Trace-Viewer export with
//!   data-flow arrows and negative synthetic ids (Figure 2).
//! * [`metrics`] — live observability: a streaming [`metrics::TraceSink`]
//!   layer fanned out from the engine's tracer hooks, a deterministic
//!   [`metrics::MetricsRegistry`] of counters / virtual-time gauge series /
//!   latency histograms, Prometheus-text / JSON / CSV exporters, and a
//!   `lotus top`-style terminal dashboard.
//! * [`map`] — **LotusMap**: isolates each Python operation under the
//!   hardware profiler's collection-control API (warm-up, `sleep()`
//!   bucketing gap, the `C ≥ 1-(1-f/s)^n` run-count formula), buckets and
//!   filters the sampled native functions into a mapping (Table I), and
//!   splits whole-pipeline hardware counters back onto Python operations
//!   by LotusTrace elapsed-time weights (Figure 6).
//! * [`tune`] — **lotus tune**: closes the characterization loop with an
//!   automatic DataLoader configuration search (grid + hill climbing
//!   with dominance pruning) that scores every candidate on throughput,
//!   T2 wait, and memory footprint, and recommends a configuration with
//!   a predicted speedup and a T1/T2/T3-based bottleneck verdict.
//! * [`check`] — **lotus check**: a bounded protocol model checker that
//!   explores ready-event interleavings of the DataLoader protocol
//!   through the simulator's schedule-controller hook and judges each
//!   run against a safety-invariant catalog (sample conservation,
//!   dispatch discipline, bounded buffers, progress), plus a trace
//!   linter for recorded/imported LotusTrace streams.
//! * [`exec`] — deterministic parallel execution: a scoped-thread job
//!   pool that joins results by submission index (so `--jobs N` output
//!   is byte-identical to serial) and a content-addressed on-disk trial
//!   cache that lets repeated sweeps skip already-measured
//!   configurations.
//!
//! ```
//! use lotus_core::map::required_runs;
//! use lotus_sim::Span;
//!
//! // The paper's §IV-B example: a 660 µs function under 10 ms sampling
//! // needs 20 runs for 75% capture probability.
//! assert_eq!(required_runs(0.75, Span::from_micros(660), Span::from_millis(10)), 20);
//! ```

#![warn(missing_docs)]
// The whole workspace is safe Rust; determinism and auditability both
// lean on it. Gate any future exception through a crate-level decision.
#![deny(unsafe_code)]

pub mod check;
pub mod exec;
pub mod map;
pub mod metrics;
pub mod trace;
pub mod tune;
