//! LotusTrace log records.

use lotus_sim::{Span, Time};

/// What a trace record describes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One storage read issued by the dataset's fetch path (\[T0\]) —
    /// `SStorageRead_idx_tier`. The payload is the serving tier's stable
    /// name (`page-cache` / `local-disk` / `object-store`; tier names
    /// never contain `_`). Storage reads nest inside the batch's
    /// [`SpanKind::BatchPreprocessed`] span on the same worker.
    StorageRead(String),
    /// A whole-batch fetch on a DataLoader worker (\[T1\]) —
    /// `SBatchPreprocessed_idx` in the visualization.
    BatchPreprocessed,
    /// The main process waiting for a batch (\[T2\]) — `SBatchWait_idx`.
    BatchWait,
    /// The main process consuming a batch — `SBatchConsumed_idx`.
    BatchConsumed,
    /// One preprocessing operation on one item (\[T3\]), e.g.
    /// `RandomResizedCrop`.
    Op(String),
    /// A fault plan injected an error into the named op while a worker
    /// fetched this batch — `SFaultInjected_idx_op`.
    FaultInjected(String),
    /// The main process observed a DataLoader worker's death —
    /// `SWorkerDied` (an instant, duration zero).
    WorkerDied,
    /// An in-flight batch owned by a dead worker was re-sent to a
    /// survivor — `SBatchRedispatched_idx` (an instant, duration zero).
    BatchRedispatched,
    /// A scheduling policy stole a batch from its round-robin target and
    /// placed it elsewhere — `SBatchStolen_idx` (an instant).
    BatchStolen,
    /// A lane-aware policy classified a batch into a fast/slow lane —
    /// `SLaneAssigned_idx_lane` (an instant; the payload is the lane
    /// name, which never contains `_`).
    LaneAssigned(String),
    /// An adaptive policy resized the per-worker prefetch window —
    /// `SPrefetchResized_target` (an instant; the "batch id" slot in the
    /// label carries the new target).
    PrefetchResized,
}

impl SpanKind {
    /// The span label used in log lines and visualizations.
    #[must_use]
    pub fn label(&self, batch_id: u64) -> String {
        match self {
            SpanKind::StorageRead(tier) => format!("SStorageRead_{batch_id}_{tier}"),
            SpanKind::BatchPreprocessed => format!("SBatchPreprocessed_{batch_id}"),
            SpanKind::BatchWait => format!("SBatchWait_{batch_id}"),
            SpanKind::BatchConsumed => format!("SBatchConsumed_{batch_id}"),
            SpanKind::Op(name) => format!("S{name}"),
            SpanKind::FaultInjected(op) => format!("SFaultInjected_{batch_id}_{op}"),
            SpanKind::WorkerDied => "SWorkerDied".to_string(),
            SpanKind::BatchRedispatched => format!("SBatchRedispatched_{batch_id}"),
            SpanKind::BatchStolen => format!("SBatchStolen_{batch_id}"),
            SpanKind::LaneAssigned(lane) => format!("SLaneAssigned_{batch_id}_{lane}"),
            SpanKind::PrefetchResized => format!("SPrefetchResized_{batch_id}"),
        }
    }

    /// True for the zero-duration fault/lifecycle/scheduling marks
    /// (rendered as instant events in the Chrome trace).
    #[must_use]
    pub fn is_instant(&self) -> bool {
        matches!(
            self,
            SpanKind::FaultInjected(_)
                | SpanKind::WorkerDied
                | SpanKind::BatchRedispatched
                | SpanKind::BatchStolen
                | SpanKind::LaneAssigned(_)
                | SpanKind::PrefetchResized
        )
    }
}

/// One LotusTrace log record: a span with batch/process metadata
/// (the paper logs `S{name}, {start}, {duration}` plus batch and process
/// ids).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Span kind.
    pub kind: SpanKind,
    /// OS pid of the emitting process.
    pub pid: u32,
    /// Batch the span belongs to.
    pub batch_id: u64,
    /// Span start (virtual time).
    pub start: Time,
    /// Span duration.
    pub duration: Span,
    /// True for wait records satisfied from the out-of-order cache
    /// (logged with the 1 µs marker duration).
    pub out_of_order: bool,
    /// For wait records: how long the batch sat between the end of its
    /// fetch on the worker and delivery to the main loop (shared-queue
    /// residency). Zero for all other kinds.
    pub queue_delay: Span,
}

impl TraceRecord {
    /// Serializes to the CSV-ish log-line format.
    #[must_use]
    pub fn to_log_line(&self) -> String {
        format!(
            "{},{},{},{},{},{}\n",
            self.kind.label(self.batch_id),
            self.pid,
            self.start.as_nanos(),
            self.duration.as_nanos(),
            u8::from(self.out_of_order),
            self.queue_delay.as_nanos(),
        )
    }

    /// Size of the serialized record in bytes (log-storage accounting).
    #[must_use]
    pub fn log_bytes(&self) -> u64 {
        self.to_log_line().len() as u64
    }

    /// End of the span.
    #[must_use]
    pub fn end(&self) -> Time {
        self.start + self.duration
    }

    /// Parses a line produced by [`TraceRecord::to_log_line`].
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field.
    pub fn parse_log_line(line: &str) -> Result<TraceRecord, String> {
        let parts: Vec<&str> = line.trim_end().split(',').collect();
        if parts.len() != 6 {
            return Err(format!("expected 6 fields, got {}", parts.len()));
        }
        let (label, rest) = (parts[0], &parts[1..]);
        let pid: u32 = rest[0].parse().map_err(|e| format!("bad pid: {e}"))?;
        let start: u64 = rest[1].parse().map_err(|e| format!("bad start: {e}"))?;
        let duration: u64 = rest[2].parse().map_err(|e| format!("bad duration: {e}"))?;
        let ooo = rest[3] == "1";
        let queue_delay: u64 = rest[4]
            .parse()
            .map_err(|e| format!("bad queue delay: {e}"))?;
        let (kind, batch_id) = parse_label(label)?;
        Ok(TraceRecord {
            kind,
            pid,
            batch_id,
            start: Time::from_nanos(start),
            duration: Span::from_nanos(duration),
            out_of_order: ooo,
            queue_delay: Span::from_nanos(queue_delay),
        })
    }
}

/// Parses a span label back into its kind and batch id (shared by the log
/// and Chrome-trace importers).
pub(crate) fn parse_label(label: &str) -> Result<(SpanKind, u64), String> {
    for (prefix, ctor) in [
        ("SBatchPreprocessed_", SpanKind::BatchPreprocessed),
        ("SBatchWait_", SpanKind::BatchWait),
        ("SBatchConsumed_", SpanKind::BatchConsumed),
        ("SBatchRedispatched_", SpanKind::BatchRedispatched),
        ("SBatchStolen_", SpanKind::BatchStolen),
        ("SPrefetchResized_", SpanKind::PrefetchResized),
    ] {
        if let Some(idx) = label.strip_prefix(prefix) {
            let id = idx.parse().map_err(|e| format!("bad batch id: {e}"))?;
            return Ok((ctor, id));
        }
    }
    if let Some(rest) = label.strip_prefix("SFaultInjected_") {
        let (idx, op) = rest
            .split_once('_')
            .ok_or_else(|| format!("fault label '{label}' missing op"))?;
        let id = idx.parse().map_err(|e| format!("bad batch id: {e}"))?;
        return Ok((SpanKind::FaultInjected(op.to_string()), id));
    }
    if let Some(rest) = label.strip_prefix("SLaneAssigned_") {
        let (idx, lane) = rest
            .split_once('_')
            .ok_or_else(|| format!("lane label '{label}' missing lane"))?;
        let id = idx.parse().map_err(|e| format!("bad batch id: {e}"))?;
        return Ok((SpanKind::LaneAssigned(lane.to_string()), id));
    }
    if let Some(rest) = label.strip_prefix("SStorageRead_") {
        let (idx, tier) = rest
            .split_once('_')
            .ok_or_else(|| format!("storage-read label '{label}' missing tier"))?;
        let id = idx.parse().map_err(|e| format!("bad batch id: {e}"))?;
        return Ok((SpanKind::StorageRead(tier.to_string()), id));
    }
    if label == "SWorkerDied" {
        return Ok((SpanKind::WorkerDied, 0));
    }
    match label.strip_prefix('S') {
        Some(name) if !name.is_empty() => Ok((SpanKind::Op(name.to_string()), 0)),
        _ => Err(format!("unrecognized span label '{label}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: SpanKind) -> TraceRecord {
        TraceRecord {
            kind,
            pid: 4243,
            batch_id: 17,
            start: Time::from_nanos(1_000),
            duration: Span::from_nanos(250),
            out_of_order: false,
            queue_delay: Span::from_nanos(77),
        }
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(
            SpanKind::BatchPreprocessed.label(699),
            "SBatchPreprocessed_699"
        );
        assert_eq!(SpanKind::BatchWait.label(699), "SBatchWait_699");
        assert_eq!(SpanKind::BatchConsumed.label(699), "SBatchConsumed_699");
        assert_eq!(
            SpanKind::Op("RandomResizedCrop".into()).label(0),
            "SRandomResizedCrop"
        );
        assert_eq!(
            SpanKind::FaultInjected("ToTensor".into()).label(12),
            "SFaultInjected_12_ToTensor"
        );
        assert_eq!(SpanKind::WorkerDied.label(0), "SWorkerDied");
        assert_eq!(SpanKind::BatchRedispatched.label(9), "SBatchRedispatched_9");
        assert_eq!(
            SpanKind::StorageRead("page-cache".into()).label(7),
            "SStorageRead_7_page-cache"
        );
    }

    #[test]
    fn batch_records_round_trip_through_log_lines() {
        for kind in [
            SpanKind::BatchPreprocessed,
            SpanKind::BatchWait,
            SpanKind::BatchConsumed,
            SpanKind::BatchRedispatched,
            SpanKind::FaultInjected("Normalize".into()),
            SpanKind::StorageRead("object-store".into()),
            SpanKind::BatchStolen,
            SpanKind::LaneAssigned("slow".into()),
            SpanKind::PrefetchResized,
        ] {
            let r = record(kind);
            let parsed = TraceRecord::parse_log_line(&r.to_log_line()).unwrap();
            assert_eq!(parsed, r);
        }
        // WorkerDied carries no batch id in its label; it parses back as 0.
        let r = TraceRecord {
            batch_id: 0,
            ..record(SpanKind::WorkerDied)
        };
        let parsed = TraceRecord::parse_log_line(&r.to_log_line()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn scheduling_labels_match_the_policy_notation() {
        assert_eq!(SpanKind::BatchStolen.label(5), "SBatchStolen_5");
        assert_eq!(
            SpanKind::LaneAssigned("slow".into()).label(5),
            "SLaneAssigned_5_slow"
        );
        assert_eq!(SpanKind::PrefetchResized.label(3), "SPrefetchResized_3");
    }

    #[test]
    fn fault_kinds_are_instants() {
        assert!(SpanKind::WorkerDied.is_instant());
        assert!(SpanKind::BatchRedispatched.is_instant());
        assert!(SpanKind::BatchStolen.is_instant());
        assert!(SpanKind::LaneAssigned("fast".into()).is_instant());
        assert!(SpanKind::PrefetchResized.is_instant());
        assert!(SpanKind::FaultInjected("X".into()).is_instant());
        assert!(!SpanKind::BatchWait.is_instant());
        assert!(!SpanKind::Op("X".into()).is_instant());
        assert!(!SpanKind::StorageRead("local-disk".into()).is_instant());
    }

    #[test]
    fn op_records_round_trip_modulo_batch_id() {
        let r = record(SpanKind::Op("Normalize".into()));
        let parsed = TraceRecord::parse_log_line(&r.to_log_line()).unwrap();
        assert_eq!(parsed.kind, r.kind);
        assert_eq!(parsed.duration, r.duration);
        // The op log line doesn't carry the batch id (matches the paper's
        // Listing 3 format); it parses back as 0.
        assert_eq!(parsed.batch_id, 0);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(TraceRecord::parse_log_line("nonsense").is_err());
        assert!(TraceRecord::parse_log_line("SBatchWait_x,1,2,3,0,0").is_err());
        assert!(TraceRecord::parse_log_line("S,1,2,3,0,0").is_err());
        // Old 5-field lines are rejected, not silently mis-parsed.
        assert!(TraceRecord::parse_log_line("SBatchWait_1,1,2,3,0").is_err());
        assert!(TraceRecord::parse_log_line("SFaultInjected_3,1,2,3,0,0").is_err());
    }

    #[test]
    fn log_bytes_counts_serialized_length() {
        let r = record(SpanKind::BatchWait);
        assert_eq!(r.log_bytes(), r.to_log_line().len() as u64);
    }
}
