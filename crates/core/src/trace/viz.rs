//! Terminal rendering of LotusTrace timelines — the paper's Figure 2 as
//! ASCII art, for environments without a Chrome Trace Viewer.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use lotus_sim::Time;

use super::record::{SpanKind, TraceRecord};

/// Rendering options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineOptions {
    /// Characters available for the time axis.
    pub width: usize,
    /// Restrict to a time window (virtual nanoseconds); `None` = whole
    /// trace.
    pub window: Option<(u64, u64)>,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            width: 100,
            window: None,
        }
    }
}

/// Glyphs: worker fetch spans, main-process waits and consumption.
const FETCH: char = '▓';
const WAIT: char = '·';
const CONSUME: char = '█';
/// Glyphs for the zero-duration fault marks.
const FAULT: char = 'x';
const DIED: char = '†';
const REDISPATCH: char = '»';

/// Renders batch-level spans as one row per process.
///
/// The main process row shows waits (`·`) and batch consumption (`█`);
/// each DataLoader worker row shows its fetch spans (`▓`). Out-of-order
/// consumptions are marked with `!` at their start cell. Fault marks are
/// single cells: `x` for an injected sample error, `†` where a worker
/// died, `»` on the survivor that a batch was redispatched to.
///
/// # Panics
///
/// Panics if `options.width == 0`.
#[must_use]
pub fn render_timeline(records: &[TraceRecord], options: TimelineOptions) -> String {
    assert!(options.width > 0, "timeline width must be positive");
    let batch_level: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| !matches!(r.kind, SpanKind::Op(_) | SpanKind::StorageRead(_)))
        .collect();
    if batch_level.is_empty() {
        return "(empty trace)\n".to_string();
    }
    let (t0, t1) = options.window.unwrap_or_else(|| {
        let start = batch_level
            .iter()
            .map(|r| r.start.as_nanos())
            .min()
            .unwrap_or(0);
        let end = batch_level
            .iter()
            .map(|r| r.end().as_nanos())
            .max()
            .unwrap_or(1);
        (start, end.max(start + 1))
    });
    let span_ns = (t1 - t0).max(1);
    let cell = |t: u64| -> usize {
        ((t.saturating_sub(t0)) as u128 * options.width as u128 / span_ns as u128) as usize
    };

    // Rows: main process(es) first (those that emit waits), then workers.
    let mut rows: BTreeMap<(u8, u32), Vec<char>> = BTreeMap::new();
    let row_of = |pid: u32, is_main: bool| (u8::from(!is_main), pid);
    let mut ooo_marks: Vec<(u32, usize)> = Vec::new();
    for r in &batch_level {
        if r.end().as_nanos() < t0 || r.start.as_nanos() > t1 {
            continue;
        }
        if r.kind.is_instant() {
            // Fault marks are single cells on the owning worker's row and
            // win over any span glyph already there.
            let mark = match &r.kind {
                SpanKind::FaultInjected(_) => FAULT,
                SpanKind::WorkerDied => DIED,
                SpanKind::BatchRedispatched => REDISPATCH,
                _ => unreachable!("is_instant covers exactly these"),
            };
            let key = row_of(r.pid, false);
            let row = rows.entry(key).or_insert_with(|| vec![' '; options.width]);
            row[cell(r.start.as_nanos()).min(options.width - 1)] = mark;
            continue;
        }
        let (glyph, is_main) = match r.kind {
            SpanKind::BatchPreprocessed => (FETCH, false),
            SpanKind::BatchWait => (WAIT, true),
            SpanKind::BatchConsumed => (CONSUME, true),
            _ => unreachable!("ops and instants filtered above"),
        };
        let key = row_of(r.pid, is_main);
        let row = rows.entry(key).or_insert_with(|| vec![' '; options.width]);
        let from = cell(r.start.as_nanos()).min(options.width - 1);
        let to = cell(r.end().as_nanos()).clamp(from + 1, options.width);
        for c in &mut row[from..to] {
            // Consumption wins over waits when they share a cell.
            if *c == ' ' || (*c == WAIT && glyph == CONSUME) {
                *c = glyph;
            }
        }
        if r.out_of_order {
            ooo_marks.push((r.pid, from));
        }
    }
    for (pid, at) in ooo_marks {
        for ((_, row_pid), row) in &mut rows {
            if *row_pid == pid {
                row[at] = '!';
            }
        }
    }

    let mut out = String::new();
    let start_time = Time::from_nanos(t0);
    let end_time = Time::from_nanos(t1);
    let _ = writeln!(out, "timeline {start_time} .. {end_time}");
    for ((kind, pid), row) in &rows {
        let label = if *kind == 0 {
            format!("main {pid}")
        } else {
            format!("work {pid}")
        };
        let _ = writeln!(out, "{label:>10} |{}|", row.iter().collect::<String>());
    }
    let _ = writeln!(
        out,
        "{:>10}  {} fetch   {} wait   {} consume   ! out-of-order cache hit   \
         {} fault   {} died   {} redispatch",
        "legend:", FETCH, WAIT, CONSUME, FAULT, DIED, REDISPATCH
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_sim::Span;

    fn rec(kind: SpanKind, pid: u32, start_ms: u64, dur_ms: u64, ooo: bool) -> TraceRecord {
        TraceRecord {
            kind,
            pid,
            batch_id: 0,
            start: Time::from_nanos(start_ms * 1_000_000),
            duration: Span::from_millis(dur_ms),
            out_of_order: ooo,
            queue_delay: Span::ZERO,
        }
    }

    fn sample() -> Vec<TraceRecord> {
        vec![
            rec(SpanKind::BatchPreprocessed, 2, 0, 40, false),
            rec(SpanKind::BatchPreprocessed, 3, 10, 60, false),
            rec(SpanKind::BatchWait, 1, 0, 42, false),
            rec(SpanKind::BatchConsumed, 1, 45, 10, false),
            rec(SpanKind::Op("Loader".into()), 2, 0, 5, false),
        ]
    }

    #[test]
    fn renders_one_row_per_process_with_main_first() {
        let out = render_timeline(&sample(), TimelineOptions::default());
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("timeline"));
        assert!(lines[1].contains("main 1"));
        assert!(lines[2].contains("work 2"));
        assert!(lines[3].contains("work 3"));
        assert!(out.contains(FETCH));
        assert!(out.contains(WAIT));
        assert!(out.contains(CONSUME));
    }

    #[test]
    fn op_records_are_ignored_in_the_coarse_view() {
        let out = render_timeline(&sample(), TimelineOptions::default());
        // 1 header + 3 process rows + legend.
        assert_eq!(out.lines().count(), 5);
    }

    #[test]
    fn out_of_order_hits_are_marked() {
        let mut records = sample();
        records.push(rec(SpanKind::BatchWait, 1, 60, 1, true));
        let out = render_timeline(&records, TimelineOptions::default());
        assert!(out.contains('!'));
    }

    #[test]
    fn windowing_clips_spans() {
        let out = render_timeline(
            &sample(),
            TimelineOptions {
                width: 50,
                window: Some((0, 5_000_000)),
            },
        );
        // Worker 3 starts at 10 ms, outside the 5 ms window.
        assert!(
            !out.contains("work 3")
                || !out
                    .lines()
                    .any(|l| l.contains("work 3") && l.contains(FETCH))
        );
    }

    #[test]
    fn fault_marks_render_on_worker_rows() {
        let mut records = sample();
        records.push(rec(SpanKind::WorkerDied, 2, 20, 0, false));
        records.push(rec(SpanKind::BatchRedispatched, 3, 21, 0, false));
        records.push(rec(SpanKind::FaultInjected("Cast".into()), 3, 30, 0, false));
        let out = render_timeline(&records, TimelineOptions::default());
        let worker2 = out.lines().find(|l| l.contains("work 2")).unwrap();
        assert!(worker2.contains(DIED));
        let worker3 = out.lines().find(|l| l.contains("work 3")).unwrap();
        assert!(worker3.contains(REDISPATCH));
        assert!(worker3.contains(FAULT));
    }

    #[test]
    fn empty_trace_is_handled() {
        assert_eq!(
            render_timeline(&[], TimelineOptions::default()),
            "(empty trace)\n"
        );
    }

    #[test]
    fn rows_never_exceed_requested_width() {
        let out = render_timeline(
            &sample(),
            TimelineOptions {
                width: 30,
                window: None,
            },
        );
        for line in out.lines().skip(1) {
            if let Some(bar) = line.find('|') {
                let inner = &line[bar + 1..line.rfind('|').unwrap_or(line.len())];
                assert!(inner.chars().count() <= 30, "row too wide: {line}");
            }
        }
    }
}
